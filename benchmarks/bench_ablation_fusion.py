"""Ablation: the cost of not fusing (paper section V-D).

"The only limitation that this design decision incurs is the inability
to optimize the single-GPU performance (e.g., via kernel/container
fusion and tiling)."  This bench measures that limitation from the
inside: the same LBM step written as one fused collide+stream container
versus the naive stream-then-collide container pair.  The unfused form
moves each population through DRAM twice more (the scratch field), which
on bandwidth-bound hardware halves the throughput — quantifying how much
a user gains by hand-fusing in a library framework (what a compiler
framework like Taichi/OPS could do automatically).
"""

import pytest

from repro.bench import format_table, save_result
from repro.domain import D3Q19_STENCIL, DenseGrid
from repro.sim import dgx_a100
from repro.skeleton import Occ, Skeleton
from repro.solvers.lbm import make_twopop_container, make_unfused_step
from repro.system import Backend

SIZE = 256
NDEV = 1


def build(fused: bool):
    backend = Backend.sim_gpus(NDEV, machine=dgx_a100(NDEV))
    grid = DenseGrid(backend, (SIZE,) * 3, stencils=[D3Q19_STENCIL], virtual=True)
    f0, f1 = (grid.new_field(n, cardinality=19, outside_value=-1.0) for n in ("f0", "f1"))
    if fused:
        containers = [make_twopop_container(grid, f0, f1, 1.0, 0.05)]
    else:
        mid = grid.new_field("mid", cardinality=19, outside_value=-1.0)
        containers = make_unfused_step(grid, f0, mid, f1, 1.0, 0.05)
    return grid, Skeleton(backend, containers, occ=Occ.NONE)


def test_ablation_container_fusion(benchmark, show):
    def run():
        out = {}
        for fused in (True, False):
            grid, sk = build(fused)
            t = sk.trace(result=sk.record()).makespan
            out["fused collide+stream" if fused else "stream + collide (2 containers)"] = {
                "ms_per_iter": t * 1e3,
                "mlups": grid.num_active / t / 1e6,
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v["ms_per_iter"], v["mlups"]] for k, v in res.items()]
    show(
        format_table(
            ["formulation", "ms/iter", "MLUPS"],
            rows,
            title=f"Ablation: container fusion, D3Q19 {SIZE}^3, 1 device (model)",
        )
    )
    save_result("ablation_fusion", res)

    fused = res["fused collide+stream"]["mlups"]
    unfused = res["stream + collide (2 containers)"]["mlups"]
    # the fused kernel is ~2x faster on bandwidth-bound hardware
    assert 1.7 < fused / unfused < 2.3
