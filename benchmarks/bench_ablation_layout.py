"""Ablation: SoA vs AoS field layout and its halo-traffic consequences.

The paper makes layout a one-parameter Field property and notes the halo
cost difference: an n-component SoA field needs 2n transfers per
partition (one per component per direction) while AoS needs 2 larger
ones.  On a latency-dominated interconnect the message count matters;
this bench quantifies it for the 19-component LBM field.
"""

import pytest

from repro.bench import format_table, save_result
from repro.domain import Layout
from repro.sim import dgx_a100
from repro.skeleton import Occ
from repro.solvers.lbm import LidDrivenCavity
from repro.system import Backend

SIZE = 256
NDEV = 8


def measure(layout: Layout) -> dict:
    cav = LidDrivenCavity(
        Backend.sim_gpus(NDEV, machine=dgx_a100(NDEV)), (SIZE,) * 3, occ=Occ.NONE, layout=layout, virtual=True
    )
    msgs = cav.f[0].halo_messages()
    return {
        "messages": len(msgs),
        "bytes_per_message": msgs[0].nbytes if msgs else 0,
        "iteration_s": cav.iteration_makespan(),
    }


def test_ablation_soa_vs_aos_halo_traffic(benchmark, show):
    results = benchmark.pedantic(lambda: {lay.value: measure(lay) for lay in Layout}, rounds=1, iterations=1)
    rows = [
        [lay, r["messages"], r["bytes_per_message"] / 1024, r["iteration_s"] * 1e3]
        for lay, r in results.items()
    ]
    show(
        format_table(
            ["layout", "halo messages", "KiB/message", "ms/iter (no OCC)"],
            rows,
            title=f"Ablation: D3Q19 field layout, {SIZE}^3 on {NDEV} GPUs",
        )
    )
    save_result("ablation_layout", results)

    soa, aos = results["soa"], results["aos"]
    # paper IV-C2: SoA pays 2n messages per partition pair, AoS only 2
    assert soa["messages"] == 19 * aos["messages"]
    assert aos["bytes_per_message"] == 19 * soa["bytes_per_message"]
    # same total bytes, but SoA pays 19x the per-message latency: AoS
    # iterations are never slower under a latency-bearing link model
    assert aos["iteration_s"] <= soa["iteration_s"]
