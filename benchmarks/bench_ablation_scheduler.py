"""Ablation: the scheduler's parent-stream reuse (paper V-C a).

"If possible, we give a node the same stream used by one of its parents
located in previous levels.  This operation reduces Events
synchronization overhead."  This bench disables that heuristic and
counts the synchronisation primitives the schedule then needs.
"""

import numpy as np
import pytest

from repro.bench import format_table, save_result
from repro.core import ops
from repro.domain import STENCIL_7PT, DenseGrid
from repro.skeleton import Occ, Skeleton
from repro.system import Backend


def laplacian(grid, x, y):
    def loading(loader):
        xp = loader.read(x, stencil=True)
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container("laplace", loading)


def build(reuse: bool):
    backend = Backend.sim_gpus(4)
    grid = DenseGrid(backend, (64, 32, 32), stencils=[STENCIL_7PT], virtual=True)
    x, y = grid.new_field("x"), grid.new_field("y")
    partial = grid.new_reduce_partial("p")
    return Skeleton(
        backend,
        [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y), ops.dot(grid, x, y, partial)],
        occ=Occ.TWO_WAY,
        reuse_parent_streams=reuse,
    )


def test_ablation_stream_reuse(benchmark, show):
    def run():
        out = {}
        for reuse in (True, False):
            sk = build(reuse)
            result = sk.record()
            trace = sk.trace(result=result)
            out[reuse] = {
                "events": result.stats.num_events,
                "waits": result.stats.num_waits,
                "same_queue_skips": result.stats.waits_skipped_same_queue,
                "makespan_s": trace.makespan,
            }
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [("on" if k else "off"), v["events"], v["waits"], v["same_queue_skips"], v["makespan_s"] * 1e6]
        for k, v in res.items()
    ]
    show(
        format_table(
            ["parent-stream reuse", "events", "waits", "same-queue skips", "makespan (us)"],
            rows,
            title="Ablation: scheduler stream-reuse heuristic (Fig 4d app, 4 GPUs)",
        )
    )
    save_result("ablation_scheduler", {str(k): v for k, v in res.items()})

    on, off = res[True], res[False]
    # the heuristic's entire purpose: fewer events / more free syncs
    assert on["events"] <= off["events"]
    assert on["same_queue_skips"] >= off["same_queue_skips"]
    # and it must not hurt the schedule
    assert on["makespan_s"] <= off["makespan_s"] * 1.01
