"""Extension experiment (paper's future work): multi-node scaling.

"Distributed systems are a natural extension for Neon."  The programming
model is topology-agnostic, so running the LBM application on a
two-level machine (NVLink inside a node, a 200 Gb/s fabric between
nodes) needs zero user-code changes — only the machine description.
This bench measures what happens to strong scaling when the slab
decomposition crosses a node boundary, with and without OCC.
"""

import pytest

from repro.bench import format_table, parallel_efficiency, save_result
from repro.sim import dgx_a100, multi_node_a100
from repro.skeleton import Occ
from repro.solvers.lbm import LidDrivenCavity
from repro.system import Backend

SIZE = 384


def iteration_time(machine, ndev: int, occ: Occ) -> float:
    cav = LidDrivenCavity(Backend.sim_gpus(ndev, machine=machine), (SIZE,) * 3, occ=occ, virtual=True)
    return cav.iteration_makespan()


def test_ext_multinode_scaling(benchmark, show):
    def run():
        base = iteration_time(dgx_a100(1), 1, Occ.NONE)
        out = {}
        for nodes, per_node in [(1, 8), (2, 4), (2, 8), (4, 4)]:
            n = nodes * per_node
            machine = multi_node_a100(nodes, per_node) if nodes > 1 else dgx_a100(n)
            out[f"{nodes}x{per_node}"] = {
                "gpus": n,
                "none": parallel_efficiency(base, iteration_time(machine, n, Occ.NONE), n),
                "standard": parallel_efficiency(base, iteration_time(machine, n, Occ.STANDARD), n),
            }
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v["gpus"], v["none"], v["standard"]] for k, v in eff.items()]
    show(
        format_table(
            ["nodes x gpus", "total GPUs", "No OCC", "Standard OCC"],
            rows,
            title=f"Extension: multi-node LBM strong scaling, {SIZE}^3",
        )
    )
    save_result("ext_multinode", eff)

    # crossing a node boundary costs efficiency at equal GPU count ...
    assert eff["2x4"]["none"] < eff["1x8"]["none"]
    # ... and OCC claws a large part of it back (the same story as Fig 7,
    # amplified by the slower inter-node link)
    assert eff["2x4"]["standard"] > eff["2x4"]["none"]
    gain_cluster = eff["2x4"]["standard"] - eff["2x4"]["none"]
    gain_single = eff["1x8"]["standard"] - eff["1x8"]["none"]
    assert gain_cluster > gain_single
    # at this domain size, OCC fully hides even the inter-node exchange
    # on 8 GPUs (the internal kernel is long enough) ...
    assert eff["2x4"]["standard"] > 0.95
    # ... and 16 GPUs across 4 nodes still scale usefully with OCC
    assert eff["4x4"]["standard"] > 0.5
