"""Extension experiment: cross-iteration pipelining via unrolling.

Compiling several time steps into one skeleton lets the dependency
analysis span iteration boundaries.  Two honest findings:

1. For the *bare* LBM step (one fused stencil per iteration) the chain
   halo -> boundary-kernel -> next halo is inherently serial, so the
   steady-state cost per iteration exactly equals the isolated cost —
   intra-iteration OCC already extracts all available overlap, and
   measuring iterations in isolation (as the paper does) is sound.
2. Once an iteration carries work *independent* of that chain — here a
   per-step density diagnostic, a common pattern in production solvers —
   the diagnostic of step k overlaps the halo exchange of step k+1 and
   pipelining yields a real gain.
"""

import pytest

from repro.bench import format_table, save_result
from repro.core import ops
from repro.domain import D3Q19_STENCIL, DenseGrid
from repro.sim import pcie_a100
from repro.skeleton import Occ, unrolled_skeleton
from repro.solvers.lbm import make_twopop_container
from repro.system import Backend

SIZE = 128
NDEV = 8


def make_density(grid, src, dst, name):
    def loading(loader):
        s = loader.read(src)
        d = loader.write(dst)

        def compute(span):
            d.view(span)[...] = sum(s.view(span, q) for q in range(19))

        return compute

    return grid.new_container(name, loading, flops_per_cell=19.0)


def factories(backend):
    grid = DenseGrid(backend, (SIZE,) * 3, stencils=[D3Q19_STENCIL], virtual=True)
    f = [grid.new_field(n, cardinality=19, outside_value=-1.0) for n in ("f0", "f1")]
    rho = grid.new_field("rho")

    def bare(i):
        return [make_twopop_container(grid, f[i % 2], f[1 - i % 2], 1.0, 0.05)]

    def with_diag(i):
        return bare(i) + [make_density(grid, f[1 - i % 2], rho, "rho")]

    return {"bare LBM step": bare, "LBM + density diagnostic": with_diag}


def measure(backend, iteration, occ):
    sk1 = unrolled_skeleton(backend, iteration, 1, occ=occ)
    iso = sk1.trace(result=sk1.record()).makespan
    sk2 = unrolled_skeleton(backend, iteration, 2, occ=occ)
    sk6 = unrolled_skeleton(backend, iteration, 6, occ=occ)
    steady = (sk6.trace(result=sk6.record()).makespan - sk2.trace(result=sk2.record()).makespan) / 4
    return iso, steady


def test_ext_pipelining(benchmark, show):
    def run():
        backend = Backend.sim_gpus(NDEV, machine=pcie_a100(NDEV))
        out = {}
        for label, iteration in factories(backend).items():
            iso, steady = measure(backend, iteration, Occ.STANDARD)
            out[label] = {"isolated_s": iso, "steady_s": steady, "gain": iso / steady}
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label, v["isolated_s"] * 1e3, v["steady_s"] * 1e3, v["gain"]] for label, v in res.items()
    ]
    show(
        format_table(
            ["iteration body", "isolated ms/iter", "steady ms/iter", "pipelining gain"],
            rows,
            title=f"Extension: cross-iteration pipelining, {SIZE}^3 on {NDEV} GPUs (PCIe, standard OCC)",
        )
    )
    save_result("ext_pipelining", res)

    bare = res["bare LBM step"]
    diag = res["LBM + density diagnostic"]
    # finding 1: the bare step has no cross-iteration slack — the steady
    # state exactly matches the isolated measurement (soundness of the
    # paper's per-iteration methodology)
    assert bare["gain"] == pytest.approx(1.0, abs=0.01)
    # finding 2: independent per-iteration work turns unrolling into a
    # real optimisation
    assert diag["gain"] > 1.03
