"""Fig 1: the motivating map+stencil workflow at three optimisation levels.

The paper's opening figure contrasts (a) a naive barrier-synchronised
execution, (b) overlapping the stencil with the halo transfer, and
(c) additionally splitting the map so the transfer starts earlier.
These are exactly OCC levels NONE / STANDARD / EXTENDED; the bench
regenerates the three workflows on two simulated GPUs and reports their
makespans.
"""

import pytest

from repro.bench import format_table, save_result
from repro.core import ops
from repro.domain import STENCIL_7PT, DenseGrid
from repro.sim import pcie_a100
from repro.skeleton import Occ, Skeleton
from repro.system import Backend

SHAPE = (256, 256, 256)


def laplace_container(grid, x, y):
    def loading(loader):
        xp = loader.read(x, stencil=True)
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container("laplace", loading)


def workflow_makespan(occ: Occ) -> float:
    backend = Backend.sim_gpus(2, machine=pcie_a100(2))
    grid = DenseGrid(backend, SHAPE, stencils=[STENCIL_7PT], virtual=True)
    x, y = grid.new_field("x"), grid.new_field("y")
    sk = Skeleton(backend, [ops.axpy(grid, 2.0, y, x), laplace_container(grid, x, y)], occ=occ)
    return sk.trace(result=sk.record()).makespan


def test_fig1_occ_workflows(benchmark, show):
    spans = benchmark(lambda: {occ: workflow_makespan(occ) for occ in (Occ.NONE, Occ.STANDARD, Occ.EXTENDED)})
    rows = [
        ["(a) no OCC (barrier)", spans[Occ.NONE] * 1e6, 1.0],
        ["(b) standard OCC", spans[Occ.STANDARD] * 1e6, spans[Occ.NONE] / spans[Occ.STANDARD]],
        ["(c) extended OCC", spans[Occ.EXTENDED] * 1e6, spans[Occ.NONE] / spans[Occ.EXTENDED]],
    ]
    show(format_table(["workflow", "makespan (us)", "speedup vs (a)"], rows, title="Fig 1: map+stencil on 2 GPUs"))
    save_result("fig1_occ_workflows", {occ.value: spans[occ] for occ in spans})
    # (b) improves on (a); (c) improves on (b): the figure's whole point
    assert spans[Occ.STANDARD] < spans[Occ.NONE]
    assert spans[Occ.EXTENDED] <= spans[Occ.STANDARD] * 1.02
