"""Fig 7: D3Q19 twoPop parallel efficiency on 8 GPUs vs domain size,
No OCC vs Standard OCC (DGX-A100 machine model).

Paper trends to reproduce: Standard OCC dominates No OCC at every
domain size; No OCC improves as domains grow (communication amortises:
~half the iteration at 192^3, ~10% at 512^3) reaching ~93% at the
largest domain; Standard OCC sits near ideal efficiency throughout.
"""

import pytest

from repro.bench import ascii_plot, format_table, parallel_efficiency, save_result
from repro.sim import dgx_a100
from repro.skeleton import Occ
from repro.solvers.lbm import LidDrivenCavity
from repro.system import Backend

SIZES = [128, 192, 256, 320, 384, 448, 512]
NDEV = 8


def iteration_time(size: int, ndev: int, occ: Occ) -> float:
    cav = LidDrivenCavity(
        Backend.sim_gpus(ndev, machine=dgx_a100(ndev)), (size,) * 3, occ=occ, virtual=True
    )
    return cav.iteration_makespan()


def test_fig7_lbm_strong_scaling(benchmark, show):
    def run():
        out = {}
        for size in SIZES:
            t1 = iteration_time(size, 1, Occ.NONE)
            out[size] = {
                "none": parallel_efficiency(t1, iteration_time(size, NDEV, Occ.NONE), NDEV),
                "standard": parallel_efficiency(t1, iteration_time(size, NDEV, Occ.STANDARD), NDEV),
            }
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{s}^3", eff[s]["none"], eff[s]["standard"]] for s in SIZES]
    show(format_table(["domain", "No OCC", "Standard OCC"], rows, title=f"Fig 7: LBM efficiency on {NDEV} GPUs"))
    show(
        ascii_plot(
            {
                "no OCC": [(s, eff[s]["none"]) for s in SIZES],
                "standard OCC": [(s, eff[s]["standard"]) for s in SIZES],
            },
            title="Fig 7 shape: parallel efficiency vs domain edge",
            ylabel="efficiency",
            y_range=(0.0, 1.05),
        )
    )
    save_result("fig7_lbm_scaling", {str(s): eff[s] for s in SIZES})

    for s in SIZES:
        # Standard OCC always wins (paper: "better parallel efficiency over all domain sizes")
        assert eff[s]["standard"] >= eff[s]["none"]
    # No OCC improves monotonically with domain size and ends high
    none_series = [eff[s]["none"] for s in SIZES]
    assert all(a <= b + 1e-9 for a, b in zip(none_series, none_series[1:]))
    assert none_series[-1] > 0.85  # paper: 93% at 512^3
    # Standard OCC approaches ideal efficiency at scale (paper: >99%)
    assert eff[SIZES[-1]]["standard"] > 0.95
