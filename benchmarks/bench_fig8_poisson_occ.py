"""Fig 8 (top): Poisson CG — impact of the OCC configurations on a 320^3
grid with increasing device count.

The paper's headline observation is that *no single OCC optimisation
always wins*: Standard is best at low device counts, Extended takes over
in the middle, Two-way Extended at high counts.  The crossovers appear
once halo transfers outgrow the kernel phases they must hide under — the
bench runs on the PCIe-A100 machine model whose memory-to-link bandwidth
ratio puts the first crossover inside the swept range (see DESIGN.md for
the calibration; the extension beyond 8 devices shows the two-way
regime).
"""

import pytest

from repro.bench import ascii_plot, format_table, parallel_efficiency, save_result
from repro.sim import pcie_a100
from repro.skeleton import Occ
from repro.solvers import PoissonSolver
from repro.system import Backend

GRID = (320, 320, 320)
DEVICES = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16]


def iteration_time(ndev: int, occ: Occ) -> float:
    solver = PoissonSolver(Backend.sim_gpus(ndev, machine=pcie_a100(ndev)), GRID, occ=occ, virtual=True)
    return solver.iteration_makespan()


def test_fig8_top_occ_configurations(benchmark, show):
    def run():
        base = iteration_time(1, Occ.NONE)
        out = {}
        for n in DEVICES:
            out[n] = {occ.value: parallel_efficiency(base, iteration_time(n, occ), n) for occ in Occ}
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[n, *(eff[n][occ.value] for occ in Occ), max(eff[n], key=eff[n].get)] for n in DEVICES]
    show(
        format_table(
            ["GPUs", *(occ.value for occ in Occ), "best"],
            rows,
            title="Fig 8 (top): Poisson CG efficiency vs devices, 320^3, PCIe-A100",
        )
    )
    show(
        ascii_plot(
            {occ.value: [(n, eff[n][occ.value]) for n in DEVICES] for occ in Occ},
            title="Fig 8 (top) shape: efficiency vs device count per OCC level",
            ylabel="efficiency",
            y_range=(0.55, 1.02),
        )
    )
    save_result("fig8_top_poisson_occ", {str(n): eff[n] for n in DEVICES})

    best = {n: max(eff[n], key=eff[n].get) for n in DEVICES}
    # paper: Standard best at low counts ...
    assert best[2] == Occ.STANDARD.value
    assert best[4] == Occ.STANDARD.value
    # ... Extended takes over in the middle ...
    assert best[8] == Occ.EXTENDED.value
    # ... and Two-way wins at the high end of the sweep
    assert best[16] == Occ.TWO_WAY.value
    # every OCC level beats No OCC once communication matters
    for n in DEVICES[1:]:
        for occ in (Occ.STANDARD, Occ.EXTENDED, Occ.TWO_WAY):
            assert eff[n][occ.value] > eff[n][Occ.NONE.value]
