"""Fig 8 (bottom): Poisson CG parallel efficiency on 8 GPUs across grid
sizes — "given enough parallelism, our OCC optimizations are effective
and can reach ideal efficiency".

Also regenerates the paper's framework-overhead comparison (Fig 8 top's
baseline curve): Neon's skeleton vs the hand-written CG on one device,
measured in wall clock on a functional (non-virtual) grid.
"""

import pytest

from repro.baselines import NativePoissonCG
from repro.bench import format_table, parallel_efficiency, save_result, wall_time
from repro.sim import dgx_a100
from repro.skeleton import Occ
from repro.solvers import PoissonSolver
from repro.system import Backend

SIZES = [160, 224, 288, 320, 384, 448]
NDEV = 8


def iteration_time(size: int, ndev: int, occ: Occ) -> float:
    solver = PoissonSolver(
        Backend.sim_gpus(ndev, machine=dgx_a100(ndev)), (size,) * 3, occ=occ, virtual=True
    )
    return solver.iteration_makespan()


def test_fig8_bottom_scaling_with_grid_size(benchmark, show):
    def run():
        out = {}
        for size in SIZES:
            base = iteration_time(size, 1, Occ.NONE)
            out[size] = {
                occ.value: parallel_efficiency(base, iteration_time(size, NDEV, occ), NDEV)
                for occ in (Occ.NONE, Occ.STANDARD, Occ.TWO_WAY)
            }
        return out

    eff = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[f"{s}^3", *(eff[s][o] for o in ("none", "standard", "two-way-extended"))] for s in SIZES]
    show(
        format_table(
            ["grid", "No OCC", "Standard", "Two-way"],
            rows,
            title=f"Fig 8 (bottom): Poisson CG efficiency on {NDEV} GPUs (DGX-A100)",
        )
    )
    save_result("fig8_bottom_poisson_scaling", {str(s): eff[s] for s in SIZES})

    # efficiency grows with the grid (more parallelism) and approaches
    # ideal; the ceiling at ~0.95 is CG's per-iteration host readback of
    # the two reduction scalars, a cost the single-GPU baseline pays only
    # half as visibly
    std = [eff[s]["standard"] for s in SIZES]
    assert all(a <= b + 1e-9 for a, b in zip(std, std[1:]))
    assert std[-1] > 0.94
    for s in SIZES:
        assert eff[s]["standard"] >= eff[s]["none"]


def test_fig8_framework_overhead_vs_native(benchmark, show):
    """Neon vs the hardwired CUDA+cuBLAS-role baseline, one device."""
    shape = (48, 48, 48)
    fw = PoissonSolver(Backend.sim_gpus(1), shape, occ=Occ.NONE)
    fw.f.fill(1.0)
    native = NativePoissonCG(shape)

    import numpy as np

    native.set_rhs(np.ones(shape))

    def one_fw():
        fw.cg.sk_a.run()

    t_fw = benchmark.pedantic(lambda: wall_time(one_fw, repeats=2, warmup=1), rounds=1, iterations=1)
    t_nat = wall_time(native.one_iteration_work, repeats=3, warmup=1)
    show(
        format_table(
            ["implementation", "time/iter (ms)"],
            [["Neon skeleton", t_fw * 1e3], ["native (cuBLAS role)", t_nat * 1e3]],
            title="Fig 8 framework overhead (wall clock, one device, 48^3)",
        )
    )
    save_result("fig8_framework_overhead", {"neon_s": t_fw, "native_s": t_nat})
    # the Python framework pays interpreter overhead the C++ original does
    # not; it must still stay within one order of magnitude
    assert t_fw < t_nat * 10.0
