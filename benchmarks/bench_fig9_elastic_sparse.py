"""Fig 9: finite-element linear elasticity — dense vs element-sparse
grids across grid sizes and sparsity ratios.

Paper findings to reproduce: the element-sparse layout wins once the
sparsity ratio drops below ~0.8; the dense grid wins (and uses less
memory) on fully dense domains; and at 512^3 fully dense the sparse
data structure runs out of memory on a 40 GB device while the dense one
fits.
"""

import pytest

from repro.bench import format_table, save_result
from repro.sim import dgx_a100
from repro.skeleton import Occ
from repro.solvers import ElasticitySolver
from repro.system import AllocationError, Backend

SIZES = [128, 192, 256, 384]
SPARSITIES = [1.0, 0.8, 0.6, 0.4, 0.2]
NDEV = 8
GPU_MEMORY = 40 * 1024**3  # A100 40 GB HBM2e


def iteration_time(size: int, sparsity: float, sparse: bool) -> float:
    backend = Backend.sim_gpus(NDEV, machine=dgx_a100(NDEV))
    solver = ElasticitySolver.solid_cube(
        backend, size, solid_fraction=sparsity, sparse=sparse, virtual=True, occ=Occ.STANDARD
    )
    return solver.iteration_makespan()


def test_fig9_dense_vs_sparse_sweep(benchmark, show):
    def run():
        out = {}
        for size in SIZES:
            for s in SPARSITIES:
                dense = iteration_time(size, s, sparse=False)
                sparse = iteration_time(size, s, sparse=True)
                out[(size, s)] = (dense, sparse)
        return out

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [f"{size}^3", s, d * 1e3, sp * 1e3, "sparse" if sp < d else "dense"]
        for (size, s), (d, sp) in res.items()
    ]
    show(
        format_table(
            ["grid", "sparsity", "dense ms/iter", "sparse ms/iter", "winner"],
            rows,
            title=f"Fig 9: elastic CG iteration time, {NDEV} GPUs",
        )
    )
    save_result(
        "fig9_elastic_sparse",
        {f"{size}_{s}": {"dense_s": d, "sparse_s": sp} for (size, s), (d, sp) in res.items()},
    )

    for size in SIZES:
        dense_full, sparse_full = res[(size, 1.0)]
        # fully dense domains favour the dense grid
        assert dense_full < sparse_full
        # clearly sparse domains favour the element-sparse grid
        dense_02, sparse_02 = res[(size, 0.2)]
        assert sparse_02 < dense_02
    # the crossover sits near sparsity 0.8 (paper: "benefits ... were
    # clear once the sparsity ratio dropped below 0.8")
    d, sp = res[(256, 0.8)]
    assert abs(sp - d) / d < 0.15


def test_fig9_sparse_runs_out_of_memory_at_512_dense(benchmark, show):
    """On one 40 GB device, dense 512^3 fits but element-sparse does not
    (values + connectivity + coordinates exceed the budget) — the paper's
    out-of-memory data point."""

    def run():
        outcomes = {}
        for sparse in (False, True):
            backend = Backend.sim_gpus(1, machine=dgx_a100(1), memory_capacity=GPU_MEMORY)
            try:
                ElasticitySolver.solid_cube(backend, 512, solid_fraction=1.0, sparse=sparse, virtual=True)
                used = backend.memory_report()[0]
                outcomes[sparse] = f"fits ({used / 1024**3:.1f} GiB)"
            except AllocationError:
                outcomes[sparse] = "OOM"
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    show(
        format_table(
            ["grid type", "512^3 fully dense on 40 GB"],
            [["dense", outcomes[False]], ["element-sparse", outcomes[True]]],
            title="Fig 9: memory outcome at 512^3, sparsity 1.0",
        )
    )
    save_result("fig9_oom", {"dense": outcomes[False], "sparse": outcomes[True]})
    assert outcomes[False].startswith("fits")
    assert outcomes[True] == "OOM"
