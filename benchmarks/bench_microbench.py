"""Microbenchmarks of the framework's own overheads (wall clock).

A framework paper lives or dies on its overhead story — these pin down
where this implementation spends host time: graph compilation, one
skeleton execution (per-launch overhead), a single container launch, a
halo exchange, and DES replay throughput.  Run under pytest-benchmark
for statistically meaningful numbers; useful for performance-regression
tracking of the framework itself.
"""

import numpy as np
import pytest

from repro.core import Backend, DenseGrid, Occ, Skeleton, ops
from repro.domain import STENCIL_7PT
from repro.sets import MultiStream
from repro.sim import simulate


def laplacian(grid, x, y):
    def loading(loader):
        xp = loader.read(x, stencil=True)
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container("laplace", loading)


@pytest.fixture
def env():
    backend = Backend.sim_gpus(4)
    grid = DenseGrid(backend, (16, 8, 8), stencils=[STENCIL_7PT])
    x, y = grid.new_field("x"), grid.new_field("y")
    x.fill(1.0)
    y.fill(2.0)
    x.sync_halo_now()
    return backend, grid, x, y


def test_micro_skeleton_compile(benchmark, env):
    backend, grid, x, y = env
    partial = grid.new_reduce_partial("p")

    def compile_skeleton():
        return Skeleton(
            backend,
            [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y), ops.dot(grid, x, y, partial)],
            occ=Occ.TWO_WAY,
        )

    sk = benchmark(compile_skeleton)
    assert sk.plan.num_streams >= 1


def test_micro_skeleton_execute(benchmark, env):
    backend, grid, x, y = env
    partial = grid.new_reduce_partial("p")
    sk = Skeleton(
        backend,
        [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y), ops.dot(grid, x, y, partial)],
        occ=Occ.TWO_WAY,
    )
    result = benchmark(sk.run)
    assert result.stats.num_kernels > 0


def test_micro_container_launch(benchmark, env):
    backend, grid, x, y = env
    c = ops.axpy(grid, 0.5, y, x)
    streams = MultiStream.create(backend, "s")
    benchmark(lambda: c.run(streams))


def test_micro_halo_exchange(benchmark, env):
    backend, grid, x, y = env
    benchmark(x.sync_halo_now)


def test_micro_des_throughput(benchmark, env):
    backend, grid, x, y = env
    partial = grid.new_reduce_partial("p")
    sk = Skeleton(
        backend,
        [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y), ops.dot(grid, x, y, partial)],
        occ=Occ.TWO_WAY,
    )
    result = sk.record()
    trace = benchmark(lambda: simulate(result.queues, backend.machine))
    assert trace.makespan > 0


def test_micro_graph_and_field_setup(benchmark):
    backend = Backend.sim_gpus(4)

    def build():
        grid = DenseGrid(backend, (16, 8, 8), stencils=[STENCIL_7PT])
        return grid.new_field("x")

    f = benchmark(build)
    assert f.buffers
