"""Table I: Neon vs the compiler-based comparator on the 2-D Kármán
vortex street, in lattice updates per second (LUPS), one device.

The paper compares Neon against Taichi on domains 4096x1024 ..
32768x8192 and finds the two within a few percent of each other.  Here
the Taichi role is played by the hand-written NumPy implementation
(:class:`repro.baselines.NativeKarman`) running the *identical*
algorithm, and domains are scaled down (same 4:1 aspect ratio) to what
wall-clock NumPy can sweep.  Reported per domain: framework LUPS,
native LUPS, and their ratio (the paper's "speedup" column).
"""

import pytest

from repro.baselines import NativeKarman
from repro.bench import format_table, lups, save_result, wall_time
from repro.skeleton import Occ
from repro.solvers.lbm import KarmanVortexStreet
from repro.system import Backend

DOMAINS = [(64, 256), (128, 512), (192, 768), (256, 1024)]
ITERS = 5


def measure(shape) -> dict:
    fw = KarmanVortexStreet(Backend.sim_gpus(1), shape, reynolds=150.0)
    nat = NativeKarman(shape, reynolds=150.0)
    t_fw = wall_time(lambda: fw.step(ITERS), repeats=2, warmup=1)
    t_nat = wall_time(lambda: nat.step(ITERS), repeats=2, warmup=1)
    cells = shape[0] * shape[1]
    return {
        "neon_lups": lups(cells, ITERS, t_fw),
        "native_lups": lups(cells, ITERS, t_nat),
        "speedup": t_nat / t_fw,
        "model_lups": fw.lups(),
    }


def test_table1_karman_lups(benchmark, show):
    results = benchmark.pedantic(lambda: {s: measure(s) for s in DOMAINS}, rounds=1, iterations=1)
    rows = [
        [
            f"{s[1]}x{s[0]}",
            r["neon_lups"] / 1e6,
            r["native_lups"] / 1e6,
            r["speedup"],
            r["model_lups"] / 1e6,
        ]
        for s, r in results.items()
    ]
    show(
        format_table(
            ["domain", "Neon MLUPS (wall)", "native MLUPS (wall)", "speedup", "Neon MLUPS (model)"],
            rows,
            title="Table I: 2-D Karman vortex street, 1 device",
        )
    )
    save_result("table1_karman", {f"{s[1]}x{s[0]}": r for s, r in results.items()})
    for r in results.values():
        # the paper's claim: the framework is within a small factor of the
        # hand-written code (0.98..1.14 on GPUs; Python framework overhead
        # widens this, but the two must stay on the same order)
        assert 0.3 < r["speedup"] < 3.0
