"""Table II: single-device D3Q19 LBM throughput (MLUPS) across variants.

Roles (see DESIGN.md): the fused native twoPop plays cuboltz (the CUDA
benchmark), the two-pass native variant plays stlbm's CPA twoPop, the
A-A native variant plays stlbm AA, and the framework solver is Neon's
twoPop.

GPU LBM is memory-bandwidth bound, so the paper's ordering is a memory
traffic statement: the fused kernel touches each population twice per
cell per step (304 B), the two-pass variant four times (608 B), and the
A-A pattern twice but with a less regular access pattern.  Those traffic
figures drive the cost-model MLUPS, where the paper's claims are
asserted: Neon within ~1% of cuboltz, both ahead of the stlbm variants.
Wall-clock NumPy numbers are reported alongside for transparency —
interpreter overhead, not memory traffic, dominates there, so their
ordering is not asserted.
"""

import pytest

from repro.baselines import NativeCavity, NativeLBM
from repro.bench import format_table, mlups, save_result, wall_time
from repro.sim import dgx_a100, kernel_duration
from repro.solvers.lbm import LidDrivenCavity
from repro.system import Backend, KernelCost

SHAPE = (48, 48, 48)
ITERS = 3
CELLS = SHAPE[0] * SHAPE[1] * SHAPE[2]

# per-cell DRAM traffic of each variant (19 populations x 8 B, counted
# once per read and once per write per pass) and access-pattern penalty
VARIANT_MODEL = {
    "cuboltz (fused twoPop)": ("twopop", KernelCost(bytes_moved=304.0 * CELLS, flops=350.0 * CELLS)),
    "stlbm twoPop (two-pass)": ("swap", KernelCost(bytes_moved=608.0 * CELLS, flops=350.0 * CELLS)),
    "stlbm AA": ("aa", KernelCost(bytes_moved=304.0 * CELLS, flops=350.0 * CELLS, indirection=1.08)),
}


def test_table2_lbm_variants(benchmark, show):
    def run():
        spec = dgx_a100(1).device
        out = {}
        for label, (variant, cost) in VARIANT_MODEL.items():
            model = CELLS / kernel_duration(cost, spec) / 1e6
            if variant == "twopop":
                # the cuboltz role runs the *same* cavity workload as Neon
                sim = NativeCavity(SHAPE, omega=1.0)
            else:
                sim = NativeLBM(SHAPE, omega=1.0, variant=variant)
            t_wall = wall_time(lambda: sim.step(ITERS), repeats=2, warmup=1)
            out[label] = {"wall_mlups": mlups(CELLS, ITERS, t_wall), "model_mlups": model}
        fw = LidDrivenCavity(Backend.sim_gpus(1), SHAPE, omega=1.0)
        t_wall = wall_time(lambda: fw.step(ITERS), repeats=2, warmup=1)
        out["Neon twoPop"] = {"wall_mlups": mlups(CELLS, ITERS, t_wall), "model_mlups": fw.mlups()}
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[k, v["model_mlups"], v["wall_mlups"]] for k, v in results.items()]
    show(
        format_table(
            ["variant", "MLUPS (model)", "MLUPS (wall, NumPy)"],
            rows,
            title=f"Table II: D3Q19 cavity {SHAPE}, 1 device",
        )
    )
    save_result("table2_lbm_variants", results)

    model = {k: v["model_mlups"] for k, v in results.items()}
    # Neon twoPop within ~1% of the native CUDA-role benchmark
    assert model["Neon twoPop"] / model["cuboltz (fused twoPop)"] > 0.99
    # both fused implementations beat the stlbm variants
    for slow in ("stlbm twoPop (two-pass)", "stlbm AA"):
        assert model["Neon twoPop"] > model[slow]
        assert model["cuboltz (fused twoPop)"] > model[slow]
    # wall-clock sanity: everything on the same order of magnitude
    walls = [v["wall_mlups"] for v in results.values()]
    assert max(walls) / min(walls) < 20.0
