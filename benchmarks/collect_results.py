#!/usr/bin/env python
"""Regenerate the EXPERIMENTS.md data tables from benchmarks/out/*.json.

Run after ``pytest benchmarks/ --benchmark-only`` to print every
experiment's measured series as markdown — the source of the numbers
quoted in EXPERIMENTS.md.

Usage:  python benchmarks/collect_results.py
"""

from __future__ import annotations

import json
import pathlib

OUT = pathlib.Path(__file__).parent / "out"


def md_table(headers: list[str], rows: list[list]) -> str:
    def fmt(v):
        return f"{v:.3f}" if isinstance(v, float) else str(v)

    lines = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    lines += ["| " + " | ".join(fmt(c) for c in row) + " |" for row in rows]
    return "\n".join(lines)


def emit(title: str, table: str) -> None:
    print(f"\n## {title}\n\n{table}")


def main() -> None:
    if not OUT.exists():
        raise SystemExit("no results yet — run: pytest benchmarks/ --benchmark-only")
    data = {p.stem: json.loads(p.read_text()) for p in sorted(OUT.glob("*.json"))}

    if "fig1_occ_workflows" in data:
        d = data["fig1_occ_workflows"]
        emit(
            "Fig 1 — OCC workflows (2 GPUs)",
            md_table(
                ["workflow", "makespan (us)", "speedup vs none"],
                [[k, v * 1e6, d["none"] / v] for k, v in d.items()],
            ),
        )

    if "table1_karman" in data:
        d = data["table1_karman"]
        emit(
            "Table I — Kármán vortex street LUPS",
            md_table(
                ["domain", "Neon MLUPS", "native MLUPS", "ratio", "model MLUPS"],
                [
                    [k, v["neon_lups"] / 1e6, v["native_lups"] / 1e6, v["speedup"], v["model_lups"] / 1e6]
                    for k, v in d.items()
                ],
            ),
        )

    if "table2_lbm_variants" in data:
        d = data["table2_lbm_variants"]
        emit(
            "Table II — D3Q19 variants",
            md_table(
                ["variant", "model MLUPS", "wall MLUPS"],
                [[k, v["model_mlups"], v["wall_mlups"]] for k, v in d.items()],
            ),
        )

    if "fig7_lbm_scaling" in data:
        d = data["fig7_lbm_scaling"]
        emit(
            "Fig 7 — LBM efficiency, 8 GPUs",
            md_table(
                ["domain", "no OCC", "standard OCC"],
                [[f"{k}^3", v["none"], v["standard"]] for k, v in sorted(d.items(), key=lambda kv: int(kv[0]))],
            ),
        )

    if "fig8_top_poisson_occ" in data:
        d = data["fig8_top_poisson_occ"]
        occs = ["none", "standard", "extended", "two-way-extended"]
        rows = []
        for n, effs in sorted(d.items(), key=lambda kv: int(kv[0])):
            rows.append([n, *(effs[o] for o in occs), max(effs, key=effs.get)])
        emit("Fig 8 top — Poisson OCC configs (320^3, PCIe-A100)", md_table(["GPUs", *occs, "best"], rows))

    if "fig8_bottom_poisson_scaling" in data:
        d = data["fig8_bottom_poisson_scaling"]
        rows = [
            [f"{k}^3", v["none"], v["standard"], v["two-way-extended"]]
            for k, v in sorted(d.items(), key=lambda kv: int(kv[0]))
        ]
        emit("Fig 8 bottom — Poisson vs grid size (8 GPUs, DGX)", md_table(["grid", "none", "standard", "two-way"], rows))

    if "fig8_framework_overhead" in data:
        d = data["fig8_framework_overhead"]
        emit(
            "Fig 8 — framework overhead (wall clock)",
            md_table(
                ["implementation", "ms/iter"],
                [["Neon skeleton", d["neon_s"] * 1e3], ["native", d["native_s"] * 1e3]],
            ),
        )

    if "fig9_elastic_sparse" in data:
        d = data["fig9_elastic_sparse"]
        rows = []
        for key, v in sorted(d.items(), key=lambda kv: (int(kv[0].split("_")[0]), float(kv[0].split("_")[1]))):
            size, s = key.split("_")
            rows.append(
                [f"{size}^3", float(s), v["dense_s"] * 1e3, v["sparse_s"] * 1e3,
                 "sparse" if v["sparse_s"] < v["dense_s"] else "dense"]
            )
        emit("Fig 9 — dense vs sparse elasticity (8 GPUs)", md_table(["grid", "sparsity", "dense ms", "sparse ms", "winner"], rows))

    if "fig9_oom" in data:
        d = data["fig9_oom"]
        emit(
            "Fig 9 — memory outcome at 512^3 fully dense (one 40 GB device)",
            md_table(["grid type", "outcome"], [["dense", d["dense"]], ["element-sparse", d["sparse"]]]),
        )

    for name in ("ablation_layout", "ablation_scheduler"):
        if name in data:
            d = data[name]
            first = next(iter(d.values()))
            headers = ["config", *first.keys()]
            rows = [[k, *v.values()] for k, v in d.items()]
            emit(f"Ablation — {name.split('_', 1)[1]}", md_table(headers, rows))


if __name__ == "__main__":
    main()
