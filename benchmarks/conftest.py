"""Shared fixtures for the paper-reproduction benchmarks.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated tables; each bench also writes its series to
``benchmarks/out/<experiment>.json``.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print a table so it survives capture (shown in the -s / summary)."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show
