"""Beyond the paper's solvers: eigenvalues and multigrid from the same
three building blocks.

The paper claims map/stencil/reduce cover "solving linear systems,
eigenvalue problems and almost all the functions found in BLAS".  This
example backs the middle clause with power iteration against the
analytic Laplacian spectrum, then shows a two-grid multigrid cycle
beating plain relaxation by an order of magnitude per iteration.

Run:  python examples/advanced_solvers.py
"""

import numpy as np

from repro.core import Backend
from repro.solvers import (
    IterativePoisson,
    TwoGridPoisson,
    laplacian_spectrum_bounds,
    largest_eigenvalue,
    make_neg_laplacian,
    manufactured_problem,
    smallest_eigenvalue,
)
from repro.domain import STENCIL_7PT, DenseGrid


def main():
    shape = (12, 10, 8)
    backend = Backend.sim_gpus(3)

    # -- eigenvalues of the 7-point Laplacian ---------------------------------
    grid = DenseGrid(backend, shape, stencils=[STENCIL_7PT])
    lo, hi = laplacian_spectrum_bounds(shape)
    print(f"analytic spectrum of -laplace on {shape}: [{lo:.6f}, {hi:.6f}]")

    res_hi = largest_eigenvalue(grid, make_neg_laplacian, max_iterations=3000, tolerance=1e-12)
    print(f"power iteration:        lambda_max = {res_hi.eigenvalue:.6f} "
          f"({res_hi.iterations} iters, err {abs(res_hi.eigenvalue - hi):.2e})")

    grid2 = DenseGrid(Backend.sim_gpus(3), shape, stencils=[STENCIL_7PT])
    res_lo = smallest_eigenvalue(grid2, make_neg_laplacian, lambda_max=12.0,
                                 max_iterations=6000, tolerance=1e-13)
    print(f"shifted power iteration: lambda_min = {res_lo.eigenvalue:.6f} "
          f"({res_lo.iterations} iters, err {abs(res_lo.eigenvalue - lo):.2e})")

    # -- multigrid vs smoothing ------------------------------------------------
    mg_shape = (16, 16, 16)
    _, f = manufactured_problem(mg_shape)
    print(f"\nresidual history on {mg_shape} (same smoothing work per row):")
    mg = TwoGridPoisson(Backend.sim_gpus(2), mg_shape, pre_smooth=2, post_smooth=2)
    mg.set_rhs(lambda z, y, x: f[z, y, x])
    sm = IterativePoisson(Backend.sim_gpus(2), mg_shape, method="rbgs")
    sm.set_rhs(lambda z, y, x: f[z, y, x])

    print(f"  {'':>8}  {'two-grid V(2,2)':>16}  {'rbgs alone':>12}")
    print(f"  cycle 0:  {mg.residual_norm():16.3e}  {sm.residual_norm():12.3e}")
    for c in range(1, 6):
        mg.cycle()
        sm.sweep(4)
        print(f"  cycle {c}:  {mg.residual_norm():16.3e}  {sm.residual_norm():12.3e}")
    print("\nthe coarse-grid correction removes the smooth error relaxation cannot.")


if __name__ == "__main__":
    main()
