"""Linear elasticity: switching data structures without touching the solver.

Solves the paper's benchmark (solid block, fixed base, pressure on top)
on a dense grid and on an element-sparse grid — same Containers, same
CG — then sweeps sparsity to show the Fig 9 dense/sparse trade-off.

Run:  python examples/elastic_sparse.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import Backend, Occ
from repro.sim import dgx_a100
from repro.solvers import ElasticitySolver


def main():
    # -- same solver, two data structures --------------------------------------
    print("solving an 8^3 block (50% sparsity) on dense and sparse grids ...")
    for sparse in (False, True):
        solver = ElasticitySolver.solid_cube(
            Backend.sim_gpus(2), 8, solid_fraction=0.5, sparse=sparse, pressure=0.02
        )
        res = solver.solve(max_iterations=400, tolerance=1e-9)
        uz = solver.displacement()[0]
        top = uz[-1][np.isfinite(uz[-1]) & (uz[-1] != 0.0)]
        kind = "sparse" if sparse else "dense "
        print(
            f"  {kind}: converged in {res.iterations:3d} iters, "
            f"mean top-plane uplift = {top.mean():+.4e}"
        )

    # -- Fig 9 trade-off -------------------------------------------------------
    print("\nsimulated CG-iteration time, 256^3 grid on 8 GPUs (DGX model):")
    rows = []
    for s in (1.0, 0.8, 0.6, 0.4, 0.2):
        times = {}
        for sparse in (False, True):
            backend = Backend.sim_gpus(8, machine=dgx_a100(8))
            solver = ElasticitySolver.solid_cube(
                backend, 256, solid_fraction=s, sparse=sparse, virtual=True
            )
            times[sparse] = solver.iteration_makespan()
        rows.append([s, times[False] * 1e3, times[True] * 1e3, "sparse" if times[True] < times[False] else "dense"])
    print(format_table(["sparsity", "dense ms", "sparse ms", "winner"], rows))
    print("\nthe element-sparse grid wins below ~0.8 sparsity — the paper's Fig 9.")


if __name__ == "__main__":
    main()
