"""Transient heat diffusion on a spherical shell — free-form domains.

Uses the geometry CSG helpers to build a hollow shell (the kind of
free-form engineering domain the paper's intro motivates), then runs
explicit heat diffusion with a hot inner surface on the element-sparse
grid across 3 simulated GPUs.  Shows two time-stepping skeletons
(ping-pong buffers) and a temperature-profile readout.

Run:  python examples/heat_shell.py
"""

import numpy as np

from repro.core import Backend, Occ, Skeleton
from repro.domain import STENCIL_7PT, SparseGrid, geometry


def diffusion_step(grid, t_in, t_out, hot, alpha=0.12):
    """t_out = t_in + alpha * Laplacian(t_in), with a pinned hot band.

    Outside-domain neighbours read 0 (ambient), so the shell's surfaces
    cool towards the surroundings except where `hot` pins them.
    """

    def loading(loader):
        ti = loader.read(t_in, stencil=True)
        hp = loader.read(hot)
        to = loader.write(t_out)

        def compute(span):
            c = ti.view(span)
            acc = -6.0 * c
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + ti.neighbour(span, off)
            new = c + alpha * acc
            h = hp.view(span)
            to.view(span)[...] = np.where(h > 0.5, 1.0, new)

        return compute

    return grid.new_container("diffuse", loading)


def main():
    n = 28
    shape = (n, n, n)
    mask = geometry.shell(shape, inner=4.5, outer=11.5)
    backend = Backend.sim_gpus(3)
    grid = SparseGrid(backend, mask=mask, stencils=[STENCIL_7PT])
    print(f"shell domain: {grid.num_active} active cells of {grid.num_cells} "
          f"(sparsity {grid.sparsity_ratio:.2f}), {backend.num_devices} GPUs")

    temp = [grid.new_field("t0"), grid.new_field("t1")]
    hot = grid.new_field("hot")
    c = (n - 1) / 2.0
    # pin the innermost band of the shell at T = 1
    hot.init(lambda z, y, x: ((z - c) ** 2 + (y - c) ** 2 + (x - c) ** 2 <= 6.0**2).astype(float))
    temp[0].init(lambda z, y, x: ((z - c) ** 2 + (y - c) ** 2 + (x - c) ** 2 <= 6.0**2).astype(float))

    steps = [
        Skeleton(backend, [diffusion_step(grid, temp[i], temp[1 - i], hot)], occ=Occ.STANDARD, name=f"s{i}")
        for i in (0, 1)
    ]

    for it in range(120):
        steps[it % 2].run()

    t = temp[0].to_numpy()[0]
    print("\nradial temperature profile (mid-plane ray from centre):")
    mid = n // 2
    for x in range(mid, n):
        r = x - mid
        val = t[mid, mid, x]
        inside = mask[mid, mid, x]
        bar = "#" * int(36 * max(val, 0.0)) if inside else ""
        tag = f"{val:5.2f}" if inside else "  -  "
        print(f"  r={r:2d}  {tag}  {bar}")

    shell_vals = t[mask]
    print(f"\nhot band at 1.0, outer surface cooled towards ambient: "
          f"min={shell_vals.min():.3f}, max={shell_vals.max():.3f}")
    assert shell_vals.max() <= 1.0 + 1e-9
    assert shell_vals.min() < 0.5  # outer surface has cooled


if __name__ == "__main__":
    main()
