"""2-D Kármán vortex street (the paper's Table I application).

Runs channel flow past a cylinder with the D2Q9 solver on two simulated
GPUs and renders the vorticity field as ASCII art — vortices shed behind
the cylinder alternate in sign.

Run:  python examples/karman_vortex.py
"""

import numpy as np

from repro.core import Backend
from repro.solvers.lbm import KarmanVortexStreet


def render(w: np.ndarray, mask: np.ndarray, width: int = 110) -> str:
    ny, nx = w.shape
    step_x = max(1, nx // width)
    step_y = max(1, ny // 28)
    scale = np.percentile(np.abs(w[mask > 0.5]), 98) or 1.0
    chars = " .:-=+*#%@"
    lines = []
    for j in range(0, ny, step_y):
        row = []
        for i in range(0, nx, step_x):
            if mask[j, i] < 0.5:
                row.append("O")  # the cylinder / walls
            else:
                v = w[j, i] / scale
                if v > 0:
                    row.append(chars[min(9, int(v * 9))])
                else:
                    row.append(chars[min(9, int(-v * 9))].lower() if abs(v) > 0.1 else " ")
        lines.append("".join(row))
    return "\n".join(lines)


def main():
    flow = KarmanVortexStreet(Backend.sim_gpus(2), (48, 192), reynolds=180.0, inflow_velocity=0.06)
    print(f"Re = 180, omega = {flow.omega:.3f}, domain 192x48, 2 simulated GPUs")
    for checkpoint in (1500, 3000):
        flow.step(1500)
        rho, u = flow.macroscopic()
        fluid = flow.mask.to_numpy()[0] > 0.5
        print(f"\nafter {checkpoint} steps  (max |u| = {np.abs(u[:, fluid]).max():.3f}):")
        print(render(flow.vorticity(), flow.mask.to_numpy()[0]))
    print("\nalternating-sign vorticity downstream of the cylinder = the vortex street.")


if __name__ == "__main__":
    main()
