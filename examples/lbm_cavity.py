"""Lid-driven cavity flow with the D3Q19 twoPop LBM solver (paper VI-A).

Runs the physics on a small grid, prints the centreline velocity profile
(the classic validation curve for cavity flow), then sweeps simulated
GPU counts to show the strong-scaling behaviour of Fig 7.

Run:  python examples/lbm_cavity.py
"""

import numpy as np

from repro.bench import format_table, parallel_efficiency
from repro.core import Backend, Occ
from repro.sim import dgx_a100
from repro.solvers.lbm import LidDrivenCavity


def main():
    # -- physics on one device ------------------------------------------------
    cav = LidDrivenCavity(Backend.sim_gpus(2), (24, 24, 24), omega=1.2, lid_velocity=0.1)
    print("running 200 lid-driven cavity steps on 2 simulated GPUs ...")
    cav.step(200)
    rho, u = cav.macroscopic()
    print(f"mass drift: {abs(cav.total_mass() / (1.0 * cav.grid.num_cells) - 1.0):.2e}")

    print("\ncentreline x-velocity profile u_x(z) / U_lid (cavity mid-plane):")
    mid = 12
    profile = u[2][:, mid, mid] / 0.1
    for z in range(0, 24, 3):
        bar = "#" * int(40 * max(0.0, profile[z] + 0.25))
        print(f"  z={z:2d}  {profile[z]:+.3f}  {bar}")
    assert profile[-1] > 0.1, "flow near the lid should follow the lid"

    # -- strong scaling under the machine model -------------------------------
    print("\nstrong scaling of a 256^3 cavity (DGX-A100 model, standard OCC):")
    size = 256
    t1 = LidDrivenCavity(
        Backend.sim_gpus(1, machine=dgx_a100(1)), (size,) * 3, occ=Occ.NONE, virtual=True
    ).iteration_makespan()
    rows = []
    for n in (1, 2, 4, 8):
        cavn = LidDrivenCavity(
            Backend.sim_gpus(n, machine=dgx_a100(n)), (size,) * 3, occ=Occ.STANDARD, virtual=True
        )
        tn = cavn.iteration_makespan()
        rows.append([n, tn * 1e3, cavn.mlups(), parallel_efficiency(t1, tn, n)])
    print(format_table(["GPUs", "ms/iter", "MLUPS", "efficiency"], rows))


if __name__ == "__main__":
    main()
