"""Finite-difference Poisson solver and the OCC optimisation space.

Solves -laplace(u) = f with a matrix-free CG (paper Listings 2+3),
verifies the answer against the analytic solution, then reproduces the
Fig 8 observation that no single OCC configuration always wins.

Run:  python examples/poisson_occ.py
"""

import numpy as np

from repro.bench import format_table, parallel_efficiency
from repro.core import Backend, Occ
from repro.sim import pcie_a100
from repro.solvers import PoissonSolver, manufactured_problem


def main():
    # -- solve and verify -----------------------------------------------------
    shape = (24, 20, 16)
    u_exact, f = manufactured_problem(shape)
    solver = PoissonSolver(Backend.sim_gpus(4), shape, occ=Occ.TWO_WAY)
    solver.set_rhs(lambda z, y, x: f[z, y, x])
    result = solver.solve(max_iterations=300, tolerance=1e-10)
    err = np.abs(solver.solution() - u_exact).max()
    print(f"CG converged in {result.iterations} iterations; max |u - u_exact| = {err:.2e}")
    assert result.converged and err < 1e-7

    # -- OCC configuration sweep (Fig 8 top) ----------------------------------
    print("\nefficiency of one CG iteration, 320^3 grid, PCIe-A100 model:")
    base = PoissonSolver(
        Backend.sim_gpus(1, machine=pcie_a100(1)), (320,) * 3, occ=Occ.NONE, virtual=True
    ).iteration_makespan()
    rows = []
    for n in (2, 4, 6, 8, 12, 16):
        effs = {}
        for occ in Occ:
            t = PoissonSolver(
                Backend.sim_gpus(n, machine=pcie_a100(n)), (320,) * 3, occ=occ, virtual=True
            ).iteration_makespan()
            effs[occ.value] = parallel_efficiency(base, t, n)
        best = max(effs, key=effs.get)
        rows.append([n, *effs.values(), best])
    print(format_table(["GPUs", *(o.value for o in Occ), "best"], rows))
    print("\nswitching OCC level is a one-parameter change — the paper's point.")


if __name__ == "__main__":
    main()
