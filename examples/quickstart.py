"""Quickstart: the paper's programming model in ~60 lines of user code.

Builds the Fig 4a example — a map (axpy), a stencil (Laplacian), and a
reduction (dot product) — runs it unchanged on 1 and 4 simulated GPUs at
two OCC levels, and shows the simulated execution timeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Backend, DenseGrid, Occ, ScalarResult, Skeleton, ops
from repro.domain import STENCIL_7PT


def laplacian(grid, x, y):
    """y <- 7-point Laplacian of x: a user-defined stencil Container."""

    def loading(loader):
        xp = loader.read(x, stencil=True)  # declares the stencil pattern
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container("laplace", loading)


def run(num_gpus: int, occ: Occ):
    backend = Backend.sim_gpus(num_gpus)
    grid = DenseGrid(backend, (32, 32, 32), stencils=[STENCIL_7PT])

    x = grid.new_field("x")
    y = grid.new_field("y")
    x.init(lambda z, j, i: np.sin(0.2 * z) + 0.1 * i)
    y.init(lambda z, j, i: np.cos(0.3 * j))

    partial = grid.new_reduce_partial("dot")
    # sequential-looking application: the Skeleton handles distribution,
    # halo exchange, and overlap of computation and communication
    sk = Skeleton(
        backend,
        [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y), ops.dot(grid, x, y, partial)],
        occ=occ,
    )
    sk.run()
    return ScalarResult(partial).value(), sk


def main():
    print("same user code, different back ends and OCC levels:\n")
    reference = None
    for num_gpus in (1, 4):
        for occ in (Occ.NONE, Occ.TWO_WAY):
            value, sk = run(num_gpus, occ)
            if reference is None:
                reference = value
            status = "ok" if np.isclose(value, reference) else "MISMATCH"
            print(f"  {num_gpus} GPU(s), occ={occ.value:<17}  dot = {value:+.6e}   [{status}]")
            assert np.isclose(value, reference)

    print("\nsimulated timeline on 4 GPUs with two-way-extended OCC:")
    _, sk = run(4, Occ.TWO_WAY)
    print(sk.trace().gantt(90))
    print(f"\nstreams used: {sk.stats.num_streams}, events: {sk.stats.num_events}, "
          f"kernels: {sk.stats.num_kernels}, copies: {sk.stats.num_copies}")


if __name__ == "__main__":
    main()
