"""Set-level programming: what the Skeleton automates, done by hand.

The paper's Set abstraction (section IV-B) lets experts drive multi-GPU
streams and events manually.  This example implements the map->stencil
pipeline of Fig 1b by hand — explicit halo update, explicit event
synchronisation, manual overlap — and checks it against the one-line
Skeleton version.  It is deliberately verbose: the contrast *is* the
paper's pitch.

Run:  python examples/set_level_manual.py
"""

import numpy as np

from repro.core import Backend, DenseGrid, Occ, Skeleton, ops
from repro.domain import STENCIL_7PT, DataView
from repro.sets import MultiEvent, MultiStream


def laplacian(grid, x, y):
    def loading(loader):
        xp = loader.read(x, stencil=True)
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container("laplace", loading)


def manual_pipeline(backend, grid, x, y):
    """Hand-rolled Fig 1b: map, async halo, internal stencil, boundary stencil."""
    compute = MultiStream.create(backend, "compute")
    transfer = MultiStream.create(backend, "transfer")
    map_done = MultiEvent(backend.num_devices, "map_done")
    halo_done = MultiEvent(backend.num_devices, "halo_done")

    axpy = ops.axpy(grid, 0.5, y, x)
    lap = laplacian(grid, x, y)

    # 1) the map on every device, then mark completion
    axpy.run(compute)
    map_done.record_all(compute)

    # 2) halo transfers on the transfer streams, gated on the producer
    for msg in x.halo_messages():
        q = transfer[msg.src_rank]
        q.wait_event(map_done[msg.src_rank])
        q.enqueue_copy(msg.name, msg.fn, backend.device(msg.src_rank), backend.device(msg.dst_rank), msg.nbytes)
    halo_done.record_all(transfer)

    # 3) internal stencil overlaps the transfers ...
    lap.run(compute, view=DataView.INTERNAL)
    # 4) ... and the boundary stencil waits for the halos.  Careful:
    # halo_done[r] marks rank r's *sends* — the data rank r needs comes
    # from its neighbours' sends, so each rank waits the neighbour
    # events.  Mistakes like waiting on your own event are exactly what
    # the Skeleton abstraction exists to rule out.
    for r in range(backend.num_devices):
        for nb in backend.devices.neighbours(r):
            compute[r].wait_event(halo_done[nb])
    lap.run(compute, view=DataView.BOUNDARY)
    return list(compute) + list(transfer)


def main():
    backend = Backend.sim_gpus(4)
    grid = DenseGrid(backend, (32, 16, 16), stencils=[STENCIL_7PT])
    x, y = grid.new_field("x"), grid.new_field("y")
    init_x = lambda z, j, i: np.sin(0.3 * z) + 0.01 * i
    init_y = lambda z, j, i: np.cos(0.2 * j)
    x.init(init_x)
    y.init(init_y)

    queues = manual_pipeline(backend, grid, x, y)
    manual_y = y.to_numpy().copy()
    from repro.sim import simulate

    manual_trace = simulate(queues, backend.machine)
    print("manual Set-level pipeline (Fig 1b by hand):")
    print(manual_trace.gantt(90))

    # the one-liner: same computation through the Skeleton
    x.init(init_x)
    y.init(init_y)
    sk = Skeleton(backend, [ops.axpy(grid, 0.5, y, x), laplacian(grid, x, y)], occ=Occ.STANDARD)
    sk.run()
    auto_y = y.to_numpy()

    assert np.allclose(manual_y, auto_y), "manual and Skeleton pipelines disagree!"
    print("\nSkeleton-generated schedule (same computation, zero manual code):")
    print(sk.trace().gantt(90))
    print("\nresults identical; the Skeleton wrote the bottom schedule for you.")


if __name__ == "__main__":
    main()
