"""repro: a Python reproduction of "Neon: A Multi-GPU Programming Model
for Grid-based Computations" (Meneghin et al., IPDPS 2022).

The package mirrors the paper's abstraction hierarchy:

* :mod:`repro.system`  — devices, memory, queues/events (System level)
* :mod:`repro.sets`    — multi-device data, Containers, Loaders (Set level)
* :mod:`repro.domain`  — Grids, Fields, views, halos (Domain level)
* :mod:`repro.skeleton`— dependency graphs, OCC, scheduling (Skeleton level)
* :mod:`repro.core`    — the user-facing facade plus BLAS-like ops
* :mod:`repro.sim`     — the machine model replacing real GPUs
* :mod:`repro.solvers` — LBM, Poisson, linear elasticity applications
* :mod:`repro.baselines` — hand-written comparators (cuboltz/stlbm roles)
* :mod:`repro.bench`   — metrics and harnesses for the paper's tables/figures
* :mod:`repro.observability` — structured tracing, metrics, profiling hooks
"""

__version__ = "0.1.0"
