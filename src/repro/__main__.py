"""Command-line entry point: drive the paper reproduction from a shell.

    python -m repro list                 # show every experiment
    python -m repro reproduce fig7       # regenerate one table/figure
    python -m repro reproduce all        # regenerate everything
    python -m repro collect              # print measured tables (markdown)
    python -m repro info                 # package / machine-model summary
    python -m repro trace fig1 -o trace.json   # run a miniature of an
        # experiment with the observability layer enabled and export a
        # Chrome/Perfetto trace (real + simulated timelines + metrics)
    python -m repro faults cg --profile transient+loss -o recovery.json
        # run a fault-matrix miniature under a seeded FaultPlan with full
        # recovery armed, verify the result against a fault-free run, and
        # export the recovery trace; exits non-zero on mismatch
    python -m repro bench lbm --json --devices 4
        # run a miniature in serial and parallel execution modes (each
        # with fused dispatch plus an unfused comparison leg), print a
        # comparison, and (with --json) write BENCH_lbm.json; --tripwire R
        # exits non-zero if parallel wall-clock exceeds R x serial;
        # --no-fuse skips the fused legs entirely; --fuse-gate S exits
        # non-zero unless fused serial dispatch is at least S x faster
        # than unfused
    python -m repro sanitize lbm --devices 4 --occ standard
        # replay a miniature under the graph race sanitizer (vector-clock
        # happens-before checking of the compiled schedule) and report
        # races / stale halo reads / event-wiring defects; --mutate also
        # grades the detector against injected schedule mutants, and
        # -o writes the violation report as JSON; exits non-zero on any
        # violation or escaped mutant
    python -m repro tune lbm --machine mixed_pcie --devices 4 -o TUNE_lbm.json
        # cost-model-driven autotuner: search OCC level x execution mode
        # x partition weights for one workload on one machine model,
        # scored by DES replay of each candidate's recorded command
        # stream; prints the candidate table and decision, -o writes the
        # TunePlan as JSON
    python -m repro report lbm --devices 4 --format html -o report.html
        # performance observatory dashboard: run an instrumented
        # miniature, then render latency histograms (p50/p90/p99), the
        # exact DES critical path with its {kernel, copy, wait,
        # dispatch} makespan attribution, per-device busy/blocked/idle
        # utilization, and the measured-wall vs modeled-makespan gap
        # (Python dispatch overhead); --format text|json|html
    python -m repro report --compare BENCH_old.json BENCH_new.json
        # bench regression check between two BENCH_*.json documents
        # (schema /1 or /2); warn-only by default, --strict exits
        # non-zero on any metric past --threshold
    python -m repro serve --jobs 20 --tenants 3 -o BENCH_serve.json
        # multi-tenant serving smoke: submit a seeded mix of lbm/poisson
        # jobs from several tenants through the Gateway and its
        # persistent plan cache (warm programs replayed across jobs),
        # print per-tenant p50/p90/p99 latency and cache hit/miss/evict
        # counts, and (with -o) write a BENCH_serve.json whose
        # per-tenant rows and percentile annotation feed
        # 'report --compare'; --cache-dir (or $REPRO_PLAN_CACHE)
        # persists TunePlans/estimates across server runs; exits
        # non-zero if any job fails or hits fall below --hit-gate
    python -m repro chaos lbm --events 50 --seed 2026 -o CHAOS_lbm.json
        # chaos soak: drive a miniature through the adaptive resilient
        # driver under a calibrated storm of transient faults, silent
        # corruption, multiple device losses and seeded checkpoint
        # tampering; the run must finish *bitwise identical* to its
        # fault-free reference and deliver at least --events fault
        # events, or the command exits non-zero; --format text|json|html
        # renders the chaos report through the dashboard
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"

EXPERIMENTS = {
    "fig1": ("bench_fig1_occ_workflows.py", "Fig 1: OCC workflow makespans"),
    "table1": ("bench_table1_karman.py", "Table I: Kármán LUPS vs comparator"),
    "table2": ("bench_table2_lbm_variants.py", "Table II: single-GPU LBM variants"),
    "fig7": ("bench_fig7_lbm_scaling.py", "Fig 7: LBM strong scaling"),
    "fig8top": ("bench_fig8_poisson_occ.py", "Fig 8 top: Poisson OCC configs"),
    "fig8bottom": ("bench_fig8_poisson_scaling.py", "Fig 8 bottom + framework overhead"),
    "fig9": ("bench_fig9_elastic_sparse.py", "Fig 9: dense vs sparse elasticity"),
    "ablation-layout": ("bench_ablation_layout.py", "Ablation: SoA vs AoS halos"),
    "ablation-scheduler": ("bench_ablation_scheduler.py", "Ablation: stream reuse"),
    "ablation-fusion": ("bench_ablation_fusion.py", "Ablation: container fusion"),
    "ext-multinode": ("bench_ext_multinode.py", "Extension: multi-node scaling"),
    "ext-pipelining": ("bench_ext_pipelining.py", "Extension: iteration pipelining"),
    "micro": ("bench_microbench.py", "Framework microbenchmarks"),
}


def cmd_list() -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (_file, desc) in EXPERIMENTS.items():
        print(f"  {key:<{width}}  {desc}")
    return 0


def cmd_reproduce(names: list[str]) -> int:
    if "all" in names:
        targets = [str(BENCH_DIR)]
    else:
        unknown = [n for n in names if n not in EXPERIMENTS]
        if unknown:
            print(f"unknown experiment(s): {unknown}; try 'python -m repro list'", file=sys.stderr)
            return 2
        targets = [str(BENCH_DIR / EXPERIMENTS[n][0]) for n in names]
    cmd = [sys.executable, "-m", "pytest", *targets, "--benchmark-only", "-q"]
    return subprocess.call(cmd)


def cmd_collect() -> int:
    sys.path.insert(0, str(BENCH_DIR))
    import collect_results  # noqa: PLC0415 - script module by design

    collect_results.main()
    return 0


def cmd_trace(name: str, out: str, devices: int, fuse: bool = True, mode: str = "serial") -> int:
    import contextlib

    from repro import observability as obs
    from repro.bench.traceable import build_workload
    from repro.skeleton import fusion

    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    try:
        # --no-fuse: freeze the plans without the fusion pass so the
        # trace shows raw per-step dispatch (fused runs still emit every
        # constituent span — observability routes units through the
        # per-step path — but their envelopes change the span nesting)
        with fusion.disabled() if not fuse else contextlib.nullcontext():
            obs.enable()
            workload = build_workload(name, devices=devices)
            workload.run(mode=mode)
            sim = workload.sim_trace()
            obs.disable()
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    path = obs.export_chrome_trace(
        out,
        sim_trace=sim,
        meta={"experiment": name, "workload": workload.description, "devices": devices},
    )
    m = obs.metrics()
    print(f"{name}: {workload.description} on {devices} simulated devices")
    print(f"  real spans:      {len(obs.tracer())}")
    print(f"  kernel launches: {m.total('kernel_launches'):g}")
    print(f"  halo bytes sent: {m.total('halo_bytes_sent'):g}")
    print(f"  sync waits:      {m.total('sync_waits'):g}")
    print(f"\n{m.to_markdown()}")
    print(f"\nwrote {path} — open in https://ui.perfetto.dev (real + sim:* tracks)")
    return 0


def cmd_faults(name: str, profile: str, out: str, devices: int, seed: int) -> int:
    from repro import observability as obs
    from repro.bench.faulted import run_faulted

    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    try:
        obs.enable()
        report = run_faulted(name, profile=profile, devices=devices, seed=seed)
        obs.disable()
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    path = obs.export_chrome_trace(
        out,
        meta={
            "experiment": f"faults:{name}",
            "profile": profile,
            "seed": seed,
            "devices": devices,
            "faults": report.faults,
        },
    )
    m = obs.metrics()
    print(report.summary())
    print("\nrecovery counters:")
    for counter in (
        "faults_injected",
        "retries",
        "checkpoints",
        "checkpoint_restores",
        "rollbacks",
        "devices_lost",
        "divergence_detected",
    ):
        print(f"  {counter:<20} {m.total(counter):g}")
    print(f"\n{m.to_markdown()}")
    print(f"\nwrote {path} — open in https://ui.perfetto.dev (resilience.* spans)")
    return 0 if report.ok else 1


def cmd_bench(
    name: str,
    emit_json: bool,
    devices: int,
    iters: int | None,
    out_dir: str,
    tripwire: float | None,
    fuse: bool = True,
    fuse_gate: float | None = None,
    process_gate: float | None = None,
) -> int:
    from repro.bench.harness import usable_cpu_count
    from repro.bench.parallel import run_bench, summarize, write_report

    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    if fuse_gate is not None and not fuse:
        print("--fuse-gate needs the fused legs; drop --no-fuse", file=sys.stderr)
        return 2
    try:
        report = run_bench(name, devices=devices, iters=iters, fuse=fuse)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(summarize(report))
    if emit_json:
        path = write_report(report, out_dir)
        print(f"wrote {path}")
    if tripwire is not None:
        ratio = 1.0 / report.get("speedup_parallel", 1.0)
        if ratio > tripwire:
            print(
                f"TRIPWIRE: parallel wall-clock is {ratio:.2f}x serial (limit {tripwire:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(f"tripwire ok: parallel is {ratio:.2f}x serial (limit {tripwire:.2f}x)")
    if fuse_gate is not None:
        speedup = report.get("fusion", {}).get("speedup", {}).get("serial")
        if speedup is None:
            print("FUSE-GATE: no serial fusion speedup in the report", file=sys.stderr)
            return 1
        if speedup < fuse_gate:
            print(
                f"FUSE-GATE: fused serial dispatch is only {speedup:.2f}x unfused "
                f"(required {fuse_gate:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(f"fuse-gate ok: fused serial is {speedup:.2f}x unfused (required {fuse_gate:.2f}x)")
    if process_gate is not None:
        # the gate only makes sense where process mode can actually win:
        # with the legs skipped (fallback armed / no shared memory) or a
        # single usable core, record why and pass rather than assert a
        # speedup the machine cannot deliver
        if "process_skipped" in report:
            print(f"process-gate skipped: {report['process_skipped']}")
        elif usable_cpu_count() < 2:
            print(f"process-gate skipped: only {usable_cpu_count()} usable core(s)")
        else:
            speedup = report.get("speedup_process")
            if speedup is None:
                print("PROCESS-GATE: no process speedup in the report", file=sys.stderr)
                return 1
            if speedup < process_gate:
                print(
                    f"PROCESS-GATE: process replay is only {speedup:.2f}x serial "
                    f"(required {process_gate:.2f}x)",
                    file=sys.stderr,
                )
                return 1
            print(f"process-gate ok: process is {speedup:.2f}x serial (required {process_gate:.2f}x)")
    return 0


def cmd_sanitize(
    name: str,
    devices: int,
    occ_text: str,
    mode: str,
    mutate: bool,
    out: str | None,
    fuse: bool = True,
) -> int:
    import contextlib
    import json

    from repro import observability as obs
    from repro.sanitizer import mutation_matrix, sanitize_workload
    from repro.skeleton import Occ, fusion

    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    try:
        occ = Occ.parse(occ_text)
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    obs.enable()
    modes = ("serial", "parallel", "process") if mode == "all" else ("serial", "parallel") if mode == "both" else (mode,)
    reports = []
    try:
        # --no-fuse sanitizes the raw per-step plans; either way the
        # sanitizer sees per-constituent commands (fused replay routes
        # units through the per-step path whenever SAN is active)
        with fusion.disabled() if not fuse else contextlib.nullcontext():
            for m in modes:
                reports.append(sanitize_workload(name, devices=devices, occ=occ, mode=m))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    finally:
        obs.disable()

    ok = True
    for rep in reports:
        verdict = "clean" if rep.ok else f"{len(rep.violations)} violation(s)"
        print(
            f"{name} ({devices} devices, occ={occ.value}, mode={rep.mode}): "
            f"{rep.commands} compiled commands, {rep.log_entries} log entries — {verdict}"
        )
        for sk, v in rep.violations:
            print(f"  {sk}: {v}")
        ok = ok and rep.ok
    counted = obs.metrics().total("sanitizer_violations")
    print(f"sanitizer_violations counter: {counted:g}")

    doc: dict = {"runs": [rep.to_json() for rep in reports]}
    if mutate:
        with fusion.disabled() if not fuse else contextlib.nullcontext():
            matrix = mutation_matrix(workloads=(name,), devices=(devices,), occs=(occ,))
        doc["mutation"] = matrix.to_json()
        print(f"mutation matrix: {matrix.killed}/{matrix.total} mutants killed ({matrix.kinds})")
        for row in matrix.escaped:
            print(f"  ESCAPED {row.kind} {row.mutant} on {row.skeleton}")
        ok = ok and matrix.total > 0 and not matrix.escaped
    if out:
        pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")
    return 0 if ok else 1


TUNE_MACHINES = ("dgx_a100", "pcie_a100", "pcie_gv100", "mixed_pcie", "multi_node_a100")


def _build_machine(machine_name: str, devices: int):
    from repro.sim import machine as machines

    if machine_name == "multi_node_a100":
        # the cluster preset takes (nodes, gpus_per_node)
        return machines.multi_node_a100(2, max(1, devices // 2))
    return getattr(machines, machine_name)(devices)


def cmd_tune(name: str, machine_name: str, devices: int, out: str | None) -> int:
    from repro.tuner import tune_workload

    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    machine = _build_machine(machine_name, devices)
    try:
        plan = tune_workload(name, machine, devices=devices)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(f"{name} on {machine.name} ({devices} devices): {len(plan.candidates)} candidates")
    print(f"  shares: {'  '.join(f'{s:.3f}' for s in plan.shares)}")
    width = max(len(c.occ) for c in plan.candidates)
    for c in sorted(plan.candidates, key=lambda c: c.makespan):
        marks = " <- best" if c is plan.best else (" <- baseline" if c is plan.baseline else "")
        print(f"  {c.occ:<{width}}  {c.mode:<8}  {c.weights_label:<7}  {c.makespan * 1e3:8.3f} ms{marks}")
    print(
        f"decision: occ={plan.best.occ} mode={plan.best.mode} weights={plan.best.weights_label} "
        f"— {100 * plan.improvement:.1f}% below the uniform standard-OCC serial baseline"
    )
    if out:
        plan.save(out)
        print(f"wrote {out}")
    return 0


def cmd_report(
    name: str | None,
    devices: int,
    mode: str,
    fmt: str,
    out: str | None,
    compare: tuple[str, str] | None,
    threshold: float,
    strict: bool,
    flight_out: str | None,
) -> int:
    import json

    if compare is not None:
        from repro.bench.regress import check_regression, render

        try:
            findings, ok = check_regression(compare[0], compare[1], threshold)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot compare: {exc}", file=sys.stderr)
            return 2
        print(render(findings, threshold))
        if not ok:
            # soft gate by default: miniature wall-clocks on shared CI
            # hosts are noisy, so regressions warn unless --strict
            print("WARNING: regression(s) detected" + ("" if strict else " (soft gate: exit 0)"))
            return 1 if strict else 0
        return 0

    from repro.bench.dashboard import build_report, to_html, to_text
    from repro.observability import flight

    if name is None:
        print("report needs an experiment key (or --compare OLD NEW)", file=sys.stderr)
        return 2
    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2
    try:
        report = build_report(name, devices=devices, mode=mode)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if fmt == "json":
        rendered = json.dumps(report, indent=2) + "\n"
    elif fmt == "html":
        rendered = to_html(report)
    else:
        rendered = to_text(report) + "\n"
    if out:
        pathlib.Path(out).write_text(rendered)
        print(f"wrote {out}")
    else:
        print(rendered, end="")
    if flight_out:
        # CI artifact: a flight-recorder snapshot from the instrumented
        # run, same shape as a crash dump but captured on a healthy run
        pathlib.Path(flight_out).write_text(
            json.dumps({"schema": "repro-flight/1", "reason": "report_sample", "tracks": flight.FLIGHT.snapshot()}, indent=2)
            + "\n"
        )
        print(f"wrote {flight_out}")
    return 0


def cmd_chaos(
    name: str,
    events: int,
    seed: int,
    devices: int,
    losses: int,
    fmt: str,
    out: str | None,
    flight_out: str | None,
    mode: str = "serial",
) -> int:
    import json

    from repro import observability as obs
    from repro.bench.chaos import run_chaos
    from repro.bench.dashboard import chaos_to_html, chaos_to_text
    from repro.observability import flight

    obs.enable()
    try:
        report = run_chaos(name, events=events, seed=seed, devices=devices, losses=losses, mode=mode)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    finally:
        obs.disable()
    doc = report.to_json()
    print(report.summary())
    if out:
        if fmt == "html":
            pathlib.Path(out).write_text(chaos_to_html(doc))
        elif fmt == "text":
            pathlib.Path(out).write_text(chaos_to_text(doc) + "\n")
        else:
            pathlib.Path(out).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {out}")
    if flight_out:
        # the driver only dumps FLIGHT_*.json on terminal failure; a
        # surviving soak still uploads its ring snapshot as a CI artifact
        pathlib.Path(flight_out).write_text(
            json.dumps(
                {
                    "schema": "repro-flight/1",
                    "reason": "chaos_sample",
                    "context": {"workload": name, "seed": seed, "ok": report.ok},
                    "tracks": flight.FLIGHT.snapshot(),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {flight_out}")
    return 0 if report.ok else 1


def cmd_serve(
    jobs: int,
    tenants: int,
    devices: int,
    workers: int,
    seed: int,
    mode: str,
    cache_dir: str | None,
    hit_gate: int,
    out: str | None,
) -> int:
    import random

    from repro import observability as obs
    from repro.bench.harness import write_bench_json
    from repro.serving import Gateway, JobSpec, PlanCache

    if jobs < 1 or tenants < 1:
        print("--jobs and --tenants must be >= 1", file=sys.stderr)
        return 2
    if devices < 1:
        print(f"--devices must be >= 1, got {devices}", file=sys.stderr)
        return 2

    # a deterministic mixed workload: the same seed always produces the
    # same (tenant, spec) stream, so CI runs are reproducible
    specs = [
        JobSpec.make("lbm", (8, 6, 6), steps=3, devices=devices, mode=mode, omega=1.1),
        JobSpec.make("poisson", (8, 6, 6), steps=4, devices=devices, mode=mode),
    ]
    rng = random.Random(seed)
    tenant_names = [f"tenant{i}" for i in range(tenants)]
    stream = [(rng.choice(tenant_names), rng.choice(specs)) for _ in range(jobs)]

    obs.enable()
    cache = PlanCache(root=cache_dir)
    failed = 0
    per_tenant: dict[str, dict] = {t: {"jobs": 0, "wall": 0.0, "hits": 0} for t in tenant_names}
    try:
        with Gateway(cache=cache, workers=workers) as gw:
            handles = [(t, gw.submit(t, spec)) for t, spec in stream]
            for tenant, job in handles:
                try:
                    r = job.result(timeout=600)
                except Exception as exc:  # noqa: BLE001 - reported, gates the exit code
                    failed += 1
                    print(f"  FAILED {tenant} {job.spec.experiment}: {exc}", file=sys.stderr)
                    continue
                row = per_tenant[tenant]
                row["jobs"] += 1
                row["wall"] += r.seconds
                row["hits"] += int(r.cache_hit)
            stats = gw.stats()
        summaries = obs.metrics().histogram_summaries("serve_job_seconds")
    finally:
        obs.disable()

    cache_stats = stats["cache"]
    print(f"served {stats['done']} job(s) from {tenants} tenant(s) ({failed} failed)")
    print(
        f"plan cache: {cache_stats['hits']} hit(s), {cache_stats['misses']} miss(es), "
        f"{cache_stats['evictions']} eviction(s), root={cache_stats['root']}"
    )
    print(f"batch joins: {stats['batch_joins']}")
    print(f"\n{'tenant':<10} {'jobs':>5} {'hits':>5} {'p50 ms':>9} {'p90 ms':>9} {'p99 ms':>9}")
    for s in sorted(summaries, key=lambda s: s["labels"].get("tenant", "")):
        tenant = s["labels"].get("tenant", "?")
        row = per_tenant.get(tenant, {"jobs": 0, "hits": 0})
        print(
            f"{tenant:<10} {row['jobs']:>5} {row['hits']:>5} "
            f"{1e3 * s['p50']:>9.2f} {1e3 * s['p90']:>9.2f} {1e3 * s['p99']:>9.2f}"
        )

    if out:
        results = [
            {
                "label": f"serve-{t}",
                "mode": mode,
                "wall_clock_s": row["wall"],
                "jobs": row["jobs"],
                "cache_hits": row["hits"],
            }
            for t, row in sorted(per_tenant.items())
            if row["jobs"]
        ]
        path = write_bench_json(
            out,
            "serve",
            {
                "jobs": jobs,
                "tenants": tenants,
                "devices": devices,
                "workers": workers,
                "seed": seed,
                "mode": mode,
                "cache": cache_stats,
            },
            results,
            percentiles={"serve_job_seconds": summaries},
        )
        print(f"wrote {path}")

    if failed:
        print(f"SERVE: {failed} job(s) failed", file=sys.stderr)
        return 1
    if cache_stats["hits"] < hit_gate:
        print(
            f"SERVE: only {cache_stats['hits']} plan-cache hit(s); required >= {hit_gate}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_info() -> int:
    import numpy

    import repro
    from repro.sim import cpu_host, dgx_a100, mixed_pcie, multi_node_a100, pcie_a100, pcie_gv100

    print(f"repro {repro.__version__} — Neon (IPDPS 2022) reproduction")
    print(f"python {sys.version.split()[0]}, numpy {numpy.__version__}")
    print("\nmachine models:")
    for m in (dgx_a100(8), pcie_a100(8), pcie_gv100(8), mixed_pcie(8), multi_node_a100(2, 4), cpu_host()):
        link = m.topology.link(0, 1) if m.num_devices > 1 else m.topology.link(0, -1)
        print(
            f"  {m.name:<22} mem {m.device.mem_bandwidth / 1e12:5.2f} TB/s   "
            f"link {link.bandwidth / 1e9:6.1f} GB/s   latency {link.latency * 1e6:4.1f} us"
        )
    print("\nexperiments: python -m repro list")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="show all reproducible experiments")
    rep = sub.add_parser("reproduce", help="run one or more experiments")
    rep.add_argument("names", nargs="+", help="experiment keys, or 'all'")
    sub.add_parser("collect", help="print measured result tables as markdown")
    sub.add_parser("info", help="package and machine-model summary")
    tr = sub.add_parser("trace", help="run an instrumented miniature of an experiment")
    tr.add_argument("name", help="experiment key (e.g. fig1); see 'list'")
    tr.add_argument("-o", "--output", default="trace.json", help="Chrome trace JSON output path")
    tr.add_argument("--devices", type=int, default=2, help="simulated device count (default 2)")
    tr.add_argument("--no-fuse", action="store_true", help="trace raw per-step dispatch (no fusion pass)")
    tr.add_argument(
        "--mode",
        default="serial",
        choices=["serial", "parallel", "process"],
        help="execution mode for the traced run (default serial)",
    )
    fl = sub.add_parser("faults", help="run a fault-matrix miniature with recovery armed")
    fl.add_argument("name", help="fault-matrix workload: cg or lbm")
    fl.add_argument(
        "--profile",
        default="transient",
        choices=["transient", "transient+loss", "corruption"],
        help="seeded fault profile (default transient)",
    )
    fl.add_argument("-o", "--output", default="recovery.json", help="Chrome trace JSON output path")
    fl.add_argument("--devices", type=int, default=3, help="simulated device count (default 3)")
    fl.add_argument("--seed", type=int, default=1234, help="FaultPlan seed (default 1234)")
    bn = sub.add_parser("bench", help="serial-vs-parallel miniature benchmark")
    bn.add_argument("name", help="bench workload: lbm or poisson")
    bn.add_argument("--json", action="store_true", help="write BENCH_<name>.json")
    bn.add_argument("--devices", type=int, default=4, help="simulated device count (default 4)")
    bn.add_argument("--iters", type=int, default=None, help="timed iterations (default per bench)")
    bn.add_argument("-o", "--out-dir", default=".", help="directory for BENCH_*.json (default .)")
    bn.add_argument(
        "--tripwire",
        type=float,
        default=None,
        help="fail (exit 1) if parallel wall-clock exceeds this multiple of serial",
    )
    bn.add_argument("--no-fuse", action="store_true", help="benchmark only unfused per-step dispatch")
    bn.add_argument(
        "--fuse-gate",
        type=float,
        default=None,
        help="fail (exit 1) unless fused serial dispatch beats unfused by this factor",
    )
    bn.add_argument(
        "--process-gate",
        type=float,
        default=None,
        help=(
            "fail (exit 1) unless process replay beats serial by this factor; "
            "passes with a note when process legs were skipped or <2 cores are usable"
        ),
    )
    sn = sub.add_parser("sanitize", help="race-sanitize a miniature's compiled schedule")
    sn.add_argument("name", help="workload: lbm, poisson, karman or elasticity")
    sn.add_argument("--devices", type=int, default=4, help="simulated device count (default 4)")
    sn.add_argument("--occ", default="standard", help="OCC level (none/standard/extended/two-way-extended)")
    sn.add_argument(
        "--mode",
        default="both",
        choices=["serial", "parallel", "process", "both", "all"],
        help="replay mode(s) to sanitize (default both; 'all' adds process)",
    )
    sn.add_argument("--mutate", action="store_true", help="also grade the detector against schedule mutants")
    sn.add_argument("--no-fuse", action="store_true", help="sanitize the raw per-step plans (no fusion pass)")
    sn.add_argument("-o", "--output", default=None, help="write the violation/mutation report as JSON")
    tn = sub.add_parser("tune", help="autotune one workload on one machine model")
    tn.add_argument("name", help="workload: lbm, karman, poisson or elasticity")
    tn.add_argument(
        "--machine",
        default="pcie_a100",
        choices=list(TUNE_MACHINES),
        help="machine model to tune for (default pcie_a100)",
    )
    tn.add_argument("--devices", type=int, default=4, help="simulated device count (default 4)")
    tn.add_argument("-o", "--output", default=None, help="write the TunePlan as JSON (e.g. TUNE_lbm.json)")
    rp = sub.add_parser("report", help="performance observatory dashboard / bench regression check")
    rp.add_argument("name", nargs="?", default=None, help="experiment key (e.g. lbm); see 'list'")
    rp.add_argument("--devices", type=int, default=4, help="simulated device count (default 4)")
    rp.add_argument(
        "--mode",
        default="serial",
        choices=["serial", "parallel", "process"],
        help="replay mode for the modeled timeline (default serial)",
    )
    rp.add_argument("--format", default="text", choices=["text", "json", "html"], help="output format")
    rp.add_argument("-o", "--output", default=None, help="write the dashboard here instead of stdout")
    rp.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two BENCH_*.json documents instead of building a dashboard",
    )
    rp.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative change that counts as a regression in --compare (default 0.25)",
    )
    rp.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero on regressions (default: warn only — CI wall-clocks are noisy)",
    )
    rp.add_argument(
        "--flight-out",
        default=None,
        help="also write a flight-recorder snapshot JSON (CI artifact)",
    )
    ch = sub.add_parser("chaos", help="chaos soak: composite fault storm with a bitwise bar")
    ch.add_argument("name", help="chaos workload: lbm or poisson")
    ch.add_argument("--events", type=int, default=50, help="minimum fault events to deliver (default 50)")
    ch.add_argument("--seed", type=int, default=2026, help="storm seed (default 2026)")
    ch.add_argument("--devices", type=int, default=4, help="simulated device count (default 4)")
    ch.add_argument("--losses", type=int, default=2, help="permanent device losses to schedule (default 2)")
    ch.add_argument("--format", default="json", choices=["text", "json", "html"], help="-o output format")
    ch.add_argument("-o", "--output", default=None, help="write the chaos report (e.g. CHAOS_lbm.json)")
    ch.add_argument(
        "--flight-out",
        default=None,
        help="also write a flight-recorder ring snapshot JSON (CI artifact)",
    )
    ch.add_argument(
        "--mode",
        default="serial",
        choices=["serial", "parallel", "process"],
        help="execution mode for the soak (armed resilience degrades to serial; default serial)",
    )
    sv = sub.add_parser("serve", help="multi-tenant gateway smoke: mixed jobs through the plan cache")
    sv.add_argument("--jobs", type=int, default=20, help="total jobs to submit (default 20)")
    sv.add_argument("--tenants", type=int, default=3, help="tenant count (default 3)")
    sv.add_argument("--devices", type=int, default=2, help="simulated device count (default 2)")
    sv.add_argument("--workers", type=int, default=2, help="gateway worker threads (default 2)")
    sv.add_argument("--seed", type=int, default=2026, help="job-mix seed (default 2026)")
    sv.add_argument(
        "--mode",
        default="serial",
        choices=["serial", "parallel", "process"],
        help="execution mode for served jobs (default serial)",
    )
    sv.add_argument(
        "--cache-dir",
        default=None,
        help="persistent plan-cache root (default: $REPRO_PLAN_CACHE, else memory-only)",
    )
    sv.add_argument(
        "--hit-gate",
        type=int,
        default=1,
        help="fail (exit 1) unless the plan cache scores at least this many hits (default 1)",
    )
    sv.add_argument("-o", "--output", default=None, help="write BENCH_serve.json here (per-tenant rows)")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "reproduce":
        return cmd_reproduce(args.names)
    if args.command == "collect":
        return cmd_collect()
    if args.command == "trace":
        return cmd_trace(args.name, args.output, args.devices, fuse=not args.no_fuse, mode=args.mode)
    if args.command == "faults":
        return cmd_faults(args.name, args.profile, args.output, args.devices, args.seed)
    if args.command == "bench":
        return cmd_bench(
            args.name,
            args.json,
            args.devices,
            args.iters,
            args.out_dir,
            args.tripwire,
            fuse=not args.no_fuse,
            fuse_gate=args.fuse_gate,
            process_gate=args.process_gate,
        )
    if args.command == "sanitize":
        return cmd_sanitize(
            args.name,
            args.devices,
            args.occ,
            args.mode,
            args.mutate,
            args.output,
            fuse=not args.no_fuse,
        )
    if args.command == "tune":
        return cmd_tune(args.name, args.machine, args.devices, args.output)
    if args.command == "report":
        return cmd_report(
            args.name,
            args.devices,
            args.mode,
            args.format,
            args.output,
            tuple(args.compare) if args.compare else None,
            args.threshold,
            args.strict,
            args.flight_out,
        )
    if args.command == "serve":
        return cmd_serve(
            args.jobs,
            args.tenants,
            args.devices,
            args.workers,
            args.seed,
            args.mode,
            args.cache_dir,
            args.hit_gate,
            args.output,
        )
    if args.command == "chaos":
        return cmd_chaos(
            args.name,
            args.events,
            args.seed,
            args.devices,
            args.losses,
            args.format,
            args.output,
            args.flight_out,
            mode=args.mode,
        )
    return cmd_info()


if __name__ == "__main__":
    raise SystemExit(main())
