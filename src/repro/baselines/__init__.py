"""Hand-written single-device comparators standing in for the paper's
cuboltz, stlbm (AA / twoPop / Swap), Taichi, and CUDA+cuBLAS baselines."""

from .cavity_native import NativeCavity
from .elasticity_native import NativeElasticity
from .karman_native import NativeKarman
from .lbm_native import NativeLBM, aa_even_step, aa_odd_step, swap_step, twopop_step
from .poisson_native import NativeCGResult, NativePoissonCG, apply_neg_laplacian
from .reductions import slice_dot, slice_sums

__all__ = [
    "NativeCGResult",
    "NativeCavity",
    "NativeElasticity",
    "NativeKarman",
    "NativeLBM",
    "NativePoissonCG",
    "aa_even_step",
    "aa_odd_step",
    "apply_neg_laplacian",
    "slice_dot",
    "slice_sums",
    "swap_step",
    "twopop_step",
]
