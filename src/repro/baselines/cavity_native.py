"""Raw-NumPy D3Q19 lid-driven cavity: the cuboltz-role baseline on the
*same workload* the framework solver runs.

Algorithm-identical to :class:`repro.solvers.lbm.d3q19.LidDrivenCavity`
(pull scheme, sentinel halfway bounce-back, moving-lid correction) but
written directly against padded arrays — the two must agree to machine
precision, so wall-clock differences isolate framework overhead, exactly
the comparison the paper's Table II makes against cuboltz.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.lbm.d3q19 import RHO0
from repro.solvers.lbm.lattice import D3Q19, LatticeSpec


def _shift(a: np.ndarray, off: tuple[int, int, int], fill: float) -> np.ndarray:
    """Value at x + off, non-periodic, ``fill`` outside the box."""
    out = np.full_like(a, fill)
    src, dst = [], []
    for d, size in zip(off, a.shape):
        src.append(slice(max(d, 0), size + min(d, 0)))
        dst.append(slice(max(-d, 0), size + min(-d, 0)))
    out[tuple(dst)] = a[tuple(src)]
    return out


class NativeCavity:
    """Hand-written fused twoPop lid-driven cavity (one device)."""

    SENTINEL = -1.0

    def __init__(
        self,
        shape: tuple[int, int, int],
        omega: float = 1.0,
        lid_velocity: float = 0.05,
        lattice: LatticeSpec = D3Q19,
    ):
        self.shape = shape
        self.omega = omega
        self.lid_velocity = lid_velocity
        self.lattice = lattice
        rho = np.ones(shape)
        self.f = lattice.equilibrium(rho, np.zeros((3, *shape)))

    def step(self, iterations: int = 1) -> None:
        lat = self.lattice
        nz = self.shape[0]
        z = np.arange(nz)[:, None, None]
        for _ in range(iterations):
            f_prev = self.f
            fin = np.empty_like(f_prev)
            for q in range(lat.q):
                e = lat.velocities[q]
                if not e.any():
                    fin[q] = f_prev[q]
                    continue
                off = (int(-e[0]), int(-e[1]), int(-e[2]))
                g = _shift(f_prev[q], off, self.SENTINEL)
                bb = f_prev[lat.opposite[q]]
                if e[0] < 0 and self.lid_velocity != 0.0:
                    corr = 6.0 * lat.weights[q] * RHO0 * (e[2] * self.lid_velocity)
                    from_lid = np.broadcast_to(z + off[0] >= nz, g.shape)
                    bb = bb + np.where(from_lid, corr, 0.0)
                fin[q] = np.where(g <= self.SENTINEL + 0.5, bb, g)
            rho, u = lat.moments(fin)
            feq = lat.equilibrium(rho, u)
            self.f = fin + self.omega * (feq - fin)

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lattice.moments(self.f)

    def total_mass(self) -> float:
        return float(self.f.sum())

    @property
    def num_cells(self) -> int:
        return self.shape[0] * self.shape[1] * self.shape[2]
