"""Raw-NumPy matrix-free FEM elasticity CG: the hand-written comparator.

Single device, padded arrays as ghost layers, the same assembled
27-point block stencil the framework solver applies (the element
stiffness assembly is shared math, imported from the solver module; what
this baseline deliberately does *not* share is any of the framework —
grids, fields, halos, skeletons, or OCC).  Arithmetic is ordered
operation-for-operation like the skeleton containers, and the dots use
the canonical per-slice summation tree, so a correct framework run of
:class:`repro.solvers.elasticity.ElasticitySolver` matches this baseline
bitwise for every partition, OCC level, and execution mode.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.elasticity import assembled_node_blocks

from .poisson_native import NativeCGResult
from .reductions import slice_dot


class NativeElasticity:
    """Solid cube, fixed z=0 plane, +z pressure on the top plane."""

    def __init__(
        self,
        grid_size: int,
        E: float = 1.0,
        nu: float = 0.3,
        pressure: float = 0.01,
        mask: np.ndarray | None = None,
    ):
        n = int(grid_size)
        self.n = n
        blocks = assembled_node_blocks(E, nu)
        # same offset order (and the same zero-block pruning) as
        # make_elastic_operator: accumulation order is part of the contract
        self.offsets = [off for off, blk in blocks.items() if np.any(np.abs(blk) > 1e-14)]
        self.blocks = blocks
        self.mask = np.ones((n, n, n)) if mask is None else np.asarray(mask, dtype=float)
        z = np.arange(n)[:, None, None]
        self.free = (z > 0) * self.mask  # projector: active nodes off the fixed base
        self.u = np.zeros((3, n, n, n))
        self.b = np.zeros((3, n, n, n))
        self.b[0] = np.where((z == n - 1) & (self.mask > 0.5), pressure, 0.0)

    def _apply(self, u: np.ndarray) -> np.ndarray:
        """q <- P M A (M P u) + (I - P) u, ordered like the two containers."""
        n = self.n
        mu = self.free * u  # the project container (map), per component
        mu_pad = np.zeros((3, n + 2, n + 2, n + 2))
        mu_pad[:, 1:-1, 1:-1, 1:-1] = mu  # ghost layer = outside_value 0
        acc = np.zeros((3, n, n, n))
        for off in self.offsets:
            blk = self.blocks[off]
            dz, dy, dx = off
            nbr = mu_pad[:, 1 + dz : 1 + dz + n, 1 + dy : 1 + dy + n, 1 + dx : 1 + dx + n]
            for c in range(3):
                for d in range(3):
                    if blk[c, d] != 0.0:
                        acc[c] += blk[c, d] * nbr[d]
        out = np.empty_like(u)
        for c in range(3):
            out[c] = np.where(self.free > 0.5, acc[c], u[c])
        return out

    def solve(self, max_iterations: int = 300, tolerance: float = 1e-8) -> NativeCGResult:
        q = self._apply(self.u)
        r = self.b - q
        delta = slice_dot(r, r)
        res = NativeCGResult(False, 0, [float(np.sqrt(delta))])
        if res.residual_norms[0] <= tolerance:
            res.converged = True
            return res
        p = np.zeros_like(r)
        beta = 0.0
        for it in range(1, max_iterations + 1):
            # p-update exactly as _axpby_cell: beta == 0 assigns outright
            p = 1.0 * r if beta == 0.0 else 1.0 * r + beta * p
            q = self._apply(p)
            pq = slice_dot(p, q)
            alpha = delta / pq
            self.u = alpha * p + 1.0 * self.u
            r = -alpha * q + 1.0 * r
            delta_new = slice_dot(r, r)
            res.residual_norms.append(float(np.sqrt(delta_new)))
            res.iterations = it
            if res.residual_norms[-1] <= tolerance:
                res.converged = True
                break
            beta = delta_new / delta
            delta = delta_new
        return res

    def displacement(self) -> np.ndarray:
        return self.u.copy()
