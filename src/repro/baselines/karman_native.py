"""Raw-NumPy D2Q9 Kármán vortex street: the Table I comparator.

Plays the role of the Taichi implementation in the paper's single-GPU
LUPS comparison.  Algorithmically identical to
:class:`repro.solvers.lbm.d2q9.KarmanVortexStreet` (same pull scheme,
bounce-back, inflow/outflow treatment) but written directly against
padded NumPy arrays with no framework in the loop — so the two must
produce bitwise-comparable physics while differing only in overhead.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.lbm.d2q9 import RHO0, cylinder_mask
from repro.solvers.lbm.lattice import D2Q9, LatticeSpec, omega_from_reynolds


def _shift(a: np.ndarray, off: tuple[int, int], fill: float) -> np.ndarray:
    """Value at x + off, non-periodic, ``fill`` outside the domain."""
    out = np.full_like(a, fill)
    src = []
    dst = []
    for d, size in zip(off, a.shape):
        src.append(slice(max(d, 0), size + min(d, 0)))
        dst.append(slice(max(-d, 0), size + min(-d, 0)))
    out[tuple(dst)] = a[tuple(src)]
    return out


class NativeKarman:
    """2-D channel flow past a cylinder, hand-written kernel."""

    def __init__(
        self,
        shape: tuple[int, int],
        reynolds: float = 220.0,
        inflow_velocity: float = 0.04,
        lattice: LatticeSpec = D2Q9,
    ):
        ny, nx = shape
        self.shape = shape
        self.lattice = lattice
        self.inflow_velocity = inflow_velocity
        self.cyl_center = (ny / 2.0 + 0.5, nx / 4.0)
        self.cyl_radius = max(2.0, ny / 9.0)
        self.omega = omega_from_reynolds(reynolds, inflow_velocity, 2.0 * self.cyl_radius)
        self.mask = cylinder_mask(shape, self.cyl_center, self.cyl_radius).astype(np.float64)
        u0 = np.zeros((2, *shape))
        u0[1] = inflow_velocity
        self.f = lattice.equilibrium(np.ones(shape), u0)
        self.feq_in = lattice.equilibrium(np.float64(RHO0), np.array([0.0, inflow_velocity]))

    def step(self, iterations: int = 1) -> None:
        lat = self.lattice
        ny, nx = self.shape
        x = np.arange(nx)[None, :]
        for _ in range(iterations):
            f_prev = self.f
            fin = np.empty_like(f_prev)
            for q in range(lat.q):
                e = lat.velocities[q]
                if not e.any():
                    fin[q] = f_prev[q]
                    continue
                off = (int(-e[0]), int(-e[1]))
                g = _shift(f_prev[q], off, 0.0)
                m = _shift(self.mask, off, 0.0)
                fin[q] = np.where(m > 0.5, g, f_prev[lat.opposite[q]])
            rho, u = lat.moments(fin)
            feq = lat.equilibrium(rho, u)
            out = fin + self.omega * (feq - fin)

            fluid = self.mask > 0.5
            inflow = x == 0
            outflow = x == nx - 1
            for q in range(lat.q):
                col = np.where(inflow, self.feq_in[q], out[q])
                col = np.where(outflow, _shift(f_prev[q], (0, -1), 0.0), col)
                out[q] = np.where(fluid, col, lat.weights[q] * RHO0)
            self.f = out

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lattice.moments(self.f)

    @property
    def num_cells(self) -> int:
        return self.shape[0] * self.shape[1]
