"""Hand-written single-device LBM kernels: the paper's Table II comparators.

Three algorithmic variants from the stlbm project plus the fused
"cuboltz" style kernel, all raw NumPy on one device, periodic box:

* ``twopop`` — two buffers, fused gather(stream) + collide, the variant
  Neon implements (and the cuboltz native benchmark's structure);
* ``swap``  — separate streaming pass then collide pass (two full
  memory sweeps per step, hence slower);
* ``aa``    — Bailey's A-A pattern on a single buffer: even steps
  collide in place writing each post-collision population into the
  opposite slot, odd steps gather from the opposite slots of upstream
  neighbours and scatter downstream.

Physics checks use a Taylor–Green vortex whose analytic viscous decay
pins the implementations to the BGK viscosity ``nu = (1/omega - 1/2)/3``.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.lbm.lattice import D3Q19, LatticeSpec


def _roll(a: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Value at x - e (periodic), i.e. the pull-scheme gather."""
    out = a
    for axis, shift in enumerate(e):
        if shift:
            out = np.roll(out, shift, axis=axis)
    return out


def collide(f: np.ndarray, omega: float, lattice: LatticeSpec) -> np.ndarray:
    rho, u = lattice.moments(f)
    feq = lattice.equilibrium(rho, u)
    return f + omega * (feq - f)


def twopop_step(f: np.ndarray, omega: float, lattice: LatticeSpec = D3Q19) -> np.ndarray:
    """Fused stream+collide into a fresh buffer (cuboltz / Neon structure).

    The macroscopic moments accumulate *during* the gather loop, so the
    streamed populations are written once and re-read once — one full
    sweep less than the swap variant's separate passes.
    """
    out = np.empty_like(f)
    shape = f.shape[1:]
    rho = np.zeros(shape)
    u = np.zeros((lattice.ndim, *shape))
    for q in range(lattice.q):
        g = _roll(f[q], lattice.velocities[q])
        out[q] = g
        rho += g
        for d in range(lattice.ndim):
            if lattice.velocities[q, d]:
                u[d] += lattice.velocities[q, d] * g
    u /= rho
    feq = lattice.equilibrium(rho, u)
    out += omega * (feq - out)
    return out


def swap_step(f: np.ndarray, omega: float, lattice: LatticeSpec = D3Q19) -> np.ndarray:
    """Two separate passes: stream sweep, then collide sweep."""
    streamed = np.empty_like(f)
    for q in range(lattice.q):  # pass 1: pure streaming
        streamed[q] = _roll(f[q], lattice.velocities[q])
    return collide(streamed, omega, lattice)  # pass 2: pure collision


def aa_even_step(f: np.ndarray, omega: float, lattice: LatticeSpec = D3Q19) -> np.ndarray:
    """A-A even step: collide in place, writing into the opposite slots."""
    post = collide(f, omega, lattice)
    out = np.empty_like(f)
    for q in range(lattice.q):
        out[lattice.opposite[q]] = post[q]
    return out


def aa_odd_step(f: np.ndarray, omega: float, lattice: LatticeSpec = D3Q19) -> np.ndarray:
    """A-A odd step: gather from upstream opposite slots, collide,
    scatter downstream into natural slots."""
    fin = np.empty_like(f)
    for q in range(lattice.q):
        fin[q] = _roll(f[lattice.opposite[q]], lattice.velocities[q])
    post = collide(fin, omega, lattice)
    out = np.empty_like(f)
    for q in range(lattice.q):
        e = lattice.velocities[q]
        out[q] = _roll(post[q], e)  # push to x + e_q == pull with the same shift
    return out


class NativeLBM:
    """Driver for the three variants on a periodic box."""

    VARIANTS = ("twopop", "swap", "aa")

    def __init__(self, shape: tuple[int, ...], omega: float = 1.0, variant: str = "twopop", lattice: LatticeSpec = D3Q19):
        if variant not in self.VARIANTS:
            raise ValueError(f"unknown variant '{variant}'; pick from {self.VARIANTS}")
        self.lattice = lattice
        self.omega = omega
        self.variant = variant
        self.t = 0
        rho = np.ones(shape)
        u = np.zeros((lattice.ndim, *shape))
        self.f = lattice.equilibrium(rho, u)

    def initialize_taylor_green(self, amplitude: float = 0.02) -> None:
        """Periodic decaying vortex with a known viscous decay rate."""
        shape = self.f.shape[1:]
        k = 2.0 * np.pi / shape[-1]
        axes = np.meshgrid(*[np.arange(s) for s in shape], indexing="ij")
        u = np.zeros((self.lattice.ndim, *shape))
        # a 2-D vortex pattern in the last two axes (uniform along others)
        a2, a1 = axes[-1], axes[-2]
        u[-1] = amplitude * np.sin(k * a1) * np.cos(k * a2)
        u[-2] = -amplitude * np.cos(k * a1) * np.sin(k * a2)
        self.f = self.lattice.equilibrium(np.ones(shape), u)
        self.t = 0

    def step(self, iterations: int = 1) -> None:
        for _ in range(iterations):
            if self.variant == "twopop":
                self.f = twopop_step(self.f, self.omega, self.lattice)
            elif self.variant == "swap":
                self.f = swap_step(self.f, self.omega, self.lattice)
            else:
                fn = aa_even_step if self.t % 2 == 0 else aa_odd_step
                self.f = fn(self.f, self.omega, self.lattice)
            self.t += 1

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        if self.variant == "aa" and self.t % 2 == 1:
            raise RuntimeError("A-A storage is only in natural layout at even steps")
        return self.lattice.moments(self.f)

    def kinetic_energy(self) -> float:
        rho, u = self.macroscopic()
        return float(0.5 * np.sum(rho * (u**2).sum(axis=0)))

    @property
    def viscosity(self) -> float:
        return (1.0 / self.omega - 0.5) / 3.0

    @property
    def num_cells(self) -> int:
        n = 1
        for s in self.f.shape[1:]:
            n *= s
        return n
