"""Raw-NumPy matrix-free CG Poisson solver: the paper's CUDA+cuBLAS baseline.

Single device, hand-fused 7-point stencil on a padded array, BLAS-style
vector updates — the hardwired implementation Neon's framework overhead
is measured against in Fig 8 (top).  No out-of-bound checks are needed
because the padding plays the ghost layer, which is exactly the paper's
explanation of where Neon's small overhead comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .reductions import slice_dot


def apply_neg_laplacian(u_padded: np.ndarray, out_padded: np.ndarray) -> None:
    """out <- (-laplace_h) u on the interior of padded (ghosted) arrays."""
    c = u_padded[1:-1, 1:-1, 1:-1]
    out_padded[1:-1, 1:-1, 1:-1] = (
        6.0 * c
        - u_padded[:-2, 1:-1, 1:-1]
        - u_padded[2:, 1:-1, 1:-1]
        - u_padded[1:-1, :-2, 1:-1]
        - u_padded[1:-1, 2:, 1:-1]
        - u_padded[1:-1, 1:-1, :-2]
        - u_padded[1:-1, 1:-1, 2:]
    )


@dataclass
class NativeCGResult:
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)


class NativePoissonCG:
    """-laplace(u) = f with zero Dirichlet borders, plain NumPy CG."""

    def __init__(self, shape: tuple[int, int, int]):
        self.shape = shape
        self.u = np.zeros([s + 2 for s in shape])
        self.f = np.zeros(shape)

    def set_rhs(self, f: np.ndarray) -> None:
        if f.shape != self.shape:
            raise ValueError(f"rhs shape {f.shape} != {self.shape}")
        self.f = f.astype(np.float64)

    def solve(self, max_iterations: int = 500, tolerance: float = 1e-8) -> NativeCGResult:
        inner = (slice(1, -1),) * 3
        q_pad = np.zeros_like(self.u)
        p_pad = np.zeros_like(self.u)
        apply_neg_laplacian(self.u, q_pad)
        r = self.f - q_pad[inner]
        # canonical per-slice dot: bitwise identical to the framework's
        # partition-invariant reduction, so the trajectories are comparable
        delta = slice_dot(r[None], r[None])
        res = NativeCGResult(False, 0, [float(np.sqrt(delta))])
        if res.residual_norms[0] <= tolerance:
            res.converged = True
            return res
        p_pad[inner] = r
        for it in range(1, max_iterations + 1):
            apply_neg_laplacian(p_pad, q_pad)
            q = q_pad[inner]
            p = p_pad[inner]
            alpha = delta / slice_dot(p[None], q[None])
            self.u[inner] += alpha * p
            r -= alpha * q
            delta_new = slice_dot(r[None], r[None])
            res.residual_norms.append(float(np.sqrt(delta_new)))
            res.iterations = it
            if res.residual_norms[-1] <= tolerance:
                res.converged = True
                break
            p_pad[inner] = r + (delta_new / delta) * p
            delta = delta_new
        return res

    def solution(self) -> np.ndarray:
        return self.u[1:-1, 1:-1, 1:-1].copy()

    def one_iteration_work(self) -> None:
        """One CG iteration's kernels on scratch data (for timing)."""
        q_pad = np.zeros_like(self.u)
        apply_neg_laplacian(self.u, q_pad)
        q = q_pad[(slice(1, -1),) * 3]
        _ = float(np.dot(q.ravel(), q.ravel()))
        self.u[(slice(1, -1),) * 3] += 1e-16 * q
