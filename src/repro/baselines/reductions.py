"""Canonical reductions shared by the native baselines.

The framework's partition-invariant reductions (``Grid.new_dot_partial``
/ ``SliceReduceAccessor``) sum each axis-0 slice into its own slot and
combine the slots in global slice order.  The native comparators must
reduce with the *same* summation tree to stay bitwise comparable, so the
helpers here mirror that scheme exactly: one contiguous per-slice sum
(component axis first), then one ``np.sum`` over the slice vector.
"""

from __future__ import annotations

import numpy as np


def slice_sums(values: np.ndarray) -> np.ndarray:
    """Per-slice sums of a component-first array ``(card, n0, *lateral)``.

    Each slice is copied contiguous before summing, matching
    ``SliceReduceAccessor.deposit_sums`` bit for bit.
    """
    values = np.asarray(values)
    return np.array(
        [float(np.sum(np.ascontiguousarray(values[:, i]))) for i in range(values.shape[1])]
    )


def slice_dot(x: np.ndarray, y: np.ndarray) -> float:
    """<x, y> with the framework's canonical per-slice summation tree.

    ``x`` and ``y`` are component-first ``(card, n0, *lateral)`` arrays;
    pass ``arr[None]`` for scalar fields.
    """
    return float(np.sum(slice_sums(x * y)))
