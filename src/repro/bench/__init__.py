"""Benchmark harness: metrics, table formatting, result persistence.

Heavier pieces — the serial-vs-parallel miniatures
(:mod:`repro.bench.parallel`), the performance-observatory dashboard
(:mod:`repro.bench.dashboard`) and the regression checker
(:mod:`repro.bench.regress`) — are imported explicitly by their users
rather than re-exported here, so ``import repro.bench`` stays cheap.
"""

from .harness import format_table, read_bench_json, sweep, wall_time, write_bench_json
from .metrics import lups, mlups, parallel_efficiency, speedup
from .plot import ascii_plot
from .report import load_result, save_result

__all__ = [
    "ascii_plot",
    "format_table",
    "load_result",
    "lups",
    "mlups",
    "parallel_efficiency",
    "read_bench_json",
    "save_result",
    "speedup",
    "sweep",
    "wall_time",
    "write_bench_json",
]
