"""Benchmark harness: metrics, table formatting, result persistence."""

from .harness import format_table, sweep, wall_time
from .metrics import lups, mlups, parallel_efficiency, speedup
from .plot import ascii_plot
from .report import load_result, save_result

__all__ = [
    "ascii_plot",
    "format_table",
    "load_result",
    "lups",
    "mlups",
    "parallel_efficiency",
    "save_result",
    "speedup",
    "sweep",
    "wall_time",
]
