"""Chaos soak harness: a seeded long-horizon fault storm with a bitwise bar.

The fault matrix (:mod:`repro.bench.faulted`) proves each recovery path
in isolation; the chaos soak composes them.  One run drives a miniature
through the adaptive :class:`~repro.resilience.ResilientDriver` under a
storm of *every* fault class at once — transient launch/copy failures,
silent NaN/Inf corruption, multiple permanent device losses — plus an
attack the fault plan cannot express: seeded byte-flips in the newest
stored checkpoint generation, injected right before a rollback so the
recovery path itself is what gets damaged.

The storm is calibrated, not guessed: a fault-free probe run (armed with
a zero-rate plan) counts the draw opportunities of each fault kind and
the per-rank command touches, and the requested ``--events`` budget is
converted into per-draw rates and loss triggers from those counts.  The
same probe run is the *reference*: because the conformance suite pins
results bitwise across device counts, partition weights, OCC levels and
execution modes — and the CG miniature checkpoints its full Krylov
state — a chaos run that survives the storm must finish **bitwise
identical** to the fault-free run.  ``np.array_equal``, not allclose, is
the bar.

Used by ``python -m repro chaos`` and the CI chaos-soak job; the report
renders through the dashboard (:func:`repro.bench.dashboard.chaos_to_text`
/ ``chaos_to_html``).
"""

from __future__ import annotations

import functools
import json
import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import resilience as res
from repro.observability import flight as _flight
from repro.sim import mixed_pcie
from repro.system import Backend

from .faulted import _CavityApp, _ExactPoissonCGApp

CHAOS_SCHEMA = "repro-chaos/1"

#: fraction of the requested event budget aimed at each drawn fault kind
_STORM_SPLIT = {"launch": 0.40, "copy": 0.25, "corrupt": 0.35}

#: per-draw rate ceiling: past this, retries stop converging and the
#: storm degenerates into one endless replay instead of a soak
_MAX_RATE = 0.2

#: rates aim past the budget: realized injections scatter around the
#: expectation, and the soak's contract is a *minimum* event count
_OVERSHOOT = 1.8


@dataclass(frozen=True)
class ChaosWorkload:
    name: str
    description: str
    factory: Callable[..., object]
    #: tuner workload key driving tuned degradation / online retuning
    experiment: str
    steps: int


CHAOS_WORKLOADS = {
    "lbm": ChaosWorkload(
        "lbm",
        "lid-driven-cavity D3Q19 LBM miniature (full-state checkpoints)",
        _CavityApp,
        experiment="lbm",
        steps=20,
    ),
    "poisson": ChaosWorkload(
        "poisson",
        "Poisson conjugate-gradient miniature (exact Krylov-state checkpoints)",
        _ExactPoissonCGApp,
        experiment="poisson",
        steps=48,
    ),
}


def _backend(devices: int) -> Backend:
    # the heterogeneous preset: tuned degradation has real shares to win
    return Backend.sim_gpus(devices, machine=mixed_pcie(devices))


def _probe(wl: ChaosWorkload, devices: int, seed: int, mode: str = "serial"):
    """Fault-free reference run that doubles as the storm calibrator.

    Armed with a zero-rate plan (plus never-firing loss triggers on every
    rank), the run injects nothing and computes the bitwise reference —
    while the plan's draw counters and per-rank touch counts record how
    many injection opportunities one clean run offers.  The storm's rates
    and loss triggers are derived from exactly these counts.
    """
    plan = res.FaultPlan(seed, device_loss={r: 10**9 for r in range(devices)})
    app = wl.factory(_backend(devices), mode=mode)
    with res.session(plan, res.RecoveryPolicy()):
        for i in range(wl.steps):
            app.step(i)
    reference = app.result_array()
    draws: dict[str, int] = {}
    for (kind, _site), n in plan._draws.items():
        draws[kind] = draws.get(kind, 0) + n
    return reference, draws, dict(plan._touches)


def make_chaos_plan(
    seed: int,
    events: int,
    draws: dict[str, int],
    touches: dict[int, int],
    devices: int,
    losses: int,
) -> res.FaultPlan:
    """The storm: event budget -> per-draw rates + scheduled loss triggers.

    Rates target ``_STORM_SPLIT`` of the budget against the probe's draw
    counts; replayed steps re-draw with advanced counters, so the real
    run only ever sees *more* opportunities than the probe counted.
    Losses take the top ``losses`` ranks (removing the highest rank never
    re-indexes the remaining scheduled ranks) at staggered fractions of
    each rank's touch count, so the fleet shrinks mid-run, not at the
    edges.
    """
    rates = {}
    for kind, frac in _STORM_SPLIT.items():
        # the zero-rate probe never reaches the corruption wrapper (it is
        # compiled out below rate 0), but corruption draws once per kernel
        # launch — the launch draw count is its opportunity count
        d = draws.get(kind, 0) or (draws.get("launch", 0) if kind == "corrupt" else 0)
        rates[kind] = min(_MAX_RATE, _OVERSHOOT * frac * events / d) if d else 0.0
    device_loss = {}
    for j in range(losses):
        rank = devices - 1 - j
        t = touches.get(rank, devices)
        device_loss[rank] = max(1, int(t * (0.35 + 0.3 * j)))
    # corruption is the expensive kind (every hit is a rollback + replay):
    # cap it near its share of the budget so replay re-draws cannot
    # snowball the storm into an unbounded rollback cascade
    corrupt_cap = int(math.ceil(_STORM_SPLIT["corrupt"] * events)) + 3
    return res.FaultPlan(
        seed,
        launch=rates["launch"],
        copy=rates["copy"],
        corrupt=rates["corrupt"],
        device_loss=device_loss,
        max_injections={"corrupt": corrupt_cap},
    )


class ChaosDriver(res.ResilientDriver):
    """The adaptive driver plus seeded checkpoint tampering.

    Before selected rollbacks the driver flips one byte in the newest
    stored checkpoint generation — damage the :class:`FaultPlan` cannot
    model, aimed at the recovery path itself.  The store must detect the
    mismatched CRC and fall back one generation; a run that restores the
    tampered snapshot would break the bitwise bar and fail the soak.
    """

    def __init__(self, *args, tamper_seed: int = 0, tamper_every: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.tamper_seed = tamper_seed
        self.tamper_every = max(1, tamper_every)
        self.tampers = 0
        self._rollback_seen = 0

    def _rollback(self, app, cause):
        self._rollback_seen += 1
        # tamper only when an older generation exists to fall back to:
        # corrupting the sole snapshot terminates the run instead of
        # exercising the fallback path the soak is here to prove
        if len(self.store) >= 2 and (self._rollback_seen - 1) % self.tamper_every == 0:
            self._tamper_latest()
        return super()._rollback(app, cause)

    def _tamper_latest(self) -> None:
        ckpt = self.store.latest
        name, arr = ckpt.arrays[0]
        flat = arr.view(np.uint8).reshape(-1)
        pos = min(
            int(res.unit_draw(self.tamper_seed, "tamper", self.tampers) * flat.size),
            flat.size - 1,
        )
        flat[pos] ^= 0xFF
        self.tampers += 1
        _flight.record(
            "host",
            "fault",
            "checkpoint_tamper",
            {"field": name, "byte": int(pos), "step": ckpt.step, "n": self.tampers},
        )


@dataclass
class ChaosReport:
    """Outcome of one chaos soak, compared against its fault-free twin."""

    workload: str
    devices: int
    surviving_devices: int
    seed: int
    steps: int
    events_requested: int
    losses_planned: int
    injected: dict
    device_losses: int
    tampers: int
    rollbacks: int
    retunes: int
    recovery_seconds: float
    checkpoints: dict
    degrade_reports: list
    retune_reports: list
    flight_kinds: dict
    faults: dict
    match: bool
    max_abs_error: float

    @property
    def events_total(self) -> int:
        return sum(self.injected.values()) + self.device_losses + self.tampers

    @property
    def ok(self) -> bool:
        return (
            self.match
            and self.events_total >= self.events_requested
            and self.device_losses >= self.losses_planned
            and self.tampers >= 1
            and self.checkpoints.get("fallbacks", 0) >= 1
        )

    def to_json(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "workload": self.workload,
            "devices": self.devices,
            "surviving_devices": self.surviving_devices,
            "seed": self.seed,
            "steps": self.steps,
            "events": {
                "requested": self.events_requested,
                "total": self.events_total,
                "injected": dict(self.injected),
                "device_losses": self.device_losses,
                "checkpoint_tampers": self.tampers,
            },
            "recoveries": {
                "rollbacks": self.rollbacks,
                "retunes": self.retunes,
                "recovery_seconds": self.recovery_seconds,
                "checkpoints": dict(self.checkpoints),
            },
            "degrade_reports": list(self.degrade_reports),
            "retune_reports": list(self.retune_reports),
            "flight_kinds": dict(self.flight_kinds),
            "faults": dict(self.faults),
            "result": {"match_bitwise": self.match, "max_abs_error": self.max_abs_error},
            "ok": self.ok,
        }

    def save(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2)
            fh.write("\n")
        return path

    def summary(self) -> str:
        verdict = "SURVIVED" if self.ok else "FAILED"
        lines = [
            f"chaos soak: {self.workload} (seed {self.seed}): {verdict}",
            f"  events:   {self.events_total} total "
            f"(requested >= {self.events_requested}): {self.injected} "
            f"+ {self.device_losses} device loss(es) + {self.tampers} checkpoint tamper(s)",
            f"  devices:  {self.devices} -> {self.surviving_devices} surviving",
            f"  recovery: {self.rollbacks} rollbacks, "
            f"{self.checkpoints.get('fallbacks', 0)} checkpoint fallback(s) "
            f"(max restore depth {self.checkpoints.get('max_restore_depth', 0)}), "
            f"{self.retunes} online retune(s), {self.recovery_seconds:.3f}s recovering",
        ]
        for rep in self.degrade_reports:
            lines.append(
                f"  degrade -> {rep['devices']} devices: tuned occ={rep['occ']} "
                f"mode={rep['mode']} makespan {rep['tuned_makespan'] * 1e3:.3f} ms "
                f"vs uniform {rep['uniform_makespan'] * 1e3:.3f} ms "
                f"({100 * rep['improvement']:.1f}% better)"
            )
        lines.append(
            f"  result vs fault-free: "
            f"{'bitwise identical' if self.match else f'MISMATCH (max |err| = {self.max_abs_error:.3e})'}"
        )
        return "\n".join(lines)


def run_chaos(
    name: str,
    events: int = 50,
    seed: int = 2026,
    devices: int = 4,
    losses: int = 2,
    policy: res.RecoveryPolicy | None = None,
    mode: str = "serial",
) -> ChaosReport:
    """One full soak: probe/reference, calibrated storm, bitwise verdict.

    ``mode`` is the requested replay mode for every app step.  The soak
    runs inside an armed resilience session, so ``parallel`` and
    ``process`` degrade to serial with their typed fallback warnings —
    requesting them here chiefly proves (and demonstrates) that the
    degradation path is clean under a full fault storm.
    """
    if name not in CHAOS_WORKLOADS:
        supported = ", ".join(sorted(CHAOS_WORKLOADS))
        raise KeyError(f"no chaos workload named '{name}'; supported: {supported}")
    if events < 1:
        raise ValueError("events must be >= 1")
    if losses < 1 or devices - losses < 2:
        raise ValueError(
            f"need >= 1 loss and >= 2 survivors (tuned degradation wants a fleet), "
            f"got devices={devices}, losses={losses}"
        )
    wl = CHAOS_WORKLOADS[name]
    reference, draws, touches = _probe(wl, devices, seed, mode=mode)
    plan = make_chaos_plan(seed, events, draws, touches, devices, losses)
    if policy is None:
        # short intervals + several generations: corruption rollbacks stay
        # cheap and the tamper attack always has an older snapshot to hit
        policy = res.RecoveryPolicy(
            checkpoint_interval=2,
            max_rollbacks=64 + 4 * events,
            checkpoint_generations=3,
            recalibrate_interval=max(4, wl.steps // 4),
        )
    driver = ChaosDriver(
        functools.partial(wl.factory, mode=mode),
        _backend(devices),
        wl.steps,
        policy=policy,
        plan=plan,
        experiment=wl.experiment,
        tamper_seed=seed,
    )
    with res.session(plan, policy):
        app = driver.run()

    got = app.result_array()
    return ChaosReport(
        workload=name,
        devices=devices,
        surviving_devices=driver.backend.num_devices,
        seed=seed,
        steps=wl.steps,
        events_requested=events,
        losses_planned=losses,
        injected={k: v for k, v in plan.describe()["injected"].items() if v},
        device_losses=driver.devices_lost,
        tampers=driver.tampers,
        rollbacks=driver.rollbacks,
        retunes=driver.retunes,
        recovery_seconds=driver.recovery_seconds,
        checkpoints=driver.store.describe(),
        degrade_reports=list(driver.degrade_reports),
        retune_reports=list(driver.retune_reports),
        flight_kinds=_flight.FLIGHT.kind_counts(),
        faults=plan.describe(),
        match=bool(np.array_equal(got, reference)),
        max_abs_error=float(np.max(np.abs(got - reference))),
    )
