"""The performance dashboard behind ``python -m repro report``.

One report = one instrumented run of a traceable miniature
(:mod:`repro.bench.traceable`) joined with its DES replay:

* measured **wall-clock** of the run, histogram summaries
  (p50/p90/p99) of every timing metric the run produced;
* the **simulated timeline** per skeleton — makespan, the exact
  critical path from the DES's binding links, the happens-before
  dependency chain (lower bound), per-device busy/blocked/idle
  utilization;
* the **attribution** joining the two worlds: the makespan decomposed
  into {kernel, copy, wait, dispatch} along the critical path, and the
  measured-wall vs modeled-makespan gap attributed to Python dispatch
  overhead (the interpreter cost the fusion roadmap item targets);
* a **flight-recorder sample** so the artifact doubles as a post-mortem
  format example.

Renderers: :func:`to_text` (terminal), :func:`to_html` (a static
zero-dependency page CI uploads), and the report dict itself is the
JSON form.
"""

from __future__ import annotations

import html as _html
import json
from time import perf_counter

from repro import observability as obs
from repro.observability import flight as _flight
from repro.observability.critpath import critical_path, dependency_chain, device_utilization
from repro.sim.replay import sim_replay

REPORT_SCHEMA = "repro-report/1"

#: the timing/size histograms worth a table row in the dashboard
_HISTOGRAMS = (
    "kernel_seconds",
    "copy_seconds",
    "replay_seconds",
    "serve_job_seconds",
    "serve_queue_wait_seconds",
    "engine_batch_seconds",
    "copy_size_bytes",
    "staging_acquire_seconds",
    "launch_cost_bytes",
    "allocation_size_bytes",
)


def build_report(exp: str, devices: int = 4, mode: str = "serial") -> dict:
    """Run the miniature instrumented and join it with its DES replay.

    ``mode`` selects the host-dispatch model for the simulated side
    (``"serial"`` matches the default replay path the run used).
    """
    from repro.bench.traceable import build_workload  # noqa: PLC0415 - heavy import

    workload = build_workload(exp, devices)
    prev = (obs.OBS.active, obs.OBS.tracer, obs.OBS.metrics)
    obs.enable()
    try:
        workload.run()  # warm-up: compile + freeze every program
        t0 = perf_counter()
        workload.run()
        wall = perf_counter() - t0
        registry = obs.metrics()
        histograms = {
            name: registry.histogram_summaries(name)
            for name in _HISTOGRAMS
            if registry.series(name)
        }
        label_overflows = dict(registry.label_overflows)
    finally:
        obs.OBS.active, obs.OBS.tracer, obs.OBS.metrics = prev

    skeletons = []
    modeled_once = 0.0  # summed makespan of one pass over the skeletons
    util_acc: dict[int, dict[str, float]] = {}
    for sk in workload.skeletons:
        result = sk.last_result or sk.record()
        trace = sim_replay(result, sk.backend.machine, mode=mode)
        cp = critical_path(trace)
        dep = dependency_chain(result.queues, sk.backend.machine)
        util = device_utilization(trace)
        modeled_once += trace.makespan
        for dev, fractions in util.items():
            acc = util_acc.setdefault(dev, {"busy": 0.0, "blocked": 0.0, "idle": 0.0, "_w": 0.0})
            for k in ("busy", "blocked", "idle"):
                acc[k] += fractions[k] * trace.makespan
            acc["_w"] += trace.makespan
        skeletons.append(
            {
                "name": sk.name,
                "sim_makespan_s": trace.makespan,
                "critical_path": cp.to_json(),
                "dependency_chain": {"total": dep.total, "commands": list(dep.commands)},
                "utilization": util,
            }
        )

    # makespan-weighted average utilization across the skeleton sequence
    utilization = {
        dev: {k: (acc[k] / acc["_w"] if acc["_w"] else 0.0) for k in ("busy", "blocked", "idle")}
        for dev, acc in sorted(util_acc.items())
    }

    modeled_total = modeled_once * workload.iterations
    breakdown = {"kernel": 0.0, "copy": 0.0, "wait": 0.0, "dispatch": 0.0}
    for entry in skeletons:
        for k in breakdown:
            breakdown[k] += entry["critical_path"]["breakdown"][k] * workload.iterations
    attribution = dict(breakdown)
    attribution["makespan"] = modeled_total
    attribution["wall_seconds"] = wall
    attribution["python_dispatch_overhead"] = max(0.0, wall - modeled_total)

    return {
        "schema": REPORT_SCHEMA,
        "exp": exp,
        "description": workload.description,
        "devices": devices,
        "mode": mode,
        "iterations": workload.iterations,
        "wall_seconds": wall,
        "sim_makespan_s": modeled_total,
        "attribution": attribution,
        "utilization": utilization,
        "skeletons": skeletons,
        "histograms": histograms,
        "label_overflows": label_overflows,
        "flight_sample": _flight.FLIGHT.snapshot(),
    }


# -- renderers ---------------------------------------------------------------
def _bar(fraction: float, width: int = 40) -> str:
    n = max(0, min(width, round(fraction * width)))
    return "#" * n + "." * (width - n)


def _fmt_s(v: float) -> str:
    return f"{v:.3e} s" if v < 1e-3 else f"{v:.4f} s"


def to_text(report: dict) -> str:
    """Terminal dashboard: attribution, utilization bars, histograms, path."""
    lines = [
        f"== repro report: {report['exp']} ==",
        f"{report['description']}",
        f"devices={report['devices']} mode={report['mode']} iterations={report['iterations']}",
        "",
        "-- wall-clock attribution --",
    ]
    att = report["attribution"]
    lines.append(f"measured wall        {_fmt_s(att['wall_seconds'])}")
    lines.append(f"modeled makespan     {_fmt_s(att['makespan'])}   (critical-path exact)")
    for key, label in (
        ("kernel", "  kernel time"),
        ("copy", "  copy time"),
        ("wait", "  wait time"),
        ("dispatch", "  modeled dispatch"),
    ):
        lines.append(f"{label:<21}{_fmt_s(att[key])}")
    gap = att["python_dispatch_overhead"]
    pct = 100.0 * gap / att["wall_seconds"] if att["wall_seconds"] else 0.0
    lines.append(f"python dispatch gap  {_fmt_s(gap)}   ({pct:.1f}% of wall)")
    lines.append("")
    lines.append("-- device utilization (simulated; busy # / blocked ~ / idle .) --")
    for dev, u in report["utilization"].items():
        bar = _bar(u["busy"])
        nb = round(u["blocked"] * 40)
        busy_n = bar.count("#")
        bar = bar[:busy_n] + "~" * min(nb, 40 - busy_n) + bar[busy_n + min(nb, 40 - busy_n):]
        lines.append(
            f"device{dev} |{bar}| busy {100 * u['busy']:5.1f}%  "
            f"blocked {100 * u['blocked']:5.1f}%  idle {100 * u['idle']:5.1f}%"
        )
    lines.append("")
    lines.append("-- timing histograms --")
    any_hist = False
    for name, series in report["histograms"].items():
        for s in series:
            labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items())) or "-"
            if not s.get("count"):
                continue
            any_hist = True
            lines.append(
                f"{name}{{{labels}}}: n={s['count']} mean={s['mean']:.3e} "
                f"p50={s.get('p50', 0.0):.3e} p90={s.get('p90', 0.0):.3e} p99={s.get('p99', 0.0):.3e}"
            )
    if not any_hist:
        lines.append("(no histogram series recorded)")
    lines.append("")
    for entry in report["skeletons"]:
        cp = entry["critical_path"]
        lines.append(
            f"-- critical path: {entry['name']} "
            f"(total {_fmt_s(cp['total'])} == makespan; "
            f"hb lower bound {_fmt_s(entry['dependency_chain']['total'])}) --"
        )
        for seg in cp["segments"][-8:]:
            gap = f" (+{seg['gap']:.2e}s {seg['cause'] or 'start'})" if seg["gap"] > 0 else ""
            lines.append(
                f"  [{seg['kind']:<6}] dev{seg['device']} {seg['name']:<28}"
                f" {seg['end'] - seg['start']:.3e}s{gap}"
            )
        if len(cp["segments"]) > 8:
            lines.append(f"  ... ({len(cp['segments']) - 8} earlier segments elided)")
    return "\n".join(lines)


def to_html(report: dict) -> str:
    """A static, zero-dependency HTML dashboard (CI artifact)."""
    att = report["attribution"]
    esc = _html.escape

    def row(cells, tag="td"):
        return "<tr>" + "".join(f"<{tag}>{c}</{tag}>" for c in cells) + "</tr>"

    util_rows = []
    for dev, u in report["utilization"].items():
        bar = (
            f"<div class='bar'>"
            f"<span class='busy' style='width:{100 * u['busy']:.1f}%'></span>"
            f"<span class='blocked' style='width:{100 * u['blocked']:.1f}%'></span>"
            f"</div>"
        )
        util_rows.append(
            row(
                [
                    f"device{dev}",
                    bar,
                    f"{100 * u['busy']:.1f}%",
                    f"{100 * u['blocked']:.1f}%",
                    f"{100 * u['idle']:.1f}%",
                ]
            )
        )

    hist_rows = []
    for name, series in report["histograms"].items():
        for s in series:
            if not s.get("count"):
                continue
            labels = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items())) or "-"
            hist_rows.append(
                row(
                    [
                        esc(name),
                        esc(labels),
                        s["count"],
                        f"{s['mean']:.3e}",
                        f"{s.get('p50', 0.0):.3e}",
                        f"{s.get('p90', 0.0):.3e}",
                        f"{s.get('p99', 0.0):.3e}",
                    ]
                )
            )

    path_rows = []
    for entry in report["skeletons"]:
        cp = entry["critical_path"]
        path_rows.append(
            f"<h3>{esc(entry['name'])} — path total {cp['total']:.3e}s "
            f"(= makespan), hb lower bound {entry['dependency_chain']['total']:.3e}s</h3>"
        )
        seg_rows = [
            row(
                [
                    esc(seg["kind"]),
                    f"device{seg['device']}",
                    esc(seg["name"]),
                    f"{seg['end'] - seg['start']:.3e}",
                    f"{seg['gap']:.3e}",
                    esc(seg["cause"] or "-"),
                ]
            )
            for seg in cp["segments"]
        ]
        path_rows.append(
            "<table>"
            + row(["kind", "device", "command", "duration (s)", "gap (s)", "bound by"], tag="th")
            + "".join(seg_rows)
            + "</table>"
        )

    gap_pct = 100.0 * att["python_dispatch_overhead"] / att["wall_seconds"] if att["wall_seconds"] else 0.0
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>repro report: {esc(report["exp"])}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 70em; color: #222; }}
table {{ border-collapse: collapse; margin: 0.7em 0; }}
th, td {{ border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; font-variant-numeric: tabular-nums; }}
th {{ background: #f2f2f2; }}
.bar {{ display: inline-block; width: 22em; height: 1em; background: #eee; vertical-align: middle; }}
.bar span {{ display: inline-block; height: 100%; float: left; }}
.bar .busy {{ background: #4a8; }}
.bar .blocked {{ background: #e94; }}
.kpi {{ font-size: 1.1em; }}
</style></head><body>
<h1>repro report: {esc(report["exp"])}</h1>
<p>{esc(report["description"])} — devices={report["devices"]}, mode={esc(report["mode"])},
iterations={report["iterations"]}</p>
<h2>Wall-clock attribution</h2>
<table class="kpi">
{row(["measured wall", f"{att['wall_seconds']:.4f} s"])}
{row(["modeled makespan (critical path)", f"{att['makespan']:.3e} s"])}
{row(["kernel / copy / wait / dispatch", f"{att['kernel']:.3e} / {att['copy']:.3e} / {att['wait']:.3e} / {att['dispatch']:.3e} s"])}
{row(["python dispatch overhead", f"{att['python_dispatch_overhead']:.4f} s ({gap_pct:.1f}% of wall)"])}
</table>
<h2>Device utilization (simulated)</h2>
<table>
{row(["device", "timeline", "busy", "blocked", "idle"], tag="th")}
{"".join(util_rows)}
</table>
<h2>Timing histograms</h2>
<table>
{row(["metric", "labels", "n", "mean", "p50", "p90", "p99"], tag="th")}
{"".join(hist_rows) or row(["(none)", "", "", "", "", "", ""])}
</table>
<h2>Critical paths</h2>
{"".join(path_rows)}
<h2>Raw report</h2>
<details><summary>JSON</summary><pre>{esc(json.dumps(report, indent=2))}</pre></details>
</body></html>
"""


# -- chaos soak rendering ----------------------------------------------------
def chaos_to_text(doc: dict) -> str:
    """Terminal rendering of a ``repro-chaos/1`` document."""
    ev, rec, result = doc["events"], doc["recoveries"], doc["result"]
    verdict = "SURVIVED" if doc["ok"] else "FAILED"
    lines = [
        f"== chaos soak: {doc['workload']} (seed {doc['seed']}) — {verdict} ==",
        f"devices={doc['devices']} -> {doc['surviving_devices']} surviving, steps={doc['steps']}",
        "",
        "-- fault storm --",
        f"events total         {ev['total']}  (requested >= {ev['requested']})",
    ]
    for kind, n in sorted(ev["injected"].items()):
        lines.append(f"  injected {kind:<10} {n}")
    lines.append(f"  device losses      {ev['device_losses']}")
    lines.append(f"  checkpoint tampers {ev['checkpoint_tampers']}")
    lines.append("")
    lines.append("-- recovery --")
    ck = rec["checkpoints"]
    lines.append(f"rollbacks            {rec['rollbacks']}")
    lines.append(
        f"checkpoint fallbacks {ck.get('fallbacks', 0)}  "
        f"(corrupt generations dropped: {ck.get('corrupt_dropped', 0)}, "
        f"max restore depth: {ck.get('max_restore_depth', 0)})"
    )
    lines.append(f"online retunes       {rec['retunes']}")
    lines.append(f"recovery wall-clock  {rec['recovery_seconds']:.3f} s")
    for rep in doc["degrade_reports"]:
        lines.append(
            f"degrade -> {rep['devices']} devices: occ={rep['occ']} mode={rep['mode']} "
            f"shares=[{' '.join(f'{s:.3f}' for s in rep['shares'])}]  "
            f"tuned {rep['tuned_makespan'] * 1e3:.3f} ms vs uniform "
            f"{rep['uniform_makespan'] * 1e3:.3f} ms ({100 * rep['improvement']:.1f}% better)"
        )
    if doc["flight_kinds"]:
        kinds = "  ".join(f"{k}={n}" for k, n in doc["flight_kinds"].items())
        lines.append(f"flight-ring events   {kinds}")
    lines.append("")
    lines.append(
        "-- result vs fault-free reference --\n"
        + (
            "bitwise identical"
            if result["match_bitwise"]
            else f"MISMATCH: max |err| = {result['max_abs_error']:.3e}"
        )
    )
    return "\n".join(lines)


def chaos_to_html(doc: dict) -> str:
    """A static, zero-dependency HTML chaos report (CI artifact)."""
    esc = _html.escape
    ev, rec, result = doc["events"], doc["recoveries"], doc["result"]
    ck = rec["checkpoints"]

    def row(cells, tag="td"):
        return "<tr>" + "".join(f"<{tag}>{c}</{tag}>" for c in cells) + "</tr>"

    injected_rows = "".join(
        row([esc(kind), n]) for kind, n in sorted(ev["injected"].items())
    )
    degrade_rows = "".join(
        row(
            [
                rep["devices"],
                esc(rep["occ"]),
                esc(rep["mode"]),
                " ".join(f"{s:.3f}" for s in rep["shares"]),
                f"{rep['tuned_makespan'] * 1e3:.3f}",
                f"{rep['uniform_makespan'] * 1e3:.3f}",
                f"{100 * rep['improvement']:.1f}%",
            ]
        )
        for rep in doc["degrade_reports"]
    )
    verdict = "SURVIVED" if doc["ok"] else "FAILED"
    color = "#4a8" if doc["ok"] else "#d33"
    bitwise = (
        "bitwise identical"
        if result["match_bitwise"]
        else f"MISMATCH (max |err| = {result['max_abs_error']:.3e})"
    )
    return f"""<!doctype html>
<html><head><meta charset="utf-8"><title>chaos soak: {esc(doc["workload"])}</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 60em; color: #222; }}
table {{ border-collapse: collapse; margin: 0.7em 0; }}
th, td {{ border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; font-variant-numeric: tabular-nums; }}
th {{ background: #f2f2f2; }}
.verdict {{ color: {color}; font-weight: bold; }}
</style></head><body>
<h1>chaos soak: {esc(doc["workload"])} — <span class="verdict">{verdict}</span></h1>
<p>seed {doc["seed"]}, {doc["steps"]} steps, devices {doc["devices"]} &rarr;
{doc["surviving_devices"]} surviving; result vs fault-free reference: <b>{esc(bitwise)}</b></p>
<h2>Fault storm ({ev["total"]} events, requested &ge; {ev["requested"]})</h2>
<table>
{row(["kind", "count"], tag="th")}
{injected_rows}
{row(["device losses", ev["device_losses"]])}
{row(["checkpoint tampers", ev["checkpoint_tampers"]])}
</table>
<h2>Recovery</h2>
<table>
{row(["rollbacks", rec["rollbacks"]])}
{row(["checkpoint fallbacks", f"{ck.get('fallbacks', 0)} (corrupt dropped {ck.get('corrupt_dropped', 0)}, max depth {ck.get('max_restore_depth', 0)})"])}
{row(["online retunes", rec["retunes"]])}
{row(["recovery wall-clock", f"{rec['recovery_seconds']:.3f} s"])}
</table>
<h2>Tuned degradation</h2>
<table>
{row(["devices", "occ", "mode", "shares", "tuned (ms)", "uniform (ms)", "improvement"], tag="th")}
{degrade_rows or row(["(no device losses)", "", "", "", "", "", ""])}
</table>
<h2>Raw report</h2>
<details><summary>JSON</summary><pre>{esc(json.dumps(doc, indent=2))}</pre></details>
</body></html>
"""


__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "chaos_to_html",
    "chaos_to_text",
    "to_html",
    "to_text",
]
