"""Fault-matrix miniatures: the traceable workloads under seeded faults.

Companion to :mod:`repro.bench.traceable`: the same tiny, real-execution
Poisson-CG and LBM pipelines, but driven through the resilience layer
under a seeded :class:`~repro.resilience.FaultPlan`.  Each run produces
a *fault-free* reference first, then replays the workload with faults
armed and full recovery (retry, rollback-and-replay, device-loss
degradation), and reports whether the recovered result matches the
reference — the end-to-end guarantee the fault model promises: faults
either recover or raise typed errors, never silent corruption.

Used by ``python -m repro faults`` and the CI fault-matrix job.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import resilience as res
from repro.domain import STENCIL_7PT, DenseGrid
from repro.sim import pcie_a100
from repro.skeleton import Occ, check_trace_dependencies, simulate_result
from repro.system import Backend


class _PoissonCGApp:
    """Poisson-CG miniature implementing the resilient-driver protocol.

    Two recovery flavours: by default checkpoints carry only the iterate
    ``x`` and any restore restarts the Krylov iteration via ``begin()``
    (convergent, but a different trajectory than the fault-free run);
    with ``exact=True`` checkpoints carry the full Krylov state
    (``x, r, p`` + host scalars) and a restore *resumes* the identical
    trajectory — bitwise-reproducible recovery, which is what the chaos
    soak harness demands.

    The tuned kwargs (``occ``, ``mode``, ``partition_weights``) let the
    adaptive driver rebuild this app with the degraded-fleet
    configuration the autotuner picked.
    """

    def __init__(
        self,
        backend: Backend,
        shape=(16, 16, 16),
        tolerance: float = 1e-8,
        occ: Occ = Occ.STANDARD,
        mode: str = "serial",
        partition_weights=None,
        exact: bool = False,
    ):
        from repro.solvers.cg import ConjugateGradient
        from repro.solvers.poisson import make_neg_laplacian

        grid = DenseGrid(
            backend, shape, stencils=[STENCIL_7PT], name="rescg", partition_weights=partition_weights
        )
        self.b = grid.new_field("b")
        self.x = grid.new_field("x")
        # deterministic, spectrally rich forcing (an off-centre bump — NOT a
        # Laplacian eigenvector, which would make CG converge in one step)
        self.b.init(
            lambda i, j, k: np.exp(
                -0.05 * ((i - 4.0) ** 2 + (j - 7.0) ** 2 + (k - 10.0) ** 2)
            )
            + 0.01 * (i - j + 2.0 * k)
        )
        self.cg = ConjugateGradient(
            grid, make_neg_laplacian, self.b, self.x, occ=occ, name="rescg", mode=mode
        )
        self.tolerance = tolerance
        self.exact = exact
        self._begun = False

    @property
    def skeletons(self):
        return [self.cg.sk_init, self.cg.sk_a, self.cg.sk_b]

    def fields(self):
        return self.cg.krylov_fields() if self.exact else self.cg.checkpoint_fields()

    def scalars(self) -> dict:
        return self.cg.krylov_scalars() if self.exact else {}

    def on_restore(self, scalars: dict) -> None:
        self._begun = self.cg.resume(scalars) if self.exact else False

    def step(self, i: int) -> None:
        if not self._begun:
            self.cg.begin(self.tolerance)
            self._begun = True
        self.cg.iterate()

    def result_array(self) -> np.ndarray:
        return self.x.to_numpy()


class _ExactPoissonCGApp(_PoissonCGApp):
    """Factory alias: the bitwise-recovery flavour used by the chaos soak."""

    def __init__(self, backend: Backend, **kwargs):
        kwargs.setdefault("exact", True)
        super().__init__(backend, **kwargs)


class _CavityApp:
    """Lid-driven-cavity LBM miniature under the resilient-driver protocol."""

    def __init__(
        self,
        backend: Backend,
        shape=(12, 12, 12),
        occ: Occ = Occ.STANDARD,
        mode: str = "serial",
        partition_weights=None,
    ):
        from repro.solvers.lbm import LidDrivenCavity

        self.cavity = LidDrivenCavity(backend, shape, occ=occ, partition_weights=partition_weights)
        self.mode = mode

    @property
    def skeletons(self):
        return self.cavity.skeletons

    def fields(self):
        return self.cavity.checkpoint_fields()

    def scalars(self) -> dict:
        return self.cavity.checkpoint_scalars()

    def on_restore(self, scalars: dict) -> None:
        self.cavity.restore_scalars(scalars)

    def step(self, i: int) -> None:
        self.cavity.step(1, mode=self.mode)

    def result_array(self) -> np.ndarray:
        return self.cavity.current.to_numpy()


@dataclass(frozen=True)
class FaultWorkload:
    name: str
    description: str
    factory: Callable[[Backend], object]
    steps: int
    #: absolute/relative tolerance for faulted-vs-fault-free comparison
    tol: float
    #: command count on the highest rank at which the loss profile fires
    loss_after: int


WORKLOADS = {
    "cg": FaultWorkload(
        "cg",
        "Poisson conjugate-gradient miniature (restart-from-iterate recovery)",
        _PoissonCGApp,
        steps=80,
        tol=1e-5,
        loss_after=300,
    ),
    "lbm": FaultWorkload(
        "lbm",
        "lid-driven-cavity D3Q19 LBM miniature (full-state checkpoints)",
        _CavityApp,
        steps=16,
        tol=1e-8,
        loss_after=350,
    ),
}

PROFILES = ("transient", "transient+loss", "corruption")


def make_plan(workload: FaultWorkload, profile: str, seed: int, devices: int) -> res.FaultPlan:
    """The seeded FaultPlan of one named profile for one workload."""
    if profile == "transient":
        return res.FaultPlan(seed, launch=0.05, copy=0.05)
    if profile == "transient+loss":
        if devices < 2:
            raise ValueError("the transient+loss profile needs at least 2 devices")
        return res.FaultPlan(
            seed, launch=0.05, copy=0.05, device_loss={devices - 1: workload.loss_after}
        )
    if profile == "corruption":
        # per-launch, and every step is many launches: 0.01 per launch is
        # already a brutal silent-corruption rate (several events per run)
        return res.FaultPlan(seed, corrupt=0.01)
    raise KeyError(f"unknown fault profile '{profile}'; supported: {', '.join(PROFILES)}")


@dataclass
class FaultedRunReport:
    """Outcome of one faulted run, compared against its fault-free twin."""

    workload: str
    profile: str
    devices: int
    surviving_devices: int
    seed: int
    steps: int
    match: bool
    max_abs_error: float
    violations: int
    rollbacks: int
    devices_lost: int
    faults: dict

    @property
    def ok(self) -> bool:
        return self.match and self.violations == 0

    def summary(self) -> str:
        lines = [
            f"{self.workload} under '{self.profile}' (seed {self.seed}): "
            f"{'RECOVERED' if self.ok else 'FAILED'}",
            f"  devices:            {self.devices} -> {self.surviving_devices} surviving",
            f"  injected faults:    {self.faults.get('injected', {})}",
            f"  rollbacks:          {self.rollbacks}; devices lost: {self.devices_lost}",
            f"  result vs fault-free: max |err| = {self.max_abs_error:.3e} "
            f"({'match' if self.match else 'MISMATCH'})",
            f"  dependency violations on recovered schedule: {self.violations}",
        ]
        return "\n".join(lines)


def _backend(devices: int) -> Backend:
    return Backend.sim_gpus(devices, machine=pcie_a100(devices))


def fault_free_result(name: str, devices: int = 3) -> np.ndarray:
    """Reference result of one workload with no faults armed."""
    wl = WORKLOADS[name]
    app = wl.factory(_backend(devices))
    for i in range(wl.steps):
        app.step(i)
    return app.result_array()


def run_faulted(
    name: str,
    profile: str = "transient",
    devices: int = 3,
    seed: int = 1234,
    policy: res.RecoveryPolicy | None = None,
) -> FaultedRunReport:
    """One full fault-matrix run: reference, faulted replay, comparison."""
    if name not in WORKLOADS:
        supported = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"no fault-matrix workload named '{name}'; supported: {supported}")
    wl = WORKLOADS[name]
    reference = fault_free_result(name, devices)

    plan = make_plan(wl, profile, seed, devices)
    if policy is None:
        # corruption is caught one (possibly two) steps after injection, and
        # each rollback replays the whole interval under fresh draws — short
        # intervals are what lets the checkpoint front advance through a
        # high-SDC run instead of replaying one long interval forever
        policy = (
            res.RecoveryPolicy(checkpoint_interval=2, max_rollbacks=64)
            if profile == "corruption"
            else res.RecoveryPolicy(checkpoint_interval=4)
        )
    driver = res.ResilientDriver(wl.factory, _backend(devices), wl.steps, policy=policy, plan=plan)
    with res.session(plan, policy):
        app = driver.run()

    # the recovered schedule must still prove its own synchronisation
    violations = 0
    for sk in app.skeletons:
        recorded = sk.record()
        violations += len(check_trace_dependencies(recorded, simulate_result(recorded)))

    got = app.result_array()
    return FaultedRunReport(
        workload=name,
        profile=profile,
        devices=devices,
        surviving_devices=driver.backend.num_devices,
        seed=seed,
        steps=wl.steps,
        match=bool(np.allclose(got, reference, rtol=wl.tol, atol=wl.tol)),
        max_abs_error=float(np.max(np.abs(got - reference))),
        violations=violations,
        rollbacks=driver.rollbacks,
        devices_lost=driver.devices_lost,
        faults=plan.describe(),
    )
