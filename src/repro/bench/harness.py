"""Small harness utilities shared by the per-table/figure benchmarks.

Besides the text-table helpers the benchmarks print, this module owns
the machine-readable result format: :func:`write_bench_json` emits a
``BENCH_<exp>.json`` document (schema ``repro-bench/4``) recording the
experiment id, its parameters, the runtime environment (python / numpy
versions, usable CPU core count — essential context for wall-clock
numbers), and one entry per measured configuration with wall-clock
seconds, simulated makespan, and MLUPS.  Schema ``/2`` adds two
optional top-level annotations — ``percentiles`` (per-site latency
distributions from an instrumented pass) and ``critical_path`` (the
modeled makespan's exact attribution) — that ``/1`` readers can
ignore.  Schema ``/3`` adds a ``fusion`` annotation (static
``fusion_ratio`` / ``fused_steps`` / per-mode ``fusion_speedup`` from a
fused-vs-unfused sweep) and a per-result ``fused`` flag.  Schema ``/4``
adds the ``process`` execution mode: result rows labelled
``<exp>-process[-unfused]`` and a ``speedup_process`` /
``process_skipped`` pair in ``params`` — pre-/4 documents simply lack
those labels, so label-joined comparisons skip them;
:func:`read_bench_json` accepts all four versions.  CI uploads
these artifacts so the perf trajectory of the repo is diffable across
commits, and ``python -m repro report --compare old.json new.json``
(see :mod:`repro.bench.regress`) turns a pair of them into a
regression verdict.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import sys
import time
from collections.abc import Callable, Iterable

BENCH_SCHEMA = "repro-bench/4"

#: schema versions read_bench_json accepts (all are forward subsets of /4)
KNOWN_SCHEMAS = ("repro-bench/1", "repro-bench/2", "repro-bench/3", "repro-bench/4")


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a compact, aligned text table (what the bench runs print)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def wall_time(fn: Callable[[], None], repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds of ``fn`` (after warm-up runs)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(values: Iterable, fn: Callable) -> list:
    """Evaluate ``fn`` over a parameter axis, returning [(value, result)]."""
    return [(v, fn(v)) for v in values]


def usable_cpu_count() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def bench_env() -> dict:
    """Runtime context stamped into every benchmark document.

    Wall-clock numbers are meaningless without it: a thread-per-device
    engine cannot beat serial replay on a single usable core, so
    ``cpu_count`` is the first thing a reader (or CI tripwire) must
    check before comparing modes.
    """
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": usable_cpu_count(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(
    path,
    exp: str,
    params: dict,
    results: list[dict],
    percentiles: dict | None = None,
    critical_path: dict | None = None,
    fusion: dict | None = None,
) -> pathlib.Path:
    """Write one ``BENCH_<exp>.json`` document and return its path.

    ``results`` entries carry at least ``label`` plus whichever of
    ``wall_clock_s`` / ``sim_makespan_s`` / ``mlups`` the experiment
    measures; extra keys pass through untouched.  The optional schema-/2
    annotations: ``percentiles`` maps metric names to a list of
    ``{labels, count, mean, p50, p90, p99}`` series (from an
    instrumented pass), ``critical_path`` is the modeled makespan's
    attribution (:meth:`repro.observability.CriticalPath.to_json`-shaped).
    The schema-/3 ``fusion`` annotation summarises the fused-vs-unfused
    sweep: static ``fusion_ratio`` / ``fused_steps`` / ``dispatch_units``
    plus a per-mode ``speedup`` map (unfused wall / fused wall).  All
    are omitted from the document when None, so minimal documents stay
    /1-shaped apart from the version string.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "exp": exp,
        "params": params,
        "env": bench_env(),
        "results": results,
    }
    if percentiles is not None:
        doc["percentiles"] = percentiles
    if critical_path is not None:
        doc["critical_path"] = critical_path
    if fusion is not None:
        doc["fusion"] = fusion
    out = pathlib.Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return out


def read_bench_json(path) -> dict:
    """Load a ``BENCH_*.json`` document, accepting schema ``/1``–``/4``.

    Older documents are upgraded in memory to the ``/4`` shape (empty
    ``percentiles`` / ``critical_path`` / ``fusion`` annotations; every
    result without a ``fused`` flag is marked ``fused: False`` — pre-/3
    runs dispatched step by step; ``params.process_skipped`` defaults to
    a "schema predates process mode" note on pre-/4 documents, which
    never carry ``<exp>-process`` result labels) so downstream code —
    the regression checker in particular — handles one shape only.  An
    unrecognised schema raises ``ValueError`` rather than silently
    comparing apples to oranges.
    """
    doc = json.loads(pathlib.Path(path).read_text())
    schema = doc.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(f"{path}: unknown bench schema {schema!r}; expected one of {KNOWN_SCHEMAS}")
    doc.setdefault("percentiles", {})
    doc.setdefault("critical_path", {})
    doc.setdefault("fusion", {})
    doc.setdefault("results", [])
    for entry in doc["results"]:
        entry.setdefault("fused", False)
    if schema != BENCH_SCHEMA:
        params = doc.setdefault("params", {})
        if "speedup_process" not in params:
            params.setdefault("process_skipped", f"document predates process mode ({schema})")
    return doc
