"""Small harness utilities shared by the per-table/figure benchmarks."""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a compact, aligned text table (what the bench runs print)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def wall_time(fn: Callable[[], None], repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds of ``fn`` (after warm-up runs)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(values: Iterable, fn: Callable) -> list:
    """Evaluate ``fn`` over a parameter axis, returning [(value, result)]."""
    return [(v, fn(v)) for v in values]
