"""Small harness utilities shared by the per-table/figure benchmarks.

Besides the text-table helpers the benchmarks print, this module owns
the machine-readable result format: :func:`write_bench_json` emits a
``BENCH_<exp>.json`` document (schema ``repro-bench/1``) recording the
experiment id, its parameters, the runtime environment (python / numpy
versions, usable CPU core count — essential context for wall-clock
numbers), and one entry per measured configuration with wall-clock
seconds, simulated makespan, and MLUPS.  CI uploads these artifacts so
the perf trajectory of the repo is diffable across commits.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import platform
import sys
import time
from collections.abc import Callable, Iterable

BENCH_SCHEMA = "repro-bench/1"


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a compact, aligned text table (what the bench runs print)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h) for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e4 or abs(v) < 1e-3:
            return f"{v:.3e}"
        return f"{v:.3f}"
    return str(v)


def wall_time(fn: Callable[[], None], repeats: int = 3, warmup: int = 1) -> float:
    """Best-of-N wall-clock seconds of ``fn`` (after warm-up runs)."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def sweep(values: Iterable, fn: Callable) -> list:
    """Evaluate ``fn`` over a parameter axis, returning [(value, result)]."""
    return [(v, fn(v)) for v in values]


def usable_cpu_count() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def bench_env() -> dict:
    """Runtime context stamped into every benchmark document.

    Wall-clock numbers are meaningless without it: a thread-per-device
    engine cannot beat serial replay on a single usable core, so
    ``cpu_count`` is the first thing a reader (or CI tripwire) must
    check before comparing modes.
    """
    import numpy

    return {
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "cpu_count": usable_cpu_count(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
    }


def write_bench_json(path, exp: str, params: dict, results: list[dict]) -> pathlib.Path:
    """Write one ``BENCH_<exp>.json`` document and return its path.

    ``results`` entries carry at least ``label`` plus whichever of
    ``wall_clock_s`` / ``sim_makespan_s`` / ``mlups`` the experiment
    measures; extra keys pass through untouched.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "exp": exp,
        "params": params,
        "env": bench_env(),
        "results": results,
    }
    out = pathlib.Path(path)
    out.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n")
    return out
