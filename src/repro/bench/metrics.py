"""Benchmark metrics used throughout the paper's evaluation section."""

from __future__ import annotations


def parallel_efficiency(t_baseline: float, t_n: float, n: int) -> float:
    """Strong-scaling efficiency: Efficiency(n) = t_baseline / (n * t_n).

    Exactly the paper's definition — ``t_baseline`` is the single-GPU
    baseline time, ``t_n`` the time on n GPUs; 1.0 is ideal.
    """
    if t_baseline <= 0 or t_n <= 0 or n < 1:
        raise ValueError("times must be positive and n >= 1")
    return t_baseline / (n * t_n)


def speedup(t_baseline: float, t_n: float) -> float:
    """Plain time ratio t_baseline / t_n."""
    if t_baseline <= 0 or t_n <= 0:
        raise ValueError("times must be positive")
    return t_baseline / t_n


def mlups(num_cells: int, iterations: int, seconds: float) -> float:
    """Million lattice-cell updates per second (Table II metric)."""
    if seconds <= 0 or num_cells < 0 or iterations < 0:
        raise ValueError("invalid MLUPS inputs")
    return num_cells * iterations / seconds / 1e6


def lups(num_cells: int, iterations: int, seconds: float) -> float:
    """Lattice updates per second (Table I metric)."""
    return mlups(num_cells, iterations, seconds) * 1e6
