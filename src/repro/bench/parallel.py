"""Execution-mode miniature benchmarks behind ``python -m repro bench``.

These are small *really-executed* workloads (no virtual planning-only
domains): each runs the same compiled skeletons in every execution mode
(serial / parallel threads / worker processes), measures
best-of-``REPEATS`` wall-clock over a fixed iteration count (single
timings on a shared host are too noisy to gate CI on), and reports the
DES makespan of one iteration alongside, so the document shows both the
measured host time and the modelled device time.

Caveat recorded in every document's ``env.cpu_count``: any cross-device
speedup needs multiple usable cores — the parallel engine's from NumPy
kernels releasing the GIL across worker threads, the process engine's
from forked workers that dodge the GIL entirely.  On a single-core
machine both modes measure pure engine overhead (for process mode, a
pipe round-trip plus event-board signalling per replay); the CI
tripwire bounds the thread engine's overhead (parallel <= ``tripwire``
x serial) rather than asserting a speedup it cannot deliver there,
while process legs simply record their honest numbers.  Process legs
are skipped outright (``process_skipped`` notes why) when
:func:`repro.system.process_fallback_reason` says the mode would
silently degrade to serial — a "process" column that secretly measured
serial replay would be worse than no column.
"""

from __future__ import annotations

import contextlib
import time

from repro.skeleton import fusion

from .harness import usable_cpu_count, write_bench_json
from .metrics import mlups

MODES = ("serial", "parallel", "process")
REPEATS = 3  # best-of-N: single timings on a shared/loaded host swing widely


def _best_wall(run_once, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run_once()
        best = min(best, time.perf_counter() - t0)
    return best


def _fuse_ctx(fuse: bool):
    return contextlib.nullcontext() if fuse else fusion.disabled()


def _label(exp: str, mode: str, fuse: bool) -> str:
    return f"{exp}-{mode}" if fuse else f"{exp}-{mode}-unfused"


def _fusion_stats(skeletons) -> dict:
    """Aggregate static fusion stats over the skeletons' frozen programs."""
    steps = units = fused = 0
    for sk in skeletons:
        program = sk.plan._ensure_program()
        steps += len(program.steps)
        units += program.stats.dispatch_units or len(program.steps)
        fused += program.stats.fused_steps
    return {
        "compiled_steps": steps,
        "dispatch_units": units,
        "fused_steps": fused,
        "fusion_ratio": (steps / units) if units else 1.0,
    }


def _bench_lbm(devices: int, iters: int, shape, mode: str, fuse: bool = True) -> dict:
    from repro.solvers.lbm import LidDrivenCavity
    from repro.system import Backend

    with _fuse_ctx(fuse):
        cavity = LidDrivenCavity(Backend.sim_gpus(devices), shape)
        cavity.step(2, mode=mode)  # warm-up: compile + freeze both parity programs
        wall = _best_wall(lambda: cavity.step(iters, mode=mode))
    entry = {
        "label": _label("lbm", mode, fuse),
        "mode": mode,
        "fused": fuse,
        "wall_clock_s": wall,
        "sim_makespan_s": cavity.iteration_makespan() * iters,
        "mlups": mlups(cavity.grid.num_active, iters, wall),
    }
    if fuse:
        entry.update(_fusion_stats(cavity.skeletons))
    return entry


def _bench_poisson(devices: int, iters: int, shape, mode: str, fuse: bool = True) -> dict:
    import numpy as np

    from repro.solvers.poisson import PoissonSolver
    from repro.system import Backend

    with _fuse_ctx(fuse):
        solver = PoissonSolver(Backend.sim_gpus(devices), shape)
        # constant rhs (the fig8 idiom): it excites many Laplacian
        # eigenmodes, so CG sustains full iterations instead of converging
        # in two Krylov steps the way the eigen-sparse manufactured
        # problem does
        solver.set_rhs(lambda z, y, x: np.ones(z.shape, dtype=np.float64))
        solver.cg.mode = mode
        solver.cg.begin(tolerance=1e-12)  # compiles + freezes the init program
        solver.cg.iterate()  # warm-up: freezes the two iteration programs

        done = iters

        def run_once() -> None:
            nonlocal done
            # restart from the current iterate: each repeat times an
            # identical n-iteration Krylov stretch (CG restarts soundly)
            solver.cg.begin(tolerance=1e-12)
            before = solver.cg.result.iterations
            for _ in range(iters):
                if solver.cg.iterate():
                    break
            done = max(solver.cg.result.iterations - before, 1)

        wall = _best_wall(run_once)
    entry = {
        "label": _label("poisson", mode, fuse),
        "mode": mode,
        "fused": fuse,
        "wall_clock_s": wall,
        "sim_makespan_s": solver.iteration_makespan() * done,
        "mlups": mlups(solver.grid.num_active, done, wall),
        "iterations_run": done,
    }
    if fuse:
        entry.update(_fusion_stats([solver.cg.sk_a, solver.cg.sk_b]))
    return entry


BENCHES = {
    "lbm": (_bench_lbm, (24, 24, 24), 20, "4-device LBM D3Q19 lid-driven cavity miniature"),
    "poisson": (_bench_poisson, (48, 48, 48), 20, "4-device Poisson CG miniature"),
}


def run_bench(
    exp: str,
    devices: int = 4,
    iters: int | None = None,
    modes: tuple[str, ...] = MODES,
    fuse: bool = True,
) -> dict:
    """Run one miniature in each requested mode; return the report dict.

    The report carries the per-mode measurements plus, when the modes
    ran, ``speedup_parallel`` (serial wall-clock / parallel wall-clock —
    above 1.0 means parallel won) and likewise ``speedup_process``.
    Process legs are dropped (with a ``process_skipped`` reason in the
    report) when process mode would fall back to serial — see the
    module docstring.  With ``fuse=True`` (the default)
    every mode runs twice — fused dispatch and, for the comparison
    column, a ``--no-fuse`` leg — and the report gains a ``fusion``
    annotation: the static chain stats of the frozen programs plus the
    measured per-mode ``speedup`` (unfused wall / fused wall).
    ``speedup_parallel`` is computed from the fused legs, which are the
    default dispatch path.  With ``fuse=False`` only unfused legs run.
    """
    if exp not in BENCHES:
        supported = ", ".join(sorted(BENCHES))
        raise KeyError(f"no parallel-mode bench for '{exp}'; supported: {supported}")
    fn, shape, default_iters, description = BENCHES[exp]
    iters = default_iters if iters is None else iters
    process_skipped = None
    if "process" in modes:
        from repro.system import process_fallback_reason

        process_skipped = process_fallback_reason()
        if process_skipped is not None:
            modes = tuple(m for m in modes if m != "process")
    results = []
    for mode in modes:
        if fuse:
            results.append(fn(devices, iters, shape, mode, fuse=True))
        results.append(fn(devices, iters, shape, mode, fuse=False))
    report = {
        "exp": exp,
        "description": description,
        "params": {
            "devices": devices,
            "iters": iters,
            "shape": list(shape),
            "modes": list(modes),
            "fuse": fuse,
        },
        "results": results,
    }
    if process_skipped is not None:
        report["process_skipped"] = process_skipped
    primary = {r["mode"]: r["wall_clock_s"] for r in results if r["fused"] == fuse}
    if "serial" in primary and "parallel" in primary and primary["parallel"] > 0:
        report["speedup_parallel"] = primary["serial"] / primary["parallel"]
    if "serial" in primary and "process" in primary and primary["process"] > 0:
        report["speedup_process"] = primary["serial"] / primary["process"]
    if fuse:
        fused_walls = {r["mode"]: r["wall_clock_s"] for r in results if r["fused"]}
        unfused_walls = {r["mode"]: r["wall_clock_s"] for r in results if not r["fused"]}
        stats = next((r for r in results if r["fused"] and "fusion_ratio" in r), {})
        report["fusion"] = {
            "fusion_ratio": stats.get("fusion_ratio", 1.0),
            "fused_steps": stats.get("fused_steps", 0),
            "dispatch_units": stats.get("dispatch_units", 0),
            "speedup": {
                mode: unfused_walls[mode] / fused_walls[mode]
                for mode in fused_walls
                if mode in unfused_walls and fused_walls[mode] > 0
            },
        }
    report["tuner"] = _tuner_annotation(exp, devices)
    percentiles, critical_path = _observability_annotation(exp, devices)
    report["percentiles"] = percentiles
    report["critical_path"] = critical_path
    return report


def _tuner_annotation(exp: str, devices: int) -> dict:
    """What the autotuner would decide for this workload class.

    Records the machine-model name and the DES-makespan delta of the
    tuned configuration vs the uniform standard-OCC serial default, so
    every bench document states how much headroom the tuner predicts on
    the machine the bench was modelled for.
    """
    from repro.sim import dgx_a100
    from repro.tuner import tune_workload

    machine = dgx_a100(devices)
    plan = tune_workload(exp, machine, devices=devices)
    return {
        "machine": machine.name,
        "best_occ": plan.best.occ,
        "best_mode": plan.best.mode,
        "best_weights": plan.best.weights_label,
        "tuned_makespan_s": plan.best.makespan,
        "uniform_makespan_s": plan.baseline.makespan,
        "improvement": plan.improvement,
    }


def _observability_annotation(exp: str, devices: int) -> tuple[dict, dict]:
    """Schema-/2 extras: latency percentiles + exact makespan attribution.

    Runs the experiment's traceable miniature once more with the metrics
    registry enabled (the timed passes above stay uninstrumented so the
    annotation cannot perturb the wall-clock numbers), then reconstructs
    the serial-replay critical path from the DES binding links.  The
    caller's observability state is saved and restored around the pass.
    """
    from repro import observability as obs
    from repro.bench.traceable import build_workload
    from repro.sim.replay import sim_replay

    saved = (obs.OBS.active, obs.OBS.tracer, obs.OBS.metrics)
    try:
        obs.enable(reset=True)
        workload = build_workload(exp, devices=devices)
        workload.run()
        percentiles = {
            name: series
            for name in ("kernel_seconds", "copy_seconds", "staging_acquire_seconds")
            if (series := obs.metrics().histogram_summaries(name))
        }
    finally:
        obs.OBS.active, obs.OBS.tracer, obs.OBS.metrics = saved

    sk = workload.skeletons[0]
    result = sk.last_result or sk.record()
    trace = sim_replay(result, sk.backend.machine, mode="serial")
    critical_path = obs.critical_path(trace).to_json()
    return percentiles, critical_path


def write_report(report: dict, out_dir=".") -> str:
    """Persist a :func:`run_bench` report as ``BENCH_<exp>.json``."""
    import pathlib

    pathlib.Path(out_dir).mkdir(parents=True, exist_ok=True)
    path = pathlib.Path(out_dir) / f"BENCH_{report['exp']}.json"
    extra = {
        k: report[k]
        for k in ("description", "speedup_parallel", "speedup_process", "process_skipped", "tuner")
        if k in report
    }
    params = dict(report["params"], **extra)
    return str(
        write_bench_json(
            path,
            report["exp"],
            params,
            report["results"],
            percentiles=report.get("percentiles"),
            critical_path=report.get("critical_path"),
            fusion=report.get("fusion"),
        )
    )


def summarize(report: dict) -> str:
    """Human-readable one-screen summary of a bench report."""
    lines = [f"{report['exp']}: {report['description']}", f"  usable cores: {usable_cpu_count()}"]
    for r in report["results"]:
        tag = r["mode"] + ("" if r.get("fused", False) else " (no-fuse)")
        lines.append(
            f"  {tag:<18} wall {r['wall_clock_s']:8.3f} s   "
            f"sim {r['sim_makespan_s']:.3e} s   {r['mlups']:7.2f} MLUPS"
        )
    if "speedup_parallel" in report:
        lines.append(f"  parallel speedup over serial: {report['speedup_parallel']:.2f}x")
    if "speedup_process" in report:
        lines.append(f"  process speedup over serial: {report['speedup_process']:.2f}x")
    if "process_skipped" in report:
        lines.append(f"  process legs skipped: {report['process_skipped']}")
    if "fusion" in report:
        f = report["fusion"]
        per_mode = "  ".join(f"{m}={s:.2f}x" for m, s in sorted(f["speedup"].items()))
        lines.append(
            f"  fusion: {f['fusion_ratio']:.2f} steps/unit "
            f"({f['fused_steps']} steps in multi-step units, {f['dispatch_units']} units) — "
            f"speedup over unfused: {per_mode}"
        )
    if "tuner" in report:
        t = report["tuner"]
        lines.append(
            f"  tuner ({t['machine']}): occ={t['best_occ']} mode={t['best_mode']} "
            f"weights={t['best_weights']} — {100 * t['improvement']:.1f}% below uniform default"
        )
    return "\n".join(lines)
