"""ASCII line plots for the regenerated paper figures.

No plotting backends are available offline, so the harness renders
efficiency curves and crossover charts as Unicode text — enough to *see*
the Fig 7/8/9 shapes directly in the benchmark output and in
EXPERIMENTS.md code blocks.
"""

from __future__ import annotations

MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 70,
    height: int = 18,
    title: str = "",
    ylabel: str = "",
    y_range: tuple[float, float] | None = None,
) -> str:
    """Plot named (x, y) series on a shared text canvas.

    Each series gets a marker from ``MARKERS``; a legend is appended.
    X positions are mapped by value (not rank), so uneven sweeps render
    proportionally.
    """
    if not series or all(not pts for pts in series.values()):
        return "(no data)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x0, x1 = min(xs), max(xs)
    if y_range is not None:
        y0, y1 = y_range
    else:
        y0, y1 = min(ys), max(ys)
        if y0 == y1:
            y0, y1 = y0 - 0.5, y1 + 0.5
        pad = 0.05 * (y1 - y0)
        y0, y1 = y0 - pad, y1 + pad

    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        col = 0 if x1 == x0 else int((x - x0) / (x1 - x0) * (width - 1))
        row = height - 1 - int((min(max(y, y0), y1) - y0) / (y1 - y0) * (height - 1))
        grid[row][col] = ch

    for (name, pts), marker in zip(series.items(), MARKERS):
        for x, y in sorted(pts):
            put(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        yval = y1 - i * (y1 - y0) / (height - 1)
        lines.append(f"{yval:8.3f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(" " * 10 + f"{x0:<10.6g}{' ' * (width - 20)}{x1:>10.6g}")
    legend = "   ".join(f"{m} {name}" for (name, _), m in zip(series.items(), MARKERS))
    lines.append(" " * 10 + legend)
    if ylabel:
        lines.append(" " * 10 + f"(y: {ylabel})")
    return "\n".join(lines)
