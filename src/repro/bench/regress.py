"""Bench regression checking: did this change make the numbers worse?

Compares two ``BENCH_<exp>.json`` documents (any mix of schema
``repro-bench/1`` through ``/4``; see
:func:`repro.bench.harness.read_bench_json`) result-by-result, joined
on each entry's ``label``.  A finding is flagged when a metric moved
past ``threshold`` in the *bad* direction — wall-clock or simulated
makespan up, MLUPS down — plus, for ``/2`` documents, tail-latency
regressions in the ``percentiles`` annotation (p99 up), and for ``/3``
documents, fusion regressions in the ``fusion`` annotation (static
``fusion_ratio`` down — chains broke — or a per-mode measured
``fusion_speedup`` down).  Pre-/3 documents simply lack the fusion
labels, and pre-/4 documents lack the ``<exp>-process`` result labels,
so the label join skips them.  Improvements are reported as notes,
never as failures.

The checker is deliberately a *soft* gate by default: miniature wall
clocks on shared CI hosts are noisy, so CI runs it warn-only
(``python -m repro report --compare old new``), and ``--strict`` exists
for local use and for metrics that are deterministic (simulated
makespans do not jitter).
"""

from __future__ import annotations

from dataclasses import dataclass

#: metric key -> direction ("up" is bad / "down" is bad)
_RESULT_METRICS = {
    "wall_clock_s": "up",
    "sim_makespan_s": "up",
    "mlups": "down",
    "fusion_ratio": "down",
}

#: sim-derived metrics don't jitter: regressions there are real at any size
_DETERMINISTIC = ("sim_makespan_s",)


class BenchLabelMismatch(ValueError):
    """Two same-schema bench files disagree on which result labels exist.

    A label present in only one file means the comparison would silently
    ignore that configuration — in a gate, that's a hole, not a skip.
    Raised by :func:`check_regression` (``report --compare``) so callers
    get a typed, explainable failure instead of a partial verdict;
    cross-*schema* compares stay lenient (old documents genuinely lack
    labels newer schemas added), as do ``<exp>-process`` labels when the
    label-lacking file records *why* in ``params.process_skipped``.
    """

    def __init__(self, only_old: set, only_new: set):
        self.only_old = frozenset(only_old)
        self.only_new = frozenset(only_new)
        parts = []
        if only_old:
            parts.append("only in the old file: " + ", ".join(sorted(only_old)))
        if only_new:
            parts.append("only in the new file: " + ", ".join(sorted(only_new)))
        super().__init__("bench result labels do not match; " + "; ".join(parts))


@dataclass(frozen=True)
class Finding:
    """One metric delta between the two documents."""

    label: str  # result label (or "percentiles:<metric>{labels}")
    metric: str
    old: float
    new: float
    delta: float  # relative change, signed ((new-old)/old)
    regression: bool  # moved past threshold in the bad direction

    def __str__(self) -> str:
        arrow = "REGRESSION" if self.regression else "ok"
        return (
            f"[{arrow}] {self.label} {self.metric}: "
            f"{self.old:.4g} -> {self.new:.4g} ({100 * self.delta:+.1f}%)"
        )


def _rel(old: float, new: float) -> float:
    return (new - old) / old if old else 0.0


def _is_bad(delta: float, direction: str, threshold: float) -> bool:
    return delta > threshold if direction == "up" else delta < -threshold


def compare_docs(old: dict, new: dict, threshold: float = 0.25) -> list[Finding]:
    """All metric deltas between two bench documents, regressions flagged.

    ``threshold`` is the relative change past which a bad-direction move
    counts as a regression (0.25 = 25%).
    """
    findings: list[Finding] = []
    old_results = {r.get("label"): r for r in old.get("results", [])}
    for new_r in new.get("results", []):
        label = new_r.get("label")
        old_r = old_results.get(label)
        if old_r is None:
            continue  # new configuration: nothing to compare against
        for metric, direction in _RESULT_METRICS.items():
            if metric not in old_r or metric not in new_r:
                continue
            ov, nv = float(old_r[metric]), float(new_r[metric])
            delta = _rel(ov, nv)
            findings.append(
                Finding(
                    label=label,
                    metric=metric,
                    old=ov,
                    new=nv,
                    delta=delta,
                    regression=_is_bad(delta, direction, threshold),
                )
            )

    # /2 annotation: tail-latency percentiles, joined on metric + labels
    old_pct = _flatten_percentiles(old.get("percentiles", {}))
    for key, new_summary in _flatten_percentiles(new.get("percentiles", {})).items():
        old_summary = old_pct.get(key)
        if old_summary is None:
            continue
        for q in ("p50", "p99"):
            if q not in old_summary or q not in new_summary:
                continue
            ov, nv = float(old_summary[q]), float(new_summary[q])
            delta = _rel(ov, nv)
            findings.append(
                Finding(
                    label=f"percentiles:{key}",
                    metric=q,
                    old=ov,
                    new=nv,
                    delta=delta,
                    regression=_is_bad(delta, "up", threshold),
                )
            )

    # /3 annotation: measured fused-vs-unfused speedup per mode
    old_speedup = old.get("fusion", {}).get("speedup", {})
    for mode, nv in new.get("fusion", {}).get("speedup", {}).items():
        if mode not in old_speedup:
            continue
        ov, nv = float(old_speedup[mode]), float(nv)
        delta = _rel(ov, nv)
        findings.append(
            Finding(
                label=f"fusion:{mode}",
                metric="fusion_speedup",
                old=ov,
                new=nv,
                delta=delta,
                regression=_is_bad(delta, "down", threshold),
            )
        )
    return findings


def _flatten_percentiles(percentiles: dict) -> dict[str, dict]:
    """``{metric: [{labels, ...summary}]}`` -> ``{"metric{a=1}": summary}``."""
    flat: dict[str, dict] = {}
    for metric, series in percentiles.items():
        for s in series:
            labels = ",".join(f"{k}={v}" for k, v in sorted(s.get("labels", {}).items()))
            flat[f"{metric}{{{labels}}}"] = s
    return flat


def _check_label_parity(old: dict, new: dict) -> None:
    """Raise :class:`BenchLabelMismatch` for unexcused asymmetric labels.

    Only same-schema documents are held to parity: a pre-/3 or pre-/4
    baseline legitimately lacks labels a newer schema added, and the
    lenient join (:func:`compare_docs`) is the right behaviour there.
    ``<exp>-process`` labels are excused when the file without them says
    why (``params.process_skipped``, written both by the upgrade shim
    and by runs that skipped the process leg on purpose).
    """
    if old.get("schema") != new.get("schema"):
        return
    old_labels = {r.get("label") for r in old.get("results", [])}
    new_labels = {r.get("label") for r in new.get("results", [])}

    def excused(label, lacking_doc: dict) -> bool:
        return (
            isinstance(label, str)
            and label.endswith("-process")
            and "process_skipped" in lacking_doc.get("params", {})
        )

    only_old = {lb for lb in old_labels - new_labels if not excused(lb, new)}
    only_new = {lb for lb in new_labels - old_labels if not excused(lb, old)}
    if only_old or only_new:
        raise BenchLabelMismatch(only_old, only_new)


def check_regression(old_path, new_path, threshold: float = 0.25) -> tuple[list[Finding], bool]:
    """Load, compare, and judge two bench files.

    Returns ``(findings, ok)``; ``ok`` is False iff any regression was
    flagged.  Callers decide whether that fails the build (CI runs
    warn-only by default).  Raises :class:`BenchLabelMismatch` when two
    same-schema files disagree on which result labels exist (see the
    class docstring for the excusals).
    """
    from .harness import read_bench_json  # noqa: PLC0415 - avoid cycle at import

    old, new = read_bench_json(old_path), read_bench_json(new_path)
    _check_label_parity(old, new)
    findings = compare_docs(old, new, threshold)
    return findings, not any(f.regression for f in findings)


def render(findings: list[Finding], threshold: float) -> str:
    """Human-readable comparison summary (regressions first)."""
    if not findings:
        return "no comparable metrics between the two documents"
    ordered = sorted(findings, key=lambda f: (not f.regression, f.label, f.metric))
    lines = [f"bench comparison (threshold {100 * threshold:.0f}%):"]
    lines += [f"  {f}" for f in ordered]
    n = sum(1 for f in findings if f.regression)
    lines.append(f"  => {n} regression(s), {len(findings) - n} within bounds")
    return "\n".join(lines)


__all__ = ["BenchLabelMismatch", "Finding", "check_regression", "compare_docs", "render"]
