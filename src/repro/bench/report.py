"""Result persistence: every bench writes its series to JSON so the
paper-vs-measured tables in EXPERIMENTS.md are regenerable."""

from __future__ import annotations

import json
import pathlib
from typing import Any

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "out"


def save_result(name: str, data: Any) -> pathlib.Path:
    """Write one experiment's data as benchmarks/out/<name>.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_result(name: str) -> Any:
    """Read back a series previously written by :func:`save_result`."""
    path = RESULTS_DIR / f"{name}.json"
    return json.loads(path.read_text())
