"""Small, real-execution workloads behind ``python -m repro trace``.

The paper benchmarks run virtual (planning-only) domains at paper scale;
for observability we want the opposite: tiny domains executed for real,
so the wall-clock tracer sees compile phases, eager kernel launches and
halo copies, while the DES still yields the matching simulated timeline.
Each named workload maps an experiment key to a representative miniature
of that experiment's pipeline.
"""

from __future__ import annotations

from repro.core import ops
from repro.domain import STENCIL_7PT, DenseGrid
from repro.sim import Trace, pcie_a100
from repro.skeleton import Occ, Skeleton
from repro.system import Backend


class TraceWorkload:
    """A named bundle of skeletons executed eagerly for tracing."""

    def __init__(self, name: str, description: str, skeletons: list[Skeleton], iterations: int = 1):
        self.name = name
        self.description = description
        self.skeletons = skeletons
        self.iterations = iterations

    def run(self, mode: str | None = None) -> None:
        """Execute every skeleton eagerly; ``mode`` as in :meth:`Skeleton.run`."""
        for _ in range(self.iterations):
            for sk in self.skeletons:
                sk.run(mode=mode)

    def sim_trace(self) -> Trace:
        """Simulated timeline of the first skeleton's last execution."""
        return self.skeletons[0].trace()


def _laplace(grid, x, y, name: str = "laplace"):
    def loading(loader):
        xp = loader.read(x, stencil=True)
        yp = loader.write(y)

        def compute(span):
            acc = -6.0 * xp.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + xp.neighbour(span, off)
            yp.view(span)[...] = acc

        return compute

    return grid.new_container(name, loading, flops_per_cell=7.0)


def _fig1(devices: int) -> TraceWorkload:
    backend = Backend.sim_gpus(devices, machine=pcie_a100(devices))
    grid = DenseGrid(backend, (32, 32, 32), stencils=[STENCIL_7PT], name="fig1")
    x, y = grid.new_field("x"), grid.new_field("y")
    sk = Skeleton(backend, [ops.axpy(grid, 2.0, y, x), _laplace(grid, x, y)], occ=Occ.STANDARD, name="fig1")
    return TraceWorkload("fig1", "map+stencil workflow (Fig 1) on a tiny real grid", [sk])


def _fig8top(devices: int) -> TraceWorkload:
    from repro.solvers.poisson import make_neg_laplacian

    backend = Backend.sim_gpus(devices, machine=pcie_a100(devices))
    grid = DenseGrid(backend, (24, 24, 24), stencils=[STENCIL_7PT], name="poisson")
    u, r = grid.new_field("u"), grid.new_field("r")
    sk = Skeleton(
        backend,
        [make_neg_laplacian(grid, u, r), ops.axpy(grid, -0.1, r, u, name="jacobi_update")],
        occ=Occ.STANDARD,
        name="poisson_iter",
    )
    return TraceWorkload("fig8top", "one Poisson stencil+update iteration", [sk], iterations=2)


def _lbm(devices: int) -> TraceWorkload:
    from repro.solvers.lbm import LidDrivenCavity

    cavity = LidDrivenCavity(Backend.sim_gpus(devices, machine=pcie_a100(devices)), (16, 16, 16))
    return TraceWorkload("lbm", "two lid-driven-cavity LBM iterations (D3Q19)", cavity.skeletons)


def _micro(devices: int) -> TraceWorkload:
    backend = Backend.sim_gpus(devices, machine=pcie_a100(devices))
    grid = DenseGrid(backend, (32, 32, 32), stencils=[STENCIL_7PT], name="micro")
    x, y = grid.new_field("x"), grid.new_field("y")
    sk = Skeleton(backend, [ops.copy(grid, x, y), ops.axpy(grid, 1.5, y, x)], occ=Occ.NONE, name="micro")
    return TraceWorkload("micro", "map-only framework microbenchmark", [sk], iterations=4)


WORKLOADS = {
    "fig1": _fig1,
    "fig7": _lbm,
    "fig8top": _fig8top,
    "fig8bottom": _fig8top,
    "table1": _lbm,
    "table2": _lbm,
    "micro": _micro,
    # solver-name aliases: `repro report lbm` / `repro bench lbm` agree
    # on what "lbm" and "poisson" mean
    "lbm": _lbm,
    "poisson": _fig8top,
}


def build_workload(name: str, devices: int = 2) -> TraceWorkload:
    """Instantiate the traceable miniature of one experiment."""
    if name not in WORKLOADS:
        supported = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"no traceable workload for '{name}'; supported: {supported}")
    return WORKLOADS[name](devices)
