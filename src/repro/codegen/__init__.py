"""Ahead-of-time C codegen for fused/specialized replay kernels.

The fusion pass (:mod:`repro.skeleton.fusion`) batches *dispatch*; this
package removes the per-element interpretation cost underneath it by
compiling generated C translation units with the system C compiler and
binding them through :mod:`ctypes` — both already present on any host
that can build NumPy, so no new dependency is introduced.  Everything
degrades gracefully: when no compiler is found (or compilation fails)
the callers fall back to the interpreted NumPy path and results are
identical either way, because generated kernels replicate the exact
IEEE-754 operation sequence of the NumPy code they replace.
"""

from .cc import available, compile_shared, compiler, hexf

__all__ = ["available", "compile_shared", "compiler", "hexf"]
