"""Compile generated C sources with the system compiler, bind via ctypes.

Design constraints, in order:

* **Bitwise fidelity** — compiled kernels must reproduce the interpreted
  NumPy results exactly.  ``-ffp-contract=off`` forbids FMA contraction
  (an FMA keeps the intermediate product unrounded, changing the low
  bits), and no fast-math flag is ever passed, so the compiler must
  preserve the written IEEE-754 operation order.  Generators embed float
  constants through :func:`hexf` (C hexadecimal float literals), which
  round-trips every double exactly.
* **Zero new dependencies** — ``cc`` (or ``gcc``/``clang``) plus the
  standard-library ``ctypes``; when neither compiler exists,
  :func:`compile_shared` returns ``None`` and callers keep the
  interpreted path.
* **Compile once** — one shared object per cache key, built in a
  private temp dir and kept loaded for the life of the process (the
  CDLL handle is held in the cache so the mapping never goes away under
  a live function pointer).

Set ``REPRO_DISABLE_CC=1`` to force the interpreted fallback (used by
tests to pin the fallback path, and as an operator escape hatch).
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path

#: flags shared by every generated translation unit; -ffp-contract=off is
#: load-bearing for bitwise identity (see module docstring)
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_lock = threading.Lock()
_compiler: str | None = None
_compiler_checked = False
_cache: dict[tuple, object] = {}  # key -> (ctypes fn, CDLL, build dir) | None


def hexf(x: float) -> str:
    """A C literal that reconstructs ``x`` bit-for-bit (hex float)."""
    return float(x).hex()


def compiler() -> str | None:
    """Path of the first usable C compiler, or None (cached)."""
    global _compiler, _compiler_checked
    if not _compiler_checked:
        with _lock:
            if not _compiler_checked:
                for cand in ("cc", "gcc", "clang"):
                    found = shutil.which(cand)
                    if found:
                        _compiler = found
                        break
                _compiler_checked = True
    return _compiler


def available() -> bool:
    """True when compiled kernels can be built in this process."""
    if os.environ.get("REPRO_DISABLE_CC"):
        return False
    return compiler() is not None


def compile_shared(key: tuple, source: str, symbol: str, argtypes: list, restype=None):
    """Build ``source``, load it, and return the bound ``symbol``.

    ``key`` identifies the translation unit for the process-wide cache
    (callers key on everything baked into the source).  Returns ``None``
    on any failure — missing compiler, compile error, load error — and
    caches the failure so the cost is paid once.
    """
    if not available():
        return None
    with _lock:
        if key in _cache:
            entry = _cache[key]
            return entry[0] if entry else None
        try:
            build = Path(tempfile.mkdtemp(prefix="repro-cc-"))
            c_path = build / "kernel.c"
            so_path = build / "kernel.so"
            c_path.write_text(source)
            subprocess.run(
                [compiler(), *CFLAGS, str(c_path), "-o", str(so_path)],
                check=True,
                capture_output=True,
            )
            lib = ctypes.CDLL(str(so_path))
            fn = getattr(lib, symbol)
            fn.argtypes = argtypes
            fn.restype = restype
        except (OSError, subprocess.CalledProcessError, AttributeError):
            _cache[key] = None
            return None
        _cache[key] = (fn, lib, build)
        return fn
