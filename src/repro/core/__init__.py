"""Neon-like public API: everything a user application needs (paper III).

A typical application::

    from repro.core import Backend, DenseGrid, Skeleton, Occ, ops
    from repro.domain import STENCIL_7PT

    backend = Backend.sim_gpus(8)
    grid = DenseGrid(backend, (320, 320, 320), stencils=[STENCIL_7PT])
    u = grid.new_field("u")
    ...
    sk = Skeleton(backend, [c1, c2, c3], occ=Occ.TWO_WAY)
    sk.run()
"""

from repro.domain import (
    D2Q9_STENCIL,
    D3Q19_STENCIL,
    STENCIL_7PT,
    STENCIL_27PT,
    DataView,
    DenseGrid,
    Field,
    Grid,
    Layout,
    SparseGrid,
    Stencil,
)
from repro.sets import Container, Loader, MemSet, MultiEvent, MultiStream, Pattern
from repro.sim import MachineSpec, Trace, cpu_host, dgx_a100, pcie_gv100, simulate
from repro.skeleton import Occ, Skeleton
from repro.system import Backend, MemOptions

from . import ops
from .ops import ScalarResult

__all__ = [
    "D2Q9_STENCIL",
    "D3Q19_STENCIL",
    "STENCIL_7PT",
    "STENCIL_27PT",
    "Backend",
    "Container",
    "DataView",
    "DenseGrid",
    "Field",
    "Grid",
    "Layout",
    "Loader",
    "MachineSpec",
    "MemOptions",
    "MemSet",
    "MultiEvent",
    "MultiStream",
    "Occ",
    "Pattern",
    "ScalarResult",
    "Skeleton",
    "SparseGrid",
    "Stencil",
    "Trace",
    "cpu_host",
    "dgx_a100",
    "ops",
    "pcie_gv100",
    "simulate",
]
