"""Well-optimised standard BLAS-like Containers with a unified interface
for every grid type (paper section III: "Neon also offers a set of
well-optimized standard BLAS operations (e.g., dot product) with a
unified interface for different grid types to facilitate rapid
prototyping").

All operations are cardinality-generic: they act on every component of
their fields through the layout-independent ``view_all`` accessor, so
the same Container works for scalar and vector fields, SoA or AoS,
dense or element-sparse grids.
"""

from __future__ import annotations

import numpy as np

from repro.sets import Container, MemSet
from repro.domain.grid import Grid


def copy(grid: Grid, src, dst, name: str = "copy") -> Container:
    """dst <- src."""
    _check(grid, src, dst)

    def loading(loader):
        s = loader.read(src)
        d = loader.write(dst)
        return lambda span: np.copyto(d.view_all(span), s.view_all(span))

    return grid.new_container(name, loading)


def set_value(grid: Grid, dst, value: float, name: str = "set") -> Container:
    """dst <- value."""
    _check(grid, dst)

    def loading(loader):
        d = loader.write(dst)

        def compute(span):
            d.view_all(span)[...] = value

        return compute

    return grid.new_container(name, loading)


def scale(grid: Grid, alpha: float, x, name: str = "scale") -> Container:
    """x <- alpha * x."""
    _check(grid, x)

    def loading(loader):
        xp = loader.read_write(x)

        def compute(span):
            xp.view_all(span)[...] *= alpha

        return compute

    return grid.new_container(name, loading)


def axpy(grid: Grid, alpha: float, x, y, name: str = "axpy") -> Container:
    """y <- alpha * x + y (the BLAS AXPY)."""
    _check(grid, x, y)

    def loading(loader):
        xp = loader.read(x)
        yp = loader.read_write(y)

        def compute(span):
            yp.view_all(span)[...] += alpha * xp.view_all(span)

        return compute

    return grid.new_container(name, loading, flops_per_cell=2.0 * x.cardinality)


def axpby(grid: Grid, alpha: float, x, beta: float, y, name: str = "axpby") -> Container:
    """y <- alpha * x + beta * y (covers CG's p-update)."""
    _check(grid, x, y)

    def loading(loader):
        xp = loader.read(x)
        yp = loader.read_write(y)

        def compute(span):
            yv = yp.view_all(span)
            yv[...] = alpha * xp.view_all(span) + beta * yv

        return compute

    return grid.new_container(name, loading, flops_per_cell=3.0 * x.cardinality)


def dot(grid: Grid, x, y, partial: MemSet, name: str = "dot") -> Container:
    """partial <- partial sums over the rank's cells of x . y (all components).

    With a per-slice partial (``grid.new_dot_partial``) the deposits are
    canonical per-slice sums and the combined scalar is bitwise
    partition-invariant; with a legacy per-rank partial the whole span
    folds into one slot, as before.
    """
    _check(grid, x, y)

    def loading(loader):
        xp = loader.read(x)
        yp = loader.read(y)
        acc = loader.reduce_target(partial)

        def compute(span):
            acc.deposit_sums(span, xp.view_all(span) * yp.view_all(span))

        return compute

    return grid.new_container(name, loading, flops_per_cell=2.0 * x.cardinality)


def norm2_squared(grid: Grid, x, partial: MemSet, name: str = "norm2sq") -> Container:
    """partial[rank] <- sum of x*x (combine + sqrt host-side for the L2 norm)."""
    return dot(grid, x, x, partial, name=name)


def waxpby(grid: Grid, alpha: float, x, beta: float, y, w, name: str = "waxpby") -> Container:
    """w <- alpha * x + beta * y (three-operand BLAS-1)."""
    _check(grid, x, y, w)

    def loading(loader):
        xp = loader.read(x)
        yp = loader.read(y)
        wp = loader.write(w)

        def compute(span):
            wp.view_all(span)[...] = alpha * xp.view_all(span) + beta * yp.view_all(span)

        return compute

    return grid.new_container(name, loading, flops_per_cell=3.0 * x.cardinality)


def max_abs(grid: Grid, x, partial: MemSet, name: str = "amax") -> Container:
    """partial[rank] <- max |x| over the rank's cells (the BLAS IAMAX value).

    Combine the partials with ``ScalarResult(partial, op=np.maximum)``.
    """
    _check(grid, x)

    def loading(loader):
        xp = loader.read(x)
        acc = loader.reduce_target(partial, op=np.maximum)

        def compute(span):
            v = xp.view_all(span)
            acc.deposit(float(np.abs(v).max()) if v.size else 0.0)

        return compute

    return grid.new_container(name, loading, flops_per_cell=1.0 * x.cardinality)


def total(grid: Grid, x, partial: MemSet, name: str = "sum") -> Container:
    """partial[rank] <- sum of all components of x over the rank's cells."""
    _check(grid, x)

    def loading(loader):
        xp = loader.read(x)
        acc = loader.reduce_target(partial)

        def compute(span):
            acc.deposit_sums(span, xp.view_all(span))

        return compute

    return grid.new_container(name, loading, flops_per_cell=1.0 * x.cardinality)


class ScalarResult:
    """Host-side view of a reduction: combines the per-device partials.

    Reading the value implies a device->host round trip for one scalar
    per device, exactly as a cuBLAS dot does; the conjugate-gradient
    driver reads it once per iteration for the convergence check.
    """

    def __init__(self, partial: MemSet, op=np.add):
        self.partial = partial
        self.op = op

    def value(self) -> float:
        if self.partial.virtual:
            raise RuntimeError("reduction partials of a virtual grid have no payload")
        if getattr(self.partial, "slice_reduce", False):
            # per-slice partials: concatenating the rank rows in rank
            # order reproduces the global slice order, so the summation
            # tree depends only on the domain extent — bitwise identical
            # for every partition (sum-only; see Grid.new_dot_partial)
            rows = [np.asarray(self.partial.partition(r).array) for r in range(self.partial.num_devices)]
            return float(np.sum(np.concatenate(rows)))
        vals = [float(self.partial.partition(r).array[0]) for r in range(self.partial.num_devices)]
        out = vals[0]
        for v in vals[1:]:
            out = self.op(out, v)
        return float(out)


def _check(grid: Grid, *fields) -> None:
    for f in fields:
        if f.grid is not grid:
            raise ValueError(f"field '{f.name}' belongs to grid '{f.grid.name}', not '{grid.name}'")
    cards = {f.cardinality for f in fields}
    if len(cards) > 1:
        raise ValueError(f"mixed cardinalities {cards} in one BLAS op")
