"""Domain abstraction: Grids, Fields, views, halos, stencils (paper IV-C)."""

from . import geometry, validate
from .dense_grid import DenseField, DenseFieldPartition, DenseGrid
from .field import Field
from .grid import Grid
from .halo import HaloMsg, exchange_pairs
from .layout import Layout
from .partition import normalized_shares, partition_imbalance, slab_partition, weighted_slab_partition
from .sparse_grid import SparseField, SparseFieldPartition, SparseGrid
from .stencil import (
    D2Q9_STENCIL,
    D3Q19_STENCIL,
    STENCIL_7PT,
    STENCIL_27PT,
    Stencil,
    box,
    star,
)
from .views import DataView, DenseStrip, MultiSpan, SparseStrip

__all__ = [
    "D2Q9_STENCIL",
    "D3Q19_STENCIL",
    "STENCIL_7PT",
    "STENCIL_27PT",
    "DataView",
    "DenseField",
    "DenseFieldPartition",
    "DenseGrid",
    "DenseStrip",
    "Field",
    "Grid",
    "HaloMsg",
    "Layout",
    "MultiSpan",
    "SparseField",
    "SparseFieldPartition",
    "SparseGrid",
    "SparseStrip",
    "Stencil",
    "box",
    "exchange_pairs",
    "geometry",
    "validate",
    "normalized_shares",
    "partition_imbalance",
    "slab_partition",
    "star",
    "weighted_slab_partition",
]
