"""Dense grid: the whole bounding box is stored (paper IV-C2).

Each device owns a contiguous slab of slices along axis 0, stored with
``radius`` ghost slices on both ends.  Ghost slices hold halo data from
the slab neighbours — or ``outside_value`` at the global domain border,
which makes stencil reads across the border well defined without any
branching in user code.

An optional boolean activity mask supports free-form domains: the dense
representation still *computes* on every box cell (that is exactly the
dense-vs-sparse trade-off Fig 9 explores), but the mask is available to
user kernels (e.g. as a 0/1 indicator field) and defines ``num_active``.
"""

from __future__ import annotations

import numpy as np

from repro.sets.memset import MemSet
from repro.system import Backend

from .field import Field
from .grid import Grid
from .halo import HaloMsg, exchange_pairs, staged_copy
from .layout import Layout
from .partition import normalized_shares, slab_partition, weighted_slab_partition
from .stencil import Stencil
from .views import DataView, DenseStrip, MultiSpan


class DenseGrid(Grid):
    """Full-box Cartesian grid with 1-D slab decomposition."""

    indirection = 1.0

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, ...],
        stencils: list[Stencil] | None = None,
        mask: np.ndarray | None = None,
        name: str = "",
        virtual: bool = False,
        partition_weights=None,
    ):
        super().__init__(backend, shape, stencils, name or "dense", virtual)
        if partition_weights is None:
            self.bounds = slab_partition(shape[0], backend.num_devices)
            self.partition_weights = None
        else:
            # heterogeneous machines: slab sizes proportional to each
            # device's capability share (the autotuner's knob), clamped so
            # every slab still holds disjoint boundary regions
            shares = normalized_shares(partition_weights, backend.num_devices)
            self.bounds = weighted_slab_partition(
                np.ones(shape[0]),
                backend.num_devices,
                min_size=max(1, 2 * self.radius),
                shares=shares,
            )
            self.partition_weights = tuple(float(s) for s in shares)
        self.lateral = int(np.prod(shape[1:]))
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != shape:
                raise ValueError(f"mask shape {mask.shape} != grid shape {shape}")
        self.mask = mask
        self._num_active = int(mask.sum()) if mask is not None else self.num_cells
        self._spans = [
            {view: self._build_span(rank, view) for view in DataView} for rank in range(self.num_devices)
        ]

    # -- structure ------------------------------------------------------------
    @property
    def num_active(self) -> int:
        return self._num_active

    def local_slices(self, rank: int) -> int:
        a, b = self.bounds[rank]
        return b - a

    def _edge_depths(self, rank: int) -> tuple[int, int]:
        """Boundary depth on the (low, high) side — zero at the global border."""
        lo = self.radius if rank > 0 else 0
        hi = self.radius if rank < self.num_devices - 1 else 0
        return lo, hi

    def _build_span(self, rank: int, view: DataView):
        n = self.local_slices(rank)
        lo, hi = self._edge_depths(rank)
        if view is DataView.STANDARD:
            return DenseStrip(0, n, self.lateral)
        if view is DataView.INTERNAL:
            return DenseStrip(lo, n - hi, self.lateral)
        strips = []
        if lo:
            strips.append(DenseStrip(0, lo, self.lateral))
        if hi:
            strips.append(DenseStrip(n - hi, n, self.lateral))
        return MultiSpan(strips)

    def span_for(self, rank: int, view: DataView):
        return self._spans[rank][view]

    def new_dot_partial(self, name: str, dtype=np.float64):
        """One slot per owned slice: the partition-invariant reduction.

        Dense spans index whole slices, so every reduce launch can
        deposit canonical per-slice sums; concatenating the rank rows in
        rank order reproduces the global slice order no matter where the
        slab cuts fall, making the combined scalar bitwise identical
        across device counts, partition weights, OCC levels, and
        execution modes.
        """
        counts = [self.local_slices(r) for r in range(self.num_devices)]
        partial = MemSet(self.backend, counts, dtype, name=name, virtual=self.virtual)
        partial.slice_reduce = True
        return partial

    # -- fields ------------------------------------------------------------------
    def new_field(
        self,
        name: str,
        cardinality: int = 1,
        dtype=np.float64,
        outside_value: float = 0.0,
        layout: Layout = Layout.SOA,
    ) -> "DenseField":
        return DenseField(self, name, cardinality, dtype, outside_value, layout)

    def mask_field(self, name: str = "mask") -> "DenseField":
        """0/1 indicator field of the activity mask (1 everywhere if no mask)."""
        f = self.new_field(name, cardinality=1, outside_value=0.0)
        if self.virtual:
            return f
        if self.mask is None:
            f.fill(1.0)
        else:
            for rank in range(self.num_devices):
                a, b = self.bounds[rank]
                f.partition(rank).view(self.span_for(rank, DataView.STANDARD))[...] = self.mask[a:b].astype(
                    f.dtype
                )
        f.sync_halo_now()
        return f


class DenseFieldPartition:
    """Rank-local vectorised accessor for a dense field."""

    def __init__(self, field: "DenseField", rank: int):
        self.field = field
        self.rank = rank
        grid = field.grid
        self.h = grid.radius
        self.outside_value = field.outside_value
        self.storage = field.buffers[rank].array  # None when virtual
        self._global_start = grid.bounds[rank][0]
        self._lateral_shape = grid.shape[1:]

    def _comp(self, comp: int) -> np.ndarray:
        if self.field.layout is Layout.SOA:
            return self.storage[comp]
        return self.storage[..., comp]

    def view(self, span: DenseStrip, comp: int = 0) -> np.ndarray:
        """Writable view of one component over the span's owned cells."""
        return self._comp(comp)[self.h + span.lo : self.h + span.hi]

    def view_all(self, span: DenseStrip) -> np.ndarray:
        """Writable component-first view, layout independent."""
        if self.field.layout is Layout.SOA:
            return self.storage[:, self.h + span.lo : self.h + span.hi]
        return np.moveaxis(self.storage[self.h + span.lo : self.h + span.hi], -1, 0)

    def neighbour(self, span: DenseStrip, offset: tuple[int, ...], comp: int = 0) -> np.ndarray:
        """Read-only neighbour values at ``offset`` for every cell in the span.

        Reads across the partition edge resolve to halo slots (filled by
        the last halo update); reads across the global border resolve to
        ``outside_value``.
        """
        d0, *lateral = offset
        if abs(d0) > self.h:
            raise ValueError(
                f"offset {offset} exceeds halo radius {self.h} of grid '{self.field.grid.name}'"
            )
        src = self._comp(comp)
        block = src[self.h + span.lo + d0 : self.h + span.hi + d0]
        if not any(lateral):
            return block
        out = np.full(block.shape, self.outside_value, dtype=self.field.dtype)
        src_ix: list[slice] = [slice(None)]
        dst_ix: list[slice] = [slice(None)]
        for d, size in zip(lateral, self._lateral_shape):
            src_ix.append(slice(max(d, 0), size + min(d, 0)))
            dst_ix.append(slice(max(-d, 0), size + min(-d, 0)))
        out[tuple(dst_ix)] = block[tuple(src_ix)]
        return out

    def coords(self, span: DenseStrip) -> tuple[np.ndarray, ...]:
        """Broadcastable global coordinates of the span's cells."""
        ndim = self.field.grid.ndim
        axis0 = np.arange(self._global_start + span.lo, self._global_start + span.hi)
        arrays = [axis0] + [np.arange(s) for s in self._lateral_shape]
        out = []
        for axis, arr in enumerate(arrays):
            shape = [1] * ndim
            shape[axis] = len(arr)
            out.append(arr.reshape(shape))
        return tuple(out)


class DenseField(Field):
    """Field stored over the full bounding box, with ghost slices."""

    def __init__(self, grid: DenseGrid, name, cardinality, dtype, outside_value, layout):
        super().__init__(grid, name, cardinality, dtype, outside_value, layout)
        h = grid.radius
        for rank in range(grid.num_devices):
            n = grid.local_slices(rank) + 2 * h
            cells = (n, *grid.shape[1:])
            shape = (cardinality, *cells) if layout is Layout.SOA else (*cells, cardinality)
            buf = grid.backend.allocate(rank, shape, dtype, virtual=grid.virtual)
            if buf.array is not None:
                buf.array[...] = outside_value
            self.buffers.append(buf)

    def partition(self, rank: int) -> DenseFieldPartition:
        return DenseFieldPartition(self, rank)

    def fill(self, value, comp: int | None = None) -> None:
        self._require_storage()
        for rank in range(self.num_devices):
            part = self.partition(rank)
            span = self.grid.span_for(rank, DataView.STANDARD)
            if comp is None:
                part.view_all(span)[...] = value
            else:
                part.view(span, comp)[...] = value

    def init(self, fn, comp: int | None = None) -> None:
        self._require_storage()
        for rank in range(self.num_devices):
            part = self.partition(rank)
            span = self.grid.span_for(rank, DataView.STANDARD)
            values = fn(*part.coords(span))
            comps = range(self.cardinality) if comp is None else [comp]
            for c in comps:
                part.view(span, c)[...] = values
        self.sync_halo_now()

    def to_numpy(self) -> np.ndarray:
        self._require_storage()
        out = np.full((self.cardinality, *self.grid.shape), self.outside_value, dtype=self.dtype)
        for rank in range(self.num_devices):
            a, b = self.grid.bounds[rank]
            span = self.grid.span_for(rank, DataView.STANDARD)
            out[:, a:b] = self.partition(rank).view_all(span)
        return out

    def halo_messages(self) -> list[HaloMsg]:
        h = self.grid.radius
        if h == 0 or self.num_devices == 1:
            return []
        msgs: list[HaloMsg] = []
        lateral_cells = self.grid.lateral
        per_comp = self.layout is Layout.SOA and self.cardinality > 1
        comps = range(self.cardinality) if per_comp else [None]
        slab_bytes = h * lateral_cells * self.dtype.itemsize * (1 if per_comp else self.cardinality)
        for src, dst in exchange_pairs(self.num_devices):
            n_src = self.grid.local_slices(src)
            n_dst = self.grid.local_slices(dst)
            if dst == src + 1:
                src_sl = slice(n_src, n_src + h)  # top owned slices (storage offset +h folds in)
                dst_sl = slice(0, h)  # low halo slots
            else:
                src_sl = slice(h, 2 * h)  # low owned slices
                dst_sl = slice(n_dst + h, n_dst + 2 * h)  # high halo slots
            for c in comps:
                name = f"halo:{self.name}" + (f".{c}" if c is not None else "") + f":{src}->{dst}"
                if self.virtual:
                    fn = lambda: None  # noqa: E731
                else:
                    sp, dp = self.partition(src), self.partition(dst)
                    if c is None and self.layout is Layout.AOS:
                        s_arr, d_arr = sp.storage, dp.storage
                    else:
                        cc = 0 if c is None else c
                        s_arr, d_arr = sp._comp(cc), dp._comp(cc)
                    pool = self.grid.backend.staging
                    src_dev = self.grid.backend.device(src)

                    def fn(s_arr=s_arr, d_arr=d_arr, src_sl=src_sl, dst_sl=dst_sl, pool=pool, dev=src_dev):
                        staged_copy(pool, dev, d_arr[dst_sl], s_arr[src_sl])

                msgs.append(HaloMsg(name, src, dst, slab_bytes, fn))
        return msgs

    def batched_halo_fn(self, msgs):
        """One staged copy standing in for a whole per-component message family.

        The fusion pass hands this the contiguous run of per-component
        SoA halo messages it coalesced (one ``(src, dst)`` pair, every
        component exactly once, any order); the returned closure moves
        the multi-component slab ``storage[:, slices]`` through staging
        in a single :func:`staged_copy` — same bytes to the same ghost
        slots as the per-component copies, one dispatch instead of
        ``cardinality``.  Returns ``None`` whenever the messages are not
        exactly such a family, so callers can always fall back to
        running the constituent copies one by one.
        """
        if self.virtual or self.layout is not Layout.SOA or self.cardinality <= 1:
            return None
        if len(msgs) != self.cardinality:
            return None
        src, dst = msgs[0].src_rank, msgs[0].dst_rank
        expected = {f"halo:{self.name}.{c}:{src}->{dst}" for c in range(self.cardinality)}
        if {m.name for m in msgs} != expected:
            return None
        if any(m.src_rank != src or m.dst_rank != dst for m in msgs):
            return None
        h = self.grid.radius
        n_src = self.grid.local_slices(src)
        n_dst = self.grid.local_slices(dst)
        if dst == src + 1:
            src_sl = slice(n_src, n_src + h)
            dst_sl = slice(0, h)
        else:
            src_sl = slice(h, 2 * h)
            dst_sl = slice(n_dst + h, n_dst + 2 * h)
        s_slab = self.partition(src).storage[:, src_sl]
        d_slab = self.partition(dst).storage[:, dst_sl]
        pool = self.grid.backend.staging
        src_dev = self.grid.backend.device(src)

        def fn(s=s_slab, d=d_slab, pool=pool, dev=src_dev):
            staged_copy(pool, dev, d, s)

        return fn
