"""Field: metadata attached to every active cell of a Grid (paper IV-C2).

A Field extends the Set level's Multi-GPU data interface with
domain-specific capabilities: view-restricted vectorised access to cell
metadata, read-only neighbour access along registered stencil offsets
(the own-compute rule), and the explicit halo coherency model.

New fields start with every entry — owned cells and halo slots — equal
to ``outside_value``, so stencil reads across the global domain border
are well-defined before any user initialisation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sets.dataset import MultiDeviceData
from repro.system import DeviceBuffer

from .halo import HaloMsg
from .layout import Layout
from .views import DataView


class Field(MultiDeviceData, abc.ABC):
    """Per-cell scalar or vector metadata over a Grid."""

    def __init__(self, grid, name: str, cardinality: int, dtype, outside_value: float, layout: Layout):
        super().__init__(name)
        if cardinality < 1:
            raise ValueError("cardinality must be >= 1")
        self.grid = grid
        self.cardinality = cardinality
        self.dtype = np.dtype(dtype)
        self.outside_value = outside_value
        self.layout = layout
        self.buffers: list[DeviceBuffer] = []

    # -- MultiDeviceData ----------------------------------------------------
    @property
    def num_devices(self) -> int:
        return self.grid.num_devices

    def span_for(self, rank: int, view: DataView):
        return self.grid.span_for(rank, view)

    @property
    def bytes_per_cell(self) -> int:
        return self.dtype.itemsize * self.cardinality

    @property
    def virtual(self) -> bool:
        return self.grid.virtual

    # -- domain interface -----------------------------------------------------
    @abc.abstractmethod
    def partition(self, rank: int):
        """Rank-local accessor used inside compute lambdas."""

    @abc.abstractmethod
    def halo_messages(self) -> list[HaloMsg]:
        """The explicit transfers one haloUpdate of this field performs."""

    @abc.abstractmethod
    def to_numpy(self) -> np.ndarray:
        """Global array of shape ``(cardinality, *grid.shape)``.

        Inactive/outside cells read as ``outside_value``.
        """

    @abc.abstractmethod
    def fill(self, value, comp: int | None = None) -> None:
        """Set owned cells (every component, or one) to a constant."""

    @abc.abstractmethod
    def init(self, fn, comp: int | None = None) -> None:
        """Set owned cells from ``fn(*coords)`` and refresh halos.

        ``fn`` receives one broadcastable global-coordinate array per
        grid axis and must return values broadcastable to the cells'
        shape — the same callable works on dense and sparse grids.
        """

    def _require_storage(self) -> None:
        if self.virtual:
            raise RuntimeError(f"field '{self.name}' is virtual (planning-only); it has no payload")

    def load_numpy(self, array: np.ndarray) -> None:
        """Set owned cells from a global ``(cardinality, *grid.shape)`` array.

        The exact inverse of :meth:`to_numpy` on owned cells, independent
        of the grid's partitioning — which is what lets a checkpoint
        taken on ``n`` devices restore onto the surviving ``n-1`` after a
        device loss (the array is re-scattered across the new slabs and
        halos are refreshed).
        """
        self._require_storage()
        arr = np.asarray(array, dtype=self.dtype)
        expected = (self.cardinality, *self.grid.shape)
        if arr.shape != expected:
            raise ValueError(f"field '{self.name}' expects shape {expected}, got {arr.shape}")
        for c in range(self.cardinality):
            self.init(lambda *coords, _comp=arr[c]: _comp[tuple(coords)], comp=c)

    def sync_halo_now(self) -> None:
        """Eagerly run a full halo update (init-time convenience).

        Inside a Skeleton, halo updates are scheduled automatically; this
        helper is for Set-level code and for making stencil reads valid
        right after ``init``/``fill``.
        """
        for msg in self.halo_messages():
            q = self.grid.backend.new_queue(msg.src_rank, name=f"halo:{self.name}")
            q.enqueue_copy(
                msg.name,
                msg.fn,
                self.grid.backend.device(msg.src_rank),
                self.grid.backend.device(msg.dst_rank),
                msg.nbytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.name}, card={self.cardinality}, "
            f"dtype={self.dtype}, layout={self.layout.value})"
        )
