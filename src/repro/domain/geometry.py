"""Free-form domain builders: boolean mask geometry for sparse grids.

The paper motivates Neon with free-form engineering domains ("as in most
engineering problems, the domain is free-form, i.e. not a cubic") and
its Listing 1 builds a circular 2-D domain.  These helpers construct the
boolean activity masks such domains are made of, with a tiny composable
CSG algebra (union / intersection / difference) over numpy arrays.

All shapes take the grid ``shape`` and return a boolean array of that
shape, True = active cell.  Coordinates are cell indices; axis 0 is the
partitioned axis.
"""

from __future__ import annotations

import numpy as np


def _grids(shape: tuple[int, ...]) -> list[np.ndarray]:
    return np.meshgrid(*[np.arange(s, dtype=np.float64) for s in shape], indexing="ij")


def full(shape: tuple[int, ...]) -> np.ndarray:
    """Every cell active (a dense box)."""
    return np.ones(shape, dtype=bool)


def ball(shape: tuple[int, ...], center: tuple[float, ...] | None = None, radius: float | None = None) -> np.ndarray:
    """An n-sphere; defaults to the largest ball centred in the box."""
    if center is None:
        center = tuple((s - 1) / 2.0 for s in shape)
    if radius is None:
        radius = 0.45 * min(shape)
    if len(center) != len(shape):
        raise ValueError(f"center {center} does not match shape {shape}")
    grids = _grids(shape)
    r2 = sum((g - c) ** 2 for g, c in zip(grids, center))
    return r2 <= radius**2


def box(shape: tuple[int, ...], lo: tuple[int, ...], hi: tuple[int, ...]) -> np.ndarray:
    """An axis-aligned box with cells in ``[lo, hi)`` per axis."""
    if not (len(lo) == len(hi) == len(shape)):
        raise ValueError("lo/hi must match the grid dimensionality")
    out = np.zeros(shape, dtype=bool)
    out[tuple(slice(a, b) for a, b in zip(lo, hi))] = True
    return out


def cylinder(
    shape: tuple[int, int, int],
    axis: int = 0,
    center: tuple[float, float] | None = None,
    radius: float | None = None,
) -> np.ndarray:
    """A circular cylinder along one axis of a 3-D box."""
    if len(shape) != 3:
        raise ValueError("cylinder needs a 3-D grid")
    lateral = [a for a in range(3) if a != axis]
    if center is None:
        center = tuple((shape[a] - 1) / 2.0 for a in lateral)
    if radius is None:
        radius = 0.45 * min(shape[a] for a in lateral)
    grids = _grids(shape)
    r2 = (grids[lateral[0]] - center[0]) ** 2 + (grids[lateral[1]] - center[1]) ** 2
    return r2 <= radius**2


def shell(shape: tuple[int, ...], inner: float, outer: float, center: tuple[float, ...] | None = None) -> np.ndarray:
    """A hollow spherical shell: inner < r <= outer."""
    if inner >= outer:
        raise ValueError("inner radius must be smaller than outer")
    return ball(shape, center, outer) & ~ball(shape, center, inner)


def union(*masks: np.ndarray) -> np.ndarray:
    out = masks[0].copy()
    for m in masks[1:]:
        out |= m
    return out


def intersection(*masks: np.ndarray) -> np.ndarray:
    out = masks[0].copy()
    for m in masks[1:]:
        out &= m
    return out


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a & ~b


def ensure_partitionable(mask: np.ndarray, num_devices: int, radius: int = 1) -> np.ndarray:
    """Check a mask can be slab-partitioned for a device count/halo depth.

    Raises with a helpful message if the axis-0 extent cannot provide
    ``2 * radius`` slices per device; returns the mask unchanged
    otherwise (for fluent use inside grid constructors).
    """
    need = num_devices * max(1, 2 * radius)
    if mask.shape[0] < need:
        raise ValueError(
            f"axis-0 extent {mask.shape[0]} cannot host {num_devices} devices with halo "
            f"radius {radius} (needs >= {need} slices)"
        )
    if not mask.any():
        raise ValueError("mask has no active cells")
    return mask
