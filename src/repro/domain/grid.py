"""Grid: the blueprint for rectilinear computational domains (paper IV-C1).

A Grid owns the domain extent, the sparsity pattern, the union stencil
(which sizes halos and splits cells into internal/boundary views), and
the slab decomposition over the backend's devices.  Fields are created
*from* a grid and inherit all of that structure; Containers are created
from a grid and iterate its cells.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sets.container import Container
from repro.sets.dataset import MultiDeviceData
from repro.sets.memset import MemSet
from repro.system import Backend

from .layout import Layout
from .stencil import Stencil
from .views import DataView


class Grid(MultiDeviceData, abc.ABC):
    """Abstract rectilinear grid decomposed in slabs along axis 0."""

    #: relative cost multiplier of this grid's memory accesses (the
    #: element-sparse connectivity walk pays an indirection penalty)
    indirection: float = 1.0

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, ...],
        stencils: list[Stencil] | None = None,
        name: str = "",
        virtual: bool = False,
    ):
        super().__init__(name)
        shape = tuple(int(s) for s in shape)
        if len(shape) not in (2, 3):
            raise ValueError(f"grids are 2-D or 3-D, got shape {shape}")
        if any(s < 1 for s in shape):
            raise ValueError(f"empty grid shape {shape}")
        self.backend = backend
        self.shape = shape
        self.virtual = virtual
        self.stencil: Stencil | None = None
        for st in stencils or []:
            if st.ndim != len(shape):
                raise ValueError(f"stencil '{st.name}' is {st.ndim}-D but the grid is {len(shape)}-D")
            self.stencil = st if self.stencil is None else self.stencil.union(st)
        self.radius = self.stencil.radius if self.stencil else 0
        if backend.num_devices > 1 and self.radius > 0:
            min_slab = shape[0] // backend.num_devices
            if min_slab < 2 * self.radius:
                raise ValueError(
                    f"slabs of ~{min_slab} slices cannot hold disjoint boundary regions for "
                    f"halo radius {self.radius}; use fewer devices or a larger domain"
                )

    # -- MultiDeviceData interface ---------------------------------------
    @property
    def num_devices(self) -> int:
        return self.backend.num_devices

    @property
    def bytes_per_cell(self) -> int:
        # A grid is an index space, not data: Containers created from it
        # take their byte traffic from the Fields their Loader declares.
        return 0

    def partition(self, rank: int):
        raise TypeError("grids are index spaces; load Fields, not the grid itself")

    # -- domain queries ----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_cells(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    @abc.abstractmethod
    def num_active(self) -> int:
        """Number of cells computation actually runs on."""

    @property
    def sparsity_ratio(self) -> float:
        """Active cells over bounding-box cells (1.0 = fully dense)."""
        return self.num_active / self.num_cells

    @abc.abstractmethod
    def span_for(self, rank: int, view: DataView):
        ...

    @abc.abstractmethod
    def new_field(
        self,
        name: str,
        cardinality: int = 1,
        dtype=np.float64,
        outside_value: float = 0.0,
        layout: Layout = Layout.SOA,
    ):
        """Create a Field of this grid (paper Listing 1)."""

    # -- computation factories ----------------------------------------------
    def new_container(self, name: str, loading, flops_per_cell: float = 0.0, stencil_read_redundancy: float = 1.0):
        """Create a Container iterating this grid's active cells."""
        return Container(
            name,
            self,
            loading,
            flops_per_cell=flops_per_cell,
            stencil_read_redundancy=stencil_read_redundancy,
        )

    def new_reduce_partial(self, name: str, dtype=np.float64) -> MemSet:
        """One reduction slot per device, for ReduceOp containers."""
        return MemSet(self.backend, [1] * self.num_devices, dtype, name=name, virtual=self.virtual)

    def new_dot_partial(self, name: str, dtype=np.float64) -> MemSet:
        """Partial buffer for *partition-invariant* sum reductions.

        Grids that can, override this with a per-axis-0-slice partial
        whose combined value is bitwise identical for any device count,
        OCC level, or execution mode (see ``SliceReduceAccessor``).  The
        base implementation falls back to the per-rank partial, whose
        combined value depends on where the slab cuts fall.
        """
        return self.new_reduce_partial(name, dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name}, shape={self.shape}, devices={self.num_devices})"
