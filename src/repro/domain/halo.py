"""Halo coherency model: explicit memory transfers between partitions.

The paper's Fields follow an explicit halo-exchange strategy (chosen over
unified memory for full control, section IV-C2): each partition allocates
halo regions and ``haloUpdate`` issues explicit peer copies.  Because
both grids decompose on one axis and keep boundary metadata contiguous,
a scalar field needs exactly 2 messages per interior partition pair and
an n-component SoA field ``2n`` (one per component per direction); AoS
keeps components interleaved so 2 messages suffice.  No marshaling is
ever required.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HaloMsg:
    """One peer-to-peer transfer of a contiguous boundary segment."""

    name: str
    src_rank: int
    dst_rank: int
    nbytes: int
    fn: Callable[[], None]

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("negative halo message size")
        if abs(self.src_rank - self.dst_rank) != 1:
            raise ValueError(
                f"halo messages only flow between slab neighbours, got {self.src_rank}->{self.dst_rank}"
            )

    @property
    def side(self) -> str:
        """Which halo slab of the *destination* this message fills.

        An upward message (src below dst) lands in the destination's low
        ghost slots; a downward one in its high slots.  The sanitizer
        keys halo regions on ``(field, dst_rank, side)``.
        """
        return "low" if self.src_rank < self.dst_rank else "high"


def halo_sides(rank: int, num_devices: int) -> tuple[str, ...]:
    """The halo slabs a partition actually owns on the 1-D decomposition."""
    sides = []
    if rank > 0:
        sides.append("low")
    if rank < num_devices - 1:
        sides.append("high")
    return tuple(sides)


def field_exchanges_halo(field) -> bool:
    """Whether a data set participates in halo exchange at all.

    True only for grid-backed fields with a positive stencil radius on a
    multi-device partition — reduce partials and single-device fields
    have no ghost cells to keep coherent.
    """
    grid = getattr(field, "grid", None)
    return grid is not None and getattr(grid, "radius", 0) > 0 and field.num_devices > 1


def exchange_pairs(num_devices: int) -> list[tuple[int, int]]:
    """All directed neighbour pairs of the 1-D slab decomposition."""
    pairs = []
    for r in range(num_devices - 1):
        pairs.append((r, r + 1))  # push up
        pairs.append((r + 1, r))  # push down
    return pairs


def staged_copy(pool, device, dst: np.ndarray, src: np.ndarray) -> None:
    """Copy ``src`` into ``dst`` through a pooled staging buffer.

    The transfer path a halo message takes: source partition -> staging
    block -> destination halo slots.  The staging block comes from the
    backend's :class:`~repro.system.memory.StagingPool` (size-bucketed,
    per-device free lists) and returns to it when the copy retires, so
    steady-state exchanges allocate nothing.
    """
    pool.staged_copy(device, dst, src)
