"""Halo coherency model: explicit memory transfers between partitions.

The paper's Fields follow an explicit halo-exchange strategy (chosen over
unified memory for full control, section IV-C2): each partition allocates
halo regions and ``haloUpdate`` issues explicit peer copies.  Because
both grids decompose on one axis and keep boundary metadata contiguous,
a scalar field needs exactly 2 messages per interior partition pair and
an n-component SoA field ``2n`` (one per component per direction); AoS
keeps components interleaved so 2 messages suffice.  No marshaling is
ever required.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class HaloMsg:
    """One peer-to-peer transfer of a contiguous boundary segment."""

    name: str
    src_rank: int
    dst_rank: int
    nbytes: int
    fn: Callable[[], None]

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("negative halo message size")
        if abs(self.src_rank - self.dst_rank) != 1:
            raise ValueError(
                f"halo messages only flow between slab neighbours, got {self.src_rank}->{self.dst_rank}"
            )


def exchange_pairs(num_devices: int) -> list[tuple[int, int]]:
    """All directed neighbour pairs of the 1-D slab decomposition."""
    pairs = []
    for r in range(num_devices - 1):
        pairs.append((r, r + 1))  # push up
        pairs.append((r + 1, r))  # push down
    return pairs


def staged_copy(pool, device, dst: np.ndarray, src: np.ndarray) -> None:
    """Copy ``src`` into ``dst`` through a pooled staging buffer.

    The transfer path a halo message takes: source partition -> staging
    block -> destination halo slots.  The staging block comes from the
    backend's :class:`~repro.system.memory.StagingPool` (size-bucketed,
    per-device free lists) and returns to it when the copy retires, so
    steady-state exchanges allocate nothing.
    """
    pool.staged_copy(device, dst, src)
