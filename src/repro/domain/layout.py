"""Memory layouts for vector fields: Structure-of-Arrays vs Array-of-Structures.

The paper exposes layout as a Field property switchable without touching
application code; it matters for halo traffic (an SoA field of
cardinality n needs 2n transfers per partition, an AoS field 2) and for
per-component access locality.
"""

from __future__ import annotations

import enum


class Layout(enum.Enum):
    """Vector-field memory organisation: Structure-of-Arrays or Array-of-Structures."""

    SOA = "soa"
    AOS = "aos"

    def component_axis_first(self) -> bool:
        return self is Layout.SOA
