"""Domain partitioning along the outermost axis (paper IV-C2).

On single-node multi-GPU systems the device count is small, so both
grids decompose the Cartesian box on one dimension only — each device
then talks to at most two neighbours and boundary metadata stays
contiguous.  Dense grids split the axis into near-equal slabs; sparse
grids split it so every device receives a near-equal number of *active*
cells (the load-balancing the Domain level adds on top of MemSet).
"""

from __future__ import annotations

import numpy as np


def slab_partition(extent: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into ``num_parts`` contiguous near-equal slabs.

    The first ``extent % num_parts`` slabs get one extra slice, matching
    the usual block distribution.  Every slab is non-empty, so ``extent``
    must be at least ``num_parts``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if extent < num_parts:
        raise ValueError(f"cannot split extent {extent} into {num_parts} non-empty slabs")
    base, extra = divmod(extent, num_parts)
    bounds = []
    start = 0
    for r in range(num_parts):
        stop = start + base + (1 if r < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def weighted_slab_partition(
    weights: np.ndarray, num_parts: int, min_size: int = 1
) -> list[tuple[int, int]]:
    """Split slices ``[0, len(weights))`` into contiguous slabs of near-equal weight.

    ``weights[i]`` is the load of slice ``i`` (for a sparse grid: its
    active-cell count).  Greedy prefix cutting at ideal quantiles.  Every
    slab gets at least ``min_size`` slices — a grid with halo radius ``h``
    needs slabs of at least ``2h`` so its low and high boundary regions
    stay disjoint.
    """
    weights = np.asarray(weights, dtype=np.float64)
    extent = len(weights)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if min_size < 1:
        raise ValueError("min_size must be >= 1")
    if extent < num_parts * min_size:
        raise ValueError(
            f"cannot split {extent} slices into {num_parts} slabs of at least {min_size} slices"
        )
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total == 0.0:
        return slab_partition(extent, num_parts)

    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    bounds = []
    start = 0
    for r in range(num_parts):
        if r == num_parts - 1:
            stop = extent
        else:
            target = total * (r + 1) / num_parts
            stop = int(np.searchsorted(prefix, target, side="left"))
            # honour the minimum slab size here and for the remaining parts
            stop = max(stop, start + min_size)
            stop = min(stop, extent - (num_parts - 1 - r) * min_size)
        bounds.append((start, stop))
        start = stop
    return bounds


def partition_imbalance(weights: np.ndarray, bounds: list[tuple[int, int]]) -> float:
    """Max-over-mean load ratio of a partitioning (1.0 = perfect balance)."""
    weights = np.asarray(weights, dtype=np.float64)
    loads = [float(weights[a:b].sum()) for a, b in bounds]
    mean = sum(loads) / len(loads)
    if mean == 0.0:
        return 1.0
    return max(loads) / mean
