"""Domain partitioning along the outermost axis (paper IV-C2).

On single-node multi-GPU systems the device count is small, so both
grids decompose the Cartesian box on one dimension only — each device
then talks to at most two neighbours and boundary metadata stays
contiguous.  Dense grids split the axis into near-equal slabs; sparse
grids split it so every device receives a near-equal number of *active*
cells (the load-balancing the Domain level adds on top of MemSet).
"""

from __future__ import annotations

import numpy as np


def slab_partition(extent: int, num_parts: int) -> list[tuple[int, int]]:
    """Split ``[0, extent)`` into ``num_parts`` contiguous near-equal slabs.

    The first ``extent % num_parts`` slabs get one extra slice, matching
    the usual block distribution.  Every slab is non-empty, so ``extent``
    must be at least ``num_parts``.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if extent < num_parts:
        raise ValueError(f"cannot split extent {extent} into {num_parts} non-empty slabs")
    base, extra = divmod(extent, num_parts)
    bounds = []
    start = 0
    for r in range(num_parts):
        stop = start + base + (1 if r < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def normalized_shares(shares, num_parts: int) -> np.ndarray:
    """Validate per-part capability shares; normalise them to sum 1.

    ``None`` and the all-zero degenerate case (every device equally
    useless) both resolve to equal shares instead of dividing by zero.
    """
    if shares is None:
        return np.full(num_parts, 1.0 / num_parts)
    shares = np.asarray(shares, dtype=np.float64)
    if shares.shape != (num_parts,):
        raise ValueError(f"need one share per part: shape {shares.shape} != ({num_parts},)")
    if not np.all(np.isfinite(shares)):
        raise ValueError(f"shares must be finite, got {shares}")
    if np.any(shares < 0):
        raise ValueError(f"shares must be non-negative, got {shares}")
    total = float(shares.sum())
    if total == 0.0:
        return np.full(num_parts, 1.0 / num_parts)
    return shares / total


def weighted_slab_partition(
    weights: np.ndarray, num_parts: int, min_size: int = 1, shares=None
) -> list[tuple[int, int]]:
    """Split slices ``[0, len(weights))`` into contiguous slabs whose loads
    track the per-part ``shares``.

    ``weights[i]`` is the load of slice ``i`` (for a sparse grid: its
    active-cell count; for a dense grid: all ones).  ``shares[r]`` is the
    fraction of the total load part ``r`` should carry — the Domain-level
    hook for heterogeneous machines, where the autotuner passes each
    device's relative throughput.  ``shares=None`` means equal parts (the
    historical equal-load behaviour).  Greedy prefix cutting at the share
    quantiles.  Every slab gets at least ``min_size`` slices — a grid
    with halo radius ``h`` needs slabs of at least ``2h`` so its low and
    high boundary regions stay disjoint.

    The all-zero degenerate cases fall back instead of dividing by zero:
    zero total *weight* distributes slices (not load) by share, and zero
    total *share* means equal shares.
    """
    weights = np.asarray(weights, dtype=np.float64)
    extent = len(weights)
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    if min_size < 1:
        raise ValueError("min_size must be >= 1")
    if extent < num_parts * min_size:
        raise ValueError(
            f"cannot split {extent} slices into {num_parts} slabs of at least {min_size} slices"
        )
    if not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    shares = normalized_shares(shares, num_parts)
    total = float(weights.sum())
    if total == 0.0:
        # no load information: distribute the *slices* proportionally
        weights = np.ones(extent, dtype=np.float64)
        total = float(extent)

    prefix = np.concatenate([[0.0], np.cumsum(weights)])
    cum_share = np.cumsum(shares)
    bounds = []
    start = 0
    for r in range(num_parts):
        if r == num_parts - 1:
            stop = extent
        else:
            target = total * float(cum_share[r])
            stop = int(np.searchsorted(prefix, target, side="left"))
            # honour the minimum slab size here and for the remaining parts
            stop = max(stop, start + min_size)
            stop = min(stop, extent - (num_parts - 1 - r) * min_size)
        bounds.append((start, stop))
        start = stop
    return bounds


def partition_imbalance(weights: np.ndarray, bounds: list[tuple[int, int]], shares=None) -> float:
    """Worst-case overload ratio of a partitioning (1.0 = perfect balance).

    Without ``shares`` this is the classic max-over-mean load ratio.
    With ``shares`` each part's load is measured against its *target*
    fraction ``total * share_r``, so 1.0 means every device carries
    exactly the work its capability share asked for.  A part with zero
    share but non-zero load is infinitely overloaded.
    """
    weights = np.asarray(weights, dtype=np.float64)
    loads = [float(weights[a:b].sum()) for a, b in bounds]
    total = sum(loads)
    if total == 0.0:
        return 1.0
    shares = normalized_shares(shares, len(bounds))
    worst = 0.0
    for load, share in zip(loads, shares):
        target = total * float(share)
        if target == 0.0:
            if load > 0.0:
                return float("inf")
            continue
        worst = max(worst, load / target)
    return worst
