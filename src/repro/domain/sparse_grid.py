"""Element-sparse grid: only active cells are stored (paper IV-C2, Fig 9).

Active cells are enumerated with an explicit connectivity table mapping
each (cell, stencil offset) pair to the local index of the neighbour —
or -1 when the neighbour is inactive or outside the box, in which case
reads resolve to the field's ``outside_value``.

Per partition, owned cells are ordered ``[low-boundary | internal |
high-boundary]`` and halo copies of the neighbours' boundary cells are
appended after the owned block.  This ordering keeps every data view
*and* every halo segment contiguous, so a haloUpdate is 2 messages per
partition for scalar/AoS fields and 2n for cardinality-n SoA fields,
with no marshaling — the property the paper engineers both grids for.

Slab bounds along axis 0 are chosen to balance *active* cells per
device (the Domain level's load-balancing duty).

The constructor accepts either a full boolean ``mask`` or (for *virtual*
planning-only grids) just the per-slice active-cell counts, which is all
the span/cost machinery needs at paper scale.
"""

from __future__ import annotations

import numpy as np

from repro.system import Backend

from .field import Field
from .grid import Grid
from .halo import HaloMsg, exchange_pairs, staged_copy
from .layout import Layout
from .partition import weighted_slab_partition
from .stencil import Stencil
from .views import DataView, MultiSpan, SparseStrip


class SparseGrid(Grid):
    """Free-form domain stored as active cells + connectivity table."""

    #: gather/scatter overhead of the connectivity walk relative to a
    #: dense streaming access; calibrated so dense and sparse cross over
    #: near sparsity 0.8 as in the paper's Fig 9
    indirection = 1.25

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, ...] | None = None,
        stencils: list[Stencil] | None = None,
        mask: np.ndarray | None = None,
        active_per_slice: np.ndarray | None = None,
        name: str = "",
        virtual: bool = False,
        indirection: float | None = None,
        partition_weights=None,
    ):
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if shape is None:
                shape = mask.shape
            elif tuple(shape) != mask.shape:
                raise ValueError(f"shape {shape} != mask shape {mask.shape}")
        elif shape is None:
            raise ValueError("provide a mask or an explicit shape")
        super().__init__(backend, shape, stencils, name or "sparse", virtual)
        if indirection is not None:
            if indirection < 1.0:
                raise ValueError("indirection must be >= 1.0")
            self.indirection = indirection
        if mask is None and active_per_slice is None:
            raise ValueError("provide a mask, or active_per_slice for virtual planning")
        if mask is None and not virtual:
            raise ValueError("non-virtual sparse grids need the full mask")
        self.mask = mask

        if mask is not None:
            per_slice = mask.reshape(mask.shape[0], -1).sum(axis=1)
        else:
            per_slice = np.asarray(active_per_slice, dtype=np.int64)
            if len(per_slice) != self.shape[0]:
                raise ValueError(
                    f"active_per_slice has {len(per_slice)} entries for {self.shape[0]} slices"
                )
            if np.any(per_slice < 0) or np.any(per_slice > np.prod(self.shape[1:])):
                raise ValueError("active_per_slice entries out of range")
        self._per_slice = per_slice
        self._num_active = int(per_slice.sum())
        if self._num_active == 0:
            raise ValueError("sparse grid has no active cells")
        # active-cell balance (the Domain level's duty), scaled by the
        # per-device capability shares when a tuner provides them
        from .partition import normalized_shares  # noqa: PLC0415 - sibling import

        self.partition_weights = (
            None
            if partition_weights is None
            else tuple(float(s) for s in normalized_shares(partition_weights, backend.num_devices))
        )
        self.bounds = weighted_slab_partition(
            per_slice,
            backend.num_devices,
            min_size=max(1, 2 * self.radius),
            shares=self.partition_weights,
        )

        h = self.radius
        n = self.num_devices
        self.n_owned: list[int] = []
        self.n_bnd_lo: list[int] = []
        self.n_bnd_hi: list[int] = []
        for rank, (s, e) in enumerate(self.bounds):
            self.n_owned.append(int(per_slice[s:e].sum()))
            self.n_bnd_lo.append(int(per_slice[s : s + h].sum()) if rank > 0 else 0)
            self.n_bnd_hi.append(int(per_slice[e - h : e].sum()) if rank < n - 1 else 0)
        # halo blocks mirror the neighbour's boundary blocks
        self.n_halo_lo = [self.n_bnd_hi[r - 1] if r > 0 else 0 for r in range(n)]
        self.n_halo_hi = [self.n_bnd_lo[r + 1] if r < n - 1 else 0 for r in range(n)]
        for r in range(n):
            if self.n_bnd_lo[r] + self.n_bnd_hi[r] > self.n_owned[r]:
                raise ValueError(
                    f"rank {r}: boundary cells ({self.n_bnd_lo[r]}+{self.n_bnd_hi[r]}) exceed "
                    f"owned cells ({self.n_owned[r]}); domain too thin for this device count"
                )

        self.offset_row: dict[tuple[int, ...], int] = (
            {off: k for k, off in enumerate(self.stencil.offsets)} if self.stencil else {}
        )
        self.owned_coords: list[np.ndarray | None] = [None] * n
        self.conn: list[np.ndarray | None] = [None] * n
        self._conn_buffers = []
        if not virtual:
            self._build_topology()
        else:
            # account the connectivity-table footprint even when planning
            for rank in range(n):
                if self.stencil:
                    self._conn_buffers.append(
                        backend.allocate(
                            rank, (len(self.offset_row), self.n_owned[rank]), np.int64, virtual=True
                        )
                    )
                self._conn_buffers.append(
                    backend.allocate(rank, (self.n_owned[rank], self.ndim), np.int32, virtual=True)
                )

    # -- construction -----------------------------------------------------
    def _build_topology(self) -> None:
        h = self.radius
        lat_pad = (
            max((max(abs(d) for d in off[1:]) if len(off) > 1 else 0) for off in self.stencil.offsets)
            if self.stencil
            else 0
        )
        for rank, (s, e) in enumerate(self.bounds):
            slab = self.mask[s:e]
            coords = np.argwhere(slab)  # (n_owned, ndim), sorted by (z, lateral)
            z_loc = coords[:, 0]
            n_loc = e - s
            cls = np.ones(len(coords), dtype=np.int8)
            if rank > 0:
                cls[z_loc < h] = 0
            if rank < self.num_devices - 1:
                cls[z_loc >= n_loc - h] = 2
            order = np.argsort(cls, kind="stable")
            coords = coords[order]
            gcoords = coords.copy()
            gcoords[:, 0] += s
            coords_buf = self.backend.allocate(rank, gcoords.shape, np.int32)
            coords_buf.array[...] = gcoords
            self._conn_buffers.append(coords_buf)
            self.owned_coords[rank] = coords_buf.array

            if not self.stencil:
                continue

            halo_lo = np.argwhere(self.mask[s - h : s]) if rank > 0 else np.zeros((0, self.ndim), int)
            halo_hi = (
                np.argwhere(self.mask[e : e + h]) if rank < self.num_devices - 1 else np.zeros((0, self.ndim), int)
            )
            vol_shape = (n_loc + 2 * h, *(d + 2 * lat_pad for d in self.shape[1:]))
            vol = np.full(vol_shape, -1, dtype=np.int64)
            n_owned = len(coords)

            def scatter(cells: np.ndarray, base: int, z_shift: int) -> None:
                if len(cells) == 0:
                    return
                ix = [cells[:, 0] + z_shift + h]
                for a in range(1, self.ndim):
                    ix.append(cells[:, a] + lat_pad)
                vol[tuple(ix)] = np.arange(base, base + len(cells))

            scatter(coords, 0, 0)
            scatter(halo_lo, n_owned, -h)
            scatter(halo_hi, n_owned + len(halo_lo), n_loc)

            # 64-bit neighbour indices: partitions address their whole
            # (owned + halo) range uniformly regardless of size — the same
            # choice that makes the element-sparse layout lose the memory
            # race against dense on fully-dense 512^3 domains (Fig 9)
            conn_buf = self.backend.allocate(rank, (len(self.offset_row), n_owned), np.int64)
            for off, k in self.offset_row.items():
                ix = [coords[:, 0] + off[0] + h]
                for a in range(1, self.ndim):
                    ix.append(coords[:, a] + off[a] + lat_pad)
                conn_buf.array[k] = vol[tuple(ix)]
            self._conn_buffers.append(conn_buf)
            self.conn[rank] = conn_buf.array

    # -- structure ----------------------------------------------------------
    @property
    def num_active(self) -> int:
        return self._num_active

    def n_total(self, rank: int) -> int:
        return self.n_owned[rank] + self.n_halo_lo[rank] + self.n_halo_hi[rank]

    def span_for(self, rank: int, view: DataView):
        n_owned = self.n_owned[rank]
        lo, hi = self.n_bnd_lo[rank], self.n_bnd_hi[rank]
        if view is DataView.STANDARD:
            return SparseStrip(0, n_owned)
        if view is DataView.INTERNAL:
            return SparseStrip(lo, n_owned - hi)
        return MultiSpan([SparseStrip(0, lo), SparseStrip(n_owned - hi, n_owned)])

    def new_field(
        self,
        name: str,
        cardinality: int = 1,
        dtype=np.float64,
        outside_value: float = 0.0,
        layout: Layout = Layout.SOA,
    ) -> "SparseField":
        return SparseField(self, name, cardinality, dtype, outside_value, layout)


class SparseFieldPartition:
    """Rank-local accessor: 1-D cell arrays plus connectivity gathers."""

    def __init__(self, field: "SparseField", rank: int):
        self.field = field
        self.rank = rank
        self.grid: SparseGrid = field.grid
        self.storage = field.buffers[rank].array
        self.outside_value = field.outside_value

    def _comp(self, comp: int) -> np.ndarray:
        if self.field.layout is Layout.SOA:
            return self.storage[comp]
        return self.storage[:, comp]

    def view(self, span: SparseStrip, comp: int = 0) -> np.ndarray:
        return self._comp(comp)[span.lo : span.hi]

    def view_all(self, span: SparseStrip) -> np.ndarray:
        if self.field.layout is Layout.SOA:
            return self.storage[:, span.lo : span.hi]
        return self.storage[span.lo : span.hi].T

    def neighbour(self, span: SparseStrip, offset: tuple[int, ...], comp: int = 0) -> np.ndarray:
        conn = self.grid.conn[self.rank]
        if conn is None:
            raise RuntimeError(f"grid '{self.grid.name}' registered no stencils; neighbour access invalid")
        try:
            row = self.grid.offset_row[tuple(offset)]
        except KeyError:
            raise ValueError(f"offset {offset} is not in the grid's registered stencil union") from None
        idx = conn[row, span.lo : span.hi]
        vals = self._comp(comp)[np.maximum(idx, 0)]
        return np.where(idx >= 0, vals, self.field.dtype.type(self.outside_value))

    def coords(self, span: SparseStrip) -> tuple[np.ndarray, ...]:
        c = self.grid.owned_coords[self.rank][span.lo : span.hi]
        return tuple(c[:, a] for a in range(self.grid.ndim))


class SparseField(Field):
    """Field stored over active cells only (owned block + halo blocks)."""

    def __init__(self, grid: SparseGrid, name, cardinality, dtype, outside_value, layout):
        super().__init__(grid, name, cardinality, dtype, outside_value, layout)
        for rank in range(grid.num_devices):
            n = grid.n_total(rank)
            shape = (cardinality, n) if layout is Layout.SOA else (n, cardinality)
            buf = grid.backend.allocate(rank, shape, dtype, virtual=grid.virtual)
            if buf.array is not None:
                buf.array[...] = outside_value
            self.buffers.append(buf)

    def partition(self, rank: int) -> SparseFieldPartition:
        return SparseFieldPartition(self, rank)

    def fill(self, value, comp: int | None = None) -> None:
        self._require_storage()
        for rank in range(self.num_devices):
            part = self.partition(rank)
            span = self.grid.span_for(rank, DataView.STANDARD)
            if comp is None:
                part.view_all(span)[...] = value
            else:
                part.view(span, comp)[...] = value

    def init(self, fn, comp: int | None = None) -> None:
        self._require_storage()
        for rank in range(self.num_devices):
            part = self.partition(rank)
            span = self.grid.span_for(rank, DataView.STANDARD)
            values = fn(*part.coords(span))
            comps = range(self.cardinality) if comp is None else [comp]
            for c in comps:
                part.view(span, c)[...] = values
        self.sync_halo_now()

    def to_numpy(self) -> np.ndarray:
        self._require_storage()
        out = np.full((self.cardinality, *self.grid.shape), self.outside_value, dtype=self.dtype)
        for rank in range(self.num_devices):
            coords = self.grid.owned_coords[rank]
            span = self.grid.span_for(rank, DataView.STANDARD)
            vals = self.partition(rank).view_all(span)
            ix = tuple(coords[:, a] for a in range(self.grid.ndim))
            for c in range(self.cardinality):
                out[c][ix] = vals[c]
        return out

    def halo_messages(self) -> list[HaloMsg]:
        g: SparseGrid = self.grid
        if g.radius == 0 or self.num_devices == 1:
            return []
        msgs: list[HaloMsg] = []
        per_comp = self.layout is Layout.SOA and self.cardinality > 1
        comps = range(self.cardinality) if per_comp else [None]
        for src, dst in exchange_pairs(self.num_devices):
            if dst == src + 1:
                count = g.n_bnd_hi[src]
                src_sl = slice(g.n_owned[src] - count, g.n_owned[src])
                dst_sl = slice(g.n_owned[dst], g.n_owned[dst] + count)
            else:
                count = g.n_bnd_lo[src]
                src_sl = slice(0, count)
                dst_sl = slice(g.n_owned[dst] + g.n_halo_lo[dst], g.n_owned[dst] + g.n_halo_lo[dst] + count)
            if count == 0:
                continue
            nbytes = count * self.dtype.itemsize * (1 if per_comp else self.cardinality)
            for c in comps:
                name = f"halo:{self.name}" + (f".{c}" if c is not None else "") + f":{src}->{dst}"
                if self.virtual:
                    fn = lambda: None  # noqa: E731
                else:
                    sp, dp = self.partition(src), self.partition(dst)
                    if c is None and self.layout is Layout.AOS:
                        s_arr, d_arr = sp.storage, dp.storage
                    else:
                        cc = 0 if c is None else c
                        s_arr, d_arr = sp._comp(cc), dp._comp(cc)
                    pool = self.grid.backend.staging
                    src_dev = self.grid.backend.device(src)

                    def fn(s_arr=s_arr, d_arr=d_arr, src_sl=src_sl, dst_sl=dst_sl, pool=pool, dev=src_dev):
                        staged_copy(pool, dev, d_arr[dst_sl], s_arr[src_sl])

                msgs.append(HaloMsg(name, src, dst, nbytes, fn))
        return msgs
