"""Stencil shapes: the neighbourhoods grid computations gather from.

A stencil is an ordered set of integer offsets.  The Grid uses the union
of all registered stencils to size halo regions and to classify cells as
internal vs boundary (paper IV-C1: "The size of the halos are computed
based on the union of all the stencils").

Offsets are tuples whose length equals the grid dimensionality, with
axis 0 being the partitioned axis (z for 3-D grids, rows for 2-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Stencil:
    """A named set of relative neighbour offsets."""

    name: str
    offsets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise ValueError(f"stencil '{self.name}' has no offsets")
        ndims = {len(o) for o in self.offsets}
        if len(ndims) != 1:
            raise ValueError(f"stencil '{self.name}' mixes offset dimensionalities: {ndims}")
        if len(set(self.offsets)) != len(self.offsets):
            raise ValueError(f"stencil '{self.name}' has duplicate offsets")

    @property
    def ndim(self) -> int:
        return len(self.offsets[0])

    @property
    def radius(self) -> int:
        """Halo depth along the partitioned axis (axis 0)."""
        return max(abs(o[0]) for o in self.offsets)

    @property
    def size(self) -> int:
        return len(self.offsets)

    def __iter__(self):
        return iter(self.offsets)

    def union(self, other: "Stencil") -> "Stencil":
        if other.ndim != self.ndim:
            raise ValueError(f"cannot union {self.ndim}-D and {other.ndim}-D stencils")
        merged = tuple(dict.fromkeys(self.offsets + other.offsets))
        return Stencil(f"{self.name}|{other.name}", merged)


def star(radius: int = 1, ndim: int = 3, include_center: bool = True) -> Stencil:
    """Von-Neumann (face-neighbour) stencil, e.g. the 7-point Laplacian."""
    if radius < 1 or ndim < 1:
        raise ValueError("radius and ndim must be positive")
    offsets: list[tuple[int, ...]] = [(0,) * ndim] if include_center else []
    for axis in range(ndim):
        for r in range(1, radius + 1):
            for sign in (-r, r):
                o = [0] * ndim
                o[axis] = sign
                offsets.append(tuple(o))
    return Stencil(f"star{len(offsets)}_{ndim}d", tuple(offsets))


def box(radius: int = 1, ndim: int = 3, include_center: bool = True) -> Stencil:
    """Moore (full-box) stencil, e.g. the 27-point FEM neighbourhood."""
    if radius < 1 or ndim < 1:
        raise ValueError("radius and ndim must be positive")
    offsets = [o for o in itertools.product(range(-radius, radius + 1), repeat=ndim)]
    if not include_center:
        offsets.remove((0,) * ndim)
    return Stencil(f"box{len(offsets)}_{ndim}d", tuple(offsets))


STENCIL_7PT = star(1, 3)
"""7-point stencil (center + 6 face neighbours) for the FD Poisson solver."""

STENCIL_27PT = box(1, 3)
"""27-point stencil for the matrix-free FEM linear-elastic solver."""

# D3Q19 lattice: center + 6 face + 12 edge velocities (no corners).
_D3Q19 = tuple(
    o
    for o in itertools.product((-1, 0, 1), repeat=3)
    if sum(abs(c) for c in o) <= 2
)
D3Q19_STENCIL = Stencil("d3q19", _D3Q19)
"""The 19 lattice directions of the D3Q19 LBM velocity set."""

D2Q9_STENCIL = Stencil("d2q9", tuple(itertools.product((-1, 0, 1), repeat=2)))
"""The 9 lattice directions of the D2Q9 LBM velocity set."""
