"""Structural invariant checkers for grids (debug/QA tooling).

These verify the properties the rest of the system silently relies on:
the sparse connectivity table's symmetry, halo block consistency between
neighbouring partitions, and view partitioning.  Tests use them, and
applications can call them after building exotic domains.
"""

from __future__ import annotations

import numpy as np

from .dense_grid import DenseGrid
from .sparse_grid import SparseGrid
from .views import DataView


def check_views_partition_cells(grid) -> None:
    """STANDARD = INTERNAL + BOUNDARY on every rank, disjointly."""
    for rank in range(grid.num_devices):
        std = grid.span_for(rank, DataView.STANDARD).count
        i = grid.span_for(rank, DataView.INTERNAL).count
        b = grid.span_for(rank, DataView.BOUNDARY).count
        if std != i + b:
            raise AssertionError(f"rank {rank}: standard({std}) != internal({i}) + boundary({b})")


def check_sparse_connectivity(grid: SparseGrid) -> None:
    """Connectivity invariants of the element-sparse grid.

    * every index points inside the partition's owned+halo range,
    * the centre offset maps each cell to itself,
    * within the owned block, connectivity is symmetric: if following
      offset ``o`` from cell ``i`` lands on owned cell ``j``, following
      ``-o`` from ``j`` lands back on ``i``.
    """
    if grid.virtual:
        raise ValueError("cannot check a virtual grid's connectivity")
    if grid.stencil is None:
        return
    centre = grid.offset_row.get((0,) * grid.ndim)
    for rank in range(grid.num_devices):
        conn = grid.conn[rank]
        n_owned = grid.n_owned[rank]
        if conn.min() < -1 or conn.max() >= grid.n_total(rank):
            raise AssertionError(f"rank {rank}: connectivity index out of range")
        if centre is not None and not np.array_equal(conn[centre], np.arange(n_owned)):
            raise AssertionError(f"rank {rank}: centre offset is not the identity")
        for off, row in grid.offset_row.items():
            neg = grid.offset_row.get(tuple(-o for o in off))
            if neg is None:
                continue
            fwd = conn[row]
            for i in np.nonzero((fwd >= 0) & (fwd < n_owned))[0]:
                j = fwd[i]
                if conn[neg, j] != i:
                    raise AssertionError(
                        f"rank {rank}: asymmetric connectivity {i} --{off}--> {j} but not back"
                    )


def check_halo_blocks_consistent(grid: SparseGrid) -> None:
    """Halo block sizes must mirror the neighbours' boundary blocks and
    the referenced cells must be the same global cells in the same order."""
    if grid.virtual:
        raise ValueError("cannot check a virtual grid's halo blocks")
    for r in range(grid.num_devices - 1):
        if grid.n_halo_lo[r + 1] != grid.n_bnd_hi[r]:
            raise AssertionError(f"halo_lo[{r + 1}] != bnd_hi[{r}]")
        if grid.n_halo_hi[r] != grid.n_bnd_lo[r + 1]:
            raise AssertionError(f"halo_hi[{r}] != bnd_lo[{r + 1}]")


def check_dense_ghosts(grid: DenseGrid, field) -> None:
    """After a halo update, ghost slices must equal the neighbour's owned
    boundary slices; global-border ghosts must hold the outside value."""
    h = grid.radius
    if h == 0:
        return
    for rank in range(grid.num_devices):
        part = field.partition(rank)
        storage = part._comp(0)
        if rank == 0:
            if not np.all(storage[:h] == field.outside_value):
                raise AssertionError("rank 0 low ghosts must hold the outside value")
        else:
            nb = field.partition(rank - 1)
            n_nb = grid.local_slices(rank - 1)
            if not np.array_equal(storage[:h], nb._comp(0)[n_nb : n_nb + h]):
                raise AssertionError(f"rank {rank}: low ghosts stale")
        n = grid.local_slices(rank)
        if rank == grid.num_devices - 1:
            if not np.all(storage[n + h :] == field.outside_value):
                raise AssertionError("last rank high ghosts must hold the outside value")
        else:
            nb = field.partition(rank + 1)
            if not np.array_equal(storage[n + h : n + 2 * h], nb._comp(0)[h : 2 * h]):
                raise AssertionError(f"rank {rank}: high ghosts stale")
