"""Grid spans: the concrete index subspaces behind each DataView.

A view-restricted Container launch covers either one contiguous strip of
the partition (STANDARD, INTERNAL) or two disjoint strips (BOUNDARY: the
low and high edge of the slab).  ``Span.pieces()`` exposes the strips so
the launcher can invoke the compute lambda once per contiguous piece.

Dense strips index *slices* along the partitioned axis (each slice holds
``lateral`` cells); sparse strips index *cells* directly, because the
element-sparse layout orders cells as [low-boundary | internal |
high-boundary] precisely so that views stay contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sets.dataset import Span
from repro.sets.views import DataView

__all__ = ["DataView", "DenseStrip", "SparseStrip", "MultiSpan", "EMPTY_SPAN"]


@dataclass(frozen=True)
class DenseStrip(Span):
    """Slices ``[lo, hi)`` of a dense slab (local coordinates, halo excluded)."""

    lo: int
    hi: int
    lateral: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo or self.lateral < 1:
            raise ValueError(f"invalid DenseStrip({self.lo}, {self.hi}, {self.lateral})")

    @property
    def count(self) -> int:
        return (self.hi - self.lo) * self.lateral


@dataclass(frozen=True)
class SparseStrip(Span):
    """Cells ``[lo, hi)`` of a sparse partition's owned-cell array."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"invalid SparseStrip({self.lo}, {self.hi})")

    @property
    def count(self) -> int:
        return self.hi - self.lo


class MultiSpan(Span):
    """Union of disjoint strips (the BOUNDARY view's low+high edges)."""

    def __init__(self, strips: list[Span]):
        self._strips = [s for s in strips if not s.is_empty]

    @property
    def count(self) -> int:
        return sum(s.count for s in self._strips)

    def pieces(self) -> list[Span]:
        return list(self._strips)


EMPTY_SPAN = MultiSpan([])
