"""Runtime observability: structured tracing, metrics, profiling hooks.

The layer every other ``repro`` package reports into, and the substrate
for before/after artifacts in performance work.  Three pieces:

* :mod:`repro.observability.tracer`  — nested wall-clock spans
  (context-manager / decorator API, monotonic timestamps, thread-safe);
* :mod:`repro.observability.metrics` — labeled counters / gauges /
  histograms (``halo_bytes_sent{src,dst}``, ``kernel_launches{device}``,
  ``sync_waits{queue}``, ``allocations_bytes{device}``, ...);
* :mod:`repro.observability.export`  — Chrome trace-event JSON unified
  with :meth:`repro.sim.Trace.to_chrome_trace` (real and simulated
  timelines load side-by-side in Perfetto) plus markdown/JSON metrics
  reports.

**Off by default.**  Instrumentation sites guard on ``OBS.active`` — a
single attribute read on a slotted singleton — so the disabled runtime
pays near-zero overhead (bounded by a CI test).  Enable explicitly::

    from repro import observability as obs

    obs.enable()
    skeleton.run()
    print(obs.metrics_report())
    obs.export_chrome_trace("trace.json", sim_trace=skeleton.trace())

or from the shell: ``python -m repro trace fig1 -o trace.json``.

This package is zero-dependency by design (stdlib only) and must never
import other ``repro`` modules: every layer can import it without
cycles.
"""

from __future__ import annotations

import functools

from .critpath import attribute_wall_clock, critical_path, dependency_chain, device_utilization
from .export import merge_chrome_traces, write_chrome_trace
from .flight import FLIGHT, FlightRecorder
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Tracer, TraceSpan


class _ObsState:
    """Process-global observability switchboard (slotted for fast reads)."""

    __slots__ = ("active", "tracer", "metrics")

    def __init__(self) -> None:
        self.active = False
        self.tracer: Tracer | None = None
        self.metrics: MetricsRegistry | None = None


OBS = _ObsState()
"""The singleton hot-path guard: sites check ``OBS.active`` before recording."""


def enabled() -> bool:
    """Whether instrumentation is currently recording (default: False)."""
    return OBS.active


def enable(reset: bool = True) -> None:
    """Turn recording on, starting fresh unless ``reset=False``."""
    if reset or OBS.tracer is None:
        OBS.tracer = Tracer()
    if reset or OBS.metrics is None:
        OBS.metrics = MetricsRegistry()
    OBS.active = True


def disable() -> None:
    """Stop recording; already-collected spans/metrics stay readable."""
    OBS.active = False


def reset() -> None:
    """Disable and drop all recorded state (used by the test fixture)."""
    OBS.active = False
    OBS.tracer = None
    OBS.metrics = None


def tracer() -> Tracer:
    """The current tracer (created on demand, even while disabled)."""
    if OBS.tracer is None:
        OBS.tracer = Tracer()
    return OBS.tracer


def metrics() -> MetricsRegistry:
    """The current metrics registry (created on demand)."""
    if OBS.metrics is None:
        OBS.metrics = MetricsRegistry()
    return OBS.metrics


class _NullSpan:
    """No-op context manager returned by :func:`span` while disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, cat: str = "phase", pid: str = "host", tid: str | None = None, **args):
    """Open a traced span, or a shared no-op when observability is off."""
    if not OBS.active:
        return _NULL_SPAN
    return tracer().span(name, cat=cat, pid=pid, tid=tid, **args)


def instant(name: str, cat: str = "mark", pid: str = "host", tid: str | None = None, **args):
    """Record a zero-duration point event (no-op while disabled)."""
    if not OBS.active:
        return None
    return tracer().instant(name, cat=cat, pid=pid, tid=tid, **args)


def traced(name: str | None = None, cat: str = "func", pid: str = "host"):
    """Decorator tracing every call of a function as one span."""

    def wrap(fn):
        span_name = name or f"{fn.__module__}.{fn.__qualname__}"

        @functools.wraps(fn)
        def inner(*a, **kw):
            if not OBS.active:
                return fn(*a, **kw)
            with tracer().span(span_name, cat=cat, pid=pid):
                return fn(*a, **kw)

        return inner

    return wrap


def metrics_report() -> str:
    """Markdown table of every recorded metric series."""
    return metrics().to_markdown()


def export_chrome_trace(path, sim_trace=None, meta: dict | None = None):
    """Write the unified real(+simulated) Chrome trace JSON to ``path``.

    ``sim_trace`` may be a :class:`repro.sim.Trace` (anything exposing
    ``to_chrome_trace()``) whose events are merged under ``sim:`` pids.
    """
    sim_events = sim_trace.to_chrome_trace() if sim_trace is not None else None
    doc = merge_chrome_traces(
        real_events=tracer().to_chrome_trace(),
        sim_events=sim_events,
        metrics=metrics().to_json(),
        meta=meta,
    )
    return write_chrome_trace(path, doc)


__all__ = [
    "FLIGHT",
    "OBS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceSpan",
    "attribute_wall_clock",
    "critical_path",
    "dependency_chain",
    "device_utilization",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "instant",
    "merge_chrome_traces",
    "metrics",
    "metrics_report",
    "reset",
    "span",
    "traced",
    "tracer",
    "write_chrome_trace",
]
