"""Critical-path analysis of simulated schedules.

Answers the three questions a Gantt chart only hints at:

* **which chain of commands sets the makespan** —
  :func:`critical_path` walks the DES's binding-constraint links
  (:attr:`repro.sim.trace.Trace.links`) backward from the last-finishing
  span.  Each simulated command starts exactly when its binding
  constraint releases, so the reconstructed chain's durations plus its
  host-dispatch gaps sum to the makespan *by construction* — the path
  total is exact, not an estimate;
* **what the wall-clock is made of** — the path's per-kind breakdown
  attributes the makespan to {kernel, copy, wait, dispatch}, and
  :func:`attribute_wall_clock` extends that to a measured real run,
  attributing the wall-vs-makespan gap to Python dispatch overhead (the
  interpreter cost the fusion roadmap item targets);
* **where each device's time goes** — :func:`device_utilization` splits
  every device's timeline into busy / blocked (waiting on another
  device's event or a contended resource) / idle fractions that sum
  to 1.

:func:`dependency_chain` is the schedule-independent companion: the
longest weighted chain through the happens-before closure (FIFO + event
edges, via :mod:`repro.sanitizer.hb`), ignoring resource contention and
host dispatch.  It lower-bounds any replay's makespan — the gap between
the two is time lost to contention and dispatch rather than to the
algorithm's dependency structure.

Like the rest of the package this module is import-free at load time;
the ``repro.sim`` / ``repro.sanitizer`` imports happen inside the
functions that need them.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CriticalPath",
    "DependencyChain",
    "PathSegment",
    "attribute_wall_clock",
    "critical_path",
    "dependency_chain",
    "device_utilization",
]


@dataclass(frozen=True)
class PathSegment:
    """One span on the critical path, plus how it was bound to its start."""

    name: str
    kind: str  # "kernel" | "copy" | "sync"
    device: int
    queue: str
    start: float
    end: float
    cause: str  # binding constraint: "fifo" | "event" | "resource" | "dispatch" | ""
    gap: float  # idle time between the binding predecessor's finish and start

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class CriticalPath:
    """The longest scheduled chain: segments, exact total, attribution."""

    segments: list[PathSegment]
    total: float  # == trace.makespan, by construction
    breakdown: dict[str, float]  # kernel/copy/wait durations + dispatch gaps

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "breakdown": dict(self.breakdown),
            "segments": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "device": s.device,
                    "queue": s.queue,
                    "start": s.start,
                    "end": s.end,
                    "cause": s.cause,
                    "gap": s.gap,
                }
                for s in self.segments
            ],
        }


@dataclass(frozen=True)
class DependencyChain:
    """Longest weighted happens-before chain (a makespan lower bound)."""

    total: float
    commands: tuple[str, ...]


def critical_path(trace) -> CriticalPath:
    """Walk the binding links backward from the last-finishing span.

    ``trace`` is a :class:`repro.sim.trace.Trace`.  For traces without
    links (hand-built span lists) the path degenerates to the single
    last-finishing span with its start attributed to dispatch.
    """
    if not trace.spans:
        return CriticalPath(segments=[], total=0.0, breakdown=_empty_breakdown())
    span = max(trace.spans, key=lambda s: (s.end, s.seq))
    total = span.end
    segments: list[PathSegment] = []
    hops = 0
    while span is not None:
        pred_seq, cause = trace.links.get(span.seq, (-1, ""))
        pred = trace.span_by_seq(pred_seq) if pred_seq >= 0 else None
        gap = span.start - (pred.end if pred is not None else 0.0)
        segments.append(
            PathSegment(
                name=span.name,
                kind=span.kind.value,
                device=span.device,
                queue=span.queue,
                start=span.start,
                end=span.end,
                cause=cause,
                gap=max(0.0, gap),
            )
        )
        span = pred
        hops += 1
        if hops > len(trace.spans):  # pragma: no cover - defensive
            raise RuntimeError("cycle in trace links; DES bookkeeping is broken")
    segments.reverse()
    breakdown = _empty_breakdown()
    for seg in segments:
        breakdown[{"kernel": "kernel", "copy": "copy", "sync": "wait"}[seg.kind]] += seg.duration
        breakdown["dispatch"] += seg.gap
    return CriticalPath(segments=segments, total=total, breakdown=breakdown)


def _empty_breakdown() -> dict[str, float]:
    return {"kernel": 0.0, "copy": 0.0, "wait": 0.0, "dispatch": 0.0}


def device_utilization(trace) -> dict[int, dict[str, float]]:
    """Busy / blocked / idle fractions of each device's timeline.

    *Busy* is the union coverage of the device's kernel and copy spans
    (overlapping streams do not double-count).  A gap before a span
    whose binding constraint is another device's event or a contended
    resource counts as *blocked*; gaps bound by host dispatch or queue
    order, and the tail after the device's last span, count as *idle*.
    The three fractions sum to 1 per device by construction.
    """
    makespan = trace.makespan
    out: dict[int, dict[str, float]] = {}
    for dev in sorted({s.device for s in trace.spans}):
        if makespan <= 0.0:
            out[dev] = {"busy": 0.0, "blocked": 0.0, "idle": 1.0}
            continue
        busy = blocked = 0.0
        frontier = 0.0
        for s in sorted(
            (s for s in trace.spans if s.device == dev), key=lambda s: (s.start, s.end)
        ):
            if s.start > frontier:
                _, cause = trace.links.get(s.seq, (-1, ""))
                if cause in ("event", "resource"):
                    blocked += s.start - frontier
                frontier = s.start
            if s.end > frontier:
                busy += s.end - frontier
                frontier = s.end
        out[dev] = {
            "busy": busy / makespan,
            "blocked": blocked / makespan,
            "idle": (makespan - busy - blocked) / makespan,
        }
    return out


def dependency_chain(queues, machine) -> DependencyChain:
    """Longest weighted chain through the happens-before closure.

    Reuses the sanitizer's edge model (:func:`repro.sanitizer.hb.build_hb`
    validates the wiring and resolves event records): FIFO order within
    each queue plus record→wait edges, each command weighted by its
    modeled duration on ``machine``.  No resource contention and no host
    dispatch — the result lower-bounds the makespan of *any* replay of
    these queues.
    """
    from collections import deque  # noqa: PLC0415

    from repro.sanitizer.hb import build_hb  # noqa: PLC0415 - lazy: keeps this package import-free
    from repro.sim.costmodel import kernel_duration, transfer_duration  # noqa: PLC0415
    from repro.system.queue import CopyCommand, KernelCommand, WaitEventCommand  # noqa: PLC0415

    hb = build_hb(queues)

    def weight(cmd, device_index: int) -> float:
        if isinstance(cmd, KernelCommand):
            return kernel_duration(cmd.cost, machine.device_spec(device_index))
        if isinstance(cmd, CopyCommand):
            link = machine.topology.link(cmd.src.index, cmd.dst.index)
            return transfer_duration(cmd.nbytes, link, pinned=cmd.pinned)
        return 0.0

    preds: dict = {}
    for q in hb.queues:
        for pos, cmd in enumerate(q.commands):
            preds[cmd] = [q.commands[pos - 1]] if pos > 0 else []
            if isinstance(cmd, WaitEventCommand):
                rec = hb.records.get(cmd.event.uid)
                if rec is not None:
                    preds[cmd].append(rec)

    succs: dict = {}
    indeg = {cmd: len(ps) for cmd, ps in preds.items()}
    for cmd, ps in preds.items():
        for p in ps:
            succs.setdefault(p, []).append(cmd)

    finish: dict = {}
    via: dict = {}
    ready = deque(cmd for cmd, d in indeg.items() if d == 0)
    processed = 0
    while ready:
        cmd = ready.popleft()
        processed += 1
        qi, _pos = hb.loc[cmd]
        best_pred, best_t = None, 0.0
        for p in preds[cmd]:
            if finish[p] > best_t:
                best_pred, best_t = p, finish[p]
        finish[cmd] = best_t + weight(cmd, hb.queues[qi].device.index)
        via[cmd] = best_pred
        for s in succs.get(cmd, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if processed < len(preds):
        raise ValueError(
            "queue wiring contains a record/wait cycle; "
            f"events involved: {hb.cycle_events or 'unknown'}"
        )

    if not finish:
        return DependencyChain(total=0.0, commands=())
    end = max(finish, key=lambda c: finish[c])
    chain: list[str] = []
    cmd = end
    while cmd is not None:
        chain.append(cmd.name)
        cmd = via[cmd]
    chain.reverse()
    return DependencyChain(total=finish[end], commands=tuple(chain))


def attribute_wall_clock(trace, wall_seconds: float | None = None) -> dict[str, float]:
    """Attribute time: the makespan to its path, the wall gap to Python.

    Returns the critical path's {kernel, copy, wait, dispatch} breakdown
    plus ``makespan``; when ``wall_seconds`` (a measured real run) is
    given, ``python_dispatch_overhead = wall - makespan`` quantifies the
    interpreter cost the model does not see.
    """
    cp = critical_path(trace)
    out = dict(cp.breakdown)
    out["makespan"] = cp.total
    if wall_seconds is not None:
        out["wall_seconds"] = wall_seconds
        out["python_dispatch_overhead"] = max(0.0, wall_seconds - cp.total)
    return out
