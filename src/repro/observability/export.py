"""Exporters: unified Chrome trace-event documents and metrics reports.

The Chrome trace-event format accepts either a bare event array or an
object with a ``traceEvents`` key plus arbitrary extra keys (Perfetto
ignores the ones it does not know).  We use the object form so a single
file can carry the real timeline, the simulated timeline, and the
metrics snapshot together.
"""

from __future__ import annotations

import json
import pathlib


def merge_chrome_traces(
    real_events: list[dict] | None = None,
    sim_events: list[dict] | None = None,
    metrics: dict | None = None,
    meta: dict | None = None,
) -> dict:
    """Combine real and simulated Chrome trace events into one document.

    Simulated events (from :meth:`repro.sim.Trace.to_chrome_trace`) get
    their ``pid`` prefixed with ``sim:`` so both timelines appear as
    separate process groups on one Perfetto screen.
    """
    events: list[dict] = []
    for ev in real_events or []:
        events.append(ev)
    for ev in sim_events or []:
        ev = dict(ev)
        ev["pid"] = f"sim:{ev.get('pid', 'device')}"
        events.append(ev)
    doc: dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        doc["metrics"] = metrics
    if meta is not None:
        doc["otherData"] = meta
    return doc


def write_chrome_trace(path, doc: dict | list) -> pathlib.Path:
    """Serialise a trace document (or bare event list) to ``path``."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=1, sort_keys=False))
    return path
