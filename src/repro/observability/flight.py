"""Flight recorder: always-on bounded ring of recent runtime events.

Post-mortems used to require "re-run with tracing enabled" — useless
when the failure was a once-in-a-thousand injected device loss or an
engine deadlock three hours into a serving run.  The flight recorder
fixes that by keeping the last :data:`FlightRecorder.DEFAULT_CAPACITY`
events *per track* (one track per device, plus ``host``) in fixed-size
ring buffers, **always**, independent of the ``OBS.active`` switch.  A
ring append is one tuple construction plus one ``deque.append`` — cheap
enough to leave on unconditionally while still honouring the <2%
disabled-overhead CI bound (the overhead test accounts for it).

When the runtime hits a terminal failure — :class:`ResilientDriver`
exhausts its retry/rollback budget, the parallel engine raises
``EngineDeadlock``, or the sanitizer reports happens-before violations —
the instrumented site calls :func:`dump`, which writes a
``FLIGHT_<reason>_<seq>.json`` artifact with every surviving ring event,
newest last.  The artifact is what CI uploads and what a human opens
first.

Event shape (one tuple per ring slot, JSON-ified on dump)::

    (seq, kind, name, detail)

``seq`` is a process-global monotonic ordinal so events from different
tracks can be interleaved into one timeline; ``kind`` is one of
``kernel | copy | wait | fault | violation | deadlock | rollback |
degrade | retune | note``; ``detail`` is a small dict (site key, ranks,
bytes, attempt number...) or ``None``.

Like the rest of this package, the module imports no other ``repro``
modules; instrumented sites import it lazily.
"""

from __future__ import annotations

import json
import os
from collections import deque

__all__ = ["FLIGHT", "FlightRecorder", "record", "dump", "configure", "reset"]


class FlightRecorder:
    """Per-track bounded ring buffers plus the dump machinery.

    Slotted, like ``_ObsState``: the hot path reads ``enabled`` and calls
    :meth:`record`; everything else is cold.
    """

    __slots__ = ("enabled", "capacity", "dump_dir", "tracks", "records", "dumps", "_seq")

    DEFAULT_CAPACITY = 64

    def __init__(self, capacity: int = DEFAULT_CAPACITY, dump_dir: str = ".") -> None:
        self.enabled = True
        self.capacity = capacity
        self.dump_dir = dump_dir
        self.tracks: dict[str, deque] = {}
        self.records = 0  # plain int, counted against the overhead budget
        self.dumps: list[str] = []
        self._seq = 0

    # -- hot path ----------------------------------------------------------
    def record(self, track: str, kind: str, name: str, detail: dict | None = None) -> None:
        """Append one event to ``track``'s ring (oldest slot evicted)."""
        ring = self.tracks.get(track)
        if ring is None:
            ring = self.tracks[track] = deque(maxlen=self.capacity)
        self._seq += 1
        self.records += 1
        ring.append((self._seq, kind, name, detail))

    # -- cold path ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able view of every ring, events interleaved per track."""
        return {
            track: [
                {"seq": seq, "kind": kind, "name": name, **({"detail": detail} if detail else {})}
                for seq, kind, name, detail in ring
            ]
            for track, ring in sorted(self.tracks.items())
        }

    def kind_counts(self) -> dict[str, int]:
        """Surviving ring events tallied by kind, across all tracks.

        Only what the rings still hold (capacity-bounded), so this is a
        recent-history summary, not a lifetime counter — chaos reports
        pair it with ``events_recorded`` for the total.
        """
        counts: dict[str, int] = {}
        for ring in self.tracks.values():
            for _seq, kind, _name, _detail in ring:
                counts[kind] = counts.get(kind, 0) + 1
        return dict(sorted(counts.items()))

    def dump(self, reason: str, context: dict | None = None) -> str:
        """Write ``FLIGHT_<reason>_<n>.json`` and return its path."""
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in reason) or "unknown"
        path = os.path.join(self.dump_dir, f"FLIGHT_{safe}_{len(self.dumps)}.json")
        doc = {
            "schema": "repro-flight/1",
            "reason": reason,
            "context": context or {},
            "capacity": self.capacity,
            "events_recorded": self.records,
            "tracks": self.snapshot(),
        }
        os.makedirs(self.dump_dir, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        self.dumps.append(path)
        return path

    def reset(self) -> None:
        self.tracks.clear()
        self.records = 0
        self.dumps.clear()
        self._seq = 0


FLIGHT = FlightRecorder()
"""The process-global recorder; sites guard on ``FLIGHT.enabled``."""


def record(track: str, kind: str, name: str, detail: dict | None = None) -> None:
    """Module-level convenience: append one event if recording is on."""
    if FLIGHT.enabled:
        FLIGHT.record(track, kind, name, detail)


def dump(reason: str, context: dict | None = None) -> str | None:
    """Dump the rings to a ``FLIGHT_*.json`` artifact (None if disabled)."""
    if not FLIGHT.enabled:
        return None
    return FLIGHT.dump(reason, context)


def configure(capacity: int | None = None, dump_dir: str | None = None, enabled: bool | None = None):
    """Adjust the global recorder; existing rings keep their events
    unless ``capacity`` changes (which rebuilds them bounded anew)."""
    if capacity is not None and capacity != FLIGHT.capacity:
        FLIGHT.capacity = capacity
        for track, ring in list(FLIGHT.tracks.items()):
            FLIGHT.tracks[track] = deque(ring, maxlen=capacity)
    if dump_dir is not None:
        FLIGHT.dump_dir = dump_dir
    if enabled is not None:
        FLIGHT.enabled = enabled
    return FLIGHT


def reset() -> None:
    """Drop all rings and dump bookkeeping (used by the test fixture)."""
    FLIGHT.reset()
