"""Zero-dependency metrics registry: counters, gauges, histograms.

Metrics are labeled series: ``registry.counter("halo_bytes_sent",
src="0", dst="1").inc(nbytes)`` creates (or reuses) the series of that
name with exactly those labels.  All mutation goes through one registry
lock, so concurrent instrumented code (e.g. future threaded executors)
stays consistent; the lock is only ever taken when observability is
enabled, so the disabled path pays nothing.
"""

from __future__ import annotations

import threading

SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins), tracking its max."""

    __slots__ = ("name", "labels", "value", "max", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            if self.value > self.max:
                self.max = self.value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """A distribution summary: count/sum/min/max plus power-of-4 buckets."""

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets", "_lock")

    #: bucket upper bounds: 4^0 .. 4^15 then +inf (covers 1 B .. ~1 GB)
    BOUNDS = tuple(4.0**i for i in range(16)) + (float("inf"),)

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * len(self.BOUNDS)
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.BOUNDS):
                if value <= bound:
                    self.buckets[i] += 1
                    break

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Thread-safe home for every labeled metric series."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[SeriesKey, object] = {}
        self.updates = 0  # instrumentation events, for overhead accounting

    def _get(self, cls, name: str, labels: dict[str, str]):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self.updates += 1
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = cls(name, labels, self._lock)
            elif not isinstance(series, cls):
                raise TypeError(f"metric '{name}' already registered as {type(series).__name__}")
        return series

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- queries -----------------------------------------------------------
    def series(self, name: str | None = None) -> list:
        with self._lock:
            return [s for (n, _), s in sorted(self._series.items()) if name is None or n == name]

    def total(self, name: str) -> float:
        """Sum of a counter's value across all its labeled series."""
        return sum(s.value for s in self.series(name) if isinstance(s, Counter))

    def value(self, name: str, **labels: str) -> float | None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            s = self._series.get(key)
        if s is None:
            return None
        return s.value if not isinstance(s, Histogram) else s.total

    # -- exporters ---------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serialisable snapshot of every series."""
        out: dict[str, list] = {}
        for s in self.series():
            entry: dict = {"labels": dict(s.labels)}
            if isinstance(s, Counter):
                entry["type"] = "counter"
                entry["value"] = s.value
            elif isinstance(s, Gauge):
                entry["type"] = "gauge"
                entry["value"] = s.value
                entry["max"] = s.max
            else:
                entry["type"] = "histogram"
                entry.update(count=s.count, sum=s.total, mean=s.mean)
                if s.count:
                    entry.update(min=s.min, max=s.max)
            out.setdefault(s.name, []).append(entry)
        return out

    def to_markdown(self) -> str:
        """Human-readable metrics report (one table row per series)."""
        rows = []
        for s in self.series():
            labels = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items())) or "-"
            if isinstance(s, Counter):
                rows.append((s.name, "counter", labels, f"{s.value:g}"))
            elif isinstance(s, Gauge):
                rows.append((s.name, "gauge", labels, f"{s.value:g} (max {s.max:g})"))
            else:
                rows.append((s.name, "histogram", labels, f"n={s.count} sum={s.total:g} mean={s.mean:g}"))
        if not rows:
            return "(no metrics recorded)"
        widths = [max(len(r[i]) for r in rows + [("metric", "type", "labels", "value")]) for i in range(4)]
        header = ("metric", "type", "labels", "value")
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |",
            "|-" + "-|-".join("-" * w for w in widths) + "-|",
        ]
        for r in rows:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(r, widths)) + " |")
        return "\n".join(lines)
