"""Zero-dependency metrics registry: counters, gauges, histograms.

Metrics are labeled series: ``registry.counter("halo_bytes_sent",
src="0", dst="1").inc(nbytes)`` creates (or reuses) the series of that
name with exactly those labels.  All mutation goes through one registry
lock, so concurrent instrumented code (e.g. future threaded executors)
stays consistent; the lock is only ever taken when observability is
enabled, so the disabled path pays nothing.

Histograms are distribution summaries, not just bucket counts: each one
keeps an exact reservoir of its first :data:`Histogram.SAMPLE_MAX`
observations (percentiles are exact for short runs, which is what tests
compare against) and three P² streaming-quantile estimators (Jain &
Chlamtac 1985) for p50/p90/p99 that keep working at serving-run scale
with O(1) memory.  ``summary()`` packages count/sum/min/max/mean and
the three percentiles for dashboards and the tuner's cheap
recalibration path.

Long-running servers must not leak series: the registry caps the number
of distinct label-sets per metric name (``max_label_sets``).  Past the
cap, observations collapse into a single ``overflow="true"`` series for
that name and a warning counter (:attr:`MetricsRegistry.label_overflows`)
records how many label-sets were folded, so unbounded per-step or
per-site labels degrade gracefully instead of growing without bound.
"""

from __future__ import annotations

import threading

SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


class Counter:
    """A monotonically increasing sum."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins), tracking its max."""

    __slots__ = ("name", "labels", "value", "max", "_lock")

    def __init__(self, name: str, labels: dict[str, str], lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            if self.value > self.max:
                self.max = self.value

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac).

    Five markers track the min, the target quantile, the max and two
    intermediate quantiles; each observation shifts marker positions and
    adjusts heights with a piecewise-parabolic fit.  O(1) memory and
    time per observation, and the estimate of the middle marker
    converges to the true quantile for stationary streams — the standard
    choice when storing the sample is not an option.
    """

    __slots__ = ("p", "count", "heights", "positions", "desired", "increments")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self.heights: list[float] = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self.desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self.increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        self.count += 1
        if len(self.heights) < 5:
            self.heights.append(value)
            if len(self.heights) == 5:
                self.heights.sort()
            return
        q, n = self.heights, self.positions
        # locate the cell of the new observation, clamping the extremes
        if value < q[0]:
            q[0] = value
            k = 0
        elif value >= q[4]:
            q[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self.desired[i] += self.increments[i]
        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self.desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (d <= -1.0 and n[i - 1] - n[i] < -1.0):
                d = 1.0 if d > 0 else -1.0
                # piecewise-parabolic prediction of the marker height
                hp = q[i] + d / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
                )
                if not q[i - 1] < hp < q[i + 1]:
                    # parabolic estimate left the bracket: fall back to linear
                    hp = q[i] + d * (q[i + int(d)] - q[i]) / (n[i + int(d)] - n[i])
                q[i] = hp
                n[i] += d

    def estimate(self) -> float:
        if not self.heights:
            return 0.0
        if len(self.heights) < 5:
            return _exact_quantile(sorted(self.heights), self.p)
        return self.heights[2]


def _exact_quantile(ordered: list[float], p: float) -> float:
    """Linear-interpolated quantile of an already-sorted sample."""
    if not ordered:
        return 0.0
    pos = p * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Histogram:
    """A distribution summary: count/sum/min/max, buckets, p50/p90/p99.

    Percentiles are exact while the observation count stays within the
    bounded reservoir (:data:`SAMPLE_MAX`) and switch to the P²
    streaming estimates beyond it, so a histogram never grows with the
    run length.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "total",
        "min",
        "max",
        "bounds",
        "buckets",
        "_sample",
        "_quantiles",
        "_lock",
    )

    #: bucket upper bounds: 4^0 .. 4^15 then +inf (covers 1 B .. ~1 GB)
    BOUNDS = tuple(4.0**i for i in range(16)) + (float("inf"),)
    #: bucket bounds for durations in seconds: 1 us .. ~17 min, then +inf
    TIME_BOUNDS = tuple(1e-6 * 4.0**i for i in range(16)) + (float("inf"),)
    #: exact-percentile reservoir size; beyond it P² estimates take over
    SAMPLE_MAX = 512
    #: the percentiles every histogram tracks as streaming estimators
    QUANTILES = (0.5, 0.9, 0.99)

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        lock: threading.Lock,
        bounds: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = tuple(bounds) if bounds is not None else self.BOUNDS
        self.buckets = [0] * len(self.bounds)
        self._sample: list[float] = []
        self._quantiles = tuple(_P2Quantile(q) for q in self.QUANTILES)
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.buckets[i] += 1
                    break
            if len(self._sample) < self.SAMPLE_MAX:
                self._sample.append(value)
            for est in self._quantiles:
                est.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, p: float) -> float:
        """The p-quantile: exact within the reservoir, P² beyond it."""
        with self._lock:
            if self.count <= len(self._sample):
                return _exact_quantile(sorted(self._sample), p)
            for est in self._quantiles:
                if abs(est.p - p) < 1e-12:
                    return est.estimate()
        raise ValueError(
            f"quantile {p} is not tracked beyond the exact reservoir; "
            f"streaming estimators cover {self.QUANTILES}"
        )

    def percentiles(self) -> dict[str, float]:
        """The standard dashboard trio: p50 / p90 / p99."""
        return {f"p{int(q * 100)}": self.quantile(q) for q in self.QUANTILES}

    def summary(self) -> dict:
        """JSON-able digest: count/sum/mean/min/max + percentiles."""
        out: dict = {"count": self.count, "sum": self.total, "mean": self.mean}
        if self.count:
            out.update(min=self.min, max=self.max, **self.percentiles())
        return out


class MetricsRegistry:
    """Thread-safe home for every labeled metric series.

    ``max_label_sets`` bounds the number of distinct label combinations
    one metric name may grow; see the module docstring for the overflow
    behaviour.
    """

    #: reserved label marking the fold-over series of a capped metric
    OVERFLOW_LABELS = {"overflow": "true"}

    def __init__(self, max_label_sets: int = 256) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self._lock = threading.Lock()
        self._series: dict[SeriesKey, object] = {}
        self._cardinality: dict[str, int] = {}
        self.max_label_sets = max_label_sets
        self.label_overflows: dict[str, int] = {}
        self.updates = 0  # instrumentation events, for overhead accounting

    def _get(self, cls, name: str, labels: dict[str, str], **kwargs):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            self.updates += 1
            series = self._series.get(key)
            if series is None:
                if self._cardinality.get(name, 0) >= self.max_label_sets:
                    # cardinality guard: fold this label-set into the
                    # per-name overflow series instead of growing forever
                    self.label_overflows[name] = self.label_overflows.get(name, 0) + 1
                    key = (name, tuple(sorted(self.OVERFLOW_LABELS.items())))
                    series = self._series.get(key)
                    if series is None:
                        series = self._series[key] = cls(
                            name, dict(self.OVERFLOW_LABELS), self._lock, **kwargs
                        )
                    labels = dict(self.OVERFLOW_LABELS)
                else:
                    self._cardinality[name] = self._cardinality.get(name, 0) + 1
                    series = self._series[key] = cls(name, labels, self._lock, **kwargs)
            if not isinstance(series, cls):
                raise TypeError(f"metric '{name}' already registered as {type(series).__name__}")
        return series

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, *, bounds: tuple[float, ...] | None = None, **labels: str
    ) -> Histogram:
        """A histogram series; ``bounds`` applies on first creation only."""
        if bounds is not None:
            return self._get(Histogram, name, labels, bounds=bounds)
        return self._get(Histogram, name, labels)

    # -- queries -----------------------------------------------------------
    def series(self, name: str | None = None) -> list:
        with self._lock:
            return [s for (n, _), s in sorted(self._series.items()) if name is None or n == name]

    def total(self, name: str) -> float:
        """Sum of a counter's value across all its labeled series."""
        return sum(s.value for s in self.series(name) if isinstance(s, Counter))

    def value(self, name: str, **labels: str) -> float | None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            s = self._series.get(key)
        if s is None:
            return None
        return s.value if not isinstance(s, Histogram) else s.total

    def histogram_summaries(self, name: str) -> list[dict]:
        """Per-series :meth:`Histogram.summary` dicts (labels included)."""
        out = []
        for s in self.series(name):
            if isinstance(s, Histogram):
                out.append({"labels": dict(s.labels), **s.summary()})
        return out

    # -- exporters ---------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-serialisable snapshot of every series."""
        out: dict[str, list] = {}
        for s in self.series():
            entry: dict = {"labels": dict(s.labels)}
            if isinstance(s, Counter):
                entry["type"] = "counter"
                entry["value"] = s.value
            elif isinstance(s, Gauge):
                entry["type"] = "gauge"
                entry["value"] = s.value
                entry["max"] = s.max
            else:
                entry["type"] = "histogram"
                entry.update(s.summary())
            out.setdefault(s.name, []).append(entry)
        if self.label_overflows:
            out["_label_overflows"] = [
                {"labels": {"metric": name}, "type": "counter", "value": float(n)}
                for name, n in sorted(self.label_overflows.items())
            ]
        return out

    def to_markdown(self) -> str:
        """Human-readable metrics report (one table row per series)."""
        rows = []
        for s in self.series():
            labels = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items())) or "-"
            if isinstance(s, Counter):
                rows.append((s.name, "counter", labels, f"{s.value:g}"))
            elif isinstance(s, Gauge):
                rows.append((s.name, "gauge", labels, f"{s.value:g} (max {s.max:g})"))
            else:
                pct = s.percentiles()
                rows.append(
                    (
                        s.name,
                        "histogram",
                        labels,
                        f"n={s.count} sum={s.total:g} mean={s.mean:g} "
                        f"p50={pct['p50']:g} p90={pct['p90']:g} p99={pct['p99']:g}",
                    )
                )
        if not rows:
            return "(no metrics recorded)"
        widths = [max(len(r[i]) for r in rows + [("metric", "type", "labels", "value")]) for i in range(4)]
        header = ("metric", "type", "labels", "value")
        lines = [
            "| " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + " |",
            "|-" + "-|-".join("-" * w for w in widths) + "-|",
        ]
        for r in rows:
            lines.append("| " + " | ".join(c.ljust(w) for c, w in zip(r, widths)) + " |")
        return "\n".join(lines)
