"""Zero-dependency structured tracer: nested wall-clock spans.

A :class:`Tracer` records :class:`TraceSpan` entries with monotonic
(``time.perf_counter``) timestamps relative to the tracer's epoch, so a
timeline always starts near zero.  Spans nest per thread (a depth field
tracks the enclosing span count) and recording is thread-safe: spans are
appended under a lock, and the nesting stack is thread-local.

The exporter mirrors :meth:`repro.sim.trace.Trace.to_chrome_trace` —
same event shape (``ph: "X"`` complete events, microsecond timestamps,
``pid``/``tid`` tracks) — so real and simulated timelines load
side-by-side in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass
class TraceSpan:
    """One completed span: a named interval on a (pid, tid) track.

    ``start``/``end`` are seconds since the tracer epoch.  ``cat`` uses
    the simulator's vocabulary where it applies (``kernel``, ``copy``,
    ``sync``) plus host-side categories (``compile``, ``phase``).
    """

    name: str
    cat: str
    start: float
    end: float
    pid: str = "host"
    tid: str = ""
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _SpanHandle:
    """Context manager for one in-flight span (returned by Tracer.span)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: TraceSpan):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> TraceSpan:
        stack = self._tracer._stack()
        self._span.depth = len(stack)
        self._span.start = time.perf_counter() - self._tracer.epoch
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.end = time.perf_counter() - self._tracer.epoch
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        if exc_type is not None:
            self._span.args["error"] = exc_type.__name__
        self._tracer._append(self._span)
        return False


class Tracer:
    """Thread-safe recorder of nested wall-clock spans."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[TraceSpan] = []
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _append(self, span: TraceSpan) -> None:
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, cat: str = "phase", pid: str = "host", tid: str | None = None, **args) -> _SpanHandle:
        """Open a span as a context manager; it records itself on exit."""
        if tid is None:
            tid = threading.current_thread().name
        return _SpanHandle(self, TraceSpan(name=name, cat=cat, start=0.0, end=0.0, pid=pid, tid=tid, args=args))

    def instant(self, name: str, cat: str = "mark", pid: str = "host", tid: str | None = None, **args) -> TraceSpan:
        """Record a zero-duration point event (Chrome trace 'instant')."""
        if tid is None:
            tid = threading.current_thread().name
        now = time.perf_counter() - self.epoch
        span = TraceSpan(name=name, cat=cat, start=now, end=now, pid=pid, tid=tid, args=args)
        self._append(span)
        return span

    @property
    def spans(self) -> list[TraceSpan]:
        """Completed spans, sorted by start time."""
        with self._lock:
            return sorted(self._spans, key=lambda s: (s.start, s.end, s.tid))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def to_chrome_trace(self) -> list[dict]:
        """Chrome trace-event list, format-compatible with the simulator's."""
        events = []
        for s in self.spans:
            events.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": s.pid,
                    "tid": s.tid,
                    "args": dict(s.args),
                }
            )
        return events

    def timeline(self, limit: int | None = None) -> str:
        """Indented text rendering of the recorded spans (for test reports)."""
        spans = self.spans
        shown = spans if limit is None else spans[-limit:]
        lines = []
        if limit is not None and len(spans) > limit:
            lines.append(f"... {len(spans) - limit} earlier spans elided ...")
        for s in shown:
            lines.append(f"{s.start * 1e3:10.3f} ms  {'  ' * s.depth}{s.name} [{s.cat}] {s.duration * 1e3:.3f} ms")
        return "\n".join(lines) if lines else "(no spans recorded)"
