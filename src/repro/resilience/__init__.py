"""Resilience: seeded fault injection, retry, checkpoint/restore, degradation.

The paper's Skeleton argues that the generated stream/event structure
alone enforces correctness; this layer extends that guarantee to a
*faulty* runtime.  Three pieces:

* :mod:`repro.resilience.faults`     — :class:`FaultPlan`: seeded,
  site-keyed injection of transient launch/copy failures, allocation
  errors, NaN/Inf field corruption and permanent device loss;
* :mod:`repro.resilience.retry`      — exponential backoff + seeded
  jitter for transient faults at the command-queue layer;
* :mod:`repro.resilience.checkpoint` / :mod:`repro.resilience.runner` —
  checkpoint/restore of Field state with rollback-and-replay, and
  graceful degradation onto surviving devices (re-partition, migrate,
  recompile, resume).

**Off by default.**  Exactly like ``repro.observability``, every
injection/guardrail site is guarded by a single attribute read on the
slotted ``RES`` singleton, so the disabled runtime pays near-zero
overhead.  Enable explicitly::

    from repro import resilience as res

    plan = res.FaultPlan(seed=7, launch=0.05, copy=0.05, device_loss={2: 40})
    with res.session(plan, res.RecoveryPolicy(checkpoint_interval=4)):
        driver = res.ResilientDriver(build_app, backend, steps=100, plan=plan)
        app = driver.run()

or from the shell: ``python -m repro faults cg --profile transient+loss``.

Import discipline: this package's modules must not import other
``repro`` packages at module import time (``repro.observability``
excepted — it is itself import-free), so ``repro.system`` and
``repro.sets`` can hook into it without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro import observability as _obs

from .checkpoint import CHECKPOINT_SCHEMA, Checkpoint, CheckpointStore
from .errors import (
    CheckpointCorrupt,
    CopyFault,
    CorruptionDetected,
    DegradeOverCapacity,
    DeviceLost,
    FaultExhausted,
    LaunchFault,
    RecoveryBudgetExceeded,
    ResilienceError,
    SolverDiverged,
    TransientFault,
)
from .faults import FaultPlan, unit_draw
from .retry import RetryPolicy, run_with_retry
from .runner import RecoveryPolicy, ResilientDriver, degraded_backend


class _ResState:
    """Process-global resilience switchboard (slotted for fast reads)."""

    __slots__ = ("active", "plan", "policy")

    def __init__(self) -> None:
        self.active = False
        self.plan: FaultPlan | None = None
        self.policy: RecoveryPolicy | None = None


RES = _ResState()
"""The singleton hot-path guard: sites check ``RES.active`` before injecting."""


def enabled() -> bool:
    """Whether fault injection/guardrails are live (default: False)."""
    return RES.active


def enable(plan: FaultPlan | None = None, policy: RecoveryPolicy | None = None) -> None:
    """Arm the injection sites with a plan and a recovery policy."""
    RES.plan = plan
    RES.policy = policy or RecoveryPolicy()
    RES.active = True


def disable() -> None:
    """Disarm the sites; the plan/policy stay readable."""
    RES.active = False


def reset() -> None:
    """Disarm and drop all state (used by the test fixture)."""
    RES.active = False
    RES.plan = None
    RES.policy = None


@contextmanager
def session(plan: FaultPlan | None = None, policy: RecoveryPolicy | None = None):
    """Scoped enable/restore, safe to nest around a resilient run."""
    prev = (RES.active, RES.plan, RES.policy)
    enable(plan, policy)
    try:
        yield RES
    finally:
        RES.active, RES.plan, RES.policy = prev


_FAULT_CLS = {"launch": LaunchFault, "copy": CopyFault}


def execute_command(kind: str, site: str, ranks: tuple[int, ...], fn) -> None:
    """Run one queue command under the armed plan: loss check, inject, retry.

    Called from ``CommandQueue`` behind the ``RES.active`` guard.  The
    involved device ranks are loss-checked first (a command touching a
    lost device raises :class:`DeviceLost`, which is never retried);
    transient faults are then injected and retried per the policy.
    """
    plan = RES.plan
    if plan is not None:
        for rank in ranks:
            try:
                plan.touch_device(rank)
            except DeviceLost:
                # tag the loss with the command's site key before it
                # propagates — touch_device only knows the rank, and the
                # flight-recorder post-mortem must name the failing site
                from repro.observability import flight as _flight  # noqa: PLC0415 - cold path

                _flight.record(
                    f"device{rank}", "fault", site, {"kind": "device_lost", "rank": rank}
                )
                raise
    policy = RES.policy.retry if RES.policy is not None else RetryPolicy()
    run_with_retry(fn, kind, site, policy, plan, _FAULT_CLS.get(kind, TransientFault))


def should_fail_allocation(rank: int, site: str) -> bool:
    """Loss-check ``rank`` and decide whether this allocation fails.

    Called from ``DeviceAllocator`` behind the guard; the caller raises
    its own ``AllocationError`` so the memory layer keeps its exception
    type.
    """
    plan = RES.plan
    if plan is None:
        return False
    try:
        plan.touch_device(rank)
    except DeviceLost:
        # same site-tagging as execute_command: the post-mortem must name
        # the allocation that first touched the lost device
        from repro.observability import flight as _flight  # noqa: PLC0415 - cold path

        _flight.record(f"device{rank}", "fault", site, {"kind": "device_lost", "rank": rank})
        raise
    hit = plan.decide("alloc", site)
    if hit and _obs.OBS.active:
        _obs.OBS.metrics.counter("faults_injected", kind="alloc").inc()
    return hit


__all__ = [
    "CHECKPOINT_SCHEMA",
    "RES",
    "Checkpoint",
    "CheckpointCorrupt",
    "CheckpointStore",
    "CopyFault",
    "CorruptionDetected",
    "DegradeOverCapacity",
    "DeviceLost",
    "FaultExhausted",
    "FaultPlan",
    "LaunchFault",
    "RecoveryBudgetExceeded",
    "RecoveryPolicy",
    "ResilienceError",
    "ResilientDriver",
    "RetryPolicy",
    "SolverDiverged",
    "TransientFault",
    "degraded_backend",
    "disable",
    "enable",
    "enabled",
    "execute_command",
    "reset",
    "run_with_retry",
    "session",
    "should_fail_allocation",
    "unit_draw",
]
