"""Checkpoint/restore of Field state for rollback-and-replay recovery.

A checkpoint snapshots each field as its *global* array (via
``Field.to_numpy``) plus an optional dict of host-side scalars.  Storing
global arrays — rather than per-device buffers — is what makes one
checkpoint serve both recovery modes:

* **rollback**: restore into the same fields after a failed or
  corrupted step, then replay;
* **migration**: restore into freshly-built fields on a *different*
  (degraded) backend, because ``Field.load_numpy`` re-scatters the
  global array across whatever slab decomposition the field now has.
"""

from __future__ import annotations

import copy

import numpy as np

from repro import observability as _obs


class Checkpoint:
    """An immutable snapshot of field state at one step index."""

    def __init__(self, step: int, arrays: list[tuple[str, np.ndarray]], scalars: dict):
        self.step = step
        self.arrays = arrays
        self.scalars = scalars

    @classmethod
    def capture(cls, fields, scalars: dict | None = None, step: int = 0) -> "Checkpoint":
        """Snapshot ``fields`` (and deep-copied ``scalars``) at ``step``."""
        with _obs.span("resilience.checkpoint", cat="resilience", step=step):
            arrays = [(f.name, f.to_numpy().copy()) for f in fields]
        ck = cls(step, arrays, copy.deepcopy(scalars or {}))
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            m.counter("checkpoints").inc()
            m.counter("checkpoint_bytes").inc(ck.nbytes)
        return ck

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for _, a in self.arrays)

    def restore(self, fields) -> dict:
        """Write the snapshot back into ``fields``; return the scalars.

        Fields are matched positionally and must carry the same names as
        at capture time; the target fields may live on a different
        backend (migration after device loss).
        """
        if len(fields) != len(self.arrays):
            raise ValueError(
                f"checkpoint holds {len(self.arrays)} fields but {len(fields)} were passed"
            )
        with _obs.span("resilience.restore", cat="resilience", step=self.step):
            for field, (name, arr) in zip(fields, self.arrays):
                if field.name != name:
                    raise ValueError(f"checkpoint field '{name}' does not match target '{field.name}'")
                field.load_numpy(arr)
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("checkpoint_restores").inc()
        return copy.deepcopy(self.scalars)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(n for n, _ in self.arrays)
        return f"Checkpoint(step={self.step}, fields=[{names}], {self.nbytes} B)"
