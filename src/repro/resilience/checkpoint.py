"""Checkpoint/restore of Field state for rollback-and-replay recovery.

A checkpoint snapshots each field as its *global* array (via
``Field.to_numpy``) plus an optional dict of host-side scalars.  Storing
global arrays — rather than per-device buffers — is what makes one
checkpoint serve both recovery modes:

* **rollback**: restore into the same fields after a failed or
  corrupted step, then replay;
* **migration**: restore into freshly-built fields on a *different*
  (degraded) backend, because ``Field.load_numpy`` re-scatters the
  global array across whatever slab decomposition the field now has.

Checkpoints are **verified**: every array carries a CRC32 checksum taken
at capture time, and :meth:`Checkpoint.restore` re-hashes before writing
a single byte into live fields — a flipped bit in a stored snapshot
raises a typed :class:`~repro.resilience.errors.CheckpointCorrupt`
instead of being silently resurrected.  :class:`CheckpointStore` keeps
the last K generations so rollback itself is fault-tolerant: when the
newest generation fails verification, restore falls back to the next
older one.
"""

from __future__ import annotations

import copy
import zlib

import numpy as np

from repro import observability as _obs

from .errors import CheckpointCorrupt

#: integrity/layout revision of the in-memory checkpoint format
CHECKPOINT_SCHEMA = "repro-checkpoint/2"


def _crc(arr: np.ndarray) -> int:
    """CRC32 of the array payload (C-contiguous view, cheap at MB scale)."""
    return zlib.crc32(np.ascontiguousarray(arr).view(np.uint8).reshape(-1))


class Checkpoint:
    """An immutable snapshot of field state at one step index."""

    def __init__(self, step: int, arrays: list[tuple[str, np.ndarray]], scalars: dict):
        self.step = step
        self.arrays = arrays
        self.scalars = scalars
        self.schema = CHECKPOINT_SCHEMA
        self.checksums: dict[str, int] = {name: _crc(arr) for name, arr in arrays}

    @classmethod
    def capture(cls, fields, scalars: dict | None = None, step: int = 0) -> "Checkpoint":
        """Snapshot ``fields`` (and deep-copied ``scalars``) at ``step``."""
        with _obs.span("resilience.checkpoint", cat="resilience", step=step):
            arrays = [(f.name, f.to_numpy().copy()) for f in fields]
        ck = cls(step, arrays, copy.deepcopy(scalars or {}))
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            m.counter("checkpoints").inc()
            m.counter("checkpoint_bytes").inc(ck.nbytes)
        return ck

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for _, a in self.arrays)

    def header(self) -> dict:
        """JSON-able schema header: layout + integrity metadata.

        This is what an on-disk serialisation would prepend, and what
        post-mortems embed so a human can see which snapshot a rollback
        actually used.
        """
        return {
            "schema": self.schema,
            "step": self.step,
            "fields": [
                {
                    "name": name,
                    "shape": list(arr.shape),
                    "dtype": str(arr.dtype),
                    "nbytes": int(arr.nbytes),
                    "crc32": self.checksums[name],
                }
                for name, arr in self.arrays
            ],
            "scalars": sorted(self.scalars),
        }

    def verify(self) -> list[str]:
        """Names of arrays whose bytes no longer match their checksum."""
        return [name for name, arr in self.arrays if _crc(arr) != self.checksums[name]]

    def restore(self, fields, generation: int = 0) -> dict:
        """Verify the snapshot, then write it back into ``fields``.

        Fields are matched positionally and must carry the same names as
        at capture time; the target fields may live on a different
        backend (migration after device loss).  Raises
        :class:`CheckpointCorrupt` — without touching any live field —
        when an array fails its checksum.
        """
        if len(fields) != len(self.arrays):
            raise ValueError(
                f"checkpoint holds {len(self.arrays)} fields but {len(fields)} were passed"
            )
        bad = self.verify()
        if bad:
            if _obs.OBS.active:
                _obs.OBS.metrics.counter("checkpoint_corruptions").inc()
            raise CheckpointCorrupt(bad, self.step, generation)
        with _obs.span("resilience.restore", cat="resilience", step=self.step):
            for field, (name, arr) in zip(fields, self.arrays):
                if field.name != name:
                    raise ValueError(f"checkpoint field '{name}' does not match target '{field.name}'")
                field.load_numpy(arr)
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("checkpoint_restores").inc()
        return copy.deepcopy(self.scalars)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(n for n, _ in self.arrays)
        return f"Checkpoint(step={self.step}, fields=[{names}], {self.nbytes} B)"


class CheckpointStore:
    """The last K checkpoint generations, newest first.

    One corrupted snapshot must not take recovery down with it: restore
    walks the generations newest-to-oldest, discarding any that fail
    verification, and only gives up — with the *newest* generation's
    :class:`CheckpointCorrupt` — when every stored snapshot is bad.
    """

    def __init__(self, keep: int = 3):
        if keep < 1:
            raise ValueError("a checkpoint store must keep at least one generation")
        self.keep = keep
        self._generations: list[Checkpoint] = []  # newest first
        #: restores that had to skip at least one corrupt generation
        self.fallbacks = 0
        #: generations discarded because they failed verification
        self.corrupt_dropped = 0
        #: generation index actually used by each successful restore
        self.restore_depths: list[int] = []

    def __len__(self) -> int:
        return len(self._generations)

    @property
    def latest(self) -> Checkpoint | None:
        return self._generations[0] if self._generations else None

    @property
    def max_restore_depth(self) -> int:
        return max(self.restore_depths, default=0)

    def push(self, ckpt: Checkpoint) -> None:
        """Add a new newest generation, evicting beyond ``keep``."""
        self._generations.insert(0, ckpt)
        del self._generations[self.keep :]

    def generations(self) -> list[Checkpoint]:
        return list(self._generations)

    def restore_latest_valid(self, fields) -> tuple[Checkpoint, dict, int]:
        """Restore the newest generation that passes verification.

        Returns ``(checkpoint, scalars, generation_index)``; corrupt
        generations are dropped from the store (they can never restore)
        and counted in :attr:`corrupt_dropped`.
        """
        if not self._generations:
            raise ValueError("checkpoint store is empty; nothing to restore")
        first_error: CheckpointCorrupt | None = None
        gen = 0
        while self._generations:
            ckpt = self._generations[0]
            try:
                scalars = ckpt.restore(fields, generation=gen)
            except CheckpointCorrupt as exc:
                first_error = first_error or exc
                self._generations.pop(0)
                self.corrupt_dropped += 1
                gen += 1
                continue
            if gen > 0:
                self.fallbacks += 1
                if _obs.OBS.active:
                    _obs.OBS.metrics.counter("checkpoint_fallbacks").inc()
            self.restore_depths.append(gen)
            return ckpt, scalars, gen
        assert first_error is not None
        raise first_error

    def describe(self) -> dict:
        """JSON-able summary for chaos reports and post-mortems."""
        return {
            "generations": len(self._generations),
            "keep": self.keep,
            "steps": [c.step for c in self._generations],
            "fallbacks": self.fallbacks,
            "corrupt_dropped": self.corrupt_dropped,
            "max_restore_depth": self.max_restore_depth,
        }
