"""Typed failure vocabulary of the resilience layer.

Every fault the injector can raise — and every terminal condition the
recovery machinery can surface — has a dedicated exception type, so
drivers and tests can write precise handlers instead of matching on
message strings.  The hierarchy mirrors the recovery semantics:

* :class:`TransientFault` (and its launch/copy refinements) is retryable
  at the command-queue layer;
* :class:`FaultExhausted` means the retry budget ran out — the step must
  be rolled back and replayed from a checkpoint;
* :class:`CorruptionDetected` is raised by the NaN/Inf guardrail and is
  also answered by rollback-and-replay;
* :class:`DeviceLost` is permanent — the only recovery is degradation
  onto the surviving devices;
* :class:`SolverDiverged` is the solver-level guardrail (a non-finite
  residual), surfaced instead of silently looping to ``max_iterations``.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class of every fault or recovery failure this layer raises."""


class TransientFault(ResilienceError):
    """A retryable failure of one command (injected or real).

    ``site`` is the stable injection-site key, ``attempt`` the 1-based
    attempt number that failed.
    """

    kind = "transient"

    def __init__(self, site: str, attempt: int = 1):
        super().__init__(f"transient {self.kind} fault at {site} (attempt {attempt})")
        self.site = site
        self.attempt = attempt


class LaunchFault(TransientFault):
    """A kernel launch failed transiently."""

    kind = "launch"


class CopyFault(TransientFault):
    """A DMA / halo-exchange transfer failed transiently."""

    kind = "copy"


class FaultExhausted(ResilienceError):
    """Retries of a transient fault ran out; the step needs a rollback."""

    def __init__(self, kind: str, site: str, attempts: int):
        super().__init__(f"{kind} fault at {site} persisted through {attempts} attempts")
        self.kind = kind
        self.site = site
        self.attempts = attempts


class RecoveryBudgetExceeded(FaultExhausted):
    """Cumulative recovery time overran ``RecoveryPolicy.max_recovery_seconds``.

    A :class:`FaultExhausted` refinement: the retry/rollback machinery is
    still making progress, but not fast enough to be worth continuing —
    the wall-clock budget, not the attempt budget, ran out.
    """

    def __init__(self, phase: str, spent: float, budget: float):
        # bypass FaultExhausted.__init__'s message; keep its fields coherent
        ResilienceError.__init__(
            self,
            f"recovery budget exhausted during {phase}: "
            f"{spent:.3f}s spent recovering against a {budget:.3f}s budget",
        )
        self.kind = "recovery-budget"
        self.site = phase
        self.attempts = 0
        self.spent = spent
        self.budget = budget


class DeviceLost(ResilienceError):
    """A device failed permanently; commands on it can never succeed."""

    def __init__(self, rank: int, message: str | None = None):
        super().__init__(message or f"device {rank} was lost permanently")
        self.rank = rank


class DegradeOverCapacity(DeviceLost):
    """Degradation is impossible: survivors cannot hold the migrated state.

    Raised *before* the rebuild starts, instead of letting a mid-rebuild
    ``AllocationError`` leave the driver with a half-constructed
    application.  ``shortfall_bytes`` is how many bytes the worst-loaded
    survivor is over its capacity under the planned partition.
    """

    def __init__(self, rank: int, shortfall_bytes: int, demand_bytes: int, capacity_bytes: int):
        super().__init__(
            rank,
            f"device {rank} lost, but the migrated fields need {demand_bytes} B on the "
            f"worst-loaded survivor against a {capacity_bytes} B capacity "
            f"({shortfall_bytes} B short); cannot degrade",
        )
        self.shortfall_bytes = shortfall_bytes
        self.demand_bytes = demand_bytes
        self.capacity_bytes = capacity_bytes


class CheckpointCorrupt(ResilienceError):
    """A checkpoint failed its integrity check at restore time.

    ``generation`` is the checkpoint's position in the store history at
    the time of detection (0 = newest); ``field_names`` are the arrays
    whose stored checksum no longer matches their bytes.
    """

    def __init__(self, field_names: list[str], step: int, generation: int = 0):
        super().__init__(
            f"checkpoint at step {step} (generation {generation}) is corrupt: "
            f"checksum mismatch in field(s) {', '.join(field_names)}"
        )
        self.field_names = list(field_names)
        self.step = step
        self.generation = generation


class CorruptionDetected(ResilienceError):
    """The NaN/Inf guardrail found non-finite values in field state."""

    def __init__(self, field_names: list[str]):
        super().__init__(f"non-finite values detected in field(s): {', '.join(field_names)}")
        self.field_names = list(field_names)


class SolverDiverged(ResilienceError):
    """An iterative solver produced a non-finite residual.

    Carries the iteration at which divergence was detected and the tail
    of the residual history leading up to it.
    """

    def __init__(self, iteration: int, residual_tail: list[float]):
        tail = ", ".join(f"{r:.3e}" for r in residual_tail)
        super().__init__(f"solver diverged at iteration {iteration}; residual tail: [{tail}]")
        self.iteration = iteration
        self.residual_tail = list(residual_tail)
