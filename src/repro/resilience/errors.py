"""Typed failure vocabulary of the resilience layer.

Every fault the injector can raise — and every terminal condition the
recovery machinery can surface — has a dedicated exception type, so
drivers and tests can write precise handlers instead of matching on
message strings.  The hierarchy mirrors the recovery semantics:

* :class:`TransientFault` (and its launch/copy refinements) is retryable
  at the command-queue layer;
* :class:`FaultExhausted` means the retry budget ran out — the step must
  be rolled back and replayed from a checkpoint;
* :class:`CorruptionDetected` is raised by the NaN/Inf guardrail and is
  also answered by rollback-and-replay;
* :class:`DeviceLost` is permanent — the only recovery is degradation
  onto the surviving devices;
* :class:`SolverDiverged` is the solver-level guardrail (a non-finite
  residual), surfaced instead of silently looping to ``max_iterations``.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class of every fault or recovery failure this layer raises."""


class TransientFault(ResilienceError):
    """A retryable failure of one command (injected or real).

    ``site`` is the stable injection-site key, ``attempt`` the 1-based
    attempt number that failed.
    """

    kind = "transient"

    def __init__(self, site: str, attempt: int = 1):
        super().__init__(f"transient {self.kind} fault at {site} (attempt {attempt})")
        self.site = site
        self.attempt = attempt


class LaunchFault(TransientFault):
    """A kernel launch failed transiently."""

    kind = "launch"


class CopyFault(TransientFault):
    """A DMA / halo-exchange transfer failed transiently."""

    kind = "copy"


class FaultExhausted(ResilienceError):
    """Retries of a transient fault ran out; the step needs a rollback."""

    def __init__(self, kind: str, site: str, attempts: int):
        super().__init__(f"{kind} fault at {site} persisted through {attempts} attempts")
        self.kind = kind
        self.site = site
        self.attempts = attempts


class DeviceLost(ResilienceError):
    """A device failed permanently; commands on it can never succeed."""

    def __init__(self, rank: int, message: str | None = None):
        super().__init__(message or f"device {rank} was lost permanently")
        self.rank = rank


class CorruptionDetected(ResilienceError):
    """The NaN/Inf guardrail found non-finite values in field state."""

    def __init__(self, field_names: list[str]):
        super().__init__(f"non-finite values detected in field(s): {', '.join(field_names)}")
        self.field_names = list(field_names)


class SolverDiverged(ResilienceError):
    """An iterative solver produced a non-finite residual.

    Carries the iteration at which divergence was detected and the tail
    of the residual history leading up to it.
    """

    def __init__(self, iteration: int, residual_tail: list[float]):
        tail = ", ".join(f"{r:.3e}" for r in residual_tail)
        super().__init__(f"solver diverged at iteration {iteration}; residual tail: [{tail}]")
        self.iteration = iteration
        self.residual_tail = list(residual_tail)
