"""Seeded, site-keyed fault injection plans.

A :class:`FaultPlan` decides — reproducibly — which commands fail.  The
decision for a draw is a pure function of ``(seed, kind, site, n)``
where ``site`` is a *stable* string key of the injection site (built
from container/queue names and device *ranks*, never ``Device.uid``)
and ``n`` is that site's private draw counter.  Two consequences:

* the same seed injects the same faults on every run, regardless of how
  many devices, events or buffers were created beforehand (global id
  counters never enter the hash);
* a replayed step re-draws with advanced counters, so a rolled-back
  fault is not re-injected deterministically forever — exactly what
  rollback-and-replay recovery needs to make progress.

Permanent device loss is scheduled, not drawn: ``device_loss={rank: n}``
loses ``rank`` at its ``n``-th resilience-checked command.  Once lost, a
device fails every subsequent command with :class:`DeviceLost` until the
recovery machinery acknowledges the loss and degrades onto the
survivors.
"""

from __future__ import annotations

import hashlib
import math
import threading

from .errors import DeviceLost

#: fault kinds a plan can inject by probability
KINDS = ("launch", "copy", "alloc", "corrupt")

_DENOM = float(1 << 53)


def unit_draw(seed: int, *parts) -> float:
    """Deterministic uniform [0, 1) from the seed and any hashable parts."""
    payload = "\x1f".join(str(p) for p in (seed, *parts)).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return (int.from_bytes(digest, "big") >> 11) / _DENOM


class FaultPlan:
    """A reproducible schedule of injected faults.

    Parameters
    ----------
    seed:
        Explicit seed; two plans with equal seeds and rates make
        identical decisions at identical sites.
    launch, copy, alloc, corrupt:
        Per-draw injection probability of each fault kind.
    device_loss:
        ``{rank: n}`` — lose ``rank`` permanently at its ``n``-th
        (1-based) resilience-checked command.
    max_injections:
        Optional ``{kind: cap}`` limiting the total number of injected
        faults per kind (useful for "exactly k transient faults" tests).
    """

    def __init__(
        self,
        seed: int,
        *,
        launch: float = 0.0,
        copy: float = 0.0,
        alloc: float = 0.0,
        corrupt: float = 0.0,
        device_loss: dict[int, int] | None = None,
        max_injections: dict[str, int] | None = None,
    ):
        self.seed = int(seed)
        self.rates = {"launch": launch, "copy": copy, "alloc": alloc, "corrupt": corrupt}
        for kind, p in self.rates.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{kind} probability must be in [0, 1], got {p}")
        self.device_loss = dict(device_loss or {})
        for rank, n in self.device_loss.items():
            if rank < 0 or n < 1:
                raise ValueError(f"device_loss wants rank >= 0 and trigger >= 1, got {{{rank}: {n}}}")
        self.max_injections = dict(max_injections or {})
        self.lost: set[int] = set()
        #: every injected fault as ``(kind, site, draw_index)``, in order
        self.history: list[tuple[str, str, int]] = []
        self._draws: dict[tuple[str, str], int] = {}
        self._injected: dict[str, int] = {k: 0 for k in KINDS}
        self._touches: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- probabilistic faults ------------------------------------------------
    def decide(self, kind: str, site: str) -> bool:
        """Advance the site's draw counter and decide whether to inject."""
        if kind not in self.rates:
            raise KeyError(f"unknown fault kind '{kind}'; expected one of {KINDS}")
        p = self.rates[kind]
        with self._lock:
            n = self._draws.get((kind, site), 0)
            self._draws[(kind, site)] = n + 1
            if p <= 0.0:
                return False
            cap = self.max_injections.get(kind)
            if cap is not None and self._injected[kind] >= cap:
                return False
            hit = unit_draw(self.seed, kind, site, n) < p
            if hit:
                self._injected[kind] += 1
                self.history.append((kind, site, n))
            return hit

    def injected(self, kind: str | None = None) -> int:
        """Total faults injected so far (of one kind, or overall)."""
        with self._lock:
            if kind is not None:
                return self._injected[kind]
            return sum(self._injected.values())

    # -- corruption details --------------------------------------------------
    def pick(self, site: str, n: int) -> int:
        """Seeded choice of one index out of ``n`` (e.g. which field)."""
        if n < 1:
            raise ValueError("cannot pick from an empty collection")
        return min(int(unit_draw(self.seed, "pick", site, n) * n), n - 1)

    def corruption(self, site: str, size: int) -> tuple[int, float]:
        """Seeded (flat position, poison value) for a buffer of ``size``."""
        if size < 1:
            raise ValueError("cannot corrupt an empty buffer")
        pos = min(int(unit_draw(self.seed, "corrupt-pos", site, size) * size), size - 1)
        value = math.nan if unit_draw(self.seed, "corrupt-val", site) < 0.5 else math.inf
        return pos, value

    # -- permanent device loss ----------------------------------------------
    def touch_device(self, rank: int) -> None:
        """Count one command on ``rank``; raise once its loss is due.

        The host (rank ``-1``) never fails.  Already-lost devices raise
        immediately; scheduled losses trigger at their configured count.
        """
        if rank < 0:
            return
        trigger = False
        with self._lock:
            if rank in self.lost:
                trigger = True
            else:
                due = self.device_loss.get(rank)
                if due is not None:
                    n = self._touches.get(rank, 0) + 1
                    self._touches[rank] = n
                    if n >= due:
                        self.lost.add(rank)
                        trigger = True
        if trigger:
            raise DeviceLost(rank)

    def acknowledge_loss(self, rank: int) -> None:
        """Consume a loss after degradation re-indexed the survivors.

        Ranks renumber when the DeviceSet shrinks, so the stale loss
        entry must not shadow a healthy survivor with the same index.
        """
        with self._lock:
            self.lost.discard(rank)
            self.device_loss.pop(rank, None)
            self._touches.pop(rank, None)

    # -- reporting -----------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able summary for trace metadata and CLI output."""
        with self._lock:
            return {
                "seed": self.seed,
                "rates": {k: v for k, v in self.rates.items() if v > 0.0},
                "device_loss": dict(self.device_loss),
                "lost": sorted(self.lost),
                "injected": dict(self._injected),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rates = ", ".join(f"{k}={v:g}" for k, v in self.rates.items() if v > 0.0)
        return f"FaultPlan(seed={self.seed}, {rates or 'no rates'}, loss={self.device_loss})"
