"""Retry with exponential backoff and deterministic jitter.

Transient launch/copy faults are absorbed where they occur — at the
command-queue layer — by re-attempting the command under a
:class:`RetryPolicy`.  Backoff delays grow geometrically and are
jittered, but the jitter is drawn from the fault plan's seed (keyed by
site and attempt), so a seeded run backs off identically every time.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro import observability as _obs
from repro.observability import flight as _flight

from .errors import FaultExhausted, TransientFault
from .faults import FaultPlan, unit_draw


def _fault_track(site: str) -> str:
    """Flight-recorder track for a site key (``...@<rank>`` when present)."""
    _, sep, tail = site.rpartition("@")
    return f"device{tail.split('->')[0]}" if sep else "host"


class RetryPolicy:
    """Exponential backoff with plan-seeded jitter.

    ``delay(attempt) = min(base_delay * multiplier**(attempt-1), max_delay)``
    scaled by ``1 ± jitter``.  The defaults keep simulated runs fast
    (sub-millisecond base) while still exercising the growth curve.
    """

    __slots__ = ("max_attempts", "base_delay", "max_delay", "multiplier", "jitter")

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay: float = 0.0005,
        max_delay: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.5,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0 or not 0.0 <= jitter <= 1.0:
            raise ValueError(
                f"invalid RetryPolicy(base_delay={base_delay}, max_delay={max_delay}, "
                f"multiplier={multiplier}, jitter={jitter})"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter

    def delay(self, attempt: int, seed: int = 0, site: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        d = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if d > 0.0 and self.jitter > 0.0:
            d *= 1.0 + self.jitter * (2.0 * unit_draw(seed, "jitter", site, attempt) - 1.0)
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, base_delay={self.base_delay}, "
            f"max_delay={self.max_delay}, x{self.multiplier}, jitter={self.jitter})"
        )


def run_with_retry(
    fn: Callable[[], None],
    kind: str,
    site: str,
    policy: RetryPolicy,
    plan: FaultPlan | None,
    fault_cls: type[TransientFault] = TransientFault,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Run ``fn`` under injection + retry; return the attempt that succeeded.

    Each attempt first consults the plan (an injected fault fails the
    attempt *before* the command runs, modelling a launch/DMA error),
    then runs ``fn``; a :class:`TransientFault` raised by either path is
    retried with backoff until the policy's budget is exhausted, at
    which point :class:`FaultExhausted` propagates for checkpoint-level
    recovery.
    """
    attempt = 1
    while True:
        try:
            if plan is not None and plan.decide(kind, site):
                if _obs.OBS.active:
                    _obs.OBS.metrics.counter("faults_injected", kind=kind).inc()
                _flight.record(
                    _fault_track(site), "fault", site, {"kind": kind, "attempt": attempt}
                )
                raise fault_cls(site, attempt)
            fn()
            return attempt
        except TransientFault as exc:
            if attempt >= policy.max_attempts:
                _flight.record(
                    _fault_track(site), "fault", site, {"kind": f"{kind}_exhausted", "attempts": attempt}
                )
                raise FaultExhausted(kind, site, attempt) from exc
            d = policy.delay(attempt, plan.seed if plan is not None else 0, site)
            if _obs.OBS.active:
                m = _obs.OBS.metrics
                m.counter("retries", kind=kind).inc()
                m.histogram("retry_backoff_seconds", kind=kind).observe(d)
            if d > 0.0:
                sleep(d)
            attempt += 1
