"""Recovery orchestration: the adaptive resilient driver.

:class:`ResilientDriver` runs an iterative multi-GPU application under a
:class:`~repro.resilience.faults.FaultPlan`.  It is the closed-loop
controller that unifies the resilience and tuner layers:

* **retry** happens below the driver, at the command-queue layer
  (transient faults never surface here unless exhausted);
* **rollback-and-replay** answers :class:`FaultExhausted` and
  :class:`CorruptionDetected`: restore the newest *verified* checkpoint
  generation into the live fields and re-run from its step — a tampered
  snapshot falls back to an older generation instead of poisoning the
  run (:class:`~repro.resilience.checkpoint.CheckpointStore`);
* **tuned degradation** answers :class:`DeviceLost`: shrink the backend
  to the survivors — each keeping its *own* ``DeviceSpec``
  (:meth:`MachineSpec.without_rank`) — feed the shrunken machine through
  the autotuner, rebuild the application with the water-filled partition
  shares and the DES-chosen OCC/mode, migrate field state from the
  checkpoint, and resume.  The tuned-vs-uniform makespan delta of the
  degraded plan is recorded in the flight recorder's degrade event;
* **online recalibration** closes the loop while the job is healthy:
  every ``recalibrate_interval`` steps the driver joins observed kernel
  timings (tracer spans, or the histogram fallback) to the compiled
  step costs, refits the machine model, and on drift re-tunes and
  live-repartitions through the same checkpoint/migrate path — no
  restart.

Applications plug in through a small duck-typed protocol::

    app = factory(backend, **tuned)  # tuned kwargs the factory accepts
    app.fields()               # -> list[Field]: checkpointable state
    app.scalars()              # -> dict: host-side loop state (optional)
    app.step(i)                # run iteration i
    app.on_restore(scalars)    # re-seed host state after a restore (optional)
    app.skeletons              # -> list[Skeleton] (optional; recalibration)

``factory`` must be deterministic in everything it does not restore from
the checkpoint (boundary conditions, coefficients), so a rebuilt
application is the same computation on a new decomposition.  The tuned
keyword arguments (``partition_weights``, ``occ``, ``mode``) are passed
only when the factory's signature accepts them.
"""

from __future__ import annotations

import inspect
import math
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

from repro import observability as _obs
from repro.observability import flight as _flight

from .checkpoint import Checkpoint, CheckpointStore
from .errors import (
    CorruptionDetected,
    DegradeOverCapacity,
    DeviceLost,
    FaultExhausted,
    RecoveryBudgetExceeded,
    ResilienceError,
)
from .retry import RetryPolicy

#: divergence-guardrail reactions (checked by RecoveryPolicy)
DIVERGENCE_POLICIES = ("raise", "rollback", "log", "off")

#: tuned kwargs the driver offers a factory on (re)build
TUNED_KWARGS = ("partition_weights", "occ", "mode")


@dataclass
class RecoveryPolicy:
    """Tunable recovery behaviour shared by the injection sites and driver."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_interval: int = 8
    divergence: str = "rollback"
    max_rollbacks: int = 32
    min_devices: int = 1
    #: checkpoint generations kept for corrupt-snapshot fallback
    checkpoint_generations: int = 3
    #: cumulative wall-clock seconds allowed inside recovery actions
    #: (rollback, degrade, recovery rebuild+migrate); None = unbounded
    max_recovery_seconds: float | None = None
    #: re-tune the degraded fleet through the autotuner (needs the
    #: driver's ``experiment`` to name a tuner workload)
    tuned_degrade: bool = True
    #: run the recalibration loop every N steps; None = off
    recalibrate_interval: int | None = None
    #: relative RMS error above which the machine model counts as drifted
    retune_quality_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.divergence not in DIVERGENCE_POLICIES:
            raise ValueError(
                f"divergence policy must be one of {DIVERGENCE_POLICIES}, got '{self.divergence}'"
            )
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.max_rollbacks < 0 or self.min_devices < 1:
            raise ValueError("max_rollbacks must be >= 0 and min_devices >= 1")
        if self.checkpoint_generations < 1:
            raise ValueError("checkpoint_generations must be >= 1")
        if self.max_recovery_seconds is not None and self.max_recovery_seconds < 0:
            raise ValueError("max_recovery_seconds must be >= 0 (or None for unbounded)")
        if self.recalibrate_interval is not None and self.recalibrate_interval < 1:
            raise ValueError("recalibrate_interval must be >= 1 (or None to disable)")


def degraded_backend(backend, lost_rank: int, min_devices: int = 1):
    """A new backend on the survivors of ``backend`` after losing one rank.

    Survivors are re-indexed ``0..n-2`` (ranks are positional in a
    DeviceSet) and keep their own per-rank ``DeviceSpec``s via
    :meth:`MachineSpec.without_rank` — on a heterogeneous machine the
    degraded cost model must describe the cards that actually survived,
    not a truncated override table.
    """
    from repro.system.backend import Backend  # deferred: keeps this package import-cycle-free
    from repro.system.device import DeviceSet

    n = backend.num_devices - 1
    if n < min_devices:
        raise DeviceLost(
            lost_rank,
            f"device {lost_rank} lost but only {backend.num_devices} device(s) remain "
            f"(min_devices={min_devices}); cannot degrade further",
        )
    machine = backend.machine
    if 0 <= lost_rank < machine.num_devices and machine.num_devices > 1:
        machine = machine.without_rank(lost_rank)
    else:  # out-of-model rank: fall back to a plain resize
        machine = machine.with_devices(n)
    return Backend(
        DeviceSet.gpus(n),
        machine=machine,
        memory_capacity=backend.allocator.capacity_bytes,
        mem_options=backend.mem_options,
    )


class ResilientDriver:
    """Runs ``steps`` iterations of an application with full recovery.

    ``experiment`` optionally names a tuner workload (``lbm``,
    ``poisson``, ``karman``, ``elasticity``); when set, device-loss
    degradation re-partitions with tuned shares and the recalibration
    loop can re-tune on model drift.  Without it the driver behaves like
    the classic uniform-rebuild controller.
    """

    def __init__(
        self,
        factory: Callable,
        backend,
        steps: int,
        policy: RecoveryPolicy | None = None,
        plan=None,
        experiment: str | None = None,
    ):
        if steps < 0:
            raise ValueError("steps must be >= 0")
        self.factory = factory
        self.backend = backend
        self.steps = steps
        self.policy = policy or RecoveryPolicy()
        self.plan = plan
        self.experiment = experiment
        self.rollbacks = 0
        self.devices_lost = 0
        self.retunes = 0
        #: cumulative wall-clock seconds spent inside recovery actions
        self.recovery_seconds = 0.0
        self.store = CheckpointStore(keep=self.policy.checkpoint_generations)
        #: one dict per degrade event: tuned vs uniform DES makespans
        self.degrade_reports: list[dict] = []
        #: one dict per online retune: fit quality + adopted config
        self.retune_reports: list[dict] = []
        self.last_tune_plan = None
        self._tuned: dict | None = None
        self._recalibrator = None
        self._span_cursor = 0
        self._recovery_rebuild = False

    # -- recovery actions ---------------------------------------------------
    def _build(self, backend):
        kwargs = self._factory_kwargs()
        with _obs.span(
            "resilience.build", cat="resilience", devices=backend.num_devices, tuned=bool(kwargs)
        ):
            return self.factory(backend, **kwargs)

    def _factory_kwargs(self) -> dict:
        """The tuned kwargs the factory's signature actually accepts."""
        if not self._tuned:
            return {}
        try:
            params = inspect.signature(self.factory).parameters
        except (TypeError, ValueError):  # builtins/partials without signatures
            return {}
        accepts_var_kw = any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        )
        kwargs = {
            k: v
            for k, v in self._tuned.items()
            if v is not None and (accepts_var_kw or k in params)
        }
        if kwargs.get("mode") == "parallel":
            from repro import resilience as _res  # self-package, deferred

            if _res.RES.active:
                # an armed session forces serial replay anyway; pass it
                # outright instead of warning on every skeleton run
                kwargs["mode"] = "serial"
        return kwargs

    def _capture(self, app, step: int) -> Checkpoint:
        scalars = app.scalars() if hasattr(app, "scalars") else {}
        ckpt = Checkpoint.capture(app.fields(), scalars, step=step)
        self.store.push(ckpt)
        return ckpt

    def _restore(self, app) -> int:
        """Restore the newest *valid* generation; return its step."""
        ckpt, scalars, generation = self.store.restore_latest_valid(app.fields())
        if generation > 0:
            _flight.record(
                "host",
                "rollback",
                "checkpoint_fallback",
                {"to_step": ckpt.step, "generation": generation, "header": ckpt.header()},
            )
        if hasattr(app, "on_restore"):
            app.on_restore(scalars)
        return ckpt.step

    def _charge_recovery(self, phase: str, t0: float) -> None:
        """Account recovery wall-clock; enforce the budget if one is set."""
        self.recovery_seconds += perf_counter() - t0
        budget = self.policy.max_recovery_seconds
        if budget is not None and self.recovery_seconds > budget:
            _flight.record(
                "host",
                "fault",
                "recovery_budget",
                {"phase": phase, "spent": self.recovery_seconds, "budget": budget},
            )
            raise RecoveryBudgetExceeded(phase, self.recovery_seconds, budget)

    def _rollback(self, app, cause: Exception) -> int:
        t0 = perf_counter()
        self.rollbacks += 1
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("rollbacks", cause=type(cause).__name__).inc()
        with _obs.span("resilience.rollback", cat="resilience"):
            step = self._restore(app)
        _flight.record(
            "host", "rollback", type(cause).__name__, {"to_step": step, "n": self.rollbacks}
        )
        self._charge_recovery("rollback", t0)
        return step

    def _degrade(self, lost: DeviceLost):
        t0 = perf_counter()
        self.devices_lost += 1
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("devices_lost", rank=str(lost.rank)).inc()
        with _obs.span("resilience.degrade", cat="resilience", lost_rank=lost.rank):
            new_backend = degraded_backend(self.backend, lost.rank, self.policy.min_devices)
            tune = None
            if self.policy.tuned_degrade and self.experiment and new_backend.num_devices > 1:
                tune = self._tune_for(new_backend)
            self._check_capacity(lost.rank, new_backend)
            if self.plan is not None:
                self.plan.acknowledge_loss(lost.rank)
        detail = {"survivors": new_backend.num_devices}
        if tune is not None:
            detail.update(
                tuned_makespan=tune["tuned_makespan"],
                uniform_makespan=tune["uniform_makespan"],
                improvement=tune["improvement"],
                occ=tune["occ"],
                mode=tune["mode"],
            )
        _flight.record(f"device{lost.rank}", "degrade", f"device{lost.rank} lost", detail)
        self._recovery_rebuild = True
        self._charge_recovery("degrade", t0)
        return new_backend

    def _tune_for(self, backend) -> dict | None:
        """Autotune the shrunken fleet; adopt shares/OCC/mode for rebuild.

        Tuning records candidate schedules on a *virtual* miniature — it
        is simulation, not work on the real fleet — so the fault plan is
        disarmed around it: an injection (or the next scheduled loss)
        must not fire inside the recovery path itself.
        """
        from repro import resilience as _res  # self-package, deferred
        from repro.tuner.search import tune_workload  # deferred: tuner imports system

        armed = _res.RES.active
        _res.RES.active = False
        try:
            plan = tune_workload(self.experiment, backend.machine, devices=backend.num_devices)
        except (KeyError, ValueError):
            return None  # not a tuner workload: keep the uniform rebuild
        finally:
            _res.RES.active = armed
        self.last_tune_plan = plan
        self._tuned = {
            "partition_weights": plan.best.weights,
            "occ": plan.best_occ,
            "mode": plan.best.mode,
        }
        report = {
            "experiment": self.experiment,
            "machine": backend.machine.name,
            "devices": backend.num_devices,
            "occ": plan.best.occ,
            "mode": plan.best.mode,
            "weights": plan.best.weights,
            "shares": plan.shares,
            "tuned_makespan": plan.best.makespan,
            "uniform_makespan": plan.baseline.makespan,
            "improvement": plan.improvement,
            "uniform_best_makespan": plan.uniform_best.makespan if plan.uniform_best else None,
            "improvement_vs_best_uniform": plan.tuned_vs_uniform,
        }
        self.degrade_reports.append(report)
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("degrade_retunes").inc()
        return report

    def _check_capacity(self, lost_rank: int, backend) -> None:
        """Fail degradation early when survivors cannot hold the state.

        A lower-bound check: the checkpointed global arrays alone,
        distributed by the planned partition shares, must fit the
        worst-loaded survivor's capacity.  Anything tighter (solver
        scratch fields, halos, padding) would still fail later, but this
        catches the hopeless case before a half-built application exists.
        """
        capacity = backend.allocator.capacity_bytes
        ckpt = self.store.latest
        if capacity is None or ckpt is None:
            return
        n = backend.num_devices
        weights = (self._tuned or {}).get("partition_weights")
        worst_share = max(weights) if weights else 1.0 / n
        demand = int(math.ceil(ckpt.nbytes * worst_share))
        if demand > capacity:
            raise DegradeOverCapacity(lost_rank, demand - capacity, demand, capacity)

    # -- online recalibration ----------------------------------------------
    def _recalibrate(self, app, step: int) -> bool:
        """Ingest fresh samples; on model drift, re-tune and request a
        live re-partition (returns True when the app must be rebuilt)."""
        if not self.experiment:
            return False
        from repro.tuner.feedback import Recalibrator, kernel_samples_from_trace

        if (
            self._recalibrator is None
            or self._recalibrator.machine.num_devices != self.backend.num_devices
        ):
            self._recalibrator = Recalibrator(
                self.backend.machine, quality_threshold=self.policy.retune_quality_threshold
            )
            self._span_cursor = 0
        rec = self._recalibrator

        spans, metrics = [], None
        if _obs.OBS.active:
            spans = list(_obs.OBS.tracer.spans)
            metrics = _obs.OBS.metrics
        fresh = spans[self._span_cursor :]
        self._span_cursor = len(spans)
        for sk in getattr(app, "skeletons", []) or []:
            result = getattr(sk, "last_result", None)
            if result is None:
                continue
            rec.ingest(kernel_samples_from_trace(fresh, result, metrics=metrics))

        # like _tune_for: the re-tune's candidate recording is simulation,
        # shielded from the armed fault plan
        from repro import resilience as _res  # self-package, deferred

        armed = _res.RES.active
        _res.RES.active = False
        try:
            plan = rec.maybe_retune(self.experiment, devices=self.backend.num_devices)
        finally:
            _res.RES.active = armed
        if plan is None:
            return False
        self.retunes += 1
        self.last_tune_plan = plan
        self._tuned = {
            "partition_weights": plan.best.weights,
            "occ": plan.best_occ,
            "mode": plan.best.mode,
        }
        report = {
            "step": step,
            "fit_quality": plan.fit_quality,
            "machine": rec.machine.name,
            "occ": plan.best.occ,
            "mode": plan.best.mode,
            "weights": plan.best.weights,
            "improvement": plan.improvement,
        }
        self.retune_reports.append(report)
        _flight.record(
            "host",
            "retune",
            "model_drift",
            {"step": step, "fit_quality": plan.fit_quality, "occ": plan.best.occ, "mode": plan.best.mode},
        )
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("online_retunes").inc()

        # adopt the corrected machine model and re-partition through the
        # checkpoint/migrate path: capture *now*, rebuild, restore here
        from repro.system.backend import Backend  # deferred
        from repro.system.device import DeviceSet

        self.backend = Backend(
            DeviceSet.gpus(self.backend.num_devices),
            machine=rec.machine,
            memory_capacity=self.backend.allocator.capacity_bytes,
            mem_options=self.backend.mem_options,
        )
        self._capture(app, step)
        return True

    # -- the loop -----------------------------------------------------------
    def run(self):
        """Run to completion; return the (possibly rebuilt) application.

        A terminal failure — the retry/rollback budget exhausted, the
        wall-clock recovery budget overrun, every checkpoint generation
        corrupt, or a device loss that cannot be degraded around — dumps
        the flight recorder's rings to a ``FLIGHT_*.json`` post-mortem
        before the exception propagates.
        """
        try:
            return self._run()
        except ResilienceError as exc:
            _flight.dump(
                f"resilience_{type(exc).__name__}",
                {
                    "error": str(exc),
                    "rollbacks": self.rollbacks,
                    "devices_lost": self.devices_lost,
                    "retunes": self.retunes,
                    "recovery_seconds": self.recovery_seconds,
                    "checkpoints": self.store.describe(),
                    "steps": self.steps,
                },
            )
            raise

    def _run(self):
        policy = self.policy
        app = None
        i = 0
        with _obs.span("resilience.run", cat="resilience", steps=self.steps):
            while True:
                try:
                    if app is None:
                        recovery = self._recovery_rebuild
                        self._recovery_rebuild = False
                        t0 = perf_counter()
                        app = self._build(self.backend)
                        if len(self.store) == 0:
                            self._capture(app, 0)
                        else:
                            i = self._restore(app)
                        if recovery:
                            self._charge_recovery("rebuild", t0)
                    while i < self.steps:
                        try:
                            app.step(i)
                            i += 1
                            if i % policy.checkpoint_interval == 0 and i < self.steps:
                                self._capture(app, i)
                            if (
                                policy.recalibrate_interval
                                and i < self.steps
                                and i % policy.recalibrate_interval == 0
                                and self._recalibrate(app, i)
                            ):
                                app = None
                                break
                        except (FaultExhausted, CorruptionDetected) as exc:
                            if isinstance(exc, CorruptionDetected) and policy.divergence == "raise":
                                raise
                            if self.rollbacks >= policy.max_rollbacks:
                                raise
                            i = self._rollback(app, exc)
                    if app is not None:
                        return app
                except DeviceLost as exc:
                    self.backend = self._degrade(exc)
                    app = None
