"""Recovery orchestration: the resilient iterative driver.

:class:`ResilientDriver` runs an iterative multi-GPU application under a
:class:`~repro.resilience.faults.FaultPlan`, providing the three
recovery behaviours the fault model needs:

* **retry** happens below the driver, at the command-queue layer
  (transient faults never surface here unless exhausted);
* **rollback-and-replay** answers :class:`FaultExhausted` and
  :class:`CorruptionDetected`: restore the last checkpoint into the
  live fields and re-run from its step;
* **degradation** answers :class:`DeviceLost`: shrink the backend to
  the survivors, rebuild the application (grids re-partition their 1-D
  slab decomposition, skeletons recompile their stream/event schedule),
  migrate field state from the checkpoint, and resume.

Applications plug in through a small duck-typed protocol::

    app = factory(backend)     # build grids/fields/skeletons on a backend
    app.fields()               # -> list[Field]: checkpointable state
    app.scalars()              # -> dict: host-side loop state (optional)
    app.step(i)                # run iteration i
    app.on_restore(scalars)    # re-seed host state after a restore (optional)

``factory`` must be deterministic in everything it does not restore from
the checkpoint (boundary conditions, coefficients), so a rebuilt
application is the same computation on a new decomposition.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro import observability as _obs
from repro.observability import flight as _flight

from .checkpoint import Checkpoint
from .errors import CorruptionDetected, DeviceLost, FaultExhausted, ResilienceError
from .retry import RetryPolicy

#: divergence-guardrail reactions (checked by RecoveryPolicy)
DIVERGENCE_POLICIES = ("raise", "rollback", "log", "off")


@dataclass
class RecoveryPolicy:
    """Tunable recovery behaviour shared by the injection sites and driver."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_interval: int = 8
    divergence: str = "rollback"
    max_rollbacks: int = 32
    min_devices: int = 1

    def __post_init__(self) -> None:
        if self.divergence not in DIVERGENCE_POLICIES:
            raise ValueError(
                f"divergence policy must be one of {DIVERGENCE_POLICIES}, got '{self.divergence}'"
            )
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.max_rollbacks < 0 or self.min_devices < 1:
            raise ValueError("max_rollbacks must be >= 0 and min_devices >= 1")


def degraded_backend(backend, lost_rank: int, min_devices: int = 1):
    """A new backend on the survivors of ``backend`` after losing one rank.

    Survivors are re-indexed ``0..n-2`` (ranks are positional in a
    DeviceSet); the machine model shrinks with them so the simulated
    timeline reflects the degraded topology.
    """
    from repro.system.backend import Backend  # deferred: keeps this package import-cycle-free
    from repro.system.device import DeviceSet

    n = backend.num_devices - 1
    if n < min_devices:
        raise DeviceLost(
            lost_rank,
            f"device {lost_rank} lost but only {backend.num_devices} device(s) remain "
            f"(min_devices={min_devices}); cannot degrade further",
        )
    return Backend(
        DeviceSet.gpus(n),
        machine=backend.machine.with_devices(n),
        memory_capacity=backend.allocator.capacity_bytes,
        mem_options=backend.mem_options,
    )


class ResilientDriver:
    """Runs ``steps`` iterations of an application with full recovery."""

    def __init__(
        self,
        factory: Callable,
        backend,
        steps: int,
        policy: RecoveryPolicy | None = None,
        plan=None,
    ):
        if steps < 0:
            raise ValueError("steps must be >= 0")
        self.factory = factory
        self.backend = backend
        self.steps = steps
        self.policy = policy or RecoveryPolicy()
        self.plan = plan
        self.rollbacks = 0
        self.devices_lost = 0

    # -- recovery actions ---------------------------------------------------
    def _build(self, backend):
        with _obs.span("resilience.build", cat="resilience", devices=backend.num_devices):
            return self.factory(backend)

    def _capture(self, app, step: int) -> Checkpoint:
        scalars = app.scalars() if hasattr(app, "scalars") else {}
        return Checkpoint.capture(app.fields(), scalars, step=step)

    def _restore(self, app, ckpt: Checkpoint) -> int:
        scalars = ckpt.restore(app.fields())
        if hasattr(app, "on_restore"):
            app.on_restore(scalars)
        return ckpt.step

    def _rollback(self, app, ckpt: Checkpoint, cause: Exception) -> int:
        self.rollbacks += 1
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("rollbacks", cause=type(cause).__name__).inc()
        _flight.record(
            "host", "rollback", type(cause).__name__, {"to_step": ckpt.step, "n": self.rollbacks}
        )
        with _obs.span("resilience.rollback", cat="resilience", to_step=ckpt.step):
            return self._restore(app, ckpt)

    def _degrade(self, lost: DeviceLost):
        self.devices_lost += 1
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("devices_lost", rank=str(lost.rank)).inc()
        _flight.record(f"device{lost.rank}", "degrade", f"device{lost.rank} lost")
        with _obs.span("resilience.degrade", cat="resilience", lost_rank=lost.rank):
            new_backend = degraded_backend(self.backend, lost.rank, self.policy.min_devices)
            if self.plan is not None:
                self.plan.acknowledge_loss(lost.rank)
            return new_backend

    # -- the loop -----------------------------------------------------------
    def run(self):
        """Run to completion; return the (possibly rebuilt) application.

        A terminal failure — the retry/rollback budget exhausted, or a
        device loss that cannot be degraded around — dumps the flight
        recorder's rings to a ``FLIGHT_*.json`` post-mortem before the
        exception propagates.
        """
        try:
            return self._run()
        except ResilienceError as exc:
            _flight.dump(
                f"resilience_{type(exc).__name__}",
                {
                    "error": str(exc),
                    "rollbacks": self.rollbacks,
                    "devices_lost": self.devices_lost,
                    "steps": self.steps,
                },
            )
            raise

    def _run(self):
        policy = self.policy
        app = None
        ckpt: Checkpoint | None = None
        i = 0
        with _obs.span("resilience.run", cat="resilience", steps=self.steps):
            while True:
                try:
                    if app is None:
                        app = self._build(self.backend)
                        if ckpt is None:
                            ckpt = self._capture(app, 0)
                        else:
                            i = self._restore(app, ckpt)
                    while i < self.steps:
                        try:
                            app.step(i)
                            i += 1
                            if i % policy.checkpoint_interval == 0 and i < self.steps:
                                ckpt = self._capture(app, i)
                        except (FaultExhausted, CorruptionDetected) as exc:
                            if isinstance(exc, CorruptionDetected) and policy.divergence == "raise":
                                raise
                            if self.rollbacks >= policy.max_rollbacks:
                                raise
                            i = self._rollback(app, ckpt, exc)
                    return app
                except DeviceLost as exc:
                    self.backend = self._degrade(exc)
                    app = None
