"""Graph race sanitizer: happens-before checking of compiled schedules.

The paper's central claim is that the Skeleton's stream/event wiring
*alone* enforces every dependency of the user's sequential program; the
parallel engine executes exactly that wiring, so a single missing event
edge is a silent wrong-answer bug.  This package is the safety net:

* runtime hooks (:mod:`~repro.sanitizer.state`) log what a sanitized run
  actually executed;
* an access model (:mod:`~repro.sanitizer.access`) derives each compiled
  command's memory footprint at owned/halo-slab granularity;
* a vector-clock happens-before analysis (:mod:`~repro.sanitizer.hb`)
  closes the queue FIFO + record/wait orderings;
* the detector (:mod:`~repro.sanitizer.detector`) reports races, stale
  halo reads, waits on never-recorded events and wiring cycles;
* a schedule mutator (:mod:`~repro.sanitizer.mutate`) plus runner
  (:mod:`~repro.sanitizer.runner`) prove the detector's teeth by
  asserting every injected schedule defect is flagged while unmutated
  experiments stay violation-free.

This ``__init__`` stays import-light on purpose: the runtime hot paths
(``system.queue``, ``system.engine``, ``skeleton.scheduler``) import
``repro.sanitizer.state`` — which pulls in this module — so anything
heavier than the stdlib is exposed lazily via ``__getattr__``.
"""

from __future__ import annotations

from .state import SAN, ExecRecord, disable, enable, reset

_LAZY = {
    "MemAccess": "access",
    "step_accesses": "access",
    "canonical_halo_messages": "access",
    "HBAnalysis": "hb",
    "build_hb": "hb",
    "ProgramView": "program",
    "QueueView": "program",
    "StepInfo": "program",
    "Violation": "detector",
    "analyze_program": "detector",
    "report_violations": "detector",
    "Mutant": "mutate",
    "generate_mutants": "mutate",
    "SanitizeReport": "runner",
    "MutationReport": "runner",
    "sanitize_skeleton": "runner",
    "sanitize_workload": "runner",
    "mutation_matrix": "runner",
    "WORKLOADS": "workloads",
    "build_workload": "workloads",
}


def __getattr__(name: str):
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{mod}", __name__), name)


__all__ = ["SAN", "ExecRecord", "enable", "disable", "reset", *sorted(_LAZY)]
