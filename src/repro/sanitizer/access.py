"""Per-command memory access sets at sanitizer granularity.

The scheduler reasons about whole fields; the sanitizer must be finer,
because the OCC transforms *deliberately* leave whole-field conflicts
unordered when the touched sub-slabs are disjoint (an INTERNAL-view
launch racing a halo copy is the whole point of OCC STANDARD).  The
granularity that makes every deliberate overlap race-free and every
missing event a race is the region atom:

* ``("owned", field_uid, rank, part)`` — a partition's payload cells,
  ``part`` in ``internal`` / ``boundary`` (a STANDARD launch touches
  both atoms);
* ``("halo", field_uid, rank, side)`` — the ghost slots of ``rank``,
  ``side`` in ``low`` / ``high``;
* ``("host", data_uid, rank)`` — a host mirror staged by MemSet
  transfers.

Atoms either coincide or are disjoint, so the race check reduces to
same-atom comparison.  Kernel footprints come from the Container's
declared access tokens via
:func:`repro.sets.launch.token_access_parts`; halo-copy footprints from
the frozen :class:`~repro.domain.halo.HaloMsg` (reads the source rank's
owned boundary, writes one side of the destination's halo).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.domain.halo import field_exchanges_halo, halo_sides
from repro.sets.launch import token_access_parts

from .program import StepInfo


@dataclass(frozen=True)
class MemAccess:
    """One (command, region-atom, direction) access of a program."""

    region: tuple
    write: bool
    label: str
    data_name: str
    nbytes: int = 0  # halo writes: payload size of the copy
    msg_name: str = ""  # halo writes: canonical message identity


def kernel_accesses(info: StepInfo) -> list[MemAccess]:
    """Region atoms one compiled kernel launch reads and writes."""
    out: list[MemAccess] = []
    seen: set[tuple] = set()

    def add(region: tuple, write: bool, name: str) -> None:
        key = (region, write)
        if key not in seen:
            seen.add(key)
            out.append(MemAccess(region, write, info.label, name))

    for tok in info.container.tokens():
        data = tok.data
        read_parts, write_parts, reads_halo = token_access_parts(tok, info.view)
        for part in read_parts:
            add(("owned", data.uid, info.rank, part), False, data.name)
        for part in write_parts:
            add(("owned", data.uid, info.rank, part), True, data.name)
        if reads_halo and field_exchanges_halo(data):
            for side in halo_sides(info.rank, data.num_devices):
                add(("halo", data.uid, info.rank, side), False, data.name)
    return out


def copy_accesses(info: StepInfo) -> list[MemAccess]:
    """Region atoms one halo message reads (source) and writes (dest)."""
    msg, fld = info.msg, info.halo_field
    return [
        MemAccess(("owned", fld.uid, msg.src_rank, "boundary"), False, info.label, fld.name),
        MemAccess(
            ("halo", fld.uid, msg.dst_rank, msg.side),
            True,
            info.label,
            fld.name,
            nbytes=msg.nbytes,
            msg_name=msg.name,
        ),
    ]


def step_accesses(info: StepInfo) -> list[MemAccess]:
    """Access set of any compiled step (kernels and halo copies)."""
    if info.kind == "kernel":
        return kernel_accesses(info)
    if info.kind == "copy" and info.halo_field is not None:
        return copy_accesses(info)
    return []


def canonical_halo_messages(fld) -> dict[tuple[int, str], list]:
    """The full coherency requirement of a field, keyed by halo atom.

    Maps ``(dst_rank, side)`` to the list of
    :class:`~repro.domain.halo.HaloMsg` a complete update of that ghost
    slab comprises (SoA multi-component fields need one message per
    component).  The detector requires *every* listed message to have an
    ordered, full-size write before any read of the atom — a dropped or
    truncated component is exactly the stale-ghost-cells bug class.
    """
    msgs: dict[tuple[int, str], list] = {}
    for msg in fld.halo_messages():
        msgs.setdefault((msg.dst_rank, msg.side), []).append(msg)
    return msgs
