"""The race detector: conflicting accesses vs the happens-before closure.

Four finding classes, in rough order of severity:

* ``race`` — two accesses of one region atom, at least one a write, on
  different commands the wiring leaves unordered.  Under the parallel
  engine this is a real data race; under serial replay it is a latent
  one (host order is masking a missing event).
* ``stale-halo-read`` — a stencil kernel reads a halo atom for which
  some required message has no happens-before-ordered, full-size,
  still-fresh copy (dropped update, truncated payload, or an update that
  predates the last write of the source boundary).
* ``wait-unrecorded`` — a wait on an event no command in the program
  records; a live replay would block forever (the engine's watchdog
  turns this into :class:`~repro.system.engine.EngineDeadlock`).
* ``wiring-cycle`` — record/wait edges form a cycle with queue FIFO
  order; no replay order can satisfy the schedule.

Plus ``unexecuted-command`` when an execution log is supplied: a
compiled command that never retired during the sanitized run (a replay
that silently skipped work would otherwise look race-free).

Violations are pure data; :func:`report_violations` forwards them to the
observability layer (instant trace events + the ``sanitizer_violations``
counter) when it is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observability as _obs

from .access import canonical_halo_messages, step_accesses
from .hb import HBAnalysis, build_hb
from .program import ProgramView


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding (hashable so reports can be deduplicated)."""

    kind: str
    summary: str
    commands: tuple = ()
    region: tuple = ()

    def __str__(self) -> str:
        return f"[{self.kind}] {self.summary}"


@dataclass
class _Accesses:
    by_region: dict = field(default_factory=dict)  # region -> [(MemAccess, cmd)]
    fields_by_uid: dict = field(default_factory=dict)


def _collect_accesses(view: ProgramView) -> _Accesses:
    acc = _Accesses()
    for q in view.queues:
        for cmd in q.commands:
            info = view.step_info(cmd)
            if info is None:
                continue
            if info.kind == "kernel":
                for tok in info.container.tokens():
                    acc.fields_by_uid.setdefault(tok.data.uid, tok.data)
            elif info.halo_field is not None:
                acc.fields_by_uid.setdefault(info.halo_field.uid, info.halo_field)
            for a in step_accesses(info):
                acc.by_region.setdefault(a.region, []).append((a, cmd))
    return acc


def _region_str(region: tuple) -> str:
    kind = region[0]
    if kind == "owned":
        return f"owned[{region[3]}] of rank {region[2]}"
    if kind == "halo":
        return f"{region[3]} halo of rank {region[2]}"
    return f"host mirror of rank {region[2]}"


def _check_races(hb: HBAnalysis, acc: _Accesses, out: list) -> None:
    reported: set = set()
    for region, entries in acc.by_region.items():
        for i, (ai, ci) in enumerate(entries):
            for aj, cj in entries[i + 1 :]:
                if ci is cj or not (ai.write or aj.write):
                    continue
                pair = (id(ci), id(cj)) if id(ci) < id(cj) else (id(cj), id(ci))
                if (pair, region) in reported or hb.ordered_either(ci, cj):
                    continue
                reported.add((pair, region))
                hazard = "write-write" if ai.write and aj.write else "read-write"
                out.append(
                    Violation(
                        kind="race",
                        summary=(
                            f"{hazard} race on {ai.data_name} {_region_str(region)}: "
                            f"'{ai.label}' and '{aj.label}' are unordered by the schedule"
                        ),
                        commands=(ci.name, cj.name),
                        region=region,
                    )
                )


def _check_halo_freshness(hb: HBAnalysis, acc: _Accesses, out: list) -> None:
    canon_cache: dict = {}
    for region, entries in acc.by_region.items():
        if region[0] != "halo":
            continue
        _, uid, rank, side = region
        reads = [(a, c) for a, c in entries if not a.write]
        if not reads:
            continue
        fld = acc.fields_by_uid.get(uid)
        if fld is None:
            continue
        if uid not in canon_cache:
            canon_cache[uid] = canonical_halo_messages(fld)
        required = canon_cache[uid].get((rank, side), [])
        writes = [(a, c) for a, c in entries if a.write]
        for racc, rcmd in reads:
            missing = []
            for msg in required:
                src_region = ("owned", uid, msg.src_rank, "boundary")
                src_writes = [
                    c for a, c in acc.by_region.get(src_region, []) if a.write
                ]
                satisfied = any(
                    wacc.msg_name == msg.name
                    and wacc.nbytes >= msg.nbytes
                    and hb.ordered(wcmd, rcmd)
                    and not any(hb.ordered(wcmd, kw) and hb.ordered(kw, rcmd) for kw in src_writes)
                    for wacc, wcmd in writes
                )
                if not satisfied:
                    missing.append(msg.name)
            if missing:
                out.append(
                    Violation(
                        kind="stale-halo-read",
                        summary=(
                            f"'{racc.label}' reads the {_region_str(region)} of {racc.data_name} "
                            f"without a completed full-size update for: {', '.join(missing)}"
                        ),
                        commands=(rcmd.name,),
                        region=region,
                    )
                )


def _check_coverage(view: ProgramView, log, out: list) -> None:
    executed = {id(rec.command) for rec in log if rec.op == "run"}
    own = [cmd for q in view.queues for cmd in q.commands if view.step_info(cmd) is not None]
    if not any(id(cmd) in executed for cmd in own):
        # this program was never replayed inside the sanitized window
        # (e.g. a solver's init skeleton ran before arming) — coverage
        # only applies to programs the window actually exercised
        return
    for cmd in own:
        if id(cmd) not in executed:
            out.append(
                Violation(
                    kind="unexecuted-command",
                    summary=f"compiled command '{cmd.name}' never retired during the sanitized run",
                    commands=(cmd.name,),
                )
            )


def analyze_program(view: ProgramView, log=None) -> list[Violation]:
    """Run every sanitizer check on one program view.

    ``log`` is an optional execution log (see
    :mod:`repro.sanitizer.state`): when given, coverage of the compiled
    command set is verified on top of the static analysis.
    """
    violations: list[Violation] = []
    hb = build_hb(view.queues)
    for wait, qname in hb.unrecorded_waits:
        violations.append(
            Violation(
                kind="wait-unrecorded",
                summary=f"queue {qname} waits on {wait.event.name!r} but no command records it",
                commands=(wait.name,),
            )
        )
    if hb.cycle_events:
        violations.append(
            Violation(
                kind="wiring-cycle",
                summary="record/wait wiring is cyclic through events: " + ", ".join(hb.cycle_events),
                commands=tuple(hb.cycle_events),
            )
        )
    acc = _collect_accesses(view)
    _check_races(hb, acc, violations)
    _check_halo_freshness(hb, acc, violations)
    if log is not None:
        _check_coverage(view, log, violations)
    return violations


def report_violations(violations: list[Violation], program: str = "") -> None:
    """Publish findings to the observability layer and the flight recorder.

    Metrics/spans require observability to be enabled; the flight
    recorder is always-on, so a violating schedule leaves a
    ``FLIGHT_sanitizer_violations_*.json`` post-mortem artifact even in
    an uninstrumented run.
    """
    if not violations:
        return
    from repro.observability import flight as _flight  # noqa: PLC0415 - cold path

    for v in violations:
        _flight.record("host", "violation", v.kind, {"program": program, "summary": v.summary})
    _flight.dump(
        "sanitizer_violations",
        {"program": program, "count": len(violations), "kinds": sorted({v.kind for v in violations})},
    )
    if not _obs.OBS.active:
        return
    m = _obs.OBS.metrics
    for v in violations:
        m.counter("sanitizer_violations", kind=v.kind).inc()
        _obs.instant(
            f"sanitizer:{v.kind}",
            cat="sanitizer",
            program=program,
            summary=v.summary,
            commands=list(v.commands),
        )
