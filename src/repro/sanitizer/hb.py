"""Vector-clock happens-before analysis over recorded queue wiring.

The ordering guarantees a stream/event schedule actually provides are
exactly two:

* **FIFO** — commands in one queue retire in list order;
* **events** — a ``WaitEventCommand`` cannot pass until the matching
  ``RecordEventCommand`` (and, by FIFO, everything before it in the
  recording queue) has retired.

Everything else — host enqueue order across queues, task-list levels,
timing luck of a particular replay — is *not* a guarantee, and the
parallel engine will eventually violate it.  This module computes the
transitive closure of the two real guarantees as one vector clock per
command: ``clock[c][q]`` is the number of commands of queue ``q`` that
must have retired before ``c`` may start (counting ``c`` itself on its
own queue).  ``a`` happens-before ``b`` iff ``clock[b]`` has advanced
past ``a``'s position on ``a``'s queue — an O(1) query after one
O(commands x queues) pass, the textbook vector-clock framing (Fidge/
Mattern) applied to a static schedule instead of a live trace.

Degenerate wiring is reported, not assumed away: waits on events whose
record is absent from the program, and record/wait cycles (both arise
under schedule mutation) come back as findings while the analysis
continues on the acyclic remainder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.system.queue import RecordEventCommand, WaitEventCommand


@dataclass
class HBAnalysis:
    """Happens-before closure of one program's queue/event wiring."""

    queues: list
    loc: dict = field(default_factory=dict)  # cmd -> (queue_index, position)
    clocks: dict = field(default_factory=dict)  # cmd -> list[int] per queue
    records: dict = field(default_factory=dict)  # event uid -> RecordEventCommand
    waits: dict = field(default_factory=dict)  # event uid -> [WaitEventCommand]
    unrecorded_waits: list = field(default_factory=list)  # (wait_cmd, queue_name)
    cycle_events: list = field(default_factory=list)  # event names on broken cycles

    def ordered(self, a, b) -> bool:
        """True iff ``a`` happens-before ``b`` under the wiring (strict)."""
        if a is b:
            return False
        qi, pos = self.loc[a]
        return self.clocks[b][qi] >= pos + 1

    def ordered_either(self, a, b) -> bool:
        return self.ordered(a, b) or self.ordered(b, a)


def build_hb(queues) -> HBAnalysis:
    """Compute vector clocks for every command of ``queues``.

    ``queues`` is anything exposing ``.commands`` / ``.name`` (real
    :class:`~repro.system.queue.CommandQueue` objects or the analysis
    :class:`~repro.sanitizer.program.QueueView` clones).
    """
    hb = HBAnalysis(queues=list(queues))
    for qi, q in enumerate(hb.queues):
        for pos, cmd in enumerate(q.commands):
            if cmd in hb.loc:
                raise ValueError(f"command {cmd.name!r} appears twice in the program")
            hb.loc[cmd] = (qi, pos)
            if isinstance(cmd, RecordEventCommand):
                # one-shot recording: first occurrence defines completion
                hb.records.setdefault(cmd.event.uid, cmd)
            elif isinstance(cmd, WaitEventCommand):
                hb.waits.setdefault(cmd.event.uid, []).append(cmd)

    preds: dict = {}
    succs: dict = {}
    indeg: dict = {}
    for q in hb.queues:
        for pos, cmd in enumerate(q.commands):
            preds[cmd] = []
            if pos > 0:
                preds[cmd].append(q.commands[pos - 1])
    for uid, wait_list in hb.waits.items():
        rec = hb.records.get(uid)
        for w in wait_list:
            if rec is None:
                hb.unrecorded_waits.append((w, hb.queues[hb.loc[w][0]].name))
            else:
                preds[w].append(rec)
    for cmd, ps in preds.items():
        indeg[cmd] = len(ps)
        for p in ps:
            succs.setdefault(p, []).append(cmd)

    order: list = []
    ready = deque(cmd for cmd, d in indeg.items() if d == 0)
    while ready:
        cmd = ready.popleft()
        order.append(cmd)
        for s in succs.get(cmd, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)

    if len(order) < len(hb.loc):
        # a record/wait cycle (only schedule mutation produces one):
        # report the events involved, drop their edges, close the rest
        stuck = {cmd for cmd, d in indeg.items() if d > 0}
        names = set()
        for cmd in stuck:
            if isinstance(cmd, (RecordEventCommand, WaitEventCommand)):
                names.add(cmd.event.name)
            if isinstance(cmd, WaitEventCommand):
                rec = hb.records.get(cmd.event.uid)
                if rec in stuck and rec in preds[cmd]:
                    preds[cmd].remove(rec)
        hb.cycle_events = sorted(names)
        order = []
        indeg = {cmd: len(ps) for cmd, ps in preds.items()}
        succs = {}
        for cmd, ps in preds.items():
            for p in ps:
                succs.setdefault(p, []).append(cmd)
        ready = deque(cmd for cmd, d in indeg.items() if d == 0)
        while ready:
            cmd = ready.popleft()
            order.append(cmd)
            for s in succs.get(cmd, ()):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)

    nq = len(hb.queues)
    for cmd in order:
        clock = [0] * nq
        for p in preds[cmd]:
            pc = hb.clocks[p]
            for i in range(nq):
                if pc[i] > clock[i]:
                    clock[i] = pc[i]
        qi, pos = hb.loc[cmd]
        clock[qi] = max(clock[qi], pos + 1)
        hb.clocks[cmd] = clock
    return hb
