"""Schedule mutation: deliberately broken programs the sanitizer must flag.

Mutation testing keeps the sanitizer honest in both directions.  The
zero-violation runs show it does not cry wolf on valid OCC schedules;
the mutants show it has teeth — every emitted mutant carries a real
schedule defect, and the suite asserts the detector flags 100% of them.

Six mutant kinds, covering the two defect families the detector exists
for (missing/mis-placed synchronisation, broken halo coherency):

* ``drop-wait``      — delete one :class:`WaitEventCommand`;
* ``delay-wait``     — move a wait *after* the kernel/copy it guards;
* ``drop-record``    — delete one :class:`RecordEventCommand`;
* ``advance-record`` — move a record *before* the kernel/copy whose
  completion it is supposed to publish;
* ``drop-copy``      — delete one halo message;
* ``truncate-copy``  — replace a halo message with a half-size payload
  (the classic partial-update bug: the tail of the ghost slab stays
  stale).

**Equivalent-mutant discipline.**  Not every candidate edit breaks the
schedule: a wait can be redundant (an alternative event path or FIFO
chain already orders the pair — common once empty border pieces flow
their dependencies through), and a copy nobody reads is dead weight.
Asserting "the sanitizer flags everything we emit" is only meaningful if
emission is filtered by *independent* evidence that the mutant is broken:

* wait/record-reorder mutants are confirmed by the DES oracle — the
  mutated queues are simulated (:mod:`repro.sim.des` honours only FIFO +
  events, and knows nothing of vector clocks) and the plan's own
  dependency checker (:func:`~repro.skeleton.executor.check_trace_dependencies`)
  must report an ordering violation;
* ``drop-record`` is structurally broken whenever the event has waiters
  (they can never be satisfied), which is always true here because the
  scheduler only records events that have consumers;
* copy mutants are emitted only when some stencil kernel reads the halo
  atom the dropped/truncated message was to fill.

The oracles never consult :mod:`repro.sanitizer.hb` or the detector, so
the mutation matrix is evidence, not a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import SimpleNamespace

from repro.domain.halo import HaloMsg
from repro.sim import SimulationDeadlock, simulate
from repro.system.queue import CopyCommand, RecordEventCommand, WaitEventCommand

from .access import step_accesses
from .program import ProgramView


@dataclass(frozen=True)
class Mutant:
    """One deliberately broken program and how it was broken."""

    mid: str
    kind: str
    description: str
    view: ProgramView


def _des_confirms_breakage(plan, view: ProgramView) -> bool:
    """Independent oracle: DES-simulate the mutated queues, check deps."""
    from repro.skeleton.executor import check_trace_dependencies

    try:
        trace = simulate(view.queues, plan.backend.machine)
    except SimulationDeadlock:
        return True  # the mutated wiring cannot even be replayed
    shim = SimpleNamespace(plan=plan)
    return bool(check_trace_dependencies(shim, trace))


def _halo_read_regions(view: ProgramView) -> set[tuple]:
    """Halo atoms some kernel of the program actually reads."""
    regions: set[tuple] = set()
    for q in view.queues:
        for cmd in q.commands:
            info = view.step_info(cmd)
            if info is None or info.kind != "kernel":
                continue
            for a in step_accesses(info):
                if not a.write and a.region[0] == "halo":
                    regions.add(a.region)
    return regions


def _is_exec(cmd) -> bool:
    return not isinstance(cmd, (RecordEventCommand, WaitEventCommand))


def generate_mutants(plan, program=None, max_per_kind: int | None = None) -> list[Mutant]:
    """Every confirmed-broken single-edit mutant of a compiled program.

    ``plan`` supplies the DES machine model and dependency ground truth
    for the reorder oracles; ``program`` defaults to the plan's own
    compiled program.  ``max_per_kind`` caps emission per mutant kind
    (first-come in queue order) to bound matrix runtime.
    """
    if program is None:
        program = plan._ensure_program()
    base = ProgramView.from_compiled(program)
    halo_reads = _halo_read_regions(base)
    waited_uids = {
        cmd.event.uid for q in base.queues for cmd in q.commands if isinstance(cmd, WaitEventCommand)
    }

    mutants: list[Mutant] = []
    counts: dict[str, int] = {}

    def emit(kind: str, description: str, view: ProgramView) -> None:
        if max_per_kind is not None and counts.get(kind, 0) >= max_per_kind:
            return
        counts[kind] = counts.get(kind, 0) + 1
        mutants.append(Mutant(f"{kind}#{len(mutants)}:{description}", kind, description, view))

    for qi, q in enumerate(base.queues):
        for pos, cmd in enumerate(q.commands):
            if isinstance(cmd, WaitEventCommand):
                # drop-wait: the consumer no longer waits for its producer
                view = base.clone()
                del view.queues[qi].commands[pos]
                if _des_confirms_breakage(plan, view):
                    emit("drop-wait", f"{cmd.name}@{q.name}", view)
                # delay-wait: the guarded command now runs before the wait
                if pos + 1 < len(q.commands) and _is_exec(q.commands[pos + 1]):
                    view = base.clone()
                    cmds = view.queues[qi].commands
                    cmds[pos], cmds[pos + 1] = cmds[pos + 1], cmds[pos]
                    if _des_confirms_breakage(plan, view):
                        emit("delay-wait", f"{cmd.name}@{q.name}", view)
            elif isinstance(cmd, RecordEventCommand):
                # drop-record: waiters elsewhere can never be satisfied
                if cmd.event.uid in waited_uids:
                    view = base.clone()
                    del view.queues[qi].commands[pos]
                    emit("drop-record", f"{cmd.name}@{q.name}", view)
                # advance-record: completion published before the work runs
                if pos > 0 and _is_exec(q.commands[pos - 1]) and cmd.event.uid in waited_uids:
                    view = base.clone()
                    cmds = view.queues[qi].commands
                    cmds[pos - 1], cmds[pos] = cmds[pos], cmds[pos - 1]
                    if _des_confirms_breakage(plan, view):
                        emit("advance-record", f"{cmd.name}@{q.name}", view)
            elif isinstance(cmd, CopyCommand):
                info = base.step_info(cmd)
                if info is None or info.halo_field is None:
                    continue
                msg = info.msg
                target = ("halo", info.halo_field.uid, msg.dst_rank, msg.side)
                if target not in halo_reads:
                    continue  # nobody reads these ghost cells: equivalent mutant
                # drop-copy: the ghost slab is never filled
                view = base.clone()
                del view.queues[qi].commands[pos]
                emit("drop-copy", f"{cmd.name}@{q.name}", view)
                # truncate-copy: half the slab arrives, the tail stays stale
                if msg.nbytes >= 2:
                    view = base.clone()
                    short = HaloMsg(msg.name, msg.src_rank, msg.dst_rank, msg.nbytes // 2, msg.fn)
                    stub = CopyCommand(cmd.name, cmd.fn, cmd.src, cmd.dst, short.nbytes, pinned=cmd.pinned)
                    view.queues[qi].commands[pos] = stub
                    view.add_info(stub, info, msg=short)
                    emit("truncate-copy", f"{cmd.name}@{q.name}", view)
    return mutants
