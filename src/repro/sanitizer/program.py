"""Analysis-side views of a compiled program.

The detector and the mutator must never touch the live
:class:`~repro.skeleton.scheduler.CompiledProgram` — its queues and
events are the objects the plan replays, and a mutated schedule must not
leak back into real execution.  So both operate on duck-typed *views*:
plain command lists plus the per-command step metadata the scheduler
froze (container, launch view, rank, halo message).  The views keep the
interface the DES simulator reads (``commands`` / ``name`` / ``device``),
so a mutant can also be fed straight to :func:`repro.sim.des.simulate`
as a timing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class StepInfo:
    """Immutable access-relevant metadata of one kernel/copy command."""

    kind: str  # "kernel" | "copy"
    label: str
    # kernel steps
    container: object | None = None
    rank: int = -1
    view: object | None = None  # sets.DataView of the launch
    # copy steps
    msg: object | None = None  # domain.halo.HaloMsg
    halo_field: object | None = None  # the field whose halo the copy updates


@dataclass
class QueueView:
    """A mutable copy of one command queue's list (original untouched)."""

    name: str
    device: object
    commands: list

    def __len__(self) -> int:
        return len(self.commands)


@dataclass
class ProgramView:
    """A compiled program as the analyses see it: queues + step metadata."""

    queues: list[QueueView]
    info: dict  # Command -> StepInfo (commands hash by identity)
    label: str = ""
    extra_info: dict = field(default_factory=dict)

    @classmethod
    def from_compiled(cls, program, label: str = "") -> "ProgramView":
        """Snapshot a CompiledProgram's wiring and step metadata."""
        queues = [QueueView(q.name, q.device, list(q.commands)) for q in program.queues]
        info = {}
        for cmd, step in program.step_of.items():
            info[cmd] = StepInfo(
                kind=step.kind,
                label=step.label,
                container=step.container,
                rank=step.rank,
                view=step.view,
                msg=step.msg,
                halo_field=step.halo_field,
            )
        return cls(queues=queues, info=info, label=label)

    def clone(self) -> "ProgramView":
        """Independent command lists; shared (immutable) step metadata."""
        return ProgramView(
            queues=[QueueView(q.name, q.device, list(q.commands)) for q in self.queues],
            info=dict(self.info),
            label=self.label,
            extra_info=dict(self.extra_info),
        )

    def step_info(self, cmd) -> StepInfo | None:
        return self.extra_info.get(cmd) or self.info.get(cmd)

    def add_info(self, cmd, base: StepInfo, **changes) -> None:
        """Register metadata for a mutant-introduced replacement command."""
        self.extra_info[cmd] = replace(base, **changes)

    def commands(self):
        for q in self.queues:
            yield from q.commands
