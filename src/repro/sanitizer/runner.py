"""Drivers: sanitize real runs and grade the detector against mutants.

Two entry points used by ``python -m repro sanitize``, the test suite
and CI:

* :func:`sanitize_workload` — build a miniature, replay it under the
  requested mode with execution recording armed, and analyze every
  compiled program (races, halo freshness, wiring, coverage);
* :func:`mutation_matrix` — compile the miniatures across OCC levels and
  device counts, generate confirmed-broken schedule mutants, and check
  the detector flags each one.  No kernels execute here: mutants are
  analyzed statically, so the matrix stays fast enough for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.skeleton import Occ

from . import state
from .detector import Violation, analyze_program, report_violations
from .mutate import generate_mutants
from .program import ProgramView
from .workloads import build_workload


@dataclass
class SanitizeReport:
    """Findings of one sanitized workload replay."""

    workload: str
    devices: int
    occ: str
    mode: str
    commands: int = 0
    log_entries: int = 0
    violations: list = field(default_factory=list)  # (skeleton, Violation)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "devices": self.devices,
            "occ": self.occ,
            "mode": self.mode,
            "commands": self.commands,
            "log_entries": self.log_entries,
            "ok": self.ok,
            "violations": [
                {
                    "skeleton": sk,
                    "kind": v.kind,
                    "summary": v.summary,
                    "commands": list(v.commands),
                    "region": list(v.region),
                }
                for sk, v in self.violations
            ],
        }


def sanitize_skeleton(skeleton, mode: str = "serial", runs: int = 2) -> list[Violation]:
    """Replay one compiled skeleton under the sanitizer; return findings.

    The execution log of ``runs`` replays feeds the coverage check; the
    static analysis sees the frozen program either way.  Findings are
    forwarded to observability when it is enabled.
    """
    state.enable()
    try:
        for _ in range(runs):
            skeleton.run(mode=mode)
    finally:
        log = state.disable()
    view = ProgramView.from_compiled(skeleton.plan._ensure_program(), label=skeleton.name)
    violations = analyze_program(view, log)
    report_violations(violations, program=skeleton.name)
    return violations


def sanitize_workload(name: str, devices: int = 4, occ: Occ = Occ.STANDARD, mode: str = "serial") -> SanitizeReport:
    """Build, replay and analyze one miniature end to end."""
    wl = build_workload(name, devices=devices, occ=occ)
    state.enable()
    try:
        wl.run(mode)
    finally:
        log = state.disable()
    report = SanitizeReport(workload=name, devices=devices, occ=occ.value, mode=mode, log_entries=len(log))
    for sk in wl.skeletons:
        view = ProgramView.from_compiled(sk.plan._ensure_program(), label=sk.name)
        report.commands += len(view.info)
        violations = analyze_program(view, log)
        report_violations(violations, program=sk.name)
        report.violations.extend((sk.name, v) for v in violations)
    return report


@dataclass
class MutationRow:
    """One mutant's fate in the matrix."""

    workload: str
    devices: int
    occ: str
    skeleton: str
    kind: str
    mutant: str
    killed: bool
    finding_kinds: tuple = ()


@dataclass
class MutationReport:
    """The full matrix: every mutant must be killed."""

    rows: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.rows)

    @property
    def killed(self) -> int:
        return sum(r.killed for r in self.rows)

    @property
    def escaped(self) -> list:
        return [r for r in self.rows if not r.killed]

    @property
    def kinds(self) -> dict:
        out: dict[str, int] = {}
        for r in self.rows:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def to_json(self) -> dict:
        return {
            "total": self.total,
            "killed": self.killed,
            "kinds": self.kinds,
            "rows": [
                {
                    "workload": r.workload,
                    "devices": r.devices,
                    "occ": r.occ,
                    "skeleton": r.skeleton,
                    "kind": r.kind,
                    "mutant": r.mutant,
                    "killed": r.killed,
                    "finding_kinds": list(r.finding_kinds),
                }
                for r in self.rows
            ],
        }


def mutation_matrix(
    workloads=("lbm", "poisson"),
    devices=(2, 4, 8),
    occs=tuple(Occ),
    max_per_kind: int | None = 2,
) -> MutationReport:
    """Generate and grade schedule mutants across the experiment matrix.

    ``max_per_kind`` caps mutants per kind *per skeleton* so the matrix
    stays CI-sized while still covering every mutant kind at every
    configuration that produces it (single-device programs, for example,
    have no halo copies to break).
    """
    report = MutationReport()
    for name in workloads:
        for ndev in devices:
            for occ in occs:
                wl = build_workload(name, devices=ndev, occ=occ)
                for sk in wl.skeletons:
                    for mut in generate_mutants(sk.plan, max_per_kind=max_per_kind):
                        findings = analyze_program(mut.view)
                        report.rows.append(
                            MutationRow(
                                workload=name,
                                devices=ndev,
                                occ=occ.value,
                                skeleton=sk.name,
                                kind=mut.kind,
                                mutant=mut.mid,
                                killed=bool(findings),
                                finding_kinds=tuple(sorted({f.kind for f in findings})),
                            )
                        )
    return report
