"""Sanitizer arming state + the execution log runtime hooks write into.

Like :mod:`repro.observability`, this module is stdlib-only and imports
nothing from ``repro`` so the hot runtime paths (scheduler replay, the
parallel engine's workers, eager queues) can guard on a single attribute
read — ``SAN.active`` — without import cycles or measurable disabled
overhead.  The heavy analysis modules (:mod:`repro.sanitizer.detector`,
:mod:`repro.sanitizer.mutate`) live downstream and are only imported by
the CLI and tests.

The log records *what actually executed*, in completion order per
recording thread: one entry per retired kernel/copy command plus the
event signal/wait operations the parallel engine performs.  The
detector's happens-before analysis works on the static queue wiring; the
log adds the dynamic half — coverage (every compiled command really ran)
and which replay mode produced the run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True)
class ExecRecord:
    """One retired operation of a sanitized run."""

    seq: int  # global completion order (log append order)
    thread: int  # ident of the executing thread
    op: str  # "run" | "signal" | "wait"
    command: object  # the Command (or Event for signal/wait ops)


class _SanState:
    """Process-global sanitizer switchboard (slotted for fast reads)."""

    __slots__ = ("active", "_lock", "_log")

    def __init__(self) -> None:
        self.active = False
        self._lock = threading.Lock()
        self._log: list[ExecRecord] = []

    def record(self, command: object, op: str = "run") -> None:
        """Append one retired operation (thread-safe, called from workers)."""
        with self._lock:
            self._log.append(ExecRecord(len(self._log), threading.get_ident(), op, command))

    def drain(self) -> list[ExecRecord]:
        """Return and clear the accumulated log."""
        with self._lock:
            log, self._log = self._log, []
            return log

    def __len__(self) -> int:
        with self._lock:
            return len(self._log)


SAN = _SanState()
"""The singleton hot-path guard: hooks check ``SAN.active`` before recording."""


def enable() -> None:
    """Arm execution recording, starting from an empty log."""
    SAN.drain()
    SAN.active = True


def disable() -> list[ExecRecord]:
    """Disarm recording and return the captured execution log."""
    SAN.active = False
    return SAN.drain()


def reset() -> None:
    """Disarm and drop any captured state (test-fixture hygiene)."""
    SAN.active = False
    SAN.drain()
