"""Sanitizer miniatures: the four paper experiments at checkable size.

Each workload builds real solver skeletons (same code paths as the
benchmarks, shrunk until a full mutation matrix runs in CI time) and
exposes the uniform interface the runner and the CLI drive: compiled
skeletons plus a ``run(mode)`` that replays them a couple of times.
Shapes scale with the device count so every partition keeps a legal slab
(at least ``2 * radius`` cells) up to 8 devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.skeleton import Occ
from repro.system import Backend

WORKLOADS = ("lbm", "poisson", "karman", "elasticity")


@dataclass
class Workload:
    """One sanitizable experiment: compiled skeletons + a replay driver."""

    name: str
    description: str
    skeletons: list = field(default_factory=list)
    run: Callable[[str], None] = lambda mode: None


def _slab_extent(devices: int, minimum: int = 12) -> int:
    return max(minimum, 2 * devices)


def build_workload(name: str, devices: int = 4, occ: Occ = Occ.STANDARD) -> Workload:
    """Instantiate one miniature on a fresh simulated backend."""
    backend = Backend.sim_gpus(devices)
    if name == "lbm":
        from repro.solvers.lbm import LidDrivenCavity

        cavity = LidDrivenCavity(backend, (_slab_extent(devices), 6, 6), occ=occ)
        return Workload(
            name=name,
            description=f"{devices}-device LBM D3Q19 lid-driven cavity miniature",
            skeletons=cavity.skeletons,
            run=lambda mode: cavity.step(2, mode=mode),
        )
    if name == "poisson":
        from repro.solvers.poisson import PoissonSolver

        solver = PoissonSolver(backend, (_slab_extent(devices), 6, 6), occ=occ)
        solver.set_rhs(lambda z, y, x: np.ones(z.shape, dtype=np.float64))

        def run_poisson(mode: str) -> None:
            solver.cg.mode = mode
            solver.cg.begin(tolerance=1e-12)
            for _ in range(2):
                if solver.cg.iterate():
                    break

        cg = solver.cg
        return Workload(
            name=name,
            description=f"{devices}-device Poisson CG miniature",
            skeletons=[cg.sk_init, cg.sk_a, cg.sk_b],
            run=run_poisson,
        )
    if name == "karman":
        from repro.solvers.lbm import KarmanVortexStreet

        street = KarmanVortexStreet(backend, (_slab_extent(devices, minimum=18), 30), occ=occ)
        return Workload(
            name=name,
            description=f"{devices}-device LBM D2Q9 Karman vortex street miniature",
            skeletons=street.skeletons,
            run=lambda mode: street.step(2, mode=mode),
        )
    if name == "elasticity":
        from repro.solvers.elasticity import ElasticitySolver

        solver = ElasticitySolver.solid_cube(backend, _slab_extent(devices, minimum=8), occ=occ)

        def run_elasticity(mode: str) -> None:
            solver.cg.mode = mode
            solver.cg.begin(tolerance=1e-12)
            solver.cg.iterate()

        cg = solver.cg
        return Workload(
            name=name,
            description=f"{devices}-device linear elasticity CG miniature",
            skeletons=[cg.sk_init, cg.sk_a, cg.sk_b],
            run=run_elasticity,
        )
    supported = ", ".join(WORKLOADS)
    raise KeyError(f"unknown sanitize workload {name!r}; supported: {supported}")
