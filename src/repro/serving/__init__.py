"""Serving: the persistent plan cache + multi-tenant job gateway.

The paper's compile-once/run-many argument, extended past process exit
and past a single job: :mod:`repro.serving.plancache` makes compiled
artefacts content-addressed and persistent, and
:mod:`repro.serving.gateway` serves many tenants' jobs from one warm
runtime with admission control, batching and DES-estimate-ordered fair
scheduling.  ``python -m repro serve`` is the CLI front; the in-process
:class:`Gateway` API is what the test suite drives.
"""

from __future__ import annotations

from .gateway import (
    AdmissionRejected,
    Gateway,
    GatewayClosed,
    GatewayError,
    Job,
    JobFailed,
    JobResult,
)
from .plancache import CACHE_SCHEMA, ENV_VAR, CacheEntry, PlanCache, PlanCacheError, PlanKey
from .workloads import JobSpec, build_served, plan_key, workload_signature

__all__ = [
    "CACHE_SCHEMA",
    "ENV_VAR",
    "AdmissionRejected",
    "CacheEntry",
    "Gateway",
    "GatewayClosed",
    "GatewayError",
    "Job",
    "JobFailed",
    "JobResult",
    "JobSpec",
    "PlanCache",
    "PlanCacheError",
    "PlanKey",
    "build_served",
    "plan_key",
    "workload_signature",
]
