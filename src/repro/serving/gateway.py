"""The multi-tenant job gateway: many jobs, one warm runtime.

``Gateway`` turns the compile-once/run-many runtime into a server.
Tenants submit :class:`~repro.serving.workloads.JobSpec`\\ s; a bounded
queue with admission control feeds a small pool of worker threads that
execute jobs against the shared :class:`~repro.serving.plancache.PlanCache`,
so identical jobs pay compilation exactly once and every later arrival
replays a warm program.

Scheduling policy, in order:

1. **Batching affinity.**  A worker that just ran a job keeps draining
   jobs with the same plan key (up to ``batch_limit`` in a row) — the
   program is warm in that worker's hands, and re-running it beats a
   fair-but-cold switch for small jobs.
2. **Per-tenant fairness.**  Otherwise the worker serves the tenant
   with the least accumulated service time (a virtual-time scheduler);
   within a tenant, jobs are ordered by their **DES cost estimate** —
   simulated seconds for the whole job under the machine model, read
   from the plan cache when persisted, optimistically zero for unknown
   work.  Measured wall time, not the estimate, is what a tenant is
   charged afterwards.

Cross-cutting layers stay correct under concurrency via a
shared/exclusive lock: ordinary jobs run shared; jobs that arm the
process-global resilience state (fault injection) or flip the
process-global fusion flag (``fused=False``) run exclusive, so they
never overlap another job's execution or program freeze.

Per-tenant latency lands in the standard histogram metrics
(``serve_job_seconds{tenant=...}``, ``serve_queue_wait_seconds``), so
``python -m repro report`` shows p50/p90/p99 per tenant and
``report --compare`` can gate them.
"""

from __future__ import annotations

import dataclasses
import heapq
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

from repro import observability as _obs
from repro import resilience as res
from repro.sim import dgx_a100, pcie_a100
from repro.skeleton import fusion
from repro.system import Backend
from repro.tuner import tune_workload

from .plancache import PlanCache, PlanKey
from .workloads import JobSpec, build_served, plan_key

#: served experiment -> fault-matrix workload (PR 7 profiles)
_FAULTABLE = {"lbm": "lbm", "poisson": "cg"}


class GatewayError(RuntimeError):
    """Base class for gateway failures."""


class AdmissionRejected(GatewayError):
    """The bounded queue is full; the job was never admitted."""


class GatewayClosed(GatewayError):
    """Submission after :meth:`Gateway.close`."""


class JobFailed(GatewayError):
    """The job's execution raised; the cause is chained."""


@dataclass
class JobResult:
    """What a completed job hands back to its tenant."""

    tenant: str
    spec: JobSpec
    fingerprints: dict
    seconds: float
    queue_wait_seconds: float
    cache_hit: bool
    batched: bool = False
    rollbacks: int = 0
    devices_lost: int = 0


class Job:
    """Handle for one submitted job; resolves via :meth:`result`."""

    def __init__(self, tenant: str, spec: JobSpec, key: PlanKey, estimate: float):
        self.tenant = tenant
        self.spec = spec
        self.key = key
        self.digest = key.digest
        self.estimate = estimate
        self.submitted = perf_counter()
        self.fault_profile: str | None = None
        self.fault_seed = 0
        self.policy: res.RecoveryPolicy | None = None
        self.taken = False  # lazy-deletion flag shared by heap + affinity deque
        self.batched = False
        self._done = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None

    @property
    def exclusive(self) -> bool:
        """Must this job run alone? (armed faults / process-global fusion flip)"""
        return self.fault_profile is not None or not self.spec.fused

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block for completion; raises :class:`JobFailed` on job error."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job for tenant '{self.tenant}' still pending after {timeout}s")
        if self._error is not None:
            raise JobFailed(f"{self.spec.experiment} job for '{self.tenant}' failed") from self._error
        assert self._result is not None
        return self._result

    def _resolve(self, result: JobResult | None, error: BaseException | None) -> None:
        self._result, self._error = result, error
        self._done.set()


class _SharedExclusive:
    """Writer-preferring shared/exclusive lock (no lock upgrading)."""

    def __init__(self):
        self._cond = threading.Condition(threading.Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def shared(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def exclusive(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


@dataclass
class _TenantQueue:
    """One tenant's pending jobs + accumulated (wall-clock) service time."""

    heap: list = field(default_factory=list)  # (estimate, seq, Job)
    vtime: float = 0.0


class _WorkerState:
    __slots__ = ("last_digest", "batch_run")

    def __init__(self):
        self.last_digest: str | None = None
        self.batch_run = 0


class Gateway:
    """In-process serving gateway over one shared plan cache.

    Parameters
    ----------
    cache:
        The :class:`PlanCache` to serve from; a fresh (env-configured)
        one is built when omitted.  :meth:`close` releases its warm
        programs either way — the gateway owns program lifetime.
    machine_factory:
        ``devices -> MachineSpec`` for cache addressing and DES cost
        estimates; defaults to :func:`repro.sim.dgx_a100`.
    max_queue:
        Admission bound on *waiting* jobs; beyond it submissions raise
        :class:`AdmissionRejected` rather than queue without bound.
    workers:
        Worker-thread pool size.
    batch_limit:
        Max consecutive same-plan-key jobs one worker drains before
        returning to fair scheduling.
    """

    def __init__(
        self,
        cache: PlanCache | None = None,
        machine_factory=None,
        max_queue: int = 64,
        workers: int = 2,
        batch_limit: int = 4,
    ):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_limit < 1:
            raise ValueError("batch_limit must be >= 1")
        self.cache = cache if cache is not None else PlanCache()
        self.machine_factory = machine_factory if machine_factory is not None else dgx_a100
        self.max_queue = max_queue
        self.batch_limit = batch_limit
        self._cv = threading.Condition(threading.Lock())
        self._tenants: dict[str, _TenantQueue] = {}
        self._by_key: dict[str, deque[Job]] = {}
        self._pending = 0
        self._seq = 0
        self._closed = False
        self._exec_lock = _SharedExclusive()
        self.jobs_done = 0
        self.jobs_failed = 0
        self.batch_joins = 0
        self.rejected = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"serve-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for t in self._threads:
            t.start()

    # -- context manager -----------------------------------------------------
    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- metrics helpers -----------------------------------------------------
    @staticmethod
    def _count(name: str, **labels: str) -> None:
        if _obs.OBS.active:
            _obs.OBS.metrics.counter(name, **labels).inc()

    @staticmethod
    def _observe(name: str, value: float, **labels: str) -> None:
        if _obs.OBS.active:
            _obs.OBS.metrics.histogram(
                name, bounds=_obs.Histogram.TIME_BOUNDS, **labels
            ).observe(value)

    def _depth_gauge(self) -> None:
        # caller holds self._cv
        if _obs.OBS.active:
            _obs.OBS.metrics.gauge("serve_queue_depth").set(float(self._pending))

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        tenant: str,
        spec: JobSpec,
        *,
        fault_profile: str | None = None,
        fault_seed: int = 0,
        policy: res.RecoveryPolicy | None = None,
    ) -> Job:
        """Admit one job for ``tenant``; returns a :class:`Job` handle.

        ``fault_profile`` routes the job through the resilience layer
        (the PR 7 fault-matrix profiles, e.g. ``"transient+loss"``) with
        the given seed and recovery ``policy``; such jobs run exclusive.
        """
        if fault_profile is not None and spec.experiment not in _FAULTABLE:
            supported = ", ".join(sorted(_FAULTABLE))
            raise KeyError(
                f"experiment '{spec.experiment}' has no fault-matrix workload; "
                f"faultable: {supported}"
            )
        machine = self.machine_factory(spec.devices)
        key = plan_key(spec, machine.name)
        entry = self.cache.peek(key)
        estimate = 0.0  # optimistic: unknown work sorts first within its tenant
        if entry is not None and entry.estimate_seconds is not None:
            estimate = float(entry.estimate_seconds)
        job = Job(tenant, spec, key, estimate)
        job.fault_profile = fault_profile
        job.fault_seed = int(fault_seed)
        job.policy = policy
        with self._cv:
            if self._closed:
                raise GatewayClosed("gateway is closed")
            if self._pending >= self.max_queue:
                self.rejected += 1
                self._count("serve_rejected", tenant=tenant)
                raise AdmissionRejected(
                    f"queue full ({self._pending}/{self.max_queue}); job rejected"
                )
            self._seq += 1
            tq = self._tenants.setdefault(tenant, _TenantQueue())
            heapq.heappush(tq.heap, (job.estimate, self._seq, job))
            self._by_key.setdefault(job.digest, deque()).append(job)
            self._pending += 1
            self._depth_gauge()
            self._cv.notify()
        return job

    def tuned_spec(self, spec: JobSpec) -> JobSpec:
        """The spec rewritten with the autotuner's choice for its workload.

        The :class:`~repro.tuner.TunePlan` is read from the plan cache
        under the workload's *tuning key* (configuration axes collapsed)
        and computed — full DES search — only on a miss, then persisted,
        so every later server process skips the search entirely.
        """
        machine = self.machine_factory(spec.devices)
        tkey = plan_key(spec, machine.name).tuning_key()
        entry = self.cache.lookup(tkey)
        if entry is not None and entry.tune_plan is not None:
            plan = entry.tune_plan
        else:
            plan = tune_workload(spec.experiment, machine, spec.devices)
            self.cache.store(tkey, tune_plan=plan)
        best = plan.best
        return dataclasses.replace(spec, occ=best.occ, mode=best.mode, weights=best.weights)

    # -- scheduling ----------------------------------------------------------
    def _pick(self, ws: _WorkerState) -> Job | None:
        # caller holds self._cv
        if ws.last_digest is not None and ws.batch_run < self.batch_limit:
            dq = self._by_key.get(ws.last_digest)
            while dq:
                job = dq.popleft()
                if not dq:
                    self._by_key.pop(ws.last_digest, None)
                if job.taken:
                    continue
                job.taken = True
                job.batched = True
                ws.batch_run += 1
                self.batch_joins += 1
                self._count("serve_batch_joins", tenant=job.tenant)
                return job
        best: _TenantQueue | None = None
        for tq in self._tenants.values():
            while tq.heap and tq.heap[0][2].taken:
                heapq.heappop(tq.heap)
            if not tq.heap:
                continue
            if best is None or tq.vtime < best.vtime:
                best = tq
        if best is None:
            return None
        _, _, job = heapq.heappop(best.heap)
        job.taken = True
        ws.last_digest = job.digest
        ws.batch_run = 1
        return job

    def _worker(self) -> None:
        ws = _WorkerState()
        while True:
            with self._cv:
                job = self._pick(ws)
                while job is None:
                    if self._closed:
                        return
                    ws.last_digest = None  # nothing to drain; drop the affinity
                    self._cv.wait()
                    job = self._pick(ws)
                self._pending -= 1
                self._depth_gauge()
            self._execute(job)

    # -- execution -----------------------------------------------------------
    def _execute(self, job: Job) -> None:
        queue_wait = perf_counter() - job.submitted
        self._observe("serve_queue_wait_seconds", queue_wait, tenant=job.tenant)
        if _obs.OBS.active:
            _obs.OBS.metrics.gauge("serve_inflight").inc()
        t0 = perf_counter()
        try:
            section = self._exec_lock.exclusive() if job.exclusive else self._exec_lock.shared()
            with section:
                if job.fault_profile is not None:
                    result = self._run_resilient(job, queue_wait)
                else:
                    result = self._run_cached(job, queue_wait)
        except BaseException as exc:  # noqa: BLE001 - resolved into the handle
            self.jobs_failed += 1
            self._count("serve_jobs", tenant=job.tenant, status="error")
            job._resolve(None, exc)
        else:
            self.jobs_done += 1
            self._count("serve_jobs", tenant=job.tenant, status="ok")
            job._resolve(result, None)
        finally:
            elapsed = perf_counter() - t0
            self._observe("serve_job_seconds", elapsed, tenant=job.tenant)
            if _obs.OBS.active:
                _obs.OBS.metrics.gauge("serve_inflight").dec()
            with self._cv:
                tq = self._tenants.setdefault(job.tenant, _TenantQueue())
                tq.vtime += elapsed  # charge measured service, not the estimate

    def _run_cached(self, job: Job, queue_wait: float) -> JobResult:
        spec = job.spec
        machine = self.machine_factory(spec.devices)
        entry = self.cache.lookup(job.key)
        cache_hit = entry is not None
        if entry is None:
            entry = self.cache.store(job.key)
        t0 = perf_counter()
        # fused=False flips the process-global fusion flag, consulted at
        # program-freeze (first replay) — such jobs hold the exclusive
        # section, so the flip cannot leak into a concurrent freeze
        ctx = fusion.disabled() if not spec.fused else _null_ctx()
        with ctx, entry.lock:
            app = entry.program
            if app is None:
                cache_hit = False
                app = build_served(spec, machine=machine)
                self.cache.store(
                    job.key,
                    program=app,
                    estimate_seconds=app.estimate_seconds(),
                    release=lambda a: a.close(),
                )
            else:
                app.reset()
            fingerprints = app.run()
        # LRU-evicted out from under us while running: the evictor's
        # try-acquire skipped teardown, so retire the orphan here
        if entry.program is not app:
            app.close()
        return JobResult(
            tenant=job.tenant,
            spec=spec,
            fingerprints=fingerprints,
            seconds=perf_counter() - t0,
            queue_wait_seconds=queue_wait,
            cache_hit=cache_hit,
            batched=job.batched,
        )

    def _run_resilient(self, job: Job, queue_wait: float) -> JobResult:
        from repro.bench import faulted

        spec = job.spec
        wl = faulted.WORKLOADS[_FAULTABLE[spec.experiment]]
        plan = faulted.make_plan(wl, job.fault_profile, job.fault_seed, spec.devices)
        policy = job.policy if job.policy is not None else res.RecoveryPolicy()
        backend = Backend.sim_gpus(spec.devices, machine=pcie_a100(spec.devices))
        driver = res.ResilientDriver(
            wl.factory, backend, spec.steps, policy=policy, plan=plan
        )
        t0 = perf_counter()
        with res.session(plan, policy):
            app = driver.run()
        try:
            fingerprints = {"result": app.result_array()}
        finally:
            for sk in app.skeletons:
                sk.plan.close_engines()
        return JobResult(
            tenant=job.tenant,
            spec=spec,
            fingerprints=fingerprints,
            seconds=perf_counter() - t0,
            queue_wait_seconds=queue_wait,
            cache_hit=False,
            batched=job.batched,
            rollbacks=driver.rollbacks,
            devices_lost=driver.devices_lost,
        )

    # -- shutdown ------------------------------------------------------------
    def close(self) -> None:
        """Drain the queue, stop the workers, release every warm program."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        for t in self._threads:
            t.join()
        self.cache.clear()

    def stats(self) -> dict:
        with self._cv:
            return {
                "pending": self._pending,
                "done": self.jobs_done,
                "failed": self.jobs_failed,
                "rejected": self.rejected,
                "batch_joins": self.batch_joins,
                "tenants": {t: tq.vtime for t, tq in self._tenants.items()},
                "cache": self.cache.stats(),
            }


@contextmanager
def _null_ctx():
    yield


__all__ = [
    "AdmissionRejected",
    "Gateway",
    "GatewayClosed",
    "GatewayError",
    "Job",
    "JobFailed",
    "JobResult",
]
