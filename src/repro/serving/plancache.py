"""The persistent plan cache: compilation as an amortisable asset.

The paper's compile-once/run-many economics stop at process exit: every
new job pays graph construction, OCC extension and scheduling again.
This module makes the compiled artefacts outlive the job.  A
:class:`PlanKey` names one compilation *exactly* — workload signature ×
machine model × occ × mode × partition weights × fusion flag — and a
:class:`PlanCache` maps keys to three things of very different
lifetimes:

* a **warm program** — the live solver application whose skeletons hold
  frozen :class:`~repro.skeleton.scheduler.CompiledProgram`\\ s.  Pure
  process memory (closures over fields and engines), never serialised;
  reused across jobs in the same server, LRU-evicted past
  ``max_programs`` (eviction retires the replay engines).
* a **TunePlan** — the autotuner's decision for the workload on the
  machine.  JSON all the way down, persisted to disk so a new server
  process skips the DES search entirely.
* a **DES cost estimate** — simulated seconds for the whole job, the
  number the gateway's fair scheduler orders admission by.  Also
  persisted.

On-disk format is one ``<digest>.json`` per key (schema
``repro-plancache/1``) under the cache root; the root comes from the
constructor, else the ``REPRO_PLAN_CACHE`` environment variable, else
the cache is memory-only.  Hits, misses, evictions and persistence
traffic are tracked both on the cache object and — when observability
is enabled — as ``plan_cache_*`` counters.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import observability as _obs
from repro.tuner import TunePlan

CACHE_SCHEMA = "repro-plancache/1"
ENV_VAR = "REPRO_PLAN_CACHE"


class PlanCacheError(ValueError):
    """A persisted cache entry is unreadable or from an unknown schema."""


@dataclass(frozen=True)
class PlanKey:
    """Content address of one compiled configuration.

    ``workload`` is the canonical workload signature (experiment, domain
    shape, step count and solver parameters — see
    :func:`repro.serving.workloads.workload_signature`); the remaining
    fields pin the machine model and every compilation-relevant knob.
    Two keys are equal iff a compiled program for one is exactly
    reusable for the other.
    """

    workload: str
    machine: str
    devices: int
    occ: str
    mode: str
    weights: tuple[float, ...] | None
    fused: bool

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "PlanKey":
        weights = d["weights"]
        return cls(
            workload=d["workload"],
            machine=d["machine"],
            devices=int(d["devices"]),
            occ=d["occ"],
            mode=d["mode"],
            weights=None if weights is None else tuple(float(w) for w in weights),
            fused=bool(d["fused"]),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, exact float repr — digest input."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PlanKey":
        return cls.from_dict(json.loads(text))

    @property
    def digest(self) -> str:
        """Content address: SHA-256 of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def tuning_key(self) -> "PlanKey":
        """The key a :class:`~repro.tuner.TunePlan` is cached under.

        A tune plan *chooses* occ/mode/weights, so it cannot be keyed by
        them; the ``*`` sentinels collapse the configuration axes while
        the workload × machine × devices identity stays exact.  No real
        key collides with a tuning key (``*`` is not a valid occ/mode).
        """
        return PlanKey(
            workload=self.workload,
            machine=self.machine,
            devices=self.devices,
            occ="*",
            mode="*",
            weights=None,
            fused=False,
        )


@dataclass
class CacheEntry:
    """Everything cached for one :class:`PlanKey`.

    ``lock`` serialises use of the warm ``program`` (one live solver
    cannot run two jobs at once); ``release`` is the owner-provided
    teardown called on eviction (retiring replay engines).
    """

    key: PlanKey
    program: object | None = None
    tune_plan: TunePlan | None = None
    estimate_seconds: float | None = None
    release: Callable[[object], None] | None = None
    lock: threading.RLock = field(default_factory=threading.RLock)


class PlanCache:
    """Content-addressed store for plans, estimates and warm programs."""

    def __init__(self, root: str | os.PathLike | None = None, max_programs: int = 8):
        if root is None:
            root = os.environ.get(ENV_VAR) or None
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        if max_programs < 1:
            raise ValueError("max_programs must be >= 1")
        self.max_programs = max_programs
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()  # LRU by digest
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.persisted_writes = 0
        self.persisted_loads = 0

    # -- metrics -------------------------------------------------------------
    def _count(self, name: str, **labels: str) -> None:
        if _obs.OBS.active:
            _obs.OBS.metrics.counter(name, **labels).inc()

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "persisted_writes": self.persisted_writes,
                "persisted_loads": self.persisted_loads,
                "entries": len(self._entries),
                "programs": sum(1 for e in self._entries.values() if e.program is not None),
                "root": str(self.root) if self.root is not None else None,
            }

    # -- disk ----------------------------------------------------------------
    def _path(self, key: PlanKey) -> Path | None:
        return None if self.root is None else self.root / f"{key.digest}.json"

    def _load_persisted(self, key: PlanKey) -> CacheEntry | None:
        path = self._path(key)
        if path is None or not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise PlanCacheError(f"{path}: corrupt plan-cache entry: {exc}") from exc
        if doc.get("schema") != CACHE_SCHEMA:
            raise PlanCacheError(
                f"{path}: unknown plan-cache schema {doc.get('schema')!r}; expected {CACHE_SCHEMA}"
            )
        stored = PlanKey.from_dict(doc["key"])
        if stored != key:
            raise PlanCacheError(f"{path}: digest collision or tampered entry (key mismatch)")
        plan = doc.get("tune_plan")
        entry = CacheEntry(
            key=key,
            tune_plan=None if plan is None else TunePlan.from_dict(plan),
            estimate_seconds=doc.get("estimate_seconds"),
        )
        self.persisted_loads += 1
        self._count("plan_cache_persisted_loads")
        return entry

    def _persist(self, entry: CacheEntry) -> None:
        path = self._path(entry.key)
        if path is None or (entry.tune_plan is None and entry.estimate_seconds is None):
            return
        doc = {
            "schema": CACHE_SCHEMA,
            "key": entry.key.to_dict(),
            "digest": entry.key.digest,
            "estimate_seconds": entry.estimate_seconds,
            "tune_plan": None if entry.tune_plan is None else entry.tune_plan.to_dict(),
        }
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        tmp.replace(path)  # atomic within one filesystem
        self.persisted_writes += 1
        self._count("plan_cache_persisted_writes")

    # -- the cache proper ----------------------------------------------------
    def lookup(self, key: PlanKey) -> CacheEntry | None:
        """The entry for ``key``, or None; counts one hit or miss.

        Memory first, then the persistent store (a disk hit is promoted
        into memory).  The returned entry is live — callers serialise
        program use through ``entry.lock``.
        """
        digest = key.digest
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self.hits += 1
                kind = "program" if entry.program is not None else "plan"
            else:
                entry = self._load_persisted(key)
                if entry is not None:
                    self._entries[digest] = entry
                    self.hits += 1
                    kind = "persisted"
                else:
                    self.misses += 1
        if entry is None:
            self._count("plan_cache_misses")
            return None
        self._count("plan_cache_hits", kind=kind)
        return entry

    def peek(self, key: PlanKey) -> CacheEntry | None:
        """Like :meth:`lookup` but without touching the hit/miss counters.

        Admission-time cost estimation wants the persisted DES estimate
        if one exists, but a peek at submit time must not double-count
        the real lookup the worker performs when the job runs.
        """
        digest = key.digest
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                return entry
            entry = self._load_persisted(key)
            if entry is not None:
                self._entries[digest] = entry
            return entry

    def store(
        self,
        key: PlanKey,
        *,
        program: object | None = None,
        tune_plan: TunePlan | None = None,
        estimate_seconds: float | None = None,
        release: Callable[[object], None] | None = None,
    ) -> CacheEntry:
        """Merge new artefacts into the entry for ``key`` (creating it).

        Persists the JSON-able parts when a cache root is configured,
        and LRU-evicts the oldest warm program past ``max_programs``
        (eviction calls its ``release`` hook outside the cache lock).
        """
        evicted: list[tuple[CacheEntry, object]] = []
        with self._lock:
            digest = key.digest
            entry = self._entries.get(digest)
            if entry is None:
                entry = CacheEntry(key=key)
                self._entries[digest] = entry
            self._entries.move_to_end(digest)
            if program is not None:
                entry.program = program
            if release is not None:
                entry.release = release
            if tune_plan is not None:
                entry.tune_plan = tune_plan
            if estimate_seconds is not None:
                entry.estimate_seconds = float(estimate_seconds)
            if tune_plan is not None or estimate_seconds is not None:
                self._persist(entry)
            live = [e for e in self._entries.values() if e.program is not None]
            while len(live) > self.max_programs:
                victim = live.pop(0)  # OrderedDict iteration order = LRU order
                # drop the program but keep the (cheap) plan/estimate entry
                evicted.append((victim, victim.program))
                victim.program = None
                self.evictions += 1
        for victim, program in evicted:
            self._count("plan_cache_evictions")
            if victim.release is not None:
                # a job may still be replaying on the evicted program; a
                # *blocking* wait here could deadlock against a peer
                # store() holding that entry's lock, so try-acquire and
                # otherwise leave teardown to the running job (it checks
                # ``entry.program is not app`` after its run and closes
                # the orphan itself — close is idempotent)
                if victim.lock.acquire(blocking=False):
                    try:
                        victim.release(program)
                    finally:
                        victim.lock.release()
        return entry

    def clear(self) -> None:
        """Drop every in-memory entry, releasing all warm programs.

        The persistent store is untouched — ``clear()`` is server
        shutdown, not cache invalidation.
        """
        with self._lock:
            entries, self._entries = list(self._entries.values()), OrderedDict()
        for entry in entries:
            with entry.lock:
                if entry.program is not None and entry.release is not None:
                    entry.release(entry.program)
                entry.program = None


__all__ = ["CACHE_SCHEMA", "ENV_VAR", "CacheEntry", "PlanCache", "PlanCacheError", "PlanKey"]
