"""Served workloads: job specs and warm-replayable solver adapters.

A :class:`JobSpec` is the unit of admission: a declarative, hashable,
JSON-able description of one solver job (experiment, domain shape, step
count, solver parameters, device count, occ/mode/weights/fusion).  Its
:func:`workload_signature` plus the machine model name address the plan
cache — see :class:`repro.serving.plancache.PlanKey`.

An adapter wraps one live solver application so the gateway can replay
it across jobs: ``reset()`` restores the *exact* post-construction field
state (the same ``fill`` + halo-sync sequence the constructor ran, so a
warm replay is bitwise-identical to a cold one), ``run()`` executes the
job and returns the result fingerprints, and ``close()`` retires the
replay engines.  ``estimate_seconds()`` is the DES cost of the whole
job under the backend's machine model — simulated seconds, never a wall
clock — which is what the gateway's fair scheduler orders admission by.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.system import Backend

from .plancache import PlanKey

#: experiments the gateway can serve; values build the adapter
_EXPERIMENTS = ("lbm", "karman", "poisson", "elasticity")


@dataclass(frozen=True)
class JobSpec:
    """One solver job, fully described and hashable.

    ``params`` holds the solver-specific knobs as a sorted tuple of
    ``(name, value)`` pairs so the spec stays frozen/hashable; use
    :meth:`make` to build one from keyword arguments.
    """

    experiment: str
    shape: tuple[int, ...]
    steps: int
    devices: int = 2
    occ: str = "standard"
    mode: str = "serial"
    weights: tuple[float, ...] | None = None
    fused: bool = True
    params: tuple[tuple[str, float], ...] = field(default=())

    @classmethod
    def make(
        cls,
        experiment: str,
        shape,
        steps: int,
        devices: int = 2,
        occ: str = "standard",
        mode: str = "serial",
        weights=None,
        fused: bool = True,
        **params,
    ) -> "JobSpec":
        if experiment not in _EXPERIMENTS:
            supported = ", ".join(_EXPERIMENTS)
            raise KeyError(f"no served workload named '{experiment}'; supported: {supported}")
        return cls(
            experiment=experiment,
            shape=tuple(int(n) for n in shape),
            steps=int(steps),
            devices=int(devices),
            occ=occ,
            mode=mode,
            weights=None if weights is None else tuple(float(w) for w in weights),
            fused=bool(fused),
            params=tuple(sorted(params.items())),
        )

    def param(self, name: str, default):
        for key, value in self.params:
            if key == name:
                return value
        return default


def workload_signature(spec: JobSpec) -> str:
    """Canonical workload identity: experiment, domain, steps, params.

    Deliberately excludes devices/occ/mode/weights/fused — those are
    *configuration* axes, separate fields of the
    :class:`~repro.serving.plancache.PlanKey` — so the same signature
    under two configurations shares one tuning identity.
    """
    dims = "x".join(str(n) for n in spec.shape)
    extras = ";".join(f"{k}={v!r}" for k, v in spec.params)
    return f"{spec.experiment}[{dims}]steps={spec.steps}" + (f";{extras}" if extras else "")


def plan_key(spec: JobSpec, machine: str) -> PlanKey:
    """The plan-cache address of one spec on one machine model."""
    return PlanKey(
        workload=workload_signature(spec),
        machine=machine,
        devices=spec.devices,
        occ=spec.occ,
        mode=spec.mode,
        weights=spec.weights,
        fused=spec.fused,
    )


# -- adapters ----------------------------------------------------------------
class _Served:
    """Base adapter: backend plumbing + DES estimate + engine teardown."""

    def __init__(self, spec: JobSpec, backend: Backend):
        self.spec = spec
        self.backend = backend

    @property
    def skeletons(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def estimate_seconds(self) -> float:
        """DES cost of the whole job: simulated per-step time × steps."""
        return self.solver.iteration_makespan() * max(1, self.spec.steps)

    def close(self) -> None:
        for sk in self.skeletons:
            sk.close()


class _ServedLBM(_Served):
    def __init__(self, spec: JobSpec, backend: Backend):
        from repro.skeleton import Occ
        from repro.solvers.lbm import LidDrivenCavity

        super().__init__(spec, backend)
        self.solver = LidDrivenCavity(
            backend,
            spec.shape,
            omega=float(spec.param("omega", 1.0)),
            lid_velocity=float(spec.param("lid_velocity", 0.05)),
            occ=Occ(spec.occ),
            partition_weights=spec.weights,
        )

    @property
    def skeletons(self):
        return self.solver.skeletons

    def reset(self) -> None:
        # the constructor's exact init sequence: zero-velocity equilibrium
        # per component, halos synced, parity zeroed
        lattice = self.solver.lattice
        feq0 = 1.0  # RHO0
        for fld in self.solver.f:
            for q in range(lattice.q):
                fld.fill(feq0 * lattice.weights[q], comp=q)
            fld.sync_halo_now()
        self.solver._parity = 0

    def run(self) -> dict[str, np.ndarray]:
        self.solver.step(self.spec.steps, mode=self.spec.mode)
        return {"f": self.solver.current.to_numpy()}


class _ServedKarman(_Served):
    def __init__(self, spec: JobSpec, backend: Backend):
        from repro.skeleton import Occ
        from repro.solvers.lbm.d2q9 import KarmanVortexStreet

        super().__init__(spec, backend)
        self.solver = KarmanVortexStreet(
            backend,
            spec.shape,
            reynolds=float(spec.param("reynolds", 220.0)),
            inflow_velocity=float(spec.param("inflow_velocity", 0.04)),
            occ=Occ(spec.occ),
            partition_weights=spec.weights,
        )

    @property
    def skeletons(self):
        return self.solver.skeletons

    def reset(self) -> None:
        # mask is static; only the population fields and parity restart
        solver = self.solver
        feq0 = solver.lattice.equilibrium(np.float64(1.0), np.array([0.0, solver.inflow_velocity]))
        for fld in solver.f:
            for q in range(solver.lattice.q):
                fld.fill(float(feq0[q]), comp=q)
            fld.sync_halo_now()
        solver._parity = 0

    def run(self) -> dict[str, np.ndarray]:
        self.solver.step(self.spec.steps, mode=self.spec.mode)
        return {"f": self.solver.current.to_numpy()}


class _ServedCG(_Served):
    """Common CG-backed adapter: reset = zero the iterate, replay begin()."""

    def reset(self) -> None:
        # begin() rebuilds r/p/q and every host scalar from x and b, so
        # zeroing the iterate (halos included) restores the cold state
        x = self.solver.cg.x
        x.fill(0.0)
        x.sync_halo_now()


class _ServedPoisson(_ServedCG):
    def __init__(self, spec: JobSpec, backend: Backend):
        from repro.skeleton import Occ
        from repro.solvers import PoissonSolver, manufactured_problem

        super().__init__(spec, backend)
        self.solver = PoissonSolver(
            backend, spec.shape, occ=Occ(spec.occ), partition_weights=spec.weights
        )
        self.solver.cg.mode = spec.mode
        rhs = spec.param("rhs", "manufactured")
        if rhs == "manufactured":
            _, f = manufactured_problem(spec.shape)
            self.solver.set_rhs(lambda z, y, x: f[z, y, x])
        elif rhs == "zero":
            self.solver.set_rhs(lambda z, y, x: np.zeros_like(np.asarray(z, dtype=np.float64)))
        else:
            raise KeyError(f"unknown poisson rhs '{rhs}'; supported: manufactured, zero")

    @property
    def skeletons(self):
        cg = self.solver.cg
        return [cg.sk_init, cg.sk_a, cg.sk_b]

    def run(self) -> dict[str, np.ndarray]:
        res = self.solver.solve(
            max_iterations=self.spec.steps,
            tolerance=float(self.spec.param("tolerance", 1e-12)),
        )
        return {
            "solution": self.solver.solution(),
            "residual_norms": np.asarray(res.residual_norms),
        }


class _ServedElasticity(_ServedCG):
    def __init__(self, spec: JobSpec, backend: Backend):
        from repro.skeleton import Occ
        from repro.solvers.elasticity import ElasticitySolver

        super().__init__(spec, backend)
        self.solver = ElasticitySolver.solid_cube(
            backend, spec.shape[0], occ=Occ(spec.occ), partition_weights=spec.weights
        )
        self.solver.cg.mode = spec.mode

    @property
    def skeletons(self):
        cg = self.solver.cg
        return [cg.sk_init, cg.sk_a, cg.sk_b]

    def run(self) -> dict[str, np.ndarray]:
        res = self.solver.solve(
            max_iterations=self.spec.steps,
            tolerance=float(self.spec.param("tolerance", 1e-12)),
        )
        return {
            "displacement": self.solver.displacement(),
            "residual_norms": np.asarray(res.residual_norms),
        }


_ADAPTERS = {
    "lbm": _ServedLBM,
    "karman": _ServedKarman,
    "poisson": _ServedPoisson,
    "elasticity": _ServedElasticity,
}


def build_served(spec: JobSpec, machine=None) -> _Served:
    """Construct the live solver application for one spec (the cold path).

    Compilation — graph build, OCC, scheduling — happens here, under the
    caller's observability spans; the gateway calls this exactly once
    per plan key and replays via ``reset()`` afterwards.
    """
    backend = Backend.sim_gpus(spec.devices, machine=machine)
    return _ADAPTERS[spec.experiment](spec, backend)


__all__ = ["JobSpec", "build_served", "plan_key", "workload_signature"]
