"""Set abstraction: multi-device data, Containers, Loaders (paper IV-B)."""

from .container import Container
from .dataset import DataSet, MultiDeviceData, Span
from .launch import estimate_cost
from .loader import Access, AccessToken, Loader, Pattern, ReduceAccessor, ReduceMode, SliceReduceAccessor
from .memset import LinearSpan, MemPartition, MemSet
from .mstream import MultiEvent, MultiStream
from .views import DataView

__all__ = [
    "Access",
    "AccessToken",
    "Container",
    "DataSet",
    "DataView",
    "LinearSpan",
    "Loader",
    "MemPartition",
    "MemSet",
    "MultiDeviceData",
    "MultiEvent",
    "MultiStream",
    "Pattern",
    "ReduceAccessor",
    "ReduceMode",
    "SliceReduceAccessor",
    "Span",
    "estimate_cost",
]
