"""Container: the multi-GPU kernel concept (paper IV-B2, Listing 4).

A Container wraps a *loading lambda*: a function that receives a
:class:`~repro.sets.loader.Loader` and returns the *compute lambda*.  At
launch time the framework runs the loading lambda once per device to
generate the device-specific compute closure (with partitions captured),
then enqueues it on that device's stream over the index space of the
data object the Container was created from, restricted to the requested
data view.

Deviation from the C++ original: the compute lambda's single parameter is
the *span* of cells to process rather than a per-cell index — partitions
expose vectorised NumPy views over a span, which is the idiomatic (and
only performant) way to express per-cell work in Python.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import observability as _obs
from repro import resilience as _res

from .dataset import MultiDeviceData
from .launch import estimate_cost, wrap_kernel_faults, wrap_kernel_timing
from .loader import AccessToken, Loader, Pattern, ReduceMode
from .mstream import MultiStream
from .views import DataView

LoadingLambda = Callable[[Loader], Callable]


class Container:
    """A named, launchable multi-device computation step."""

    def __init__(
        self,
        name: str,
        index_data: MultiDeviceData,
        loading: LoadingLambda,
        flops_per_cell: float = 0.0,
        stencil_read_redundancy: float = 1.0,
    ):
        self.name = name
        self.index_data = index_data
        self.loading = loading
        self.flops_per_cell = flops_per_cell
        self.stencil_read_redundancy = stencil_read_redundancy
        self._tokens: list[AccessToken] | None = None
        #: optional fused-replay specialization hook, set by solver code
        #: that can prove pre-binding is safe: ``(rank, view, span) ->
        #: callable | None``.  The fusion pass calls it at program-freeze
        #: time; a returned closure replaces the interpreted per-launch
        #: kernel in *fused fast-path dispatch only* and MUST be bitwise
        #: equivalent to it.  Containers whose loading lambda reads
        #: mutable scalar cells at load time (e.g. CG's alpha/beta) must
        #: leave this None — pre-binding would freeze iteration-0 scalars.
        self.specialize = None

    def tokens(self) -> list[AccessToken]:
        """Data-use declaration, extracted by a parse-only loading pass."""
        if self._tokens is None:
            probe = Loader(rank=0, parse_only=True)
            compute = self.loading(probe)
            if not callable(compute):
                raise TypeError(f"container '{self.name}': loading lambda must return the compute lambda")
            if not probe.tokens:
                raise ValueError(f"container '{self.name}': loading lambda declared no data accesses")
            self._tokens = probe.tokens
        return self._tokens

    @property
    def pattern(self) -> Pattern:
        """The container's operation type (paper: MapOp/StencilOp/ReduceOp).

        A stencil load makes it a StencilOp (it needs halo coherency); a
        reduce target makes it a ReduceOp; otherwise it is a MapOp.
        """
        toks = self.tokens()
        if any(t.pattern is Pattern.STENCIL for t in toks):
            return Pattern.STENCIL
        if any(t.pattern is Pattern.REDUCE for t in toks):
            return Pattern.REDUCE
        return Pattern.MAP

    def stencil_reads(self) -> list[AccessToken]:
        return [t for t in self.tokens() if t.pattern is Pattern.STENCIL]

    def cost_for(self, rank: int, view: DataView):
        return estimate_cost(
            self.index_data,
            self.tokens(),
            rank,
            view,
            flops_per_cell=self.flops_per_cell,
            stencil_read_redundancy=self.stencil_read_redundancy,
        )

    def run(
        self,
        streams: MultiStream,
        view: DataView = DataView.STANDARD,
        reduce_mode: ReduceMode = ReduceMode.ASSIGN,
        ranks: list[int] | None = None,
    ) -> None:
        """Launch the container on every device (or a subset of ranks).

        When the index data is *virtual* (planned but not allocated) the
        kernels are recorded with their costs but perform no work — the
        mode the benchmark harness uses for paper-scale domains.
        """
        self.tokens()  # validate the loading lambda before any launch
        virtual = getattr(self.index_data, "virtual", False)
        for rank in ranks if ranks is not None else range(len(streams)):
            span = self.index_data.span_for(rank, view)
            if span.is_empty:
                continue
            cost = self.cost_for(rank, view)
            if virtual:
                kernel = lambda: None  # noqa: E731 - recorded for timing only
            else:
                loader = Loader(rank=rank, view=view, reduce_mode=reduce_mode)
                compute = self.loading(loader)

                def kernel(compute=compute, span=span):
                    for piece in span.pieces():
                        compute(piece)

                if _res.RES.active:
                    kernel = wrap_kernel_faults(kernel, self.name, self.tokens(), rank)

            label = f"{self.name}@{view}[{rank}]"
            if _obs.OBS.active:
                if not virtual:
                    kernel = wrap_kernel_timing(kernel, label, rank)
                _obs.OBS.metrics.counter("container_launches", container=self.name).inc()
                with _obs.span(label, cat="kernel", pid=f"device{rank}", tid=streams[rank].name):
                    streams[rank].enqueue_kernel(label, kernel, cost)
            else:
                streams[rank].enqueue_kernel(label, kernel, cost)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Container({self.name}, {self.pattern.value})"
