"""Multi-device data: the Set abstraction's core interface.

Everything the Set level does is "a vector indexed by device rank".
:class:`MultiDeviceData` is the abstract interface the paper describes in
section IV-B1: it creates one partition per device and exposes an
index-based way to address each partition, without constraining how the
partition is laid out.  :class:`DataSet` is the trivial container for
plain per-device Python objects (used for multi-streams, partial-result
buffers, launch parameters, ...).
"""

from __future__ import annotations

import abc
import itertools
from typing import Generic, TypeVar

from .views import DataView

T = TypeVar("T")

_data_uids = itertools.count()


class DataSet(Generic[T]):
    """A plain vector of per-device values."""

    def __init__(self, values: list[T]):
        if not values:
            raise ValueError("DataSet cannot be empty")
        self._values = list(values)

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, rank: int) -> T:
        return self._values[rank]

    def __setitem__(self, rank: int, value: T) -> None:
        self._values[rank] = value

    def __iter__(self):
        return iter(self._values)


class Span(abc.ABC):
    """An index subspace of one partition (opaque to the Set level)."""

    @property
    @abc.abstractmethod
    def count(self) -> int:
        """Number of cells/elements covered."""

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def pieces(self) -> list["Span"]:
        """Contiguous sub-spans; a BOUNDARY grid view has two (low/high strip)."""
        return [self]


class MultiDeviceData(abc.ABC):
    """Data partitioned and distributed over the devices of a backend.

    Implementations must provide per-rank spans for each
    :class:`~repro.sets.views.DataView` so that Containers created from
    them can be launched view-restricted, plus the byte/flop densities
    the cost model needs.
    """

    def __init__(self, name: str = ""):
        self.uid = next(_data_uids)
        self.name = name or f"data{self.uid}"

    @property
    @abc.abstractmethod
    def num_devices(self) -> int:
        ...

    @abc.abstractmethod
    def span_for(self, rank: int, view: DataView) -> Span:
        """Index subspace of partition ``rank`` restricted to ``view``."""

    @property
    @abc.abstractmethod
    def bytes_per_cell(self) -> int:
        """Bytes one cell of this data occupies (cardinality included)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name})"
