"""Launch helpers: cost estimation and fault wrapping for Container launches.

The DES needs a :class:`~repro.system.queue.KernelCost` per launch.  We
derive it from the Container's access tokens, the launch view's cell
count, and the data's per-cell byte density — the same roofline inputs a
performance engineer would read off the kernel.

This is also the resilience layer's launch-level injection site:
:func:`wrap_kernel_faults` decorates a compute kernel with seeded
NaN/Inf corruption of one written field buffer, modelling silent data
corruption (a bit flip, a racy write) that only the divergence guardrail
can catch.  Call sites guard on ``resilience.RES.active`` so the
disabled path never sees the wrapper.
"""

from __future__ import annotations

from collections.abc import Callable

from repro import observability as _obs
from repro import resilience as _res
from repro.system import KernelCost

from .dataset import MultiDeviceData
from .loader import Access, AccessToken, Pattern
from .views import DataView


_VIEW_PARTS: dict[DataView, tuple[str, ...]] = {
    DataView.STANDARD: ("internal", "boundary"),
    DataView.INTERNAL: ("internal",),
    DataView.BOUNDARY: ("boundary",),
}


def token_access_parts(token: AccessToken, view: DataView) -> tuple[tuple[str, ...], tuple[str, ...], bool]:
    """Owned-slab footprint of one declared access at one launch view.

    Returns ``(read_parts, write_parts, reads_halo)``: which owned
    sub-slabs (``"internal"`` / ``"boundary"``) the access reads and
    writes, and whether it additionally gathers from the data's halo
    slots.  This is the Sets-level ground truth the race sanitizer's
    region model is built on, so the rules deserve spelling out:

    * a MAP access touches exactly the cells of its view;
    * a STENCIL read gathers from the whole owned slab regardless of
      view (an INTERNAL launch still reads boundary-owned neighbours at
      the internal/boundary seam) and from the halo slots whenever the
      view covers boundary cells — an INTERNAL view stays ``radius``
      away from the partition edge, so it alone never needs the halo;
    * a REDUCE partial is read-modify-written per *launch*, not per
      cell: both halves of an OCC-split reduction touch the same
      partial, whatever their views (which is why the scheduler wires an
      explicit internal->boundary dependency between them).
    """
    if token.pattern is Pattern.REDUCE:
        both = _VIEW_PARTS[DataView.STANDARD]
        return both, both, False
    read_parts: tuple[str, ...] = ()
    write_parts: tuple[str, ...] = ()
    reads_halo = False
    if token.access.reads:
        if token.pattern is Pattern.STENCIL:
            read_parts = _VIEW_PARTS[DataView.STANDARD]
            reads_halo = view in (DataView.STANDARD, DataView.BOUNDARY)
        else:
            read_parts = _VIEW_PARTS[view]
    if token.access.writes:
        write_parts = _VIEW_PARTS[view]
    return read_parts, write_parts, reads_halo


def estimate_cost(
    index_data: MultiDeviceData,
    tokens: list[AccessToken],
    rank: int,
    view: DataView,
    flops_per_cell: float = 0.0,
    stencil_read_redundancy: float = 1.0,
) -> KernelCost:
    """Roofline inputs for one Container launch on one device.

    Per active cell we count one read of every read-loaded field (a
    stencil read is multiplied by ``stencil_read_redundancy`` to model
    imperfect cache reuse of neighbour loads) and one write of every
    written field.  Reduce partials are per-launch, not per-cell, and are
    negligible, so they are skipped.
    """
    span = index_data.span_for(rank, view)
    ncells = span.count
    bytes_per_cell = 0.0
    for tok in tokens:
        if tok.pattern is Pattern.REDUCE:
            continue
        density = tok.data.bytes_per_cell
        if tok.access.reads:
            factor = stencil_read_redundancy if tok.pattern is Pattern.STENCIL else 1.0
            bytes_per_cell += density * factor
        if tok.access.writes:
            bytes_per_cell += density
    cost = KernelCost(
        bytes_moved=ncells * bytes_per_cell,
        flops=ncells * flops_per_cell,
        indirection=getattr(index_data, "indirection", 1.0),
        launches=max(1, len(span.pieces())),
    )
    if _obs.OBS.active:
        m = _obs.OBS.metrics
        m.counter("cost_estimates").inc()
        m.histogram("launch_cost_bytes").observe(cost.bytes_moved)
    return cost


def wrap_kernel_timing(kernel: Callable[[], None], label: str, rank: int) -> Callable[[], None]:
    """Wrap a compute kernel so its wall-clock feeds ``kernel_seconds``.

    The histogram is labeled ``{device, kernel}`` — the same join keys
    :func:`repro.tuner.feedback.samples_from_metrics` uses to rebuild
    calibration samples without a full span trace.  Call sites guard on
    ``observability.OBS.active`` so the disabled path never sees the
    wrapper (mirroring :func:`wrap_kernel_faults` and ``RES.active``).
    """
    from time import perf_counter  # noqa: PLC0415 - hot-path-local import

    device = f"device{rank}"

    def timed_kernel():
        t0 = perf_counter()
        kernel()
        if _obs.OBS.active:  # may have been disabled mid-run
            _obs.OBS.metrics.histogram(
                "kernel_seconds",
                bounds=_obs.Histogram.TIME_BOUNDS,
                device=device,
                kernel=label,
            ).observe(perf_counter() - t0)

    return timed_kernel


def wrap_kernel_faults(
    kernel: Callable[[], None],
    container_name: str,
    tokens: list[AccessToken],
    rank: int,
) -> Callable[[], None]:
    """Wrap a compute kernel with seeded post-launch buffer corruption.

    When the armed :class:`~repro.resilience.FaultPlan` decides to
    corrupt this launch, one written field buffer of the container is
    picked (seeded) and a single element is poisoned with NaN or Inf at
    a seeded position.  The corruption is silent by construction — only
    the Skeleton's divergence guardrail or the solver's residual check
    can surface it, which is exactly the failure mode under test.
    """
    plan = _res.RES.plan
    if plan is None or plan.rates.get("corrupt", 0.0) <= 0.0:
        return kernel
    # only checkpoint-restorable fields (load_numpy marks the Field API):
    # corruption targets the cells a kernel writes (its owned view), never
    # reduce partials or buffer slack like the global-border ghost slices —
    # a NaN in never-rewritten slack would survive every checkpoint restore
    # and livelock rollback-and-replay
    written = [
        t.data
        for t in tokens
        if t.access.writes
        and getattr(t.data, "buffers", None)
        and callable(getattr(t.data, "load_numpy", None))
    ]
    if not written:
        return kernel

    def kernel_with_corruption():
        kernel()
        site = f"corrupt:{container_name}@{rank}"
        if plan.decide("corrupt", site):
            data = written[plan.pick(site, len(written))]
            owned = data.partition(rank).view_all(data.span_for(rank, DataView.STANDARD))
            if owned.size:
                pos, value = plan.corruption(site, owned.size)
                owned.flat[pos] = value
                if _obs.OBS.active:
                    _obs.OBS.metrics.counter("faults_injected", kind="corrupt").inc()

    return kernel_with_corruption


__all__ = [
    "estimate_cost",
    "token_access_parts",
    "wrap_kernel_faults",
    "wrap_kernel_timing",
    "Access",
    "Pattern",
]
