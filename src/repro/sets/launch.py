"""Launch helpers: cost estimation for view-restricted Container launches.

The DES needs a :class:`~repro.system.queue.KernelCost` per launch.  We
derive it from the Container's access tokens, the launch view's cell
count, and the data's per-cell byte density — the same roofline inputs a
performance engineer would read off the kernel.
"""

from __future__ import annotations

from repro import observability as _obs
from repro.system import KernelCost

from .dataset import MultiDeviceData
from .loader import Access, AccessToken, Pattern
from .views import DataView


def estimate_cost(
    index_data: MultiDeviceData,
    tokens: list[AccessToken],
    rank: int,
    view: DataView,
    flops_per_cell: float = 0.0,
    stencil_read_redundancy: float = 1.0,
) -> KernelCost:
    """Roofline inputs for one Container launch on one device.

    Per active cell we count one read of every read-loaded field (a
    stencil read is multiplied by ``stencil_read_redundancy`` to model
    imperfect cache reuse of neighbour loads) and one write of every
    written field.  Reduce partials are per-launch, not per-cell, and are
    negligible, so they are skipped.
    """
    span = index_data.span_for(rank, view)
    ncells = span.count
    bytes_per_cell = 0.0
    for tok in tokens:
        if tok.pattern is Pattern.REDUCE:
            continue
        density = tok.data.bytes_per_cell
        if tok.access.reads:
            factor = stencil_read_redundancy if tok.pattern is Pattern.STENCIL else 1.0
            bytes_per_cell += density * factor
        if tok.access.writes:
            bytes_per_cell += density
    cost = KernelCost(
        bytes_moved=ncells * bytes_per_cell,
        flops=ncells * flops_per_cell,
        indirection=getattr(index_data, "indirection", 1.0),
        launches=max(1, len(span.pieces())),
    )
    if _obs.OBS.active:
        m = _obs.OBS.metrics
        m.counter("cost_estimates").inc()
        m.histogram("launch_cost_bytes").observe(cost.bytes_moved)
    return cost


__all__ = ["estimate_cost", "Access", "Pattern"]
