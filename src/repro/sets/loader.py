"""Loader: the explicit data-use declaration mechanism (paper IV-B2/3).

As a library (not a compiler), Neon cannot inspect what data a compute
lambda touches.  The Loader closes that gap: inside the *loading lambda*
the user extracts each Multi-GPU data object's local partition through
``loader.load(...)``, naming the access type (read/write) and the compute
pattern (map/stencil/reduce).  The Loader records an
:class:`AccessToken` per load; the sequence of tokens is exactly the
information the Skeleton's dependency-graph builder consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .dataset import MultiDeviceData
from .memset import MemSet
from .views import DataView


class Access(enum.Enum):
    """Whether a declared data use reads, writes, or does both."""

    READ = "r"
    WRITE = "w"
    READ_WRITE = "rw"

    @property
    def reads(self) -> bool:
        return self in (Access.READ, Access.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self in (Access.WRITE, Access.READ_WRITE)


class Pattern(enum.Enum):
    """The compute pattern of a data use (paper: MapOp/StencilOp/ReduceOp)."""

    MAP = "map"
    STENCIL = "stencil"
    REDUCE = "reduce"


class ReduceMode(enum.Enum):
    """How a reduce kernel combines into its partial buffer.

    ASSIGN overwrites (first launch covering the partition); ACCUMULATE
    folds into the existing partial, which is what the boundary half of a
    two-way-extended-OCC reduce does after the internal half.
    """

    ASSIGN = "assign"
    ACCUMULATE = "accumulate"


@dataclass(frozen=True)
class AccessToken:
    data: MultiDeviceData
    access: Access
    pattern: Pattern

    def conflicts_with(self, other: "AccessToken") -> bool:
        """True if the two accesses to the same data need ordering."""
        return self.data.uid == other.data.uid and (self.access.writes or other.access.writes)


class ReduceAccessor:
    """Rank-local handle for depositing one partial reduction result."""

    def __init__(self, partial: MemSet, rank: int, op, mode: ReduceMode):
        self._row = partial.partition(rank).array
        self.op = op
        self.mode = mode

    def deposit(self, value) -> None:
        if self.mode is ReduceMode.ASSIGN:
            self._row[0] = value
        else:
            self._row[0] = self.op(self._row[0], value)

    def deposit_sums(self, span, values) -> None:
        """Fold the span's whole value array into the rank's single slot."""
        self.deposit(float(np.sum(values)))


class SliceReduceAccessor:
    """Rank-local handle for per-axis-0-slice partial sums.

    One slot per owned slice instead of one per rank: each deposit is the
    sum over one slice's cells, an array whose logical shape depends only
    on the grid's lateral extent — never on how slices are distributed
    over devices or split into internal/boundary launches.  Combined in
    global slice order on the host (:class:`repro.core.ops.ScalarResult`),
    the reduction is bitwise independent of partition, OCC level, and
    execution mode.

    Slices are disjoint between launch pieces (INTERNAL and BOUNDARY
    strips never share a slice), so every deposit assigns its slots
    outright; :class:`ReduceMode` never needs to accumulate here.
    """

    def __init__(self, partial: MemSet, rank: int, op, mode: ReduceMode):
        self._row = partial.partition(rank).array
        self.op = op
        self.mode = mode

    def deposit_sums(self, span, values) -> None:
        """Deposit one canonical sum per slice of ``span``.

        ``values`` is the component-first span array (``view_all`` shape):
        axis 1 walks the span's slices.  Each slice is copied contiguous
        before summing so NumPy's pairwise tree sees the same memory
        layout no matter the source field's layout or slab size.
        """
        lo = span.lo
        for i in range(span.hi - lo):
            self._row[lo + i] = float(np.sum(np.ascontiguousarray(values[:, i])))


class Loader:
    """Per-rank, per-launch loading context handed to the loading lambda.

    It is the Set-level stand-in for the MPI rank: the same loading
    lambda runs once per device and receives a Loader bound to that
    device's rank and to the launch's data view.
    """

    def __init__(
        self,
        rank: int,
        view: DataView = DataView.STANDARD,
        reduce_mode: ReduceMode = ReduceMode.ASSIGN,
        parse_only: bool = False,
    ):
        self.rank = rank
        self.view = view
        self.reduce_mode = reduce_mode
        self.parse_only = parse_only
        self.tokens: list[AccessToken] = []

    def load(self, data: MultiDeviceData, access: Access = Access.READ, pattern: Pattern = Pattern.MAP):
        """Declare an access and return the rank-local partition."""
        if pattern is Pattern.STENCIL and access.writes:
            # Own-compute rule: neighbour metadata is read-only.
            raise ValueError(f"{data.name}: stencil loads must be read-only")
        self.tokens.append(AccessToken(data, access, pattern))
        return data.partition(self.rank)

    def read(self, data: MultiDeviceData, stencil: bool = False):
        return self.load(data, Access.READ, Pattern.STENCIL if stencil else Pattern.MAP)

    def write(self, data: MultiDeviceData):
        return self.load(data, Access.WRITE, Pattern.MAP)

    def read_write(self, data: MultiDeviceData):
        return self.load(data, Access.READ_WRITE, Pattern.MAP)

    def reduce_target(self, partial: MemSet, op=np.add) -> ReduceAccessor | SliceReduceAccessor:
        """Declare this container reduces into ``partial``.

        Legacy partials carry one slot per rank; partials marked
        ``slice_reduce`` (see ``Grid.new_dot_partial``) carry one slot per
        owned axis-0 slice and get the partition-invariant accessor.
        """
        self.tokens.append(AccessToken(partial, Access.READ_WRITE, Pattern.REDUCE))
        if getattr(partial, "slice_reduce", False):
            return SliceReduceAccessor(partial, self.rank, op, self.reduce_mode)
        if partial.counts != [1] * partial.num_devices:
            raise ValueError(f"{partial.name}: reduce partials need exactly one slot per device")
        return ReduceAccessor(partial, self.rank, op, self.reduce_mode)
