"""MemSet: the simplest Multi-GPU data object (paper IV-B1, Fig 2).

A MemSet allocates one linear buffer per device plus an optional host
mirror.  From the host it exposes a contiguous logical view spanning all
partitions; from a device it exposes the rank-local partition.  It does
*no* automatic partitioning or load balancing — that is Domain-level
responsibility — the caller states how many elements each device gets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.system import HOST, Backend, CommandQueue, MemOptions

from .dataset import MultiDeviceData, Span
from .views import DataView


@dataclass(frozen=True)
class LinearSpan(Span):
    """A contiguous index range of one linear partition."""

    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"invalid span [{self.start}, {self.stop})")

    @property
    def count(self) -> int:
        return self.stop - self.start

    @property
    def slice(self) -> slice:
        return slice(self.start, self.stop)


class MemPartition:
    """Rank-local view of a MemSet: index-based element access."""

    def __init__(self, array: np.ndarray, rank: int):
        self.array = array
        self.rank = rank

    def view(self, span: LinearSpan) -> np.ndarray:
        return self.array[span.slice]

    def __len__(self) -> int:
        return self.array.shape[0]


class MemSet(MultiDeviceData):
    """Distributed multi-device buffers with a contiguous host mirror."""

    def __init__(
        self,
        backend: Backend,
        counts: list[int],
        dtype,
        cardinality: int = 1,
        name: str = "",
        host_mirror: bool = True,
        options: MemOptions | None = None,
        virtual: bool = False,
    ):
        super().__init__(name)
        if len(counts) != backend.num_devices:
            raise ValueError(f"need one count per device: {len(counts)} != {backend.num_devices}")
        if any(c < 0 for c in counts):
            raise ValueError(f"negative element count in {counts}")
        if cardinality < 1:
            raise ValueError("cardinality must be >= 1")
        self.backend = backend
        self.counts = list(counts)
        self.cardinality = cardinality
        self.dtype = np.dtype(dtype)
        self.virtual = virtual
        shape = lambda c: (c, cardinality) if cardinality > 1 else (c,)
        self.buffers = [
            backend.allocate(r, shape(c), dtype, options, virtual=virtual) for r, c in enumerate(counts)
        ]
        self.offsets = np.concatenate([[0], np.cumsum(counts)])
        self.host = np.zeros(shape(int(self.offsets[-1])), dtype=dtype) if host_mirror and not virtual else None

    # -- MultiDeviceData interface -------------------------------------
    @property
    def num_devices(self) -> int:
        return self.backend.num_devices

    def span_for(self, rank: int, view: DataView) -> LinearSpan:
        # A MemSet has no stencil, hence no boundary cells: every element
        # is internal and BOUNDARY launches cover nothing.
        if view is DataView.BOUNDARY:
            return LinearSpan(0, 0)
        return LinearSpan(0, self.counts[rank])

    @property
    def bytes_per_cell(self) -> int:
        return self.dtype.itemsize * self.cardinality

    # -- host/device movement -------------------------------------------
    def partition(self, rank: int) -> MemPartition:
        return MemPartition(self.buffers[rank].array, rank)

    def host_slice(self, rank: int) -> np.ndarray:
        if self.host is None:
            raise RuntimeError(f"{self.name}: no host mirror")
        return self.host[int(self.offsets[rank]) : int(self.offsets[rank + 1])]

    def update_device(self, rank: int, queue: CommandQueue) -> None:
        """Enqueue a host->device transfer for one partition."""
        src, dst = self.host_slice(rank), self.buffers[rank].array
        pool, dev = self.backend.staging, self.backend.device(rank)

        def do(src=src, dst=dst, pool=pool, dev=dev):
            pool.staged_copy(dev, dst, src)

        queue.enqueue_copy(
            f"h2d:{self.name}[{rank}]",
            do,
            HOST,
            self.backend.device(rank),
            src.nbytes,
            pinned=self.buffers[rank].options.pinned_host,
        )

    def update_host(self, rank: int, queue: CommandQueue) -> None:
        """Enqueue a device->host transfer for one partition."""
        src, dst = self.buffers[rank].array, self.host_slice(rank)
        pool, dev = self.backend.staging, self.backend.device(rank)

        def do(src=src, dst=dst, pool=pool, dev=dev):
            pool.staged_copy(dev, dst, src)

        queue.enqueue_copy(
            f"d2h:{self.name}[{rank}]",
            do,
            self.backend.device(rank),
            HOST,
            src.nbytes,
            pinned=self.buffers[rank].options.pinned_host,
        )

    def push_all(self) -> None:
        """Synchronously mirror host -> every device (init-time helper)."""
        for rank in range(self.num_devices):
            q = self.backend.new_queue(rank, name=f"init:{self.name}")
            self.update_device(rank, q)

    def pull_all(self) -> None:
        """Synchronously mirror every device -> host (readback helper)."""
        for rank in range(self.num_devices):
            q = self.backend.new_queue(rank, name=f"readback:{self.name}")
            self.update_host(rank, q)

    def fill(self, value) -> None:
        """Set every element (host and devices) to ``value``."""
        if self.host is not None:
            self.host[...] = value
        for buf in self.buffers:
            buf.array[...] = value
