"""Multi-GPU streams and events (paper IV-B4).

Straightforward vectors over device rank: a multi-GPU Stream holds one
command queue per device, a multi-GPU Event one event per device.  Users
*can* drive these manually (Set-level programming); the Skeleton manages
them automatically.

Set-level code gets the same two execution paths the Skeleton has: eager
streams run each command inline at enqueue (host-ordered), while a
*recorded* stream (``eager=False``) can be replayed concurrently through
:meth:`MultiStream.execute_parallel` — one worker thread per device,
cross-device dependencies enforced purely by the
:class:`MultiEvent` record/wait wiring the user laid down.
"""

from __future__ import annotations

from repro.system import Backend, CommandQueue, Event, ParallelEngine


class MultiStream:
    """One command queue per device of a backend."""

    def __init__(self, queues: list[CommandQueue], name: str = ""):
        if not queues:
            raise ValueError("MultiStream cannot be empty")
        self.queues = list(queues)
        self.name = name or queues[0].name

    @classmethod
    def create(cls, backend: Backend, name: str, eager: bool = True) -> "MultiStream":
        return cls(
            [backend.new_queue(r, name=f"{name}[{r}]", eager=eager) for r in range(backend.num_devices)],
            name=name,
        )

    def __len__(self) -> int:
        return len(self.queues)

    def __getitem__(self, rank: int) -> CommandQueue:
        return self.queues[rank]

    def __iter__(self):
        return iter(self.queues)

    def execute_parallel(self, engine: ParallelEngine | None = None) -> None:
        """Replay the recorded commands with one worker thread per device.

        Meant for streams created with ``eager=False``: the queues hold
        the recorded program, and cross-queue ordering comes only from
        the event wiring (e.g. :meth:`MultiEvent.record_all` /
        :meth:`MultiEvent.wait_all`), so a correct result demonstrates
        the synchronisation is sufficient.  Replaying an *eager* stream
        runs every command a second time — almost never what you want.
        """
        (engine or ParallelEngine()).execute(self.queues)

    def check_event_wiring(self) -> list[str]:
        """Static lint of hand-built record/wait wiring (Set-level code).

        Returns human-readable problems — waits on events no queue of
        this stream records, and record/wait cycles no replay order can
        satisfy — the same checks the Skeleton-level sanitizer applies
        to compiled programs, surfaced before ``execute_parallel`` turns
        them into an :class:`~repro.system.engine.EngineDeadlock`.
        """
        from repro.sanitizer.hb import build_hb  # noqa: PLC0415 - analysis stays out of hot imports

        hb = build_hb(self.queues)
        problems = [
            f"queue {qname} waits on {wait.event.name!r} but no command in this stream records it"
            for wait, qname in hb.unrecorded_waits
        ]
        if hb.cycle_events:
            problems.append("record/wait wiring is cyclic through events: " + ", ".join(hb.cycle_events))
        return problems


class MultiEvent:
    """One event per device of a backend."""

    def __init__(self, num_devices: int, name: str = ""):
        if num_devices < 1:
            raise ValueError("MultiEvent needs at least one device")
        self.events = [Event(f"{name}[{r}]") for r in range(num_devices)]
        self.name = name

    def __len__(self) -> int:
        return len(self.events)

    def __getitem__(self, rank: int) -> Event:
        return self.events[rank]

    def _check_size(self, stream: MultiStream, op: str) -> None:
        if len(stream) != len(self.events):
            raise ValueError(
                f"cannot {op} MultiEvent '{self.name}' ({len(self.events)} devices) on "
                f"MultiStream '{stream.name}' ({len(stream)} devices); both must span "
                f"the same device set"
            )

    def record_all(self, stream: MultiStream) -> None:
        self._check_size(stream, "record")
        for rank, q in enumerate(stream.queues):
            q.record_event(self.events[rank])

    def wait_all(self, stream: MultiStream) -> None:
        self._check_size(stream, "wait on")
        for rank, q in enumerate(stream.queues):
            q.wait_event(self.events[rank])
