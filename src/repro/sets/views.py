"""Data views: which slice of a partition a Container launch covers.

The paper's Grid categorises cells by their dependency on remote data
(Fig 3): *internal* cells need only local data, *boundary* cells read
halo data received from neighbour partitions, and *standard* is their
union.  Launching the same Container restricted to INTERNAL vs BOUNDARY
is the primitive every OCC optimisation is built from.
"""

from __future__ import annotations

import enum


class DataView(enum.Enum):
    """Which cells of a partition a launch covers (paper Fig 3)."""

    STANDARD = "standard"
    INTERNAL = "internal"
    BOUNDARY = "boundary"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
