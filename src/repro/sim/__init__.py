"""Timing substrate: machine models and the discrete-event simulator."""

from .costmodel import kernel_duration, transfer_duration
from .calibrate import KernelSample, TransferSample, fit_device, fit_link, fit_quality
from .des import SimulationDeadlock, simulate
from .machine import (
    DeviceSpec,
    MachineSpec,
    cpu_host,
    dgx_a100,
    mixed_pcie,
    multi_node_a100,
    pcie_a100,
    pcie_gv100,
)
from .replay import sim_makespan, sim_makespan_total, sim_replay
from .topology import HOST_RANK, Link, Topology
from .trace import Span, SpanKind, Trace

__all__ = [
    "HOST_RANK",
    "KernelSample",
    "TransferSample",
    "DeviceSpec",
    "Link",
    "MachineSpec",
    "SimulationDeadlock",
    "Span",
    "SpanKind",
    "Topology",
    "Trace",
    "cpu_host",
    "dgx_a100",
    "fit_device",
    "fit_link",
    "fit_quality",
    "kernel_duration",
    "mixed_pcie",
    "multi_node_a100",
    "pcie_a100",
    "pcie_gv100",
    "sim_makespan",
    "sim_makespan_total",
    "sim_replay",
    "simulate",
    "transfer_duration",
]
