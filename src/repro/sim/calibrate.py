"""Fitting a machine model from measurements.

A user with real hardware bridges this reproduction to their system by
fitting :class:`~repro.sim.machine.DeviceSpec` / link parameters from a
handful of timed kernels and transfers.  Bandwidth-bound grid kernels
follow ``t = launches * overhead + bytes / bandwidth`` and transfers
``t = latency + bytes / bandwidth`` — both linear in their unknowns'
reciprocals, so an ordinary least-squares fit suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .machine import DeviceSpec
from .topology import Link


@dataclass(frozen=True)
class KernelSample:
    """One measured kernel: DRAM traffic, launch count, duration."""

    bytes_moved: float
    launches: int
    seconds: float


@dataclass(frozen=True)
class TransferSample:
    """One measured transfer: size and duration."""

    nbytes: float
    seconds: float


def fit_device(samples: list[KernelSample], flops: float = 1e13) -> DeviceSpec:
    """Least-squares fit of launch overhead and memory bandwidth.

    Needs at least two samples with distinct byte/launch ratios (e.g. a
    tiny kernel and a large one).  ``flops`` is passed through, since
    bandwidth-bound samples carry no arithmetic information.
    """
    if len(samples) < 2:
        raise ValueError("need at least two kernel samples")
    A = np.array([[s.launches, s.bytes_moved] for s in samples], dtype=np.float64)
    t = np.array([s.seconds for s in samples])
    coeffs, *_ = np.linalg.lstsq(A, t, rcond=None)
    overhead, inv_bw = coeffs
    if inv_bw <= 0:
        raise ValueError("samples do not exhibit bandwidth-bound scaling (non-positive 1/bw)")
    overhead = max(0.0, float(overhead))
    return DeviceSpec(mem_bandwidth=1.0 / float(inv_bw), flops=flops, launch_overhead=overhead)


def fit_link(samples: list[TransferSample]) -> Link:
    """Least-squares fit of link latency and bandwidth."""
    if len(samples) < 2:
        raise ValueError("need at least two transfer samples")
    A = np.array([[1.0, s.nbytes] for s in samples], dtype=np.float64)
    t = np.array([s.seconds for s in samples])
    coeffs, *_ = np.linalg.lstsq(A, t, rcond=None)
    latency, inv_bw = coeffs
    if inv_bw <= 0:
        raise ValueError("samples do not exhibit size-proportional transfer times")
    return Link(bandwidth=1.0 / float(inv_bw), latency=max(0.0, float(latency)))


def fit_quality(samples: list[KernelSample], spec: DeviceSpec) -> float:
    """Relative RMS error of a fitted device model on its samples."""
    errs = []
    for s in samples:
        pred = s.launches * spec.launch_overhead + s.bytes_moved / spec.mem_bandwidth
        errs.append((pred - s.seconds) / s.seconds)
    return float(np.sqrt(np.mean(np.square(errs))))
