"""Analytic cost model mapping commands to durations.

Kernels follow a roofline: duration is launch overhead plus the larger of
the memory-traffic time and the arithmetic time.  Grid kernels in the
paper (LBM, 7/27-point stencils) are bandwidth bound on A100-class
hardware, so the memory term dominates — which is why the paper reports
LBM throughput as a fraction of effective bandwidth.  Transfers use a
latency + size/bandwidth model per directed link.
"""

from __future__ import annotations

from repro.system.queue import KernelCost

from .machine import DeviceSpec
from .topology import Link


def kernel_duration(cost: KernelCost, spec: DeviceSpec) -> float:
    """Duration of one kernel on one device under the roofline model."""
    mem_time = cost.bytes_moved * cost.indirection / spec.mem_bandwidth
    compute_time = cost.flops / spec.flops
    return cost.launches * spec.launch_overhead + max(mem_time, compute_time)


def transfer_duration(nbytes: int, link: Link, pinned: bool = False) -> float:
    """Duration of one DMA transfer over a directed link.

    Pinned (page-locked) host staging doubles the effective bandwidth —
    the usual first-order benefit of avoiding the driver's bounce buffer.
    """
    if pinned:
        return link.latency + nbytes / (2.0 * link.bandwidth)
    return link.transfer_time(nbytes)
