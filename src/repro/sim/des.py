"""Discrete-event simulator for recorded command queues.

Replays the per-device command queues produced by the Skeleton executor
against a :class:`~repro.sim.machine.MachineSpec`, honouring exactly the
semantics of the queue-based runtime model:

* commands in one queue execute in issue order,
* a ``wait`` command blocks its queue until the awaited event's ``record``
  command has completed in its own queue,
* each device serialises kernels on a single compute engine,
* each directed device pair serialises copies on its own link (so copies
  to the left and right neighbours, and copies on different devices, all
  overlap with each other and with kernels).

The last two bullets are what makes OCC measurable: hiding a copy needs a
kernel running *concurrently on the same device*, which only happens if
the schedule launched the internal-view kernel on another stream before
blocking on the halo transfer.
"""

from __future__ import annotations

from repro.system.queue import (
    Command,
    CommandQueue,
    CopyCommand,
    KernelCommand,
    RecordEventCommand,
    WaitEventCommand,
)

from .costmodel import kernel_duration, transfer_duration
from .machine import MachineSpec
from .trace import Span, SpanKind, Trace


class SimulationDeadlock(RuntimeError):
    """The queues cannot make progress (wait on a never-recorded event)."""


def simulate(
    queues: list[CommandQueue],
    machine: MachineSpec,
    issue_times: dict[int, float] | None = None,
) -> Trace:
    """Simulate the queues to completion and return the timing trace.

    ``issue_times`` (keyed by ``Command.issue_seq``) optionally models the
    host side: a command cannot *start* before the host issued it.  The
    replay helpers use this to distinguish serial host dispatch (one
    thread issues everything in task-list order) from parallel dispatch
    (one worker per device); without it, issue is treated as free.
    """
    pcs = [0] * len(queues)
    last_finish = [0.0] * len(queues)
    event_done: dict[int, float] = {}
    resource_avail: dict[str, float] = {}
    spans: list[Span] = []
    # binding-constraint bookkeeping for the critical-path analyzer:
    # which span last released each queue / resource / event
    links: dict[int, tuple[int, str]] = {}
    queue_last_seq = [-1] * len(queues)
    resource_last_seq: dict[str, int] = {}
    event_record_seq: dict[int, int] = {}

    recorded_anywhere = {
        cmd.event.uid for q in queues for cmd in q.commands if isinstance(cmd, RecordEventCommand)
    }

    total = sum(len(q) for q in queues)
    done = 0
    while done < total:
        best: tuple[float, int, int] | None = None  # (start, queue uid, queue idx)
        best_plan: tuple[float, float, str, SpanKind] | None = None
        for qi, q in enumerate(queues):
            pc = pcs[qi]
            if pc >= len(q):
                continue
            cmd = q.commands[pc]
            ready = last_finish[qi]
            if issue_times is not None:
                ready = max(ready, issue_times.get(cmd.issue_seq, 0.0))
            if isinstance(cmd, WaitEventCommand):
                if cmd.event.uid not in recorded_anywhere:
                    raise SimulationDeadlock(
                        f"queue {q.name} waits on {cmd.event!r} which is never recorded"
                    )
                if cmd.event.uid not in event_done:
                    continue  # record not simulated yet
                start, dur, resource, kind = max(ready, event_done[cmd.event.uid]), 0.0, "", SpanKind.SYNC
            elif isinstance(cmd, RecordEventCommand):
                start, dur, resource, kind = ready, 0.0, "", SpanKind.SYNC
            elif isinstance(cmd, KernelCommand):
                resource = f"compute:{q.device.uid}"
                start = max(ready, resource_avail.get(resource, 0.0))
                dur = kernel_duration(cmd.cost, machine.device_spec(q.device.index))
                kind = SpanKind.KERNEL
            elif isinstance(cmd, CopyCommand):
                resource = f"link:{cmd.src.index}->{cmd.dst.index}"
                start = max(ready, resource_avail.get(resource, 0.0))
                link = machine.topology.link(cmd.src.index, cmd.dst.index)
                dur = transfer_duration(cmd.nbytes, link, pinned=cmd.pinned)
                kind = SpanKind.COPY
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown command type {type(cmd)!r}")

            key = (start, cmd.issue_seq, qi)
            if best is None or key < best:
                best = key
                best_plan = (start, dur, resource, kind)

        if best is None:
            stuck = [q.name for qi, q in enumerate(queues) if pcs[qi] < len(q)]
            raise SimulationDeadlock(f"no queue can progress; stuck queues: {stuck}")

        start, dur, resource, kind = best_plan
        qi = best[2]
        q = queues[qi]
        cmd: Command = q.commands[pcs[qi]]
        finish = start + dur
        seq = len(spans)

        # which constraint actually set ``start``?  The latest-releasing
        # one binds; ties prefer a real predecessor span over the host.
        cands: list[tuple[float, int, str]] = [(last_finish[qi], queue_last_seq[qi], "fifo")]
        if issue_times is not None:
            cands.append((issue_times.get(cmd.issue_seq, 0.0), -1, "dispatch"))
        if isinstance(cmd, WaitEventCommand):
            cands.append(
                (event_done[cmd.event.uid], event_record_seq.get(cmd.event.uid, -1), "event")
            )
        if resource:
            cands.append((resource_avail.get(resource, 0.0), resource_last_seq.get(resource, -1), "resource"))
        _, bind_pred, bind_cause = max(cands, key=lambda c: (c[0], c[1] >= 0))
        links[seq] = (bind_pred, bind_cause)

        spans.append(
            Span(
                kind=kind,
                name=cmd.name,
                queue=q.name,
                device=q.device.index,
                resource=resource,
                start=start,
                end=finish,
                seq=seq,
            )
        )
        if resource:
            resource_avail[resource] = finish
            resource_last_seq[resource] = seq
        if isinstance(cmd, RecordEventCommand):
            event_done[cmd.event.uid] = finish
            event_record_seq[cmd.event.uid] = seq
        last_finish[qi] = finish
        queue_last_seq[qi] = seq
        pcs[qi] += 1
        done += 1

    return Trace(spans, links=links)
