"""Machine descriptions for the timing simulator.

These stand in for the paper's two testbeds: an NVIDIA DGX A100 (8 GPUs,
NVLink) and a dual-socket Xeon host with 8 Quadro GV100s on PCIe Gen3.
All quantities are in SI units (bytes/s, FLOP/s, seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .topology import Topology


@dataclass(frozen=True)
class DeviceSpec:
    """Performance envelope of one device.

    ``mem_bandwidth`` is the effective DRAM bandwidth a streaming kernel
    achieves (not the theoretical peak), because the paper's baselines are
    quoted as ">95% of peak *effective* bandwidth".
    """

    mem_bandwidth: float
    flops: float
    launch_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if min(self.mem_bandwidth, self.flops) <= 0 or self.launch_overhead < 0:
            raise ValueError(f"invalid DeviceSpec: {self}")


@dataclass(frozen=True)
class MachineSpec:
    """A whole single-node machine: devices plus interconnect."""

    name: str
    device: DeviceSpec
    topology: Topology

    @property
    def num_devices(self) -> int:
        return self.topology.num_devices

    def with_devices(self, count: int) -> "MachineSpec":
        """Same machine class, different GPU count (for scaling sweeps)."""
        return replace(self, topology=self.topology.resized(count))


def dgx_a100(num_devices: int = 8) -> MachineSpec:
    """DGX-A100-like machine: HBM2e GPUs on an NVLink all-to-all fabric.

    The per-transfer latency models the *effective* cost of one peer copy
    (driver dispatch + event sync + wire latency), calibrated so that the
    D3Q19 halo exchange is ~49% of a No-OCC iteration at 192^3 on 8 GPUs
    and ~10% at 512^3 — the communication fractions the paper reports.
    """
    return MachineSpec(
        name=f"dgx-a100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=2.4e11, latency=1.2e-5, host_bandwidth=2.0e10, host_latency=1.2e-5
        ),
    )


def pcie_a100(num_devices: int = 8) -> MachineSpec:
    """A100-class GPUs on PCIe Gen3 (no NVLink): fast memory, slow links.

    The high memory-to-link bandwidth ratio (~124x) is the regime where
    the paper's OCC variants separate: halo transfers take as long as a
    whole internal stencil once slabs get thin, so extending the overlap
    window pays off.
    """
    return MachineSpec(
        name=f"pcie-a100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=1.13e10, latency=1.2e-5, host_bandwidth=1.13e10, host_latency=1.2e-5
        ),
    )


def pcie_gv100(num_devices: int = 8) -> MachineSpec:
    """Xeon + GV100 machine: peer transfers bounce over PCIe Gen3."""
    return MachineSpec(
        name=f"pcie-gv100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=7.8e11, flops=7.4e12, launch_overhead=6e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=1.1e10, latency=1.2e-5, host_bandwidth=1.1e10, host_latency=1.2e-5
        ),
    )


def multi_node_a100(num_nodes: int = 2, gpus_per_node: int = 4) -> MachineSpec:
    """Future-work extension: a small cluster of NVLink nodes joined by a
    200 Gb/s-class fabric.  Slab neighbours that straddle a node boundary
    pay the slow link; everything else is unchanged — which is exactly
    why the paper calls distributed systems a natural extension."""
    n = num_nodes * gpus_per_node
    return MachineSpec(
        name=f"cluster-{num_nodes}x{gpus_per_node}-a100",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.two_level(
            n,
            gpus_per_node,
            intra_bandwidth=2.4e11,
            intra_latency=1.2e-5,
            inter_bandwidth=2.2e10,
            inter_latency=3.0e-6 + 1.2e-5,
            host_bandwidth=2.0e10,
            host_latency=1.2e-5,
        ),
    )


def cpu_host() -> MachineSpec:
    """A multi-core CPU back end modelled as a single slow device."""
    return MachineSpec(
        name="cpu-host",
        device=DeviceSpec(mem_bandwidth=8.0e10, flops=1.0e12, launch_overhead=1e-6),
        topology=Topology.all_to_all(1, bandwidth=8.0e10, latency=1e-6, host_bandwidth=8.0e10, host_latency=1e-6),
    )
