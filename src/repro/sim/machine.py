"""Machine descriptions for the timing simulator.

These stand in for the paper's two testbeds: an NVIDIA DGX A100 (8 GPUs,
NVLink) and a dual-socket Xeon host with 8 Quadro GV100s on PCIe Gen3.
All quantities are in SI units (bytes/s, FLOP/s, seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .topology import Topology


@dataclass(frozen=True)
class DeviceSpec:
    """Performance envelope of one device.

    ``mem_bandwidth`` is the effective DRAM bandwidth a streaming kernel
    achieves (not the theoretical peak), because the paper's baselines are
    quoted as ">95% of peak *effective* bandwidth".
    """

    mem_bandwidth: float
    flops: float
    launch_overhead: float = 5e-6

    def __post_init__(self) -> None:
        if min(self.mem_bandwidth, self.flops) <= 0 or self.launch_overhead < 0:
            raise ValueError(f"invalid DeviceSpec: {self}")


@dataclass(frozen=True)
class MachineSpec:
    """A whole single-node machine: devices plus interconnect.

    ``device`` is the performance envelope shared by every rank;
    heterogeneous machines (mixed GPU generations on one PCIe switch,
    the placement regime Ripple argues for) override individual ranks
    through ``device_overrides``.  :meth:`device_spec` is the single
    lookup every consumer — DES, cost model, autotuner — goes through.
    """

    name: str
    device: DeviceSpec
    topology: Topology
    device_overrides: tuple[tuple[int, DeviceSpec], ...] = ()

    def __post_init__(self) -> None:
        for rank, spec in self.device_overrides:
            if not 0 <= rank < self.num_devices:
                raise ValueError(f"device override rank {rank} outside [0, {self.num_devices})")
            if not isinstance(spec, DeviceSpec):
                raise TypeError(f"device override for rank {rank} is not a DeviceSpec: {spec!r}")

    @property
    def num_devices(self) -> int:
        return self.topology.num_devices

    @property
    def is_heterogeneous(self) -> bool:
        return any(spec != self.device for _, spec in self.device_overrides)

    def device_spec(self, rank: int) -> DeviceSpec:
        """Per-rank performance envelope (the override, if one exists)."""
        for r, spec in self.device_overrides:
            if r == rank:
                return spec
        return self.device

    def device_specs(self) -> list[DeviceSpec]:
        return [self.device_spec(r) for r in range(self.num_devices)]

    def with_devices(self, count: int) -> "MachineSpec":
        """Same machine class, different GPU count (for scaling sweeps)."""
        overrides = tuple((r, spec) for r, spec in self.device_overrides if r < count)
        return replace(self, topology=self.topology.resized(count), device_overrides=overrides)

    def with_device_overrides(self, overrides: dict[int, DeviceSpec]) -> "MachineSpec":
        """Copy of this machine with some ranks' specs replaced."""
        merged = {r: s for r, s in self.device_overrides}
        merged.update(overrides)
        return replace(self, device_overrides=tuple(sorted(merged.items())))

    def without_rank(self, rank: int) -> "MachineSpec":
        """This machine after losing ``rank``: survivors keep their specs.

        Survivor ranks above the lost one shift down by one (matching how
        a shrunken DeviceSet re-indexes), and each survivor carries its
        *own* :class:`DeviceSpec` forward — unlike :meth:`with_devices`,
        which truncates the override table and silently turns a
        heterogeneous machine's tail ranks back into default devices.
        """
        if not 0 <= rank < self.num_devices:
            raise ValueError(f"cannot remove rank {rank} from a {self.num_devices}-device machine")
        if self.num_devices < 2:
            raise ValueError("cannot remove the last device of a machine")
        survivors = [r for r in range(self.num_devices) if r != rank]
        overrides = tuple(
            (new_rank, spec)
            for new_rank, old_rank in enumerate(survivors)
            if (spec := self.device_spec(old_rank)) != self.device
        )
        return replace(
            self, topology=self.topology.resized(self.num_devices - 1), device_overrides=overrides
        )


def dgx_a100(num_devices: int = 8) -> MachineSpec:
    """DGX-A100-like machine: HBM2e GPUs on an NVLink all-to-all fabric.

    The per-transfer latency models the *effective* cost of one peer copy
    (driver dispatch + event sync + wire latency), calibrated so that the
    D3Q19 halo exchange is ~49% of a No-OCC iteration at 192^3 on 8 GPUs
    and ~10% at 512^3 — the communication fractions the paper reports.
    """
    return MachineSpec(
        name=f"dgx-a100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=2.4e11, latency=1.2e-5, host_bandwidth=2.0e10, host_latency=1.2e-5
        ),
    )


def pcie_a100(num_devices: int = 8) -> MachineSpec:
    """A100-class GPUs on PCIe Gen3 (no NVLink): fast memory, slow links.

    The high memory-to-link bandwidth ratio (~124x) is the regime where
    the paper's OCC variants separate: halo transfers take as long as a
    whole internal stencil once slabs get thin, so extending the overlap
    window pays off.
    """
    return MachineSpec(
        name=f"pcie-a100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=1.13e10, latency=1.2e-5, host_bandwidth=1.13e10, host_latency=1.2e-5
        ),
    )


def pcie_gv100(num_devices: int = 8) -> MachineSpec:
    """Xeon + GV100 machine: peer transfers bounce over PCIe Gen3."""
    return MachineSpec(
        name=f"pcie-gv100-{num_devices}",
        device=DeviceSpec(mem_bandwidth=7.8e11, flops=7.4e12, launch_overhead=6e-6),
        topology=Topology.all_to_all(
            num_devices, bandwidth=1.1e10, latency=1.2e-5, host_bandwidth=1.1e10, host_latency=1.2e-5
        ),
    )


def mixed_pcie(num_devices: int = 8) -> MachineSpec:
    """Heterogeneous PCIe box: A100-class cards sharing a Gen3 switch with
    older GV100-class cards (the odd ranks).

    Upgraded-in-place workstations look exactly like this — half the
    slots got new GPUs, half kept the old ones — and it is the regime
    where uniform slabs visibly lose: the slow cards finish last every
    iteration, so the makespan tracks the *worst* device.  The autotuner
    exists to close that gap with proportionally sized slabs.
    """
    fast = DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6)
    slow = DeviceSpec(mem_bandwidth=7.8e11, flops=7.4e12, launch_overhead=6e-6)
    return MachineSpec(
        name=f"mixed-pcie-{num_devices}",
        device=fast,
        topology=Topology.all_to_all(
            num_devices, bandwidth=1.13e10, latency=1.2e-5, host_bandwidth=1.13e10, host_latency=1.2e-5
        ),
        device_overrides=tuple((r, slow) for r in range(1, num_devices, 2)),
    )


def multi_node_a100(num_nodes: int = 2, gpus_per_node: int = 4) -> MachineSpec:
    """Future-work extension: a small cluster of NVLink nodes joined by a
    200 Gb/s-class fabric.  Slab neighbours that straddle a node boundary
    pay the slow link; everything else is unchanged — which is exactly
    why the paper calls distributed systems a natural extension."""
    n = num_nodes * gpus_per_node
    return MachineSpec(
        name=f"cluster-{num_nodes}x{gpus_per_node}-a100",
        device=DeviceSpec(mem_bandwidth=1.4e12, flops=9.7e12, launch_overhead=4e-6),
        topology=Topology.two_level(
            n,
            gpus_per_node,
            intra_bandwidth=2.4e11,
            intra_latency=1.2e-5,
            inter_bandwidth=2.2e10,
            inter_latency=3.0e-6 + 1.2e-5,
            host_bandwidth=2.0e10,
            host_latency=1.2e-5,
        ),
    )


def cpu_host() -> MachineSpec:
    """A multi-core CPU back end modelled as a single slow device."""
    return MachineSpec(
        name="cpu-host",
        device=DeviceSpec(mem_bandwidth=8.0e10, flops=1.0e12, launch_overhead=1e-6),
        topology=Topology.all_to_all(1, bandwidth=8.0e10, latency=1e-6, host_bandwidth=8.0e10, host_latency=1e-6),
    )
