"""Plan replay through the cost model: the autotuner's objective function.

The tuner never touches a wall clock: a candidate configuration is
scored by replaying the compiled program's recorded command stream
through the DES under a :class:`~repro.sim.machine.MachineSpec`.  These
helpers are the single entry point for that — they accept whatever a
Skeleton hands out (an ``ExecutionResult``, or the raw queue list) and
return makespans, so callers never reach into the DES directly.

``mode`` models host dispatch, making execution mode a tunable knob:

* ``None`` — issue is free (the historical pure device-side replay),
* ``"serial"`` — one host thread issues every command in global
  task-list order, paying ``HOST_DISPATCH`` per command; with many
  devices the single issue loop itself becomes the bottleneck,
* ``"parallel"`` — one issuing worker per device (each pays
  ``WORKER_SPINUP`` once, then ``HOST_DISPATCH`` per own command), so
  issue cost stays flat as devices are added,
* ``"process"`` — one issuing worker *process* per device: the same
  flat per-device layout, but waking a forked worker (a pipe round-trip
  plus scheduler latency) costs ``PROCESS_SPINUP`` — an order of
  magnitude above a thread wake — so the model only prefers process
  mode when there is enough per-replay work to amortise it, exactly the
  trade-off the wall-clock benchmarks show.
"""

from __future__ import annotations

from .des import simulate
from .machine import MachineSpec
from .trace import Trace

#: host-side cost of issuing one command (a driver enqueue call)
HOST_DISPATCH = 1.5e-6
#: one-off cost of waking a per-device issuing worker (parallel mode)
WORKER_SPINUP = 2.0e-5
#: one-off cost of waking a forked worker process (process mode): one
#: pipe round-trip + cross-process scheduler latency per replay epoch
PROCESS_SPINUP = 2.0e-4


def _queues(plan) -> list:
    queues = getattr(plan, "queues", plan)
    if not isinstance(queues, (list, tuple)):
        raise TypeError(f"expected an ExecutionResult or a queue list, got {type(plan)!r}")
    return list(queues)


def _issue_times(queues, mode: str | None) -> dict[int, float] | None:
    """Per-command earliest-start times implied by the host dispatch mode."""
    if mode is None:
        return None
    if mode == "serial":
        seqs = sorted(cmd.issue_seq for q in queues for cmd in q.commands)
        return {seq: (i + 1) * HOST_DISPATCH for i, seq in enumerate(seqs)}
    if mode in ("parallel", "process"):
        # one worker per *device* (the Parallel/ProcessEngine layout): it
        # issues every command of that device's queues in recorded order
        spinup = WORKER_SPINUP if mode == "parallel" else PROCESS_SPINUP
        by_device: dict[int, list[int]] = {}
        for q in queues:
            by_device.setdefault(q.device.index, []).extend(cmd.issue_seq for cmd in q.commands)
        times = {}
        for seqs in by_device.values():
            for i, seq in enumerate(sorted(seqs)):
                times[seq] = spinup + (i + 1) * HOST_DISPATCH
        return times
    raise ValueError(
        f"unknown dispatch mode {mode!r}; expected None, 'serial', 'parallel' or 'process'"
    )


def sim_replay(plan, machine: MachineSpec, mode: str | None = None) -> Trace:
    """DES trace of one recorded program under ``machine``."""
    queues = _queues(plan)
    return simulate(queues, machine, issue_times=_issue_times(queues, mode))


def sim_makespan(plan, machine: MachineSpec, mode: str | None = None) -> float:
    """Simulated end-to-end seconds of one recorded program."""
    return sim_replay(plan, machine, mode=mode).makespan


def sim_makespan_total(plans, machine: MachineSpec, mode: str | None = None) -> float:
    """Summed makespan of a sequence of recorded programs.

    An application step is usually several host-synchronised skeletons
    (CG's A/B pair, LBM's parity pair); the host barrier between them
    means their simulated times add.
    """
    return sum(sim_makespan(p, machine, mode=mode) for p in plans)
