"""Interconnect topology: directed links between devices and the host.

Device endpoints are identified by their rank inside the backend's
:class:`~repro.system.device.DeviceSet`; the host uses rank ``-1``.
Each directed pair has its own link (a DMA engine per direction), which
is the property OCC exploits: halo pushes to the left and right
neighbours proceed concurrently with each other and with compute.
"""

from __future__ import annotations

from dataclasses import dataclass

HOST_RANK = -1


@dataclass(frozen=True)
class Link:
    """One directed interconnect channel."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ValueError(f"invalid Link: {self}")

    def transfer_time(self, nbytes: float) -> float:
        return self.latency + nbytes / self.bandwidth


class Topology:
    """Directed link map over ``num_devices`` devices plus the host."""

    def __init__(self, num_devices: int, links: dict[tuple[int, int], Link]):
        if num_devices < 1:
            raise ValueError("topology needs at least one device")
        self.num_devices = num_devices
        self._links = dict(links)

    @classmethod
    def all_to_all(
        cls,
        num_devices: int,
        bandwidth: float,
        latency: float,
        host_bandwidth: float,
        host_latency: float,
    ) -> "Topology":
        links: dict[tuple[int, int], Link] = {}
        peer = Link(bandwidth, latency)
        host = Link(host_bandwidth, host_latency)
        for a in range(num_devices):
            for b in range(num_devices):
                if a != b:
                    links[(a, b)] = peer
            links[(HOST_RANK, a)] = host
            links[(a, HOST_RANK)] = host
        topo = cls(num_devices, links)
        topo._preset = ("all_to_all", bandwidth, latency, host_bandwidth, host_latency)
        return topo

    @classmethod
    def two_level(
        cls,
        num_devices: int,
        devices_per_node: int,
        intra_bandwidth: float,
        intra_latency: float,
        inter_bandwidth: float,
        inter_latency: float,
        host_bandwidth: float,
        host_latency: float,
    ) -> "Topology":
        """Multi-node extension: fast links inside a node, slow between.

        The paper names distributed systems as the natural extension of
        Neon; the programming model is topology-agnostic, so modelling a
        cluster only needs this two-level link map (e.g. NVLink inside a
        node, InfiniBand between nodes).
        """
        if devices_per_node < 1 or num_devices < 1:
            raise ValueError("device counts must be positive")
        links: dict[tuple[int, int], Link] = {}
        intra = Link(intra_bandwidth, intra_latency)
        inter = Link(inter_bandwidth, inter_latency)
        host = Link(host_bandwidth, host_latency)
        for a in range(num_devices):
            for b in range(num_devices):
                if a != b:
                    links[(a, b)] = intra if a // devices_per_node == b // devices_per_node else inter
            links[(HOST_RANK, a)] = host
            links[(a, HOST_RANK)] = host
        topo = cls(num_devices, links)
        topo._preset = (
            "two_level",
            devices_per_node,
            intra_bandwidth,
            intra_latency,
            inter_bandwidth,
            inter_latency,
            host_bandwidth,
            host_latency,
        )
        return topo

    def resized(self, num_devices: int) -> "Topology":
        preset = getattr(self, "_preset", None)
        if preset is None:
            raise ValueError("only preset topologies can be resized")
        if preset[0] == "all_to_all":
            _, bw, lat, hbw, hlat = preset
            return Topology.all_to_all(num_devices, bw, lat, hbw, hlat)
        _, per_node, ibw, ilat, ebw, elat, hbw, hlat = preset
        return Topology.two_level(num_devices, per_node, ibw, ilat, ebw, elat, hbw, hlat)

    def link(self, src_rank: int, dst_rank: int) -> Link:
        try:
            return self._links[(src_rank, dst_rank)]
        except KeyError:
            raise KeyError(f"no link {src_rank}->{dst_rank} in topology") from None

    def has_link(self, src_rank: int, dst_rank: int) -> bool:
        return (src_rank, dst_rank) in self._links
