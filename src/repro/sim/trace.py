"""Execution traces produced by the discrete-event simulator.

A trace is a list of :class:`Span` records, one per simulated command,
carrying enough structure to compute the makespan, per-resource busy
time, and communication/computation overlap — the quantities behind the
paper's Fig 7/8 efficiency analysis (e.g. "communication is 49% of the
iteration at 192^3 but 10% at 512^3").
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum


def _natural_key(name: str) -> tuple:
    """Split digit runs out of a name so ``q2`` sorts before ``q10``."""
    return tuple(int(part) if part.isdigit() else part for part in re.split(r"(\d+)", name))


class SpanKind(Enum):
    """What occupied the resource: a kernel, a DMA copy, or a sync no-op."""

    KERNEL = "kernel"
    COPY = "copy"
    SYNC = "sync"


@dataclass(frozen=True)
class Span:
    kind: SpanKind
    name: str
    queue: str
    device: int
    resource: str
    start: float
    end: float
    #: simulation ordinal (the DES stamps spans in execution order);
    #: -1 for hand-built spans, which carry no dependency links
    seq: int = -1

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Timeline of one simulated execution.

    ``links`` is the DES's binding-constraint record: for each span seq,
    ``(predecessor_seq, cause)`` names the single constraint that
    determined the span's start time — queue FIFO order (``"fifo"``),
    an awaited event record (``"event"``), contention on a compute/link
    resource (``"resource"``), or host dispatch (``"dispatch"``,
    predecessor -1).  Walking the links backward from the last-finishing
    span reconstructs the schedule's critical path exactly (see
    :mod:`repro.observability.critpath`).
    """

    def __init__(self, spans: list[Span], links: dict[int, tuple[int, str]] | None = None):
        self.spans = sorted(spans, key=lambda s: (s.start, s.end, s.queue))
        self.links = links or {}
        self._by_seq = {s.seq: s for s in self.spans if s.seq >= 0}

    def span_by_seq(self, seq: int) -> Span | None:
        """The span the DES stamped with ``seq`` (None when absent)."""
        return self._by_seq.get(seq)

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def kind_time(self, kind: SpanKind) -> float:
        """Total busy time of a kind, summed over resources (can exceed makespan)."""
        return sum(s.duration for s in self.spans if s.kind is kind)

    def device_busy(self, device: int) -> float:
        return sum(s.duration for s in self.spans if s.device == device and s.kind is SpanKind.KERNEL)

    def copy_exposed_time(self) -> float:
        """Wall-clock time during which a copy runs but no kernel does.

        This is the communication cost that OCC failed to hide; zero means
        perfect overlap.
        """
        edges: list[tuple[float, int, SpanKind]] = []
        for s in self.spans:
            if s.kind is SpanKind.SYNC or s.duration == 0:
                continue
            edges.append((s.start, +1, s.kind))
            edges.append((s.end, -1, s.kind))
        edges.sort(key=lambda e: (e[0], -e[1]))
        exposed = 0.0
        kernels = copies = 0
        prev = 0.0
        for t, delta, kind in edges:
            if copies > 0 and kernels == 0:
                exposed += t - prev
            prev = t
            if kind is SpanKind.KERNEL:
                kernels += delta
            else:
                copies += delta
        return exposed

    def to_chrome_trace(self) -> list[dict]:
        """Chrome ``chrome://tracing`` / Perfetto event list.

        Each queue becomes a track (``tid``), each device a process
        (``pid``); load the JSON dump of the returned list directly.
        """
        events = []
        for s in self.spans:
            if s.duration == 0:
                continue
            events.append(
                {
                    "name": s.name,
                    "cat": s.kind.value,
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": s.duration * 1e6,
                    "pid": f"device{s.device}",
                    "tid": s.queue,
                    "args": {"resource": s.resource},
                }
            )
        return events

    def gantt(self, width: int = 80) -> str:
        """ASCII Gantt chart, one row per queue, for debugging schedules."""
        if not self.spans:
            return "(empty trace)"
        total = self.makespan or 1.0
        rows: dict[str, list[str]] = {}
        row_device: dict[str, int] = {}
        for s in self.spans:
            row = rows.setdefault(s.queue, [" "] * width)
            row_device[s.queue] = min(row_device.get(s.queue, s.device), s.device)
            a = min(width - 1, int(s.start / total * width))
            b = min(width, max(a + 1, int(s.end / total * width)))
            ch = {"kernel": "#", "copy": "=", "sync": "|"}[s.kind.value]
            for i in range(a, b):
                row[i] = ch
        # natural (device, queue-index) order: q2 before q10, device 0 first
        ordered = sorted(rows.items(), key=lambda kv: (row_device[kv[0]], _natural_key(kv[0])))
        lines = [f"{name:>12} |{''.join(cells)}|" for name, cells in ordered]
        lines.append(f"{'':>12}  makespan = {total:.3e} s  (# kernel, = copy, | sync)")
        return "\n".join(lines)
