"""Skeleton abstraction: dependency graphs, OCC, scheduling (paper V)."""

from .depgraph import (
    DepGraph,
    DepKind,
    GraphNode,
    NodeKind,
    Scope,
    build_dependency_graph,
    containers_to_nodes,
)
from .executor import DependencyViolation, check_trace_dependencies, simulate_result
from .fusion import FUSION, FusedStep, fuse_program
from .mgraph import build_multi_gpu_graph, expand_with_halo_nodes
from .occ import Occ, OccReport, apply_occ
from .scheduler import CompiledProgram, ExecutionResult, Plan, ScheduleStats
from .skeleton import Skeleton, TuneDecision
from .unroll import steady_state_iteration_time, unroll, unrolled_skeleton
from .viz import graph_to_dot

__all__ = [
    "FUSION",
    "CompiledProgram",
    "DepGraph",
    "DepKind",
    "DependencyViolation",
    "ExecutionResult",
    "FusedStep",
    "GraphNode",
    "NodeKind",
    "Occ",
    "OccReport",
    "Plan",
    "ScheduleStats",
    "Scope",
    "Skeleton",
    "TuneDecision",
    "apply_occ",
    "build_dependency_graph",
    "build_multi_gpu_graph",
    "check_trace_dependencies",
    "containers_to_nodes",
    "expand_with_halo_nodes",
    "fuse_program",
    "graph_to_dot",
    "simulate_result",
    "steady_state_iteration_time",
    "unroll",
    "unrolled_skeleton",
]
