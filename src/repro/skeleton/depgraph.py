"""Data dependency graph extraction from a Container sequence (paper V-A).

Nodes are Containers (plus, later, halo-update nodes); edges are
read-after-write, write-after-read and write-after-write conflicts on
the Multi-GPU data objects the Containers' Loaders declared.  Redundant
(transitively implied) dependencies are removed, exactly as the paper
drops the apxpy->dot edge in Fig 4c.

Each *resource* a node touches is either a data object's cell payload
(keyed by the data uid) or, for halo modelling, the data's halo slots
(keyed by ``("halo", uid)``).  A stencil read touches both — that single
rule makes every halo-related ordering fall out of the generic
dependency builder in :mod:`repro.skeleton.mgraph`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import networkx as nx

from repro.sets import Container, DataView, Pattern, ReduceMode
from repro.sets.loader import Access


class NodeKind(enum.Enum):
    """A graph node is a Container launch or a halo update."""

    COMPUTE = "compute"
    HALO = "halo"


class DepKind(enum.Enum):
    """Edge type: data hazard (RaW/WaR/WaW) or scheduling hint (SCHED)."""

    RAW = "RaW"
    WAR = "WaR"
    WAW = "WaW"
    SCHED = "hint"


class Scope(enum.Enum):
    """Which device ranks an edge synchronises (see scheduler).

    LOCAL: consumer rank waits the producer on the same rank.
    HALO_SRC: the ordering concerns a halo message's *source* rank.
    HALO_DST: the ordering concerns a halo message's *destination* rank.
    """

    LOCAL = "local"
    HALO_SRC = "halo_src"
    HALO_DST = "halo_dst"


_node_ids = itertools.count()

Resource = object  # data uid (int) or ("halo", uid)


@dataclass(eq=False)
class GraphNode:
    """One multi-GPU graph node: a Container launch or a halo update."""

    name: str
    kind: NodeKind
    container: Container | None = None
    view: DataView = DataView.STANDARD
    reduce_mode: ReduceMode = ReduceMode.ASSIGN
    halo_field: object | None = None  # Field, for HALO nodes
    seq: int = 0
    uid: int = field(default_factory=lambda: next(_node_ids))

    @property
    def pattern(self) -> Pattern | None:
        return self.container.pattern if self.container is not None else None

    def reads(self) -> set[Resource]:
        if self.kind is NodeKind.HALO:
            return {self.halo_field.uid}
        out: set[Resource] = set()
        for t in self.container.tokens():
            if t.access.reads:
                out.add(t.data.uid)
            if t.pattern is Pattern.STENCIL:
                out.add(("halo", t.data.uid))
        return out

    def writes(self) -> set[Resource]:
        if self.kind is NodeKind.HALO:
            return {("halo", self.halo_field.uid)}
        return {t.data.uid for t in self.container.tokens() if t.access.writes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.name}@{self.view.value})"


class DepGraph:
    """A DAG of GraphNodes with typed, scoped edges."""

    def __init__(self) -> None:
        self.g = nx.DiGraph()

    # -- construction ------------------------------------------------------
    def add_node(self, node: GraphNode) -> GraphNode:
        self.g.add_node(node)
        return node

    def add_edge(self, a: GraphNode, b: GraphNode, kind: DepKind, scope: Scope = Scope.LOCAL) -> None:
        if a is b:
            return
        if self.g.has_edge(a, b):
            self.g[a][b]["kinds"].add(kind)
            self.g[a][b]["scopes"].add(scope)
        else:
            self.g.add_edge(a, b, kinds={kind}, scopes={scope})

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> list[GraphNode]:
        return sorted(self.g.nodes, key=lambda n: (n.seq, n.uid))

    def edges(self) -> list[tuple[GraphNode, GraphNode, set[DepKind], set[Scope]]]:
        return [(a, b, d["kinds"], d["scopes"]) for a, b, d in self.g.edges(data=True)]

    def data_edges(self):
        """Edges that are real data dependencies (hints excluded)."""
        for a, b, kinds, scopes in self.edges():
            if kinds - {DepKind.SCHED}:
                yield a, b, kinds, scopes

    def hint_edges(self):
        for a, b, kinds, _scopes in self.edges():
            if DepKind.SCHED in kinds:
                yield a, b

    def parents(self, node: GraphNode, with_hints: bool = False):
        for a in self.g.predecessors(node):
            kinds = self.g[a][node]["kinds"]
            if with_hints or kinds - {DepKind.SCHED}:
                yield a

    def children(self, node: GraphNode, with_hints: bool = False):
        for b in self.g.successors(node):
            kinds = self.g[node][b]["kinds"]
            if with_hints or kinds - {DepKind.SCHED}:
                yield b

    def edge_info(self, a: GraphNode, b: GraphNode) -> tuple[set[DepKind], set[Scope]]:
        d = self.g[a][b]
        return d["kinds"], d["scopes"]

    def has_edge(self, a: GraphNode, b: GraphNode) -> bool:
        return self.g.has_edge(a, b)

    def find(self, name: str) -> GraphNode:
        hits = [n for n in self.g.nodes if n.name == name]
        if len(hits) != 1:
            raise KeyError(f"{len(hits)} nodes named '{name}'")
        return hits[0]

    def bfs_levels(self, with_hints: bool = False) -> list[list[GraphNode]]:
        """Dependency-respecting BFS levels (paper V-C, Fig 5/6).

        A node enters the frontier only when all its parents have been
        placed in earlier levels; nodes inside a level are independent.
        """
        placed: dict[GraphNode, int] = {}
        levels: list[list[GraphNode]] = []
        pending = set(self.g.nodes)
        while pending:
            frontier = [
                n
                for n in pending
                if all(p in placed for p in self.parents(n, with_hints=with_hints))
            ]
            if not frontier:
                raise RuntimeError("cycle in dependency graph")
            frontier.sort(key=lambda n: (n.seq, n.uid))
            for n in frontier:
                placed[n] = len(levels)
            levels.append(frontier)
            pending -= set(frontier)
        return levels

    def local_transitive_reduction(self) -> int:
        """Drop redundant dependencies; returns the number removed.

        Only an edge that is LOCAL-scoped *and* implied by a path of
        LOCAL-scoped edges may go: a LOCAL path orders every rank
        pairwise, so the shortcut is redundant (the paper's apxpy->dot
        removal in Fig 4c).  Edges involved in halo scopes synchronise
        *different* ranks per hop and are never redundant at rank
        granularity, so they are kept.
        """
        local = nx.DiGraph()
        local.add_nodes_from(self.g.nodes)
        for a, b, d in self.g.edges(data=True):
            if d["scopes"] == {Scope.LOCAL} and d["kinds"] != {DepKind.SCHED}:
                local.add_edge(a, b)
        reduced = nx.transitive_reduction(local)
        removed = 0
        for a, b in list(local.edges):
            if not reduced.has_edge(a, b):
                kinds = self.g[a][b]["kinds"]
                if DepKind.SCHED in kinds:
                    # keep the hint, drop the data-dependency role
                    self.g[a][b]["kinds"] = {DepKind.SCHED}
                else:
                    self.g.remove_edge(a, b)
                removed += 1
        return removed


def _scope_for(resource: Resource, a: GraphNode, b: GraphNode) -> Scope:
    if a.kind is NodeKind.COMPUTE and b.kind is NodeKind.COMPUTE:
        return Scope.LOCAL
    if isinstance(resource, tuple) and resource[0] == "halo":
        return Scope.HALO_DST  # ordering concerns the halo slots written on dst
    return Scope.HALO_SRC  # ordering concerns the boundary payload read on src


def build_dependency_graph(ops: list[GraphNode], reduce: bool = False) -> DepGraph:
    """Generic conflict analysis over an ordered op sequence.

    Works for plain Container sequences (paper Fig 4b) and for sequences
    already interleaved with halo nodes (Fig 4c) — halo nodes read the
    field payload and write its halo resource, so every ordering rule
    falls out of RaW/WaR/WaW on resources.

    Redundant-edge removal (``reduce``) is deferred by the Skeleton until
    after the OCC transform, because splitting relies on direct edges.
    """
    graph = DepGraph()
    last_writer: dict[Resource, GraphNode] = {}
    readers_since: dict[Resource, list[GraphNode]] = {}
    for seq, node in enumerate(ops):
        node.seq = seq
        graph.add_node(node)
        reads, writes = node.reads(), node.writes()
        for res in sorted(reads, key=repr):
            if res in last_writer:
                graph.add_edge(last_writer[res], node, DepKind.RAW, _scope_for(res, last_writer[res], node))
            readers_since.setdefault(res, []).append(node)
        for res in sorted(writes, key=repr):
            for reader in readers_since.get(res, []):
                graph.add_edge(reader, node, DepKind.WAR, _scope_for(res, reader, node))
            if res in last_writer:
                graph.add_edge(last_writer[res], node, DepKind.WAW, _scope_for(res, last_writer[res], node))
            last_writer[res] = node
            readers_since[res] = []
    if reduce:
        graph.local_transitive_reduction()
    return graph


def containers_to_nodes(containers: list[Container]) -> list[GraphNode]:
    """Wrap user Containers as COMPUTE graph nodes (STANDARD view)."""
    return [GraphNode(name=c.name, kind=NodeKind.COMPUTE, container=c) for c in containers]
