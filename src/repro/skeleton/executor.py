"""Execution helpers and the schedule validity checker.

The paper's correctness claim for its scheduler is that the generated
stream/event structure *alone* enforces every data dependency — the
host-side task-list order only influences performance.  The checker
below verifies exactly that on a simulated trace: for every dependency
pair of pieces, the producer's span must finish before the consumer's
span starts.  Because the DES honours only stream FIFO order and event
waits, a passing check proves the synchronisation is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import observability as _obs
from repro import resilience as _res
from repro.sim import MachineSpec, Trace, simulate

from .scheduler import ExecutionResult, Plan


@dataclass(frozen=True)
class DependencyViolation:
    producer: str
    consumer: str
    producer_end: float
    consumer_start: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.consumer} started at {self.consumer_start:.3e}s before "
            f"{self.producer} finished at {self.producer_end:.3e}s"
        )


def _piece_label(plan: Plan, piece) -> str:
    kind, uid, idx = piece
    node = plan._node_by_uid(uid)
    if kind == "c":
        return f"{node.name}[{idx}]"
    return f"{plan._halo_msgs[uid][idx].name}#{uid}"


def check_trace_dependencies(result: ExecutionResult, trace: Trace) -> list[DependencyViolation]:
    """All dependency orderings the trace violates (empty = valid schedule).

    Span names may legitimately repeat when one plan's queues are traced
    over several executions; occurrences of a repeated name are paired up
    in start-time order (run *i* of the producer against run *i* of the
    consumer).  Any other duplication is ambiguous — silently checking
    one arbitrary occurrence could mask a real violation — so it raises.
    """
    spans: dict[str, list] = {}
    for s in trace.spans:
        spans.setdefault(s.name, []).append(s)
    for occurrences in spans.values():
        occurrences.sort(key=lambda s: (s.start, s.end))
    plan = result.plan
    violations = []
    for node in plan.order:
        for piece in plan._pieces[node.uid]:
            if piece in plan._empty:
                continue
            cons = _piece_label(plan, piece)
            if cons not in spans:
                continue
            for dep in plan.dependencies(piece):
                prod = _piece_label(plan, dep)
                if prod not in spans:
                    continue
                prods, conss = spans[prod], spans[cons]
                if len(prods) == len(conss):
                    pairs = list(zip(prods, conss))
                elif len(prods) == 1:
                    # one producer run, consumer repeated: all must follow it
                    pairs = [(prods[0], c) for c in conss]
                else:
                    raise ValueError(
                        f"ambiguous duplicate spans: '{prod}' occurs {len(prods)}x but "
                        f"'{cons}' occurs {len(conss)}x; cannot pair producer and consumer "
                        f"occurrences — trace one execution at a time or use unique names"
                    )
                for p, c in pairs:
                    if p.end > c.start + 1e-15:
                        violations.append(DependencyViolation(prod, cons, p.end, c.start))
    return violations


def simulate_result(result: ExecutionResult, machine: MachineSpec | None = None) -> Trace:
    """Run the DES over an execution's recorded queues."""
    machine = machine or result.plan.backend.machine
    return simulate(result.queues, machine)


_SCAN_CHUNK_ELEMS = 1 << 18  # ~2 MiB of float64 per isfinite temporary


def _chunked_all_finite(arr: np.ndarray) -> bool:
    """Whether every element of ``arr`` is finite, scanned chunk-wise.

    Slices along the leading axis in ~:data:`_SCAN_CHUNK_ELEMS`-element
    blocks so the ``isfinite`` temporary stays small and the scan bails
    out at the first corrupt block, instead of materialising (and fully
    reducing) a whole-field copy.
    """
    if arr.size == 0:
        return True
    if arr.ndim == 0:
        return bool(np.isfinite(arr))
    step = max(1, _SCAN_CHUNK_ELEMS * arr.shape[0] // max(arr.size, 1))
    for i in range(0, arr.shape[0], step):
        if not np.isfinite(arr[i : i + step]).all():
            return False
    return True


def _owned_views(data):
    """Per-device owned views of a Field-like object, without copies.

    Falls back to ``to_numpy()`` (one global copy) for written data that
    exposes a global view but no per-rank partitions.
    """
    partition = getattr(data, "partition", None)
    grid = getattr(data, "grid", None)
    span_for = getattr(grid, "span_for", None)
    if callable(partition) and callable(span_for):
        from repro.sets import DataView  # noqa: PLC0415 - avoid import cycle at module load

        for rank in range(data.num_devices):
            part = partition(rank)
            view_all = getattr(part, "view_all", None)
            if not callable(view_all):
                break
            yield view_all(span_for(rank, DataView.STANDARD))
        else:
            return
        yield data.to_numpy()
    else:
        yield data.to_numpy()


def scan_non_finite(containers) -> list[str]:
    """Names of written fields holding NaN/Inf after an execution.

    Only data the containers declare as written is scanned — read-only
    inputs with legitimate sentinel values never trip the guardrail, and
    the scan cost stays proportional to the state the step could have
    corrupted.  Fields are scanned per-device over their owned views,
    chunk-wise with early exit, so the guardrail never materialises a
    field-sized host copy (the old ``to_numpy()`` path) and stops at the
    first corrupt chunk.
    """
    bad: list[str] = []
    seen: set[int] = set()
    for c in containers:
        for tok in c.tokens():
            data = tok.data
            if not tok.access.writes or id(data) in seen:
                continue
            seen.add(id(data))
            # Owned cells are exactly what a checkpoint restore rewrites,
            # so every NaN this scan can see is one a rollback can clear.
            # Raw-buffer slack (halo slots, alignment padding) is excluded
            # — kernels never read padding, and halos are refreshed on
            # restore.
            to_numpy = getattr(data, "to_numpy", None)
            if callable(to_numpy) and not getattr(data, "virtual", False):
                if not all(_chunked_all_finite(view) for view in _owned_views(data)):
                    bad.append(data.name)
                continue
            for buf in getattr(data, "buffers", None) or []:
                arr = buf.array
                if arr is not None and arr.size and not _chunked_all_finite(arr):
                    bad.append(data.name)
                    break
    return bad


def enforce_divergence_guardrail(containers, skeleton_name: str = "") -> None:
    """The Skeleton-level NaN/Inf guardrail (resilience injection site).

    Called after every ``Skeleton.run()`` while resilience is armed.
    The reaction follows the recovery policy: ``raise`` and ``rollback``
    both surface :class:`~repro.resilience.CorruptionDetected` (the
    resilient driver converts the latter into rollback-and-replay);
    ``log`` only counts the event; ``off`` skips the scan entirely.
    """
    policy = _res.RES.policy
    mode = policy.divergence if policy is not None else "off"
    if mode == "off":
        return
    with _obs.span("resilience.divergence_scan", cat="resilience", skeleton=skeleton_name):
        bad = scan_non_finite(containers)
    if not bad:
        return
    if _obs.OBS.active:
        _obs.OBS.metrics.counter("divergence_detected", policy=mode).inc()
    if mode != "log":
        raise _res.CorruptionDetected(bad)
