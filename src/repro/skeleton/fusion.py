"""Fusion: batch the frozen step list into coalesced dispatch units.

``BENCH_lbm.json`` put the problem on the table: a 4-device LBM
miniature spends ~50x more wall-clock in per-step Python dispatch than
its simulated makespan — every compiled step pays a flight-ring record,
a span probe, a resilience check and a sanitizer check even when all of
those layers are dormant.  This pass runs once at ``CompiledProgram``
freeze time and collapses the step list into *dispatch units*: maximal
chains of same-queue, same-kind steps whose recorded wiring proves the
batch is reordering-free, each executing one precomposed closure.

**It is a pure plan-to-plan transform.**  The recorded queues, commands,
events and per-step metadata are untouched — the DES timing model, the
sanitizer's :class:`~repro.sanitizer.program.ProgramView`, the tuner's
cost extraction and the mutation matrix all keep reading the same
objects (a fused unit's DES cost is the sum of its constituents by
construction, because the constituents *are* the commands the simulator
sees).  Only replay dispatch changes: serial replay walks
``program.dispatch``; parallel replay executes a whole unit when the
engine reaches its head command and skips the member commands at their
original positions (event records stay in place, so completion signals
still fire only after the batched work — which ran at or before the
head position — is done).

**Legality.**  A chain may grow from step ``t`` to the next same-queue,
same-kind step ``s`` only when:

1. *records-only interior* — between ``t`` and ``s`` on their queue sit
   only :class:`RecordEventCommand`s.  A ``WaitEventCommand`` there is a
   wired dependency entering the chain (the scheduler places consumer
   waits immediately before the consuming command), and a foreign data
   command is an ordering constraint we will not reorder across; either
   breaks the chain.  Because every cross-queue dependency — including
   same-device ones — is event-wired by the scheduler, "no interior
   waits" already proves no step that executes between the unit's head
   and tail positions depends on, or is depended on by, a member that
   the batching moves.
2. *disjoint interleavings* (belt and braces) — every data command of
   any queue whose issue seq falls strictly inside the chain is checked
   against the chain with the sanitizer's region-atom access model
   (:func:`repro.sanitizer.access.step_accesses`); a shared atom with a
   write on either side vetoes the extension.  This is redundant with
   (1) for scheduler-produced programs and exists to catch hand-built
   or future schedules that violate the wiring invariant.

**Precomposition.**  The unit's fast-path closure hoists every
loop-invariant lookup out of the per-step path: copy chains that form a
complete SoA component family collapse into one multi-component staged
copy (:meth:`DenseField.batched_halo_fn`), kernel steps whose container
registered a ``specialize`` hook get an ahead-of-time compiled,
pre-bound kernel (:mod:`repro.codegen`), and everything else runs its
already-frozen command closures back to back.  The fast path is taken
only when resilience, the sanitizer and observability are all inactive;
any active cross-cutting layer routes the unit through the ordinary
per-constituent ``Plan._run_step`` so fault sites, sanitizer records and
per-kernel spans are exactly those of the unfused program.

Fusion is **on by default**; ``--no-fuse`` CLI flags and the
:func:`disabled` context manager (or ``Plan.fuse = False`` before first
execute) opt out per run.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.sanitizer.access import step_accesses
from repro.sanitizer.program import StepInfo
from repro.system.queue import RecordEventCommand


class _FusionConfig:
    """Process-global default; consulted at program-freeze time."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


FUSION = _FusionConfig()
_config_lock = threading.Lock()


def set_enabled(on: bool) -> None:
    """Set the process-wide fusion default for plans frozen after this."""
    with _config_lock:
        FUSION.enabled = bool(on)


@contextmanager
def disabled():
    """Freeze plans without fusion inside the block (CLI --no-fuse)."""
    with _config_lock:
        prev, FUSION.enabled = FUSION.enabled, False
    try:
        yield
    finally:
        with _config_lock:
            FUSION.enabled = prev


@dataclass
class FusedStep:
    """One replay dispatch unit: a chain of steps behind one closure.

    ``steps`` are the constituent ``_Step``s in issue order (length 1 is
    common — a lone kernel still gains the hoisted fast path and any
    specialized codegen).  ``fn`` is the precomposed fast-path closure;
    the slow path (any cross-cutting layer active) ignores it and runs
    the constituents through ``Plan._run_step`` unchanged.
    """

    steps: list
    queue: object
    pid: str
    label: str
    site: str
    fn: Callable[[], None]
    specialized: bool = False
    kind: str = "fused"
    sites: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.sites:
            self.sites = tuple(s.site for s in self.steps)


def _step_info(step) -> StepInfo:
    return StepInfo(
        kind=step.kind,
        label=step.label,
        container=step.container,
        rank=step.rank,
        view=step.view,
        msg=step.msg,
        halo_field=step.halo_field,
    )


def _accesses(step):
    try:
        return step_accesses(_step_info(step))
    except Exception:  # noqa: BLE001 - unknown step shape: assume the worst
        return None


def _conflicts(chain_acc, other_acc) -> bool:
    """Do two access sets share a region atom with a write on either side?"""
    if chain_acc is None or other_acc is None:
        return True  # could not prove the footprint: veto the fusion
    writes = {a.region for a in chain_acc if a.write}
    touched = {a.region for a in chain_acc}
    for a in other_acc:
        if a.region in writes or (a.write and a.region in touched):
            return True
    return False


def _records_only_between(queue, pos_of, a_cmd, b_cmd) -> bool:
    lo, hi = pos_of[a_cmd], pos_of[b_cmd]
    return all(isinstance(c, RecordEventCommand) for c in queue.commands[lo + 1 : hi])


def build_chains(program) -> list[list]:
    """Group ``program.steps`` into maximal legal fusion chains.

    One chain may stay *open* per queue while other queues' steps issue
    in between (the interleaved steps are what the access-token check
    guards against); a chain closes when its queue issues a step that
    cannot legally extend it, or at end of program.  Chains are returned
    in head-issue order, which is the serial dispatch order.
    """
    # per-queue command positions, for the records-only interior test
    pos_of: dict = {}
    for q in program.queues:
        for i, cmd in enumerate(q.commands):
            pos_of[cmd] = i
    acc_cache: dict[int, list | None] = {}

    def acc_of(step):
        key = id(step)
        if key not in acc_cache:
            acc_cache[key] = _accesses(step)
        return acc_cache[key]

    chains: list[list] = []
    # queue identity -> {steps, acc, pending-interleaved-steps}
    open_chains: dict[int, dict] = {}

    def close(qid: int) -> None:
        state = open_chains.pop(qid, None)
        if state is not None:
            chains.append(state["steps"])

    def note_interleaving(step, qid: int) -> None:
        for other_qid, state in open_chains.items():
            if other_qid != qid:
                state["pending"].append(step)

    # program.steps is already in enqueue == issue_seq order
    for step in program.steps:
        qid = id(step.queue)
        state = open_chains.get(qid)
        if state is not None:
            tail = state["steps"][-1]
            legal = step.kind == tail.kind and _records_only_between(
                step.queue, pos_of, tail.command, step.command
            )
            if legal:
                step_acc = acc_of(step)
                if state["acc"] is None or step_acc is None:
                    cand_acc = None
                else:
                    cand_acc = state["acc"] + step_acc
                for other in state["pending"]:
                    if _conflicts(cand_acc, acc_of(other)):
                        legal = False
                        break
            if legal:
                state["steps"].append(step)
                state["acc"] = cand_acc
                state["pending"] = []
                note_interleaving(step, qid)
                continue
            close(qid)
        open_chains[qid] = {"steps": [step], "acc": acc_of(step), "pending": []}
        note_interleaving(step, qid)
    for qid in list(open_chains):
        close(qid)
    chains.sort(key=lambda c: c[0].command.issue_seq)
    return chains


def _compose(steps) -> tuple[Callable[[], None], bool]:
    """The fast-path closure for one chain; True when codegen-specialized."""
    if all(s.kind == "copy" for s in steps) and len(steps) > 1:
        fld = steps[0].halo_field
        batched = getattr(fld, "batched_halo_fn", None)
        if batched is not None and all(s.halo_field is fld for s in steps):
            fn = batched([s.msg for s in steps])
            if fn is not None:
                return fn, False
    fns: list[Callable[[], None]] = []
    specialized = False
    for s in steps:
        fn = None
        if s.kind == "kernel" and not s.virtual and s.container is not None:
            hook = getattr(s.container, "specialize", None)
            if hook is not None:
                span = s.container.index_data.span_for(s.rank, s.view)
                fn = hook(s.rank, s.view, span)
                specialized = specialized or fn is not None
        fns.append(fn if fn is not None else s.command.fn)
    if len(fns) == 1:
        return fns[0], specialized

    def run_chain(fns=tuple(fns)):
        for f in fns:
            f()

    return run_chain, specialized


def fuse_program(program) -> None:
    """Annotate a compiled program with its fused dispatch plan, in place.

    Populates ``program.dispatch`` (list of :class:`FusedStep`),
    ``program.fused_heads`` / ``program.fused_members`` (head-command ->
    unit map and the set of non-head member commands, for the parallel
    engine callback), and the ``fused_steps`` / ``dispatch_units`` /
    ``fusion_ratio`` schedule stats.
    """
    chains = build_chains(program)
    dispatch: list[FusedStep] = []
    for chain in chains:
        fn, specialized = _compose(chain)
        head = chain[0]
        if len(chain) == 1:
            label = head.label
        else:
            label = f"fused[{len(chain)}]:{head.label}"
        dispatch.append(
            FusedStep(
                steps=chain,
                queue=head.queue,
                pid=head.pid,
                label=label,
                site=head.site if len(chain) == 1 else f"fused:{head.site}+{len(chain) - 1}",
                fn=fn,
                specialized=specialized,
            )
        )
    program.dispatch = dispatch
    program.fused_heads = {u.steps[0].command: u for u in dispatch}
    program.fused_members = {s.command for u in dispatch for s in u.steps[1:]}
    stats = program.stats
    stats.fused_steps = sum(len(u.steps) for u in dispatch if len(u.steps) > 1)
    stats.dispatch_units = len(dispatch)
    stats.fusion_ratio = (len(program.steps) / len(dispatch)) if dispatch else 1.0
