"""Multi-GPU graph construction (paper V-B, Fig 4c).

Transforms the user's Container sequence into a graph that is correct on
a multi-GPU back end: before every StencilOp whose read field has stale
halos, a halo-update node is inserted.  Halo nodes read the field's
payload (its boundary segments, on the source rank) and write the
field's halo slots (on the destination rank); feeding the op sequence
through the generic dependency builder then produces every required
ordering — writer->halo (RaW), halo->stencil (RaW on the halo slots),
stencil->next-writer (WaR) and halo->next-writer (WaR) — with the right
per-rank scopes.
"""

from __future__ import annotations

from repro import observability as _obs
from repro.domain.halo import field_exchanges_halo
from repro.sets import Container, Pattern
from repro.system import Backend

from .depgraph import DepGraph, GraphNode, NodeKind, build_dependency_graph, containers_to_nodes


def needs_halo_nodes(backend: Backend, field) -> bool:
    """A field needs halo updates only if partitions actually exchange data.

    Delegates to :func:`repro.domain.halo.field_exchanges_halo` — the
    same predicate the race sanitizer uses to decide which stencil reads
    touch halo regions, so graph construction and race checking can
    never drift apart on this rule.
    """
    return backend.num_devices > 1 and field_exchanges_halo(field)


def expand_with_halo_nodes(containers: list[Container], backend: Backend) -> list[GraphNode]:
    """Insert halo-update ops before stencil ops with stale halos.

    Coherency tracking: a field's halo starts *stale* (the Skeleton cannot
    know what happened before it ran), becomes fresh after a halo update,
    and stale again after any write to the field.  A second stencil read
    with no intervening write reuses the fresh halo (no duplicate node).
    """
    ops: list[GraphNode] = []
    fresh: set[int] = set()
    for node in containers_to_nodes(containers):
        for tok in node.container.tokens():
            if tok.access.writes:
                fresh.discard(tok.data.uid)
        for tok in node.container.tokens():
            if tok.pattern is not Pattern.STENCIL:
                continue
            fld = tok.data
            if not needs_halo_nodes(backend, fld):
                continue
            if fld.uid in fresh:
                continue
            ops.append(GraphNode(name=f"halo({fld.name})", kind=NodeKind.HALO, halo_field=fld))
            fresh.add(fld.uid)
        ops.append(node)
    return ops


def build_multi_gpu_graph(containers: list[Container], backend: Backend) -> DepGraph:
    """Halo-complete dependency graph, before OCC optimisation."""
    if not containers:
        raise ValueError("a skeleton needs at least one container")
    names = [c.name for c in containers]
    if len(set(names)) != len(names):
        raise ValueError(f"container names must be unique within a skeleton, got {names}")
    with _obs.span("skeleton.compile.halo_expansion", cat="compile"):
        ops = expand_with_halo_nodes(containers, backend)
    with _obs.span("skeleton.compile.depgraph", cat="compile", nodes=len(ops)):
        return build_dependency_graph(ops)
