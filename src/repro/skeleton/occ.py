"""OCC (overlap of computation and communication) graph transforms (paper V-B).

All three optimisations are built from one primitive — splitting a node
into an INTERNAL-view launch and a BOUNDARY-view launch — applied to
progressively more of the graph:

* ``STANDARD``: split each stencil node; only its boundary half depends
  on the halo update, so internal cells compute while halos fly.
* ``EXTENDED``: additionally split the map nodes *feeding* each halo
  update; the halo only needs the map's boundary cells, so it can start
  right after the (small) boundary map, overlapping the internal map too.
* ``TWO_WAY``: additionally split map/reduce nodes *consuming* the
  stencil's output; their internal halves chain after the internal
  stencil, extending the overlap window past the stencil.  A split
  reduction gains an internal->boundary data dependency and its boundary
  half accumulates instead of assigning.

Scheduling hints (orange arrows in Fig 4d) are added as SCHED edges:
they do not synchronise anything, they bias the task-list order so the
launch sequence actually realises the overlap.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sets import DataView, Pattern, ReduceMode

from .depgraph import DepGraph, DepKind, GraphNode, NodeKind, Scope


class Occ(enum.Enum):
    """Overlap-of-computation-and-communication level (paper V-B)."""

    NONE = "none"
    STANDARD = "standard"
    EXTENDED = "extended"
    TWO_WAY = "two-way-extended"

    @property
    def level(self) -> int:
        return [Occ.NONE, Occ.STANDARD, Occ.EXTENDED, Occ.TWO_WAY].index(self)

    @classmethod
    def parse(cls, text: str) -> "Occ":
        """Resolve a CLI spelling (value or member name) to a level."""
        needle = text.strip().lower()
        for occ in cls:
            if needle in (occ.value, occ.name.lower(), occ.name.lower().replace("_", "-")):
                return occ
        supported = ", ".join(o.value for o in cls)
        raise ValueError(f"unknown OCC level {text!r}; expected one of: {supported}")


@dataclass
class OccReport:
    """What the transform did — useful for tests and ablation output."""

    occ: Occ = Occ.NONE
    split_stencils: list[str] = field(default_factory=list)
    split_pre_maps: list[str] = field(default_factory=list)
    split_post_nodes: list[str] = field(default_factory=list)


def _clone(node: GraphNode, view: DataView) -> GraphNode:
    suffix = "internal" if view is DataView.INTERNAL else "boundary"
    return GraphNode(
        name=f"{node.name}.{suffix}",
        kind=node.kind,
        container=node.container,
        view=view,
        reduce_mode=node.reduce_mode,
        halo_field=node.halo_field,
        seq=node.seq,
    )


def _split(graph: DepGraph, node: GraphNode):
    """Remove ``node``; return its halves and its former edges for routing."""
    ins = [(p, *graph.edge_info(p, node)) for p in graph.g.predecessors(node)]
    outs = [(c, *graph.edge_info(node, c)) for c in graph.g.successors(node)]
    graph.g.remove_node(node)
    n_int = graph.add_node(_clone(node, DataView.INTERNAL))
    n_bnd = graph.add_node(_clone(node, DataView.BOUNDARY))
    return n_int, n_bnd, ins, outs


def _add(graph: DepGraph, a: GraphNode, b: GraphNode, kinds, scopes) -> None:
    for kind in kinds:
        for scope in scopes:
            graph.add_edge(a, b, kind, scope)


def _splittable(node: GraphNode) -> bool:
    return node.kind is NodeKind.COMPUTE and node.view is DataView.STANDARD


def _wire_reduce_halves(graph: DepGraph, first: GraphNode, second: GraphNode) -> None:
    """Reduction semantics for a split node: halves share the partial
    buffer, so whichever half launches first must assign and the other
    accumulate, with a data dependency enforcing that order.  This
    applies to *any* split of a container carrying a reduce target —
    including hybrids that also stencil-read (e.g. a residual-norm
    container), which the STANDARD transform splits as stencils."""
    if any(t.pattern is Pattern.REDUCE for t in first.container.tokens()):
        graph.add_edge(first, second, DepKind.RAW, Scope.LOCAL)
        first.reduce_mode = ReduceMode.ASSIGN
        second.reduce_mode = ReduceMode.ACCUMULATE


def apply_occ(graph: DepGraph, occ: Occ) -> OccReport:
    """Rewrite ``graph`` in place according to the OCC level."""
    report = OccReport(occ=occ)
    if occ is Occ.NONE:
        return report

    # -- STANDARD: split stencil nodes fed by a halo update ---------------
    stencil_halves: dict[int, tuple[GraphNode, GraphNode]] = {}
    stencils = [
        n
        for n in graph.nodes
        if _splittable(n)
        and n.pattern is Pattern.STENCIL
        and any(p.kind is NodeKind.HALO for p in graph.parents(n))
    ]
    for s in stencils:
        halo_parents = {p for p in graph.parents(s) if p.kind is NodeKind.HALO}
        s_int, s_bnd, ins, outs = _split(graph, s)
        for p, kinds, scopes in ins:
            if p in halo_parents:
                _add(graph, p, s_bnd, kinds, scopes)  # only boundary cells read halos
            else:
                _add(graph, p, s_int, kinds, scopes)
                _add(graph, p, s_bnd, kinds, scopes)
        for c, kinds, scopes in outs:
            if c.kind is NodeKind.HALO:
                # a halo update only reads the writer's *boundary* cells,
                # so it needs just the boundary half — this is what lets
                # an unrolled next iteration's exchange start early
                _add(graph, s_bnd, c, kinds, scopes)
            else:
                _add(graph, s_int, c, kinds, scopes)
                _add(graph, s_bnd, c, kinds, scopes)
        graph.add_edge(s_int, s_bnd, DepKind.SCHED)
        _wire_reduce_halves(graph, s_int, s_bnd)
        stencil_halves[s.uid] = (s_int, s_bnd)
        report.split_stencils.append(s.name)

    if occ.level >= Occ.EXTENDED.level:
        # -- EXTENDED: split the map writers feeding each halo node --------
        for halo in [n for n in graph.nodes if n.kind is NodeKind.HALO]:
            writers = [
                p
                for p in graph.parents(halo)
                if _splittable(p)
                and p.pattern is Pattern.MAP
                and DepKind.RAW in graph.edge_info(p, halo)[0]
            ]
            for w in writers:
                w_int, w_bnd, ins, outs = _split(graph, w)
                for p, kinds, scopes in ins:
                    _add(graph, p, w_int, kinds, scopes)
                    _add(graph, p, w_bnd, kinds, scopes)
                for c, kinds, scopes in outs:
                    if c.kind is NodeKind.HALO:
                        _add(graph, w_bnd, c, kinds, scopes)  # halos only read boundary cells
                    else:
                        _add(graph, w_int, c, kinds, scopes)
                        _add(graph, w_bnd, c, kinds, scopes)
                graph.add_edge(w_bnd, w_int, DepKind.SCHED)  # launch boundary first
                _wire_reduce_halves(graph, w_bnd, w_int)
                report.split_pre_maps.append(w.name)

    if occ.level >= Occ.TWO_WAY.level:
        # -- TWO_WAY: split map/reduce consumers of each split stencil -----
        for s_int, s_bnd in stencil_halves.values():
            consumers = [
                c
                for c in graph.children(s_int)
                if _splittable(c)
                and c.pattern in (Pattern.MAP, Pattern.REDUCE)
                and graph.has_edge(s_bnd, c)
                and DepKind.RAW in graph.edge_info(s_int, c)[0]
            ]
            for node in consumers:
                c_int, c_bnd, ins, outs = _split(graph, node)
                for p, kinds, scopes in ins:
                    if p is s_int:
                        _add(graph, p, c_int, kinds, scopes)
                        if DepKind.WAR in kinds:
                            # a stencil half READS across the view line
                            # (neighbourhoods straddle internal/boundary),
                            # so a consumer half overwriting the stencil's
                            # input must also wait on the *other* half
                            _add(graph, p, c_bnd, (DepKind.WAR,), scopes)
                    elif p is s_bnd:
                        _add(graph, p, c_bnd, kinds, scopes)
                        if DepKind.WAR in kinds:
                            _add(graph, p, c_int, (DepKind.WAR,), scopes)
                    else:
                        _add(graph, p, c_int, kinds, scopes)
                        _add(graph, p, c_bnd, kinds, scopes)
                for c, kinds, scopes in outs:
                    if c.kind is NodeKind.HALO:
                        _add(graph, c_bnd, c, kinds, scopes)
                    else:
                        _add(graph, c_int, c, kinds, scopes)
                        _add(graph, c_bnd, c, kinds, scopes)
                _wire_reduce_halves(graph, c_int, c_bnd)
                graph.add_edge(c_int, c_bnd, DepKind.SCHED)
                report.split_post_nodes.append(node.name)

    return report
