"""Scheduling a multi-GPU graph onto streams and events (paper V-C).

The greedy three-phase algorithm of the paper:

a) *Mapping nodes to streams* — BFS levels over the data-dependency
   arrows; the widest level sets the stream count; nodes prefer a
   parent's stream to save synchronisations.
b) *Organising event synchronisation* — for every data dependency whose
   producer and consumer pieces land on different queues, the producer
   records a completion event and the consumer waits on it; same-queue
   dependencies ride on stream FIFO order for free.
c) *Task-list order* — BFS levels again, this time over data + hint
   edges; the host enqueues tasks level by level, which is what turns
   the OCC hints into an actual launch order.

Everything is wired at *piece* granularity: a compute node contributes
one piece per device rank (its view-restricted launch), a halo node one
piece per transfer message.  Scopes on the graph edges say which ranks a
dependency couples (same-rank for compute-compute, message source/
destination for halo edges).  A piece that is empty on some rank (e.g. a
BOUNDARY launch on a border device) is transparent: its dependencies
flow through to its consumers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observability as _obs
from repro import resilience as _res
from repro.sets import Container, DataView, ReduceMode
from repro.sets.launch import wrap_kernel_faults
from repro.sets.loader import Loader
from repro.system import Backend, CommandQueue, Event

from .depgraph import DepGraph, GraphNode, NodeKind, Scope

PieceKey = tuple  # ("c", node_uid, rank) | ("h", node_uid, msg_index)


@dataclass
class ScheduleStats:
    num_streams: int = 0
    num_kernels: int = 0
    num_copies: int = 0
    num_events: int = 0
    num_waits: int = 0
    waits_skipped_same_queue: int = 0
    kernel_bytes: float = 0.0
    kernel_flops: float = 0.0
    copy_bytes: int = 0


@dataclass
class ExecutionResult:
    queues: list[CommandQueue]
    stats: ScheduleStats
    plan: "Plan"


def _launch_compute_piece(
    container: Container,
    queue: CommandQueue,
    rank: int,
    view: DataView,
    reduce_mode: ReduceMode,
    label: str,
) -> bool:
    """Enqueue one rank's view-restricted launch of a container."""
    span = container.index_data.span_for(rank, view)
    if span.is_empty:
        return False
    cost = container.cost_for(rank, view)
    if getattr(container.index_data, "virtual", False):
        kernel = lambda: None  # noqa: E731 - timing-only record
    else:
        loader = Loader(rank=rank, view=view, reduce_mode=reduce_mode)
        compute = container.loading(loader)

        def kernel(compute=compute, span=span):
            for piece in span.pieces():
                compute(piece)

        if _res.RES.active:
            kernel = wrap_kernel_faults(kernel, container.name, container.tokens(), rank)

    queue.enqueue_kernel(label, kernel, cost)
    return True


class Plan:
    """A compiled schedule for one multi-GPU graph on one backend.

    ``execute()`` replays the schedule: it creates fresh queues/events,
    enqueues every piece with its event wiring, and (on an eager backend)
    thereby runs the computation.  The returned queues feed the DES.
    """

    def __init__(self, graph: DepGraph, backend: Backend, reuse_parent_streams: bool = True):
        self.graph = graph
        self.backend = backend
        self.reuse_parent_streams = reuse_parent_streams
        self.levels = graph.bfs_levels(with_hints=False)
        self.num_streams = max(len(lvl) for lvl in self.levels)
        self.stream_of: dict[int, int] = {}
        self._assign_streams()
        self.order: list[GraphNode] = [n for lvl in graph.bfs_levels(with_hints=True) for n in lvl]
        self._nodes_by_uid: dict[int, GraphNode] = {n.uid: n for n in graph.nodes}
        self._halo_msgs: dict[int, list] = {
            n.uid: n.halo_field.halo_messages() for n in graph.nodes if n.kind is NodeKind.HALO
        }
        self._pieces: dict[int, list[PieceKey]] = {}
        self._empty: set[PieceKey] = set()
        self._build_pieces()
        self._raw_deps: dict[PieceKey, set[PieceKey]] = {}
        self._build_raw_deps()
        self._deps: dict[PieceKey, set[PieceKey]] = {}
        self._resolve_empty_pieces()

    # -- phase a: stream mapping ----------------------------------------------
    def _assign_streams(self) -> None:
        for li, level in enumerate(self.levels):
            used: set[int] = set()
            for node in level:
                choice = None
                if self.reuse_parent_streams:
                    # prefer a parent's stream: a same-stream dependency
                    # rides on FIFO order and needs no event (paper V-C a)
                    for p in self.graph.parents(node):
                        s = self.stream_of.get(p.uid)
                        if s is not None and s not in used:
                            choice = s
                            break
                if choice is None:
                    # round-robin ablation baseline when reuse is disabled
                    start = li % self.num_streams if not self.reuse_parent_streams else 0
                    choice = next(
                        (start + s) % self.num_streams
                        for s in range(self.num_streams)
                        if (start + s) % self.num_streams not in used
                    )
                self.stream_of[node.uid] = choice
                used.add(choice)

    # -- pieces -------------------------------------------------------------
    def _build_pieces(self) -> None:
        for node in self.graph.nodes:
            pieces: list[PieceKey] = []
            if node.kind is NodeKind.COMPUTE:
                for rank in range(self.backend.num_devices):
                    key = ("c", node.uid, rank)
                    pieces.append(key)
                    if node.container.index_data.span_for(rank, node.view).is_empty:
                        self._empty.add(key)
            else:
                msgs = self._halo_msgs[node.uid]
                for i in range(len(msgs)):
                    pieces.append(("h", node.uid, i))
                if not msgs:
                    # degenerate halo node (e.g. empty sparse boundary):
                    # represent it with empty per-rank pieces so deps flow
                    for rank in range(self.backend.num_devices):
                        key = ("c", node.uid, rank)
                        pieces.append(key)
                        self._empty.add(key)
            self._pieces[node.uid] = pieces

    def _queue_key(self, piece: PieceKey):
        kind, uid, idx = piece
        if kind == "c":
            node = self._node_by_uid(uid)
            if node.kind is NodeKind.HALO:  # degenerate empty halo piece
                return ("halo", uid, "none", idx)
            return ("stream", self.stream_of[uid], idx)
        msg = self._halo_msgs[uid][idx]
        direction = "up" if msg.dst_rank > msg.src_rank else "down"
        return ("halo", uid, direction, msg.src_rank)

    def _node_by_uid(self, uid: int) -> GraphNode:
        return self._nodes_by_uid[uid]

    # -- phase b: dependency wiring ----------------------------------------
    def _pairs_for_edge(self, a: GraphNode, b: GraphNode, scopes: set[Scope]):
        n = self.backend.num_devices
        a_halo = a.kind is NodeKind.HALO and self._halo_msgs[a.uid]
        b_halo = b.kind is NodeKind.HALO and self._halo_msgs[b.uid]
        if (a_halo or b_halo) and Scope.LOCAL in scopes:
            # defensive: a LOCAL-scoped edge touching a halo node should
            # not arise; if it ever does, couple both endpoints fully
            scopes = scopes | {Scope.HALO_SRC, Scope.HALO_DST}
        pairs: list[tuple[PieceKey, PieceKey]] = []
        if not a_halo and not b_halo:
            for r in range(n):
                pairs.append((("c", a.uid, r), ("c", b.uid, r)))
        elif b_halo and not a_halo:
            for i, msg in enumerate(self._halo_msgs[b.uid]):
                if Scope.HALO_SRC in scopes:
                    pairs.append((("c", a.uid, msg.src_rank), ("h", b.uid, i)))
                if Scope.HALO_DST in scopes:
                    pairs.append((("c", a.uid, msg.dst_rank), ("h", b.uid, i)))
        elif a_halo and not b_halo:
            for i, msg in enumerate(self._halo_msgs[a.uid]):
                if Scope.HALO_DST in scopes:
                    pairs.append((("h", a.uid, i), ("c", b.uid, msg.dst_rank)))
                if Scope.HALO_SRC in scopes:
                    pairs.append((("h", a.uid, i), ("c", b.uid, msg.src_rank)))
        else:  # halo -> halo: conservative full coupling
            for i in range(len(self._halo_msgs[a.uid])):
                for j in range(len(self._halo_msgs[b.uid])):
                    pairs.append((("h", a.uid, i), ("h", b.uid, j)))
        return pairs

    def _build_raw_deps(self) -> None:
        for node in self.graph.nodes:
            for piece in self._pieces[node.uid]:
                self._raw_deps.setdefault(piece, set())
        for a, b, _kinds, scopes in self.graph.data_edges():
            for dep, cons in self._pairs_for_edge(a, b, scopes):
                if dep in self._raw_deps.get(cons, set()):
                    continue
                self._raw_deps.setdefault(cons, set()).add(dep)

    def _resolve_empty_pieces(self) -> None:
        """Dependencies of an empty piece flow through to its consumers."""
        resolved: dict[PieceKey, set[PieceKey]] = {}
        for node in self.order:
            for piece in self._pieces[node.uid]:
                out: set[PieceKey] = set()
                for dep in self._raw_deps.get(piece, ()):
                    if dep in self._empty:
                        out |= resolved.get(dep, set())
                    else:
                        out.add(dep)
                resolved[piece] = out
        self._deps = resolved

    def dependencies(self, piece: PieceKey) -> set[PieceKey]:
        """Effective (non-empty) dependency pieces of a piece."""
        return set(self._deps.get(piece, ()))

    # -- phase c: execution in task-list order --------------------------------
    def execute(self, eager: bool = True) -> ExecutionResult:
        with _obs.span("plan.execute", cat="phase", eager=eager):
            return self._execute(eager=eager)

    def _execute(self, eager: bool) -> ExecutionResult:
        stats = ScheduleStats(num_streams=self.num_streams)
        queues: dict[tuple, CommandQueue] = {}
        events: dict[PieceKey, Event] = {}

        # precompute which producer pieces need completion events
        needs_event: set[PieceKey] = set()
        for cons, deps in self._deps.items():
            if cons in self._empty:
                continue
            cq = self._queue_key(cons)
            for dep in deps:
                if self._queue_key(dep) != cq:
                    needs_event.add(dep)

        def get_queue(qkey) -> CommandQueue:
            if qkey not in queues:
                if qkey[0] == "stream":
                    _, sid, rank = qkey
                    name = f"s{sid}[{rank}]"
                else:
                    _, uid, direction, rank = qkey
                    name = f"h{uid}.{direction}[{rank}]"
                queues[qkey] = self.backend.new_queue(rank, name=name, eager=eager)
            return queues[qkey]

        for node in self.order:
            for piece in self._pieces[node.uid]:
                if piece in self._empty:
                    continue
                qkey = self._queue_key(piece)
                q = get_queue(qkey)
                for dep in sorted(self._deps[piece], key=repr):
                    if self._queue_key(dep) == qkey:
                        stats.waits_skipped_same_queue += 1
                        continue
                    q.wait_event(events[dep])
                    stats.num_waits += 1
                kind, uid, idx = piece
                if kind == "c":
                    label = f"{node.name}[{idx}]"
                    with _obs.span(label, cat="kernel", pid=f"device{idx}", tid=q.name):
                        _launch_compute_piece(node.container, q, idx, node.view, node.reduce_mode, label)
                    stats.num_kernels += 1
                    cost = node.container.cost_for(idx, node.view)
                    stats.kernel_bytes += cost.bytes_moved
                    stats.kernel_flops += cost.flops
                else:
                    msg = self._halo_msgs[uid][idx]
                    # node uid disambiguates repeated halo updates of one field
                    with _obs.span(
                        f"{msg.name}#{uid}",
                        cat="copy",
                        pid=f"device{msg.src_rank}",
                        tid=q.name,
                        nbytes=msg.nbytes,
                    ):
                        q.enqueue_copy(
                            f"{msg.name}#{uid}",
                            msg.fn,
                            self.backend.device(msg.src_rank),
                            self.backend.device(msg.dst_rank),
                            msg.nbytes,
                        )
                    if _obs.OBS.active:
                        m = _obs.OBS.metrics
                        m.counter("halo_bytes_sent", src=str(msg.src_rank), dst=str(msg.dst_rank)).inc(msg.nbytes)
                        m.counter("halo_messages", src=str(msg.src_rank), dst=str(msg.dst_rank)).inc()
                    stats.num_copies += 1
                    stats.copy_bytes += msg.nbytes
                if piece in needs_event:
                    ev = Event(f"{node.name}:{idx}")
                    q.record_event(ev)
                    events[piece] = ev
                    stats.num_events += 1

        return ExecutionResult(queues=list(queues.values()), stats=stats, plan=self)
