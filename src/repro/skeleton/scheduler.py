"""Scheduling a multi-GPU graph onto streams and events (paper V-C).

The greedy three-phase algorithm of the paper:

a) *Mapping nodes to streams* — BFS levels over the data-dependency
   arrows; the widest level sets the stream count; nodes prefer a
   parent's stream to save synchronisations.
b) *Organising event synchronisation* — for every data dependency whose
   producer and consumer pieces land on different queues, the producer
   records a completion event and the consumer waits on it; same-queue
   dependencies ride on stream FIFO order for free.
c) *Task-list order* — BFS levels again, this time over data + hint
   edges; the host enqueues tasks level by level, which is what turns
   the OCC hints into an actual launch order.

Everything is wired at *piece* granularity: a compute node contributes
one piece per device rank (its view-restricted launch), a halo node one
piece per transfer message.  Scopes on the graph edges say which ranks a
dependency couples (same-rank for compute-compute, message source/
destination for halo edges).  A piece that is empty on some rank (e.g. a
BOUNDARY launch on a border device) is transparent: its dependencies
flow through to its consumers.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable
from dataclasses import dataclass, field

import threading

from repro import observability as _obs
from repro import resilience as _res
from repro.observability.flight import FLIGHT as _FLIGHT
from repro.sanitizer.state import SAN as _SAN
from repro.sets import Container, DataView, ReduceMode
from repro.sets.launch import wrap_kernel_faults
from repro.sets.loader import Loader
from repro.system import (
    Backend,
    Command,
    CommandQueue,
    Event,
    ParallelEngine,
    ParallelFallbackWarning,
    ProcessEngine,
    ProcessFallbackWarning,
    process_fallback_reason,
)
from repro.system.queue import _site_name

from .depgraph import DepGraph, GraphNode, NodeKind, Scope
from .fusion import FUSION, FusedStep, fuse_program

PieceKey = tuple  # ("c", node_uid, rank) | ("h", node_uid, msg_index)


@dataclass
class ScheduleStats:
    num_streams: int = 0
    num_kernels: int = 0
    num_copies: int = 0
    num_events: int = 0
    num_waits: int = 0
    waits_skipped_same_queue: int = 0
    kernel_bytes: float = 0.0
    kernel_flops: float = 0.0
    copy_bytes: int = 0
    # fusion annotations (populated by repro.skeleton.fusion.fuse_program)
    fused_steps: int = 0  # constituent steps living inside multi-step units
    dispatch_units: int = 0  # len(program.dispatch) after fusion
    fusion_ratio: float = 1.0  # steps per dispatch unit (>= 1.0)


@dataclass
class ExecutionResult:
    queues: list[CommandQueue]
    stats: ScheduleStats
    plan: "Plan"


@dataclass
class _Step:
    """One replayable kernel or copy of a compiled program.

    Everything a replay needs is resolved at freeze time: the target
    queue, the observability span arguments, and the resilience
    injection-site key (computed with the same :func:`_site_name`
    normalisation the eager enqueue path used, so seeded fault plans
    reproduce identically across the refactor).
    """

    kind: str  # "kernel" | "copy"
    queue: CommandQueue
    label: str
    pid: str
    site: str
    ranks: tuple[int, ...]
    command: Command | None = None
    # kernel steps only
    container: Container | None = None
    rank: int = -1
    virtual: bool = False
    view: DataView | None = None
    # copy steps only
    msg: object | None = None
    halo_field: object | None = None
    # per-step metrics-handle cache: (registry, *handles), re-resolved when
    # the registry identity changes (obs.enable(reset=True) swaps it)
    metrics_cache: tuple | None = None


@dataclass
class CompiledProgram:
    """A frozen stream/event schedule, replayable without re-derivation.

    Queues, commands and events are created exactly once; every
    ``Plan.execute()`` replays the same objects.  Event *signals* are
    runtime state reset per parallel replay; the recording metadata and
    dependency wiring never change.

    When the fusion pass ran at freeze time, ``dispatch`` holds the
    batched replay plan (see :mod:`repro.skeleton.fusion`); ``steps`` /
    ``step_of`` / ``queues`` stay per-constituent either way, so the
    DES, sanitizer and tuner views of the program are fusion-invariant.
    """

    queues: list[CommandQueue]
    steps: list[_Step]
    step_of: dict[Command, _Step]
    events: dict[PieceKey, Event]
    stats: ScheduleStats
    dispatch: list[FusedStep] | None = None
    fused_heads: dict[Command, FusedStep] = field(default_factory=dict)
    fused_members: set[Command] = field(default_factory=set)


class Plan:
    """A compiled schedule for one multi-GPU graph on one backend.

    The stream mapping, piece dependencies and task order are derived
    once in ``__init__``; the first ``execute()`` freezes them into a
    :class:`CompiledProgram` (queues, commands, events, per-step replay
    metadata), and every execution — including the first — replays that
    program.  A 1000-iteration solver loop therefore pays the graph and
    enqueue cost once, not per iteration.

    ``execute(mode="serial")`` replays on the host in task-list order
    (exact historical semantics); ``mode="parallel"`` hands the frozen
    queues to a :class:`~repro.system.ParallelEngine`, which runs one
    worker thread per device and honours only the recorded stream/event
    wiring; ``mode="process"`` hands them to a
    :class:`~repro.system.ProcessEngine`, whose forked per-device worker
    processes replay against shared-memory payloads and so execute truly
    concurrently (no GIL).  The returned queues feed the DES either way.
    """

    def __init__(self, graph: DepGraph, backend: Backend, reuse_parent_streams: bool = True):
        self.graph = graph
        self.backend = backend
        self.reuse_parent_streams = reuse_parent_streams
        #: execution mode used when ``execute``/``run`` gets ``mode=None``;
        #: the autotuner overwrites this with the mode it selected
        self.default_mode = "serial"
        #: tri-state fusion override: None follows the process default
        #: (``fusion.FUSION.enabled``) at freeze time; set True/False
        #: before the first ``execute()`` to pin this plan either way
        self.fuse: bool | None = None
        self.levels = graph.bfs_levels(with_hints=False)
        self.num_streams = max(len(lvl) for lvl in self.levels)
        self.stream_of: dict[int, int] = {}
        self._assign_streams()
        self.order: list[GraphNode] = [n for lvl in graph.bfs_levels(with_hints=True) for n in lvl]
        self._nodes_by_uid: dict[int, GraphNode] = {n.uid: n for n in graph.nodes}
        self._halo_msgs: dict[int, list] = {
            n.uid: n.halo_field.halo_messages() for n in graph.nodes if n.kind is NodeKind.HALO
        }
        self._pieces: dict[int, list[PieceKey]] = {}
        self._empty: set[PieceKey] = set()
        self._build_pieces()
        self._raw_deps: dict[PieceKey, set[PieceKey]] = {}
        self._build_raw_deps()
        self._deps: dict[PieceKey, set[PieceKey]] = {}
        self._resolve_empty_pieces()
        self._program: CompiledProgram | None = None
        self._engine: ParallelEngine | None = None
        self._process_engine: ProcessEngine | None = None
        self._engine_lock = threading.Lock()

    # -- phase a: stream mapping ----------------------------------------------
    def _assign_streams(self) -> None:
        for li, level in enumerate(self.levels):
            used: set[int] = set()
            for node in level:
                choice = None
                if self.reuse_parent_streams:
                    # prefer a parent's stream: a same-stream dependency
                    # rides on FIFO order and needs no event (paper V-C a)
                    for p in self.graph.parents(node):
                        s = self.stream_of.get(p.uid)
                        if s is not None and s not in used:
                            choice = s
                            break
                if choice is None:
                    # round-robin ablation baseline when reuse is disabled
                    start = li % self.num_streams if not self.reuse_parent_streams else 0
                    choice = next(
                        (start + s) % self.num_streams
                        for s in range(self.num_streams)
                        if (start + s) % self.num_streams not in used
                    )
                self.stream_of[node.uid] = choice
                used.add(choice)

    # -- pieces -------------------------------------------------------------
    def _build_pieces(self) -> None:
        for node in self.graph.nodes:
            pieces: list[PieceKey] = []
            if node.kind is NodeKind.COMPUTE:
                for rank in range(self.backend.num_devices):
                    key = ("c", node.uid, rank)
                    pieces.append(key)
                    if node.container.index_data.span_for(rank, node.view).is_empty:
                        self._empty.add(key)
            else:
                msgs = self._halo_msgs[node.uid]
                for i in range(len(msgs)):
                    pieces.append(("h", node.uid, i))
                if not msgs:
                    # degenerate halo node (e.g. empty sparse boundary):
                    # represent it with empty per-rank pieces so deps flow
                    for rank in range(self.backend.num_devices):
                        key = ("c", node.uid, rank)
                        pieces.append(key)
                        self._empty.add(key)
            self._pieces[node.uid] = pieces

    def _queue_key(self, piece: PieceKey):
        kind, uid, idx = piece
        if kind == "c":
            node = self._node_by_uid(uid)
            if node.kind is NodeKind.HALO:  # degenerate empty halo piece
                return ("halo", uid, "none", idx)
            return ("stream", self.stream_of[uid], idx)
        msg = self._halo_msgs[uid][idx]
        direction = "up" if msg.dst_rank > msg.src_rank else "down"
        return ("halo", uid, direction, msg.src_rank)

    def _node_by_uid(self, uid: int) -> GraphNode:
        return self._nodes_by_uid[uid]

    # -- phase b: dependency wiring ----------------------------------------
    def _pairs_for_edge(self, a: GraphNode, b: GraphNode, scopes: set[Scope]):
        n = self.backend.num_devices
        a_halo = a.kind is NodeKind.HALO and self._halo_msgs[a.uid]
        b_halo = b.kind is NodeKind.HALO and self._halo_msgs[b.uid]
        if (a_halo or b_halo) and Scope.LOCAL in scopes:
            # defensive: a LOCAL-scoped edge touching a halo node should
            # not arise; if it ever does, couple both endpoints fully
            scopes = scopes | {Scope.HALO_SRC, Scope.HALO_DST}
        pairs: list[tuple[PieceKey, PieceKey]] = []
        if not a_halo and not b_halo:
            for r in range(n):
                pairs.append((("c", a.uid, r), ("c", b.uid, r)))
        elif b_halo and not a_halo:
            for i, msg in enumerate(self._halo_msgs[b.uid]):
                if Scope.HALO_SRC in scopes:
                    pairs.append((("c", a.uid, msg.src_rank), ("h", b.uid, i)))
                if Scope.HALO_DST in scopes:
                    pairs.append((("c", a.uid, msg.dst_rank), ("h", b.uid, i)))
        elif a_halo and not b_halo:
            for i, msg in enumerate(self._halo_msgs[a.uid]):
                if Scope.HALO_DST in scopes:
                    pairs.append((("h", a.uid, i), ("c", b.uid, msg.dst_rank)))
                if Scope.HALO_SRC in scopes:
                    pairs.append((("h", a.uid, i), ("c", b.uid, msg.src_rank)))
        else:  # halo -> halo: conservative full coupling
            for i in range(len(self._halo_msgs[a.uid])):
                for j in range(len(self._halo_msgs[b.uid])):
                    pairs.append((("h", a.uid, i), ("h", b.uid, j)))
        return pairs

    def _build_raw_deps(self) -> None:
        for node in self.graph.nodes:
            for piece in self._pieces[node.uid]:
                self._raw_deps.setdefault(piece, set())
        for a, b, _kinds, scopes in self.graph.data_edges():
            for dep, cons in self._pairs_for_edge(a, b, scopes):
                if dep in self._raw_deps.get(cons, set()):
                    continue
                self._raw_deps.setdefault(cons, set()).add(dep)

    def _resolve_empty_pieces(self) -> None:
        """Dependencies of an empty piece flow through to its consumers."""
        resolved: dict[PieceKey, set[PieceKey]] = {}
        for node in self.order:
            for piece in self._pieces[node.uid]:
                out: set[PieceKey] = set()
                for dep in self._raw_deps.get(piece, ()):
                    if dep in self._empty:
                        out |= resolved.get(dep, set())
                    else:
                        out.add(dep)
                resolved[piece] = out
        self._deps = resolved

    def dependencies(self, piece: PieceKey) -> set[PieceKey]:
        """Effective (non-empty) dependency pieces of a piece."""
        return set(self._deps.get(piece, ()))

    # -- compilation to a frozen program --------------------------------------
    @staticmethod
    def _make_kernel_fn(
        container: Container, rank: int, view: DataView, reduce_mode: ReduceMode, span
    ) -> Callable[[], None]:
        """Build the replayable kernel closure for one compute piece.

        The *loading* lambda runs inside the closure, per launch: scalar
        parameters flow into containers through mutable cells read at
        load time (see :mod:`repro.solvers.cg`), so freezing ``compute``
        itself would pin iteration-0 scalars forever.
        """

        def kernel() -> None:
            loader = Loader(rank=rank, view=view, reduce_mode=reduce_mode)
            compute = container.loading(loader)
            for piece in span.pieces():
                compute(piece)

        return kernel

    def _compile_program(self) -> CompiledProgram:
        """Freeze the schedule: queues, commands, events, replay steps.

        Runs once, lazily, on the first ``execute()``.  All queues are
        recorded (``eager=False``) — nothing computes here; the per-step
        metadata produced is what both replay modes consume.
        """
        stats = ScheduleStats(num_streams=self.num_streams)
        queues: dict[tuple, CommandQueue] = {}
        events: dict[PieceKey, Event] = {}
        steps: list[_Step] = []
        step_of: dict[Command, _Step] = {}

        # precompute which producer pieces need completion events
        needs_event: set[PieceKey] = set()
        for cons, deps in self._deps.items():
            if cons in self._empty:
                continue
            cq = self._queue_key(cons)
            for dep in deps:
                if self._queue_key(dep) != cq:
                    needs_event.add(dep)

        def get_queue(qkey) -> CommandQueue:
            if qkey not in queues:
                if qkey[0] == "stream":
                    _, sid, rank = qkey
                    name = f"s{sid}[{rank}]"
                else:
                    _, uid, direction, rank = qkey
                    name = f"h{uid}.{direction}[{rank}]"
                queues[qkey] = self.backend.new_queue(rank, name=name, eager=False)
            return queues[qkey]

        for node in self.order:
            for piece in self._pieces[node.uid]:
                if piece in self._empty:
                    continue
                qkey = self._queue_key(piece)
                q = get_queue(qkey)
                for dep in sorted(self._deps[piece], key=repr):
                    if self._queue_key(dep) == qkey:
                        stats.waits_skipped_same_queue += 1
                        continue
                    q.wait_event(events[dep])
                    stats.num_waits += 1
                kind, uid, idx = piece
                if kind == "c":
                    label = f"{node.name}[{idx}]"
                    cost = node.container.cost_for(idx, node.view)
                    virtual = bool(getattr(node.container.index_data, "virtual", False))
                    if virtual:
                        fn = lambda: None  # noqa: E731 - timing-only record
                    else:
                        fn = self._make_kernel_fn(
                            node.container,
                            idx,
                            node.view,
                            node.reduce_mode,
                            node.container.index_data.span_for(idx, node.view),
                        )
                    cmd = q.enqueue_kernel(label, fn, cost)
                    step = _Step(
                        kind="kernel",
                        queue=q,
                        label=label,
                        pid=f"device{idx}",
                        site=f"{_site_name(label)}@{idx}",
                        ranks=(idx,),
                        command=cmd,
                        container=node.container,
                        rank=idx,
                        virtual=virtual,
                        view=node.view,
                    )
                    stats.num_kernels += 1
                    stats.kernel_bytes += cost.bytes_moved
                    stats.kernel_flops += cost.flops
                else:
                    msg = self._halo_msgs[uid][idx]
                    # node uid disambiguates repeated halo updates of one field
                    name = f"{msg.name}#{uid}"
                    cmd = q.enqueue_copy(
                        name,
                        msg.fn,
                        self.backend.device(msg.src_rank),
                        self.backend.device(msg.dst_rank),
                        msg.nbytes,
                    )
                    step = _Step(
                        kind="copy",
                        queue=q,
                        label=name,
                        pid=f"device{msg.src_rank}",
                        site=f"{_site_name(name)}@{msg.src_rank}->{msg.dst_rank}",
                        ranks=(msg.src_rank, msg.dst_rank),
                        command=cmd,
                        msg=msg,
                        halo_field=node.halo_field,
                    )
                    stats.num_copies += 1
                    stats.copy_bytes += msg.nbytes
                steps.append(step)
                step_of[cmd] = step
                if piece in needs_event:
                    ev = Event(f"{node.name}:{idx}")
                    q.record_event(ev)
                    events[piece] = ev
                    stats.num_events += 1

        return CompiledProgram(
            queues=list(queues.values()), steps=steps, step_of=step_of, events=events, stats=stats
        )

    def _ensure_program(self) -> CompiledProgram:
        if self._program is None:
            with _obs.span("plan.compile_program", cat="phase"):
                program = self._compile_program()
                fuse = FUSION.enabled if self.fuse is None else self.fuse
                if fuse:
                    with _obs.span("plan.fuse_program", cat="phase"):
                        fuse_program(program)
                self._program = program
        return self._program

    # -- replay ----------------------------------------------------------------
    def _run_step(self, step: _Step) -> None:
        """Execute one frozen step with observability + resilience applied.

        Shared by both replay modes; in parallel mode it runs on the
        worker thread of the step's device (the tracer and metrics
        registry are thread-safe).
        """
        if _FLIGHT.enabled:
            # always-on black box: one ring slot per step, site key included
            _FLIGHT.record(step.pid, step.kind, step.site)
        if step.kind == "kernel":
            with _obs.span(step.label, cat="kernel", pid=step.pid, tid=step.queue.name) as sp:
                fn = step.command.fn
                if _res.RES.active:
                    if not step.virtual:
                        fn = wrap_kernel_faults(fn, step.container.name, step.container.tokens(), step.rank)
                    # launch-fault injection site: loss check + retry/backoff
                    _res.execute_command("launch", step.site, step.ranks, fn)
                else:
                    fn()
            if sp is not None:
                # labeled-series resolution hoisted: the handle is cached on
                # the step and re-resolved only when the registry is swapped
                m = _obs.OBS.metrics
                cache = step.metrics_cache
                if cache is None or cache[0] is not m:
                    cache = (
                        m,
                        m.histogram(
                            "kernel_seconds",
                            bounds=_obs.Histogram.TIME_BOUNDS,
                            device=step.pid,
                            kernel=step.label,
                        ),
                    )
                    step.metrics_cache = cache
                cache[1].observe(sp.duration)
        else:
            msg = step.msg
            with _obs.span(step.label, cat="copy", pid=step.pid, tid=step.queue.name, nbytes=msg.nbytes) as sp:
                if _res.RES.active:
                    # copy-fault injection site: both endpoints are loss-checked
                    _res.execute_command("copy", step.site, step.ranks, msg.fn)
                else:
                    msg.fn()
            if sp is not None:
                m = _obs.OBS.metrics
                cache = step.metrics_cache
                if cache is None or cache[0] is not m:
                    src, dst = str(msg.src_rank), str(msg.dst_rank)
                    cache = (
                        m,
                        m.counter("halo_bytes_sent", src=src, dst=dst),
                        m.counter("halo_messages", src=src, dst=dst),
                        m.histogram("copy_seconds", bounds=_obs.Histogram.TIME_BOUNDS, src=src, dst=dst),
                        m.histogram("copy_size_bytes", src=src, dst=dst),
                    )
                    step.metrics_cache = cache
                cache[1].inc(msg.nbytes)
                cache[2].inc()
                cache[3].observe(sp.duration)
                cache[4].observe(msg.nbytes)
        if _SAN.active:
            _SAN.record(step.command)

    def _run_fused(self, unit: FusedStep) -> None:
        """Execute one fused dispatch unit.

        Fast path (no cross-cutting layer active): one flight-ring slot
        for the unit, then its precomposed closure — this is the whole
        point of fusion.  Slow path (resilience, sanitizer or
        observability armed): the constituents run through
        :meth:`_run_step` unchanged, so fault sites re-raise with their
        original keys, the sanitizer records every merged command, and
        per-kernel spans/histograms are exactly the unfused ones (a
        ``cat="fused"`` envelope span marks multi-step units in traces).
        """
        if _res.RES.active or _SAN.active or _obs.OBS.active:
            if _obs.OBS.active and len(unit.steps) > 1:
                with _obs.span(
                    unit.label, cat="fused", pid=unit.pid, tid=unit.queue.name, fused=len(unit.steps)
                ):
                    for s in unit.steps:
                        self._run_step(s)
            else:
                for s in unit.steps:
                    self._run_step(s)
            return
        if _FLIGHT.enabled:
            _FLIGHT.record(unit.pid, "fused", unit.site)
        unit.fn()

    def _replay_serial(self, program: CompiledProgram) -> None:
        """Host-ordered replay: every step in task-list order (historical).

        With a fused dispatch plan the walk is over units instead of
        steps — each unit runs at its head's position, which the fusion
        legality rules prove is order-equivalent.
        """
        if program.dispatch is not None:
            for unit in program.dispatch:
                self._run_fused(unit)
        else:
            for step in program.steps:
                self._run_step(step)

    def _replay_parallel(self, program: CompiledProgram) -> None:
        """Engine replay: one worker per device, event-wired synchronisation."""
        if self._engine is None:
            # double-checked: two threads replaying one plan concurrently
            # must share a single engine, whose batch lock then serialises
            # their replays — two engines would race each other's event
            # signal resets mid-batch (caught by the replay stress test)
            with self._engine_lock:
                if self._engine is None:
                    self._engine = ParallelEngine()
        self._engine.execute(program.queues, run_command=self._make_run_command(program))

    def _make_run_command(self, program: CompiledProgram):
        """The engine callback that executes one kernel/copy command.

        With a fused dispatch plan, commands are batched by unit: the
        head command triggers the whole unit, members are no-ops at
        their original positions (their event records stay in place, so
        signals still fire only after the batched work completed at or
        before head position).
        """
        if program.dispatch is not None:
            heads, members = program.fused_heads, program.fused_members

            def run(cmd: Command) -> None:
                unit = heads.get(cmd)
                if unit is not None:
                    self._run_fused(unit)
                elif cmd not in members:
                    self._run_step(program.step_of[cmd])

            return run
        return lambda cmd: self._run_step(program.step_of[cmd])

    def _replay_process(self, program: CompiledProgram) -> None:
        """Process-engine replay: one worker *process* per device.

        The first replay forks persistent workers that inherit the
        compiled program (closures, fused units, C-specialized kernels)
        and replay it against shared-memory payloads; later replays
        reuse them.  Lazy single-engine init mirrors
        :meth:`_replay_parallel` for the same batch-serialisation
        reason.
        """
        if self._process_engine is None:
            with self._engine_lock:
                if self._process_engine is None:
                    self._process_engine = ProcessEngine()
        self._process_engine.execute(program.queues, run_command=self._make_run_command(program))

    def close_engines(self) -> None:
        """Retire this plan's replay engines deterministically (idempotent).

        Worker threads are daemons and worker processes are reaped by a
        GC finalizer, so skipping this is safe — but long-lived drivers
        and test teardown should call it under ``try/finally`` so forked
        workers and the shared event board never outlive the plan they
        serve.  The plan stays usable: the next replay lazily builds a
        fresh engine.
        """
        with self._engine_lock:
            engine, self._engine = self._engine, None
            process_engine, self._process_engine = self._process_engine, None
        try:
            if engine is not None:
                engine.close()
        finally:
            if process_engine is not None:
                process_engine.close()

    # -- phase c: execution -----------------------------------------------------
    def execute(self, eager: bool = True, mode: str | None = None) -> ExecutionResult:
        """Replay the compiled program (freezing it on first use).

        ``eager=False`` returns the recorded queues without running any
        kernel (timing-only).  ``mode="serial"`` replays on the host in
        task-list order; ``mode="parallel"`` uses the per-device worker
        thread engine; ``mode="process"`` uses one worker *process* per
        device over shared-memory payloads (the only mode that escapes
        the GIL); ``mode=None`` uses :attr:`default_mode` (serial unless
        the autotuner chose otherwise).  An armed resilience session
        forces serial replay with a
        :class:`~repro.system.ParallelFallbackWarning`, because rollback-
        and-replay recovery assumes host-ordered execution; process mode
        additionally falls back (with a
        :class:`~repro.system.ProcessFallbackWarning`) when the
        sanitizer recorder is armed or shared-memory backing is
        unavailable — see
        :func:`repro.system.process_fallback_reason`.
        """
        if mode is None:
            mode = self.default_mode
        if mode not in ("serial", "parallel", "process"):
            raise ValueError(
                f"unknown execution mode {mode!r}; expected 'serial', 'parallel' or 'process'"
            )
        with _obs.span("plan.execute", cat="phase", eager=eager, mode=mode):
            program = self._ensure_program()
            if eager:
                if mode == "parallel" and _res.RES.active:
                    warnings.warn(
                        "resilience session is armed: rollback-and-replay recovery assumes "
                        "host-ordered replay; falling back to mode='serial'",
                        ParallelFallbackWarning,
                        stacklevel=2,
                    )
                    mode = "serial"
                elif mode == "process":
                    reason = process_fallback_reason()
                    if reason is not None:
                        warnings.warn(
                            f"{reason}; falling back to mode='serial'",
                            ProcessFallbackWarning,
                            stacklevel=2,
                        )
                        mode = "serial"
                with _obs.span(f"plan.replay.{mode}", cat="phase") as sp:
                    if mode == "parallel":
                        self._replay_parallel(program)
                    elif mode == "process":
                        self._replay_process(program)
                    else:
                        self._replay_serial(program)
                if sp is not None:
                    m = _obs.OBS.metrics
                    m.counter("plan_replays", mode=mode).inc()
                    m.histogram(
                        "replay_seconds", bounds=_obs.Histogram.TIME_BOUNDS, mode=mode
                    ).observe(sp.duration)
            return ExecutionResult(queues=list(program.queues), stats=program.stats, plan=self)
