"""The Skeleton: Neon's orchestrator (paper section V).

Users hand it their sequential list of Containers plus a backend and an
OCC level; the Skeleton extracts the data-dependency graph, builds the
halo-complete multi-GPU graph, applies the OCC transform, prunes
redundant dependencies, and compiles a stream/event schedule.  ``run()``
executes the schedule (functionally, on the simulated devices) and
returns the recorded command queues; ``trace()`` replays them through
the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import observability as _obs
from repro import resilience as _res
from repro.sets import Container
from repro.sim import MachineSpec, Trace
from repro.system import Backend

from .executor import check_trace_dependencies, enforce_divergence_guardrail, simulate_result
from .mgraph import build_multi_gpu_graph
from .occ import Occ, OccReport, apply_occ
from .scheduler import ExecutionResult, Plan


@dataclass(frozen=True)
class TuneDecision:
    """What :meth:`Skeleton.autotune` chose, and why.

    ``candidates`` holds every scored ``(occ, mode, makespan)`` triple;
    ``baseline_makespan`` is the configuration the skeleton had before
    tuning, so ``improvement`` is directly the fraction of simulated
    time the adopted configuration saves.
    """

    occ: "Occ"
    mode: str
    makespan: float
    baseline_makespan: float
    candidates: tuple[tuple[str, str, float], ...]

    @property
    def improvement(self) -> float:
        if self.baseline_makespan <= 0.0:
            return 0.0
        return 1.0 - self.makespan / self.baseline_makespan


class Skeleton:
    """A compiled, repeatedly-runnable multi-GPU application step."""

    def __init__(
        self,
        backend: Backend,
        containers: list[Container],
        occ: Occ = Occ.STANDARD,
        name: str = "skeleton",
        reuse_parent_streams: bool = True,
    ):
        self.backend = backend
        self.containers = list(containers)
        self.occ = occ
        self.name = name
        with _obs.span(f"skeleton.compile:{name}", cat="compile", skeleton=name, occ=occ.value):
            with _obs.span("skeleton.compile.multi_gpu_graph", cat="compile"):
                self.graph = build_multi_gpu_graph(self.containers, backend)
            with _obs.span("skeleton.compile.occ", cat="compile"):
                self.occ_report: OccReport = apply_occ(self.graph, occ)
            with _obs.span("skeleton.compile.transitive_reduction", cat="compile"):
                self.redundant_edges_removed = self.graph.local_transitive_reduction()
            with _obs.span("skeleton.compile.plan", cat="compile"):
                self.plan = Plan(self.graph, backend, reuse_parent_streams=reuse_parent_streams)
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("skeletons_compiled", occ=occ.value).inc()
        self.last_result: ExecutionResult | None = None

    def run(self, mode: str | None = None) -> ExecutionResult:
        """Execute once on the backend's devices; results land in the fields.

        ``mode=None`` (default) uses the plan's default execution mode —
        serial unless :meth:`autotune` selected otherwise.
        ``mode="serial"`` replays the compiled program on the
        host in task-list order — the exact historical semantics.
        ``mode="parallel"`` replays through the
        :class:`~repro.system.ParallelEngine`: one worker thread per
        device, synchronised only by the recorded stream/event wiring
        (bitwise-identical results, concurrent wall-clock).
        ``mode="process"`` replays through the
        :class:`~repro.system.ProcessEngine`: one forked worker
        *process* per device over shared-memory payloads — the same
        wiring and bitwise-identical results, but truly concurrent
        kernels (no GIL).  While a resilience session is armed the plan
        forces serial replay and emits a
        :class:`~repro.system.ParallelFallbackWarning`, since rollback-
        and-replay recovery assumes host-ordered execution; process mode
        likewise degrades to serial (with a
        :class:`~repro.system.ProcessFallbackWarning`) when the
        sanitizer recorder is armed or shared memory is unavailable.

        Either way the schedule itself is frozen after the first call:
        repeated ``run()`` re-derives no dependencies and allocates no
        queues or events.
        """
        with _obs.span(f"skeleton.run:{self.name}", cat="phase", skeleton=self.name):
            self.last_result = self.plan.execute(eager=True, mode=mode)
            if _res.RES.active:
                enforce_divergence_guardrail(self.containers, self.name)
        return self.last_result

    def record(self) -> ExecutionResult:
        """Record the schedule without executing kernels (timing-only)."""
        return self.plan.execute(eager=False)

    def close(self) -> None:
        """Retire the replay engines (idempotent; the compiled schedule
        survives — a later ``run()`` simply builds fresh engines).

        Long-lived hosts (the serving gateway's plan cache) call this on
        eviction so warm programs don't pin worker pools forever.
        """
        self.plan.close_engines()

    def autotune(
        self,
        machine: MachineSpec | None = None,
        occ_levels=None,
        modes: tuple[str, ...] = ("serial", "parallel", "process"),
    ) -> TuneDecision:
        """Pick the OCC level and execution mode with the best simulated
        makespan, and adopt them in place.

        Every candidate is scored by replaying its recorded command
        stream through the DES under ``machine`` (no wall clock
        involved).  The winning OCC's compiled plan replaces this
        skeleton's, and the winning mode becomes the plan's default, so
        subsequent ``run()`` calls use the tuned configuration.  Note
        the DES models dispatch cost but not the GIL, so ``process``
        never beats ``parallel`` there (same per-device layout, larger
        spinup) — its candidates document the modeled overhead, while
        the wall-clock case for process mode is made by the benchmarks.
        Weights are not searched here — re-partitioning needs a grid
        rebuild; see :func:`repro.tuner.tune_workload` for the full
        search.
        """
        from repro.sim.replay import sim_makespan  # noqa: PLC0415 - keep sim out of hot imports

        machine = machine or self.backend.machine
        occ_levels = list(occ_levels) if occ_levels is not None else list(Occ)
        baseline = sim_makespan(self.record(), machine, mode=self.plan.default_mode)
        candidates: list[tuple[str, str, float]] = []
        best: tuple[float, "Skeleton", Occ, str] | None = None
        for occ in occ_levels:
            sk = (
                self
                if occ is self.occ
                else Skeleton(self.backend, self.containers, occ=occ, name=self.name)
            )
            rec = sk.record()
            for mode in modes:
                t = sim_makespan(rec, machine, mode=mode)
                candidates.append((occ.value, mode, t))
                if best is None or t < best[0]:
                    best = (t, sk, occ, mode)
        assert best is not None
        makespan, winner, occ, mode = best
        if winner is not self:
            self.graph = winner.graph
            self.occ_report = winner.occ_report
            self.redundant_edges_removed = winner.redundant_edges_removed
            self.plan = winner.plan
            self.occ = occ
        self.plan.default_mode = mode
        return TuneDecision(
            occ=occ.value,
            mode=mode,
            makespan=makespan,
            baseline_makespan=baseline,
            candidates=tuple(candidates),
        )

    def trace(self, machine: MachineSpec | None = None, result: ExecutionResult | None = None) -> Trace:
        """Simulated timeline of one execution under the machine model."""
        result = result or self.last_result or self.record()
        return simulate_result(result, machine)

    def sanitize(self, mode: str = "serial", runs: int = 2):
        """Replay under the race sanitizer; return the violation list.

        Arms execution recording, replays the compiled program ``runs``
        times in ``mode``, then runs the happens-before race detector,
        halo-freshness and event-wiring checks over the frozen schedule
        plus a coverage check over what actually retired.  An empty list
        is the sanitizer's clean bill; findings are also published to
        the observability layer (``sanitizer_violations`` counter +
        instant trace events) when it is enabled.
        """
        from repro.sanitizer.runner import sanitize_skeleton  # noqa: PLC0415 - keep analysis out of hot imports

        return sanitize_skeleton(self, mode=mode, runs=runs)

    def validate(self, machine: MachineSpec | None = None) -> None:
        """Assert the stream/event wiring alone enforces all dependencies."""
        result = self.record()
        trace = simulate_result(result, machine)
        violations = check_trace_dependencies(result, trace)
        if violations:
            lines = "\n".join(str(v) for v in violations[:10])
            raise AssertionError(f"schedule violates {len(violations)} dependencies:\n{lines}")

    @property
    def stats(self):
        if self.last_result is None:
            raise RuntimeError("run() or record() the skeleton first")
        return self.last_result.stats

    def describe(self) -> str:
        """Human-readable summary of the compiled plan (for debugging)."""
        lines = [
            f"Skeleton '{self.name}': {len(self.containers)} containers, occ={self.occ.value}, "
            f"{self.backend.num_devices} devices",
            f"  streams: {self.plan.num_streams}; redundant edges removed: "
            f"{self.redundant_edges_removed}",
        ]
        if self.occ_report.split_stencils or self.occ_report.split_pre_maps or self.occ_report.split_post_nodes:
            lines.append(
                "  occ splits: "
                f"stencils={self.occ_report.split_stencils} "
                f"pre-maps={self.occ_report.split_pre_maps} "
                f"post-nodes={self.occ_report.split_post_nodes}"
            )
        for i, level in enumerate(self.graph.bfs_levels()):
            names = ", ".join(f"{n.name}(s{self.plan.stream_of[n.uid]})" for n in level)
            lines.append(f"  level {i}: {names}")
        hints = list(self.graph.hint_edges())
        if hints:
            lines.append("  hints: " + ", ".join(f"{a.name}->{b.name}" for a, b in hints))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Skeleton({self.name}, {len(self.containers)} containers, occ={self.occ.value}, "
            f"{self.backend.num_devices} devices)"
        )
