"""Iteration unrolling: compile k time steps into one skeleton.

Iterative applications (LBM steps, smoother sweeps) re-run the same
container sequence with ping-ponged fields.  Unrolling k iterations into
a single skeleton lets the dependency analysis span iteration
boundaries, so the scheduler can pipeline across them: iteration k+1's
internal work starts while iteration k's boundary exchange is still in
flight.  This measures the *steady-state* cost per iteration, which is
what strong-scaling plots should use.

Containers inside one skeleton need unique names, so the per-iteration
containers are shallow-cloned with an ``@k`` suffix (the loading lambda
— and therefore the computation — is shared).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sets import Container
from repro.system import Backend

from .occ import Occ
from .skeleton import Skeleton

IterationFactory = Callable[[int], list[Container]]
"""Returns the container sequence of iteration ``i`` (handle ping-pong
buffers by alternating on ``i``)."""


def _clone(container: Container, suffix: str) -> Container:
    return Container(
        f"{container.name}@{suffix}",
        container.index_data,
        container.loading,
        flops_per_cell=container.flops_per_cell,
        stencil_read_redundancy=container.stencil_read_redundancy,
    )


def unroll(iteration: IterationFactory, count: int) -> list[Container]:
    """Flatten ``count`` iterations into one uniquely-named sequence."""
    if count < 1:
        raise ValueError("need at least one iteration")
    out: list[Container] = []
    for k in range(count):
        out.extend(_clone(c, str(k)) for c in iteration(k))
    return out


def unrolled_skeleton(
    backend: Backend,
    iteration: IterationFactory,
    count: int,
    occ: Occ = Occ.STANDARD,
    name: str = "unrolled",
) -> Skeleton:
    """Compile ``count`` iterations into a single pipelined skeleton."""
    return Skeleton(backend, unroll(iteration, count), occ=occ, name=f"{name}x{count}")


def steady_state_iteration_time(
    backend: Backend,
    iteration: IterationFactory,
    occ: Occ = Occ.STANDARD,
    warm: int = 2,
    measure: int = 4,
    machine=None,
) -> float:
    """Per-iteration makespan once the pipeline is full.

    Simulates ``warm`` and ``warm + measure`` unrolled iterations and
    returns the marginal cost per extra iteration — start-up transients
    cancel out.
    """
    sk_a = unrolled_skeleton(backend, iteration, warm, occ=occ)
    sk_b = unrolled_skeleton(backend, iteration, warm + measure, occ=occ)
    t_a = sk_a.trace(machine=machine, result=sk_a.record()).makespan
    t_b = sk_b.trace(machine=machine, result=sk_b.record()).makespan
    return (t_b - t_a) / measure
