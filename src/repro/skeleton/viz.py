"""Graph and schedule visualisation: Graphviz DOT export.

Regenerates the paper's Fig 4-style drawings from live graphs: compute
nodes are boxes coloured by operation type, halo nodes are ellipses,
data dependencies solid arrows, scheduling hints dashed orange arrows —
matching the paper's visual vocabulary.
"""

from __future__ import annotations

from repro.sets import Pattern

from .depgraph import DepGraph, DepKind, NodeKind

_PATTERN_COLOR = {
    Pattern.MAP: "#a6d96a",  # green, like the paper's map nodes
    Pattern.STENCIL: "#c2a5cf",  # purple stencils
    Pattern.REDUCE: "#fdae61",  # orange reductions
}


def graph_to_dot(graph: DepGraph, title: str = "multi-GPU graph") -> str:
    """Render the dependency/multi-GPU graph as Graphviz DOT text."""
    lines = [
        "digraph G {",
        f'  label="{title}";',
        "  rankdir=TB;",
        '  node [fontname="Helvetica", fontsize=11];',
    ]
    ids = {node.uid: f"n{node.uid}" for node in graph.nodes}
    for node in graph.nodes:
        if node.kind is NodeKind.HALO:
            style = 'shape=ellipse, style=filled, fillcolor="#92c5de"'
        else:
            color = _PATTERN_COLOR.get(node.pattern, "#ffffff")
            style = f'shape=box, style=filled, fillcolor="{color}"'
        label = node.name if node.view.value == "standard" else node.name
        lines.append(f'  {ids[node.uid]} [label="{label}", {style}];')
    for a, b, kinds, _scopes in graph.edges():
        data_kinds = kinds - {DepKind.SCHED}
        if data_kinds:
            label = "/".join(sorted(k.value for k in data_kinds))
            lines.append(f'  {ids[a.uid]} -> {ids[b.uid]} [label="{label}"];')
        if DepKind.SCHED in kinds:
            lines.append(
                f'  {ids[a.uid]} -> {ids[b.uid]} [style=dashed, color="#e66101", '
                'constraint=false, label="hint"];'
            )
    lines.append("}")
    return "\n".join(lines)
