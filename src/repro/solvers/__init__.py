"""Applications (paper section VI): LBM, Poisson, linear elasticity."""

from .cg import CGResult, ConjugateGradient
from .eigen import (
    EigenResult,
    PowerIteration,
    laplacian_spectrum_bounds,
    largest_eigenvalue,
    smallest_eigenvalue,
)
from .elasticity import (
    ElasticitySolver,
    assembled_node_blocks,
    hex_element_stiffness,
    make_elastic_operator,
)
from .multigrid import TwoGridPoisson, prolong_trilinear, restrict_full_weighting
from .poisson import PoissonSolver, make_neg_laplacian, manufactured_problem
from .smoothers import IterativePoisson, make_jacobi_sweep, make_rb_half_sweep

__all__ = [
    "EigenResult",
    "IterativePoisson",
    "PowerIteration",
    "laplacian_spectrum_bounds",
    "largest_eigenvalue",
    "TwoGridPoisson",
    "make_jacobi_sweep",
    "make_rb_half_sweep",
    "prolong_trilinear",
    "restrict_full_weighting",
    "smallest_eigenvalue",
    "CGResult",
    "ConjugateGradient",
    "ElasticitySolver",
    "PoissonSolver",
    "assembled_node_blocks",
    "hex_element_stiffness",
    "make_elastic_operator",
    "make_neg_laplacian",
    "manufactured_problem",
]
