"""Matrix-free conjugate gradient over Neon skeletons (paper Listing 3).

The iteration body is phrased as two skeletons separated by the two host
scalar reads CG fundamentally needs (alpha and beta depend on global
reductions).  Following the paper's Two-way-Extended-OCC preparation,
the p-update map is moved to the *start* of the first skeleton so the
sequence becomes map -> stencil -> reduce — the exact Fig 4 pattern every
OCC level knows how to split:

    skeleton A: p = r + beta*p;  q = A p;  pq = <p, q>
    host:       alpha = delta / pq
    skeleton B: x += alpha*p;  r -= alpha*q;  delta' = <r, r>
    host:       beta = delta' / delta, convergence check

Scalars are passed into containers through mutable cells read at launch
time (the loading lambda runs per launch), so the compiled skeletons are
reused across iterations unchanged.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.core import ops
from repro.domain.grid import Grid
from repro.resilience import SolverDiverged
from repro.skeleton import Occ, Skeleton
from repro.system import sharedmem

ApplyFactory = Callable[[Grid, object, object, str], object]
"""Builds the operator: (grid, in_field, out_field, name) -> Container or [Containers]."""


def _as_list(containers) -> list:
    return list(containers) if isinstance(containers, (list, tuple)) else [containers]


@dataclass
class CGResult:
    converged: bool
    iterations: int
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("inf")

    @property
    def diverged(self) -> bool:
        """True when any recorded residual is non-finite (NaN/Inf)."""
        return any(not np.isfinite(r) for r in self.residual_norms)


def _axpby_cell(grid, a_cell: dict, x, b_cell: dict, y, name: str):
    """y <- a*x + b*y with host-updated coefficients (read at launch).

    ``b == 0`` assigns ``a*x`` outright instead of multiplying into the
    old ``y``: on a (re)started iteration ``p`` may hold stale — even
    non-finite — data, and ``0 * NaN`` would smuggle it into the fresh
    Krylov basis.
    """

    def loading(loader):
        xp = loader.read(x)
        yp = loader.read_write(y)
        a, b = a_cell["v"], b_cell["v"]

        def compute(span):
            yv = yp.view_all(span)
            if b == 0.0:
                yv[...] = a * xp.view_all(span)
            else:
                yv[...] = a * xp.view_all(span) + b * yv

        return compute

    return grid.new_container(name, loading, flops_per_cell=3.0 * x.cardinality)


class ConjugateGradient:
    """Reusable CG solver bound to one grid, operator, and OCC level."""

    def __init__(
        self,
        grid: Grid,
        apply_op: ApplyFactory,
        b,
        x,
        occ: Occ = Occ.STANDARD,
        name: str = "cg",
        mode: str = "serial",
    ):
        self.grid = grid
        self.b = b
        self.x = x
        # execution mode for every skeleton run: "serial", "parallel" or
        # "process" (host scalar updates between skeletons stay
        # sequential either way)
        self.mode = mode
        backend = grid.backend
        card = x.cardinality
        self.r = grid.new_field(f"{name}_r", cardinality=card)
        self.p = grid.new_field(f"{name}_p", cardinality=card)
        self.q = grid.new_field(f"{name}_q", cardinality=card)
        # per-slice partials make both CG scalars (hence the whole
        # trajectory) bitwise partition-invariant on grids that support it
        self.pq_partial = grid.new_dot_partial(f"{name}_pq")
        self.rr_partial = grid.new_dot_partial(f"{name}_rr")
        # shared-memory-backed cells: kernels load these at launch time,
        # and in process mode the launching worker is a forked process
        # that must see the host's update from *this* iteration, not the
        # value at fork time
        self.alpha = sharedmem.SharedScalarCell(0.0)
        self.beta = sharedmem.SharedScalarCell(0.0)
        self.neg_alpha = sharedmem.SharedScalarCell(0.0)
        one = sharedmem.SharedScalarCell(1.0)

        # r = b - A x ; p handled by the first iteration's p-update (beta=0)
        self.sk_init = Skeleton(
            backend,
            [
                *_as_list(apply_op(grid, x, self.q, "A_x0")),
                _init_residual(grid, b, self.q, self.r),
                ops.norm2_squared(grid, self.r, self.rr_partial, name="rr0"),
            ],
            occ=occ,
            name=f"{name}_init",
        )
        # map -> stencil -> reduce: the paper's UpdateP-first arrangement
        self.sk_a = Skeleton(
            backend,
            [
                _axpby_cell(grid, one, self.r, self.beta, self.p, "update_p"),
                *_as_list(apply_op(grid, self.p, self.q, "A_p")),
                ops.dot(grid, self.p, self.q, self.pq_partial, name="dot_pq"),
            ],
            occ=occ,
            name=f"{name}_a",
        )
        self.sk_b = Skeleton(
            backend,
            [
                _axpby_cell(grid, self.alpha, self.p, one, self.x, "update_x"),
                _axpby_cell(grid, self.neg_alpha, self.q, one, self.r, "update_r"),
                ops.norm2_squared(grid, self.r, self.rr_partial, name="dot_rr"),
            ],
            occ=occ,
            name=f"{name}_b",
        )

    def begin(self, tolerance: float = 1e-8) -> CGResult:
        """(Re)start the iteration from the current iterate ``x``.

        Runs the init skeleton (``r = b - A x``), seeds the scalars, and
        returns the fresh :class:`CGResult`.  Because CG restarted from
        any iterate still converges to the same SPD solution, this is
        also the *recovery* entry point: after a checkpoint restore or a
        device-loss migration, calling ``begin()`` resumes the solve
        from the restored ``x``.
        """
        self._rr_read = ops.ScalarResult(self.rr_partial)
        self._pq_read = ops.ScalarResult(self.pq_partial)
        self.sk_init.run(mode=self.mode)
        delta = self._rr_read.value()
        norm0 = float(np.sqrt(delta))
        self.result = CGResult(converged=False, iterations=0, residual_norms=[norm0])
        if not np.isfinite(norm0):
            raise SolverDiverged(0, self.result.residual_norms[-8:])
        if norm0 <= tolerance:
            self.result.converged = True
        self._delta = delta
        self._tolerance = tolerance
        self.beta["v"] = 0.0
        return self.result

    def iterate(self) -> bool:
        """Run one CG iteration; return True once converged.

        Raises :class:`~repro.resilience.SolverDiverged` the moment the
        residual (or the curvature ``<p, Ap>``) turns non-finite instead
        of silently looping to ``max_iterations`` on NaNs.
        """
        result = self.result
        if result.converged:
            return True
        self.sk_a.run(mode=self.mode)
        pq = self._pq_read.value()
        if not np.isfinite(pq):
            result.residual_norms.append(float("nan"))
            raise SolverDiverged(result.iterations + 1, result.residual_norms[-8:])
        if pq <= 0.0:
            raise RuntimeError(f"operator is not positive definite: <p, Ap> = {pq}")
        self.alpha["v"] = self._delta / pq
        self.neg_alpha["v"] = -self.alpha["v"]
        self.sk_b.run(mode=self.mode)
        delta_new = self._rr_read.value()
        norm = float(np.sqrt(delta_new))
        result.residual_norms.append(norm)
        result.iterations += 1
        if not np.isfinite(norm):
            raise SolverDiverged(result.iterations, result.residual_norms[-8:])
        if norm <= self._tolerance:
            result.converged = True
            return True
        self.beta["v"] = delta_new / self._delta
        self._delta = delta_new
        return False

    def solve(self, max_iterations: int = 200, tolerance: float = 1e-8) -> CGResult:
        """Run CG until the residual 2-norm drops below tolerance."""
        result = self.begin(tolerance)
        if result.converged:
            return result
        for _ in range(max_iterations):
            if self.iterate():
                break
        return result

    # -- resilience hooks ---------------------------------------------------
    def checkpoint_fields(self) -> list:
        """The minimal state a checkpoint must carry: the iterate ``x``.

        Restart-from-iterate recovery means the Krylov internals
        (r, p, q and the host scalars) are recomputed by :meth:`begin`,
        so only ``x`` needs to survive a rollback or migration.
        """
        return [self.x]

    def krylov_fields(self) -> list:
        """The *complete* iteration state: ``x``, ``r`` and ``p``.

        Checkpointing all three (plus :meth:`krylov_scalars`) makes a
        rollback **bitwise-exact**: :meth:`resume` continues the very
        same Krylov trajectory instead of restarting it, so a recovered
        run finishes identical to a fault-free one — the property the
        chaos soak harness asserts.  (``q`` is recomputed from ``p`` at
        the top of every iteration and needs no snapshot.)
        """
        return [self.x, self.r, self.p]

    def krylov_scalars(self) -> dict:
        """Host-side loop state paired with :meth:`krylov_fields`."""
        if not hasattr(self, "result"):
            return {"begun": False}
        return {
            "begun": True,
            "delta": self._delta,
            "beta": self.beta["v"],
            "tolerance": self._tolerance,
            "iterations": self.result.iterations,
            "converged": self.result.converged,
            "residual_norms": list(self.result.residual_norms),
        }

    def resume(self, scalars: dict) -> bool:
        """Continue the checkpointed trajectory after a restore.

        Returns True when the scalars carried live iteration state (the
        caller must *not* call :meth:`begin`); False when the checkpoint
        predates :meth:`begin` and the solve should start fresh.  Works
        across decompositions: the per-slice dot partials keep both CG
        scalars bitwise partition-invariant, so a device-loss migration
        resumes the identical trajectory on the survivors.
        """
        if not scalars.get("begun"):
            return False
        self._rr_read = ops.ScalarResult(self.rr_partial)
        self._pq_read = ops.ScalarResult(self.pq_partial)
        self._delta = scalars["delta"]
        self._tolerance = scalars["tolerance"]
        self.beta["v"] = scalars["beta"]
        self.alpha["v"] = 0.0
        self.neg_alpha["v"] = 0.0
        self.result = CGResult(
            converged=scalars["converged"],
            iterations=scalars["iterations"],
            residual_norms=list(scalars["residual_norms"]),
        )
        return True

    def iteration_makespan(self, machine=None, include_readback: bool = True) -> float:
        """Simulated time of one CG iteration (both skeletons).

        CG fundamentally syncs on two scalars per iteration (alpha and
        the convergence check); ``include_readback`` charges the two
        device->host reads of the per-device partials (one 8-byte message
        per device, flowing in parallel over the host links — latency
        dominated, exactly like a cuBLAS dot result read).
        """
        machine = machine or self.grid.backend.machine
        t = 0.0
        for sk in (self.sk_a, self.sk_b):
            t += sk.trace(machine=machine, result=sk.record()).makespan
        if include_readback:
            from repro.sim.costmodel import transfer_duration
            from repro.sim.topology import HOST_RANK

            link = machine.topology.link(0, HOST_RANK)
            t += 2.0 * transfer_duration(8, link)
        return t


def _init_residual(grid, b, q, r):
    """r <- b - q."""

    def loading(loader):
        bp = loader.read(b)
        qp = loader.read(q)
        rp = loader.write(r)

        def compute(span):
            rp.view_all(span)[...] = bp.view_all(span) - qp.view_all(span)

        return compute

    return grid.new_container("init_residual", loading)
