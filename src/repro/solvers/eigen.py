"""Eigenvalue solvers from the three building blocks.

The paper claims map/stencil/reduce suffice for "solving linear systems,
eigenvalue problems and almost all the functions found in BLAS".  CG
covers the first; this module covers the second with power iteration (a
map -> stencil -> reduce loop, the very Fig 4 shape) on any matrix-free
operator, plus a spectral-shift variant for the smallest eigenvalue.

For the 7-point negative Laplacian the spectrum is known analytically —
``lambda_{ijk} = sum_d 2(1 - cos(pi m_d / (n_d + 1)))`` — which the
tests use as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import ops
from repro.domain.grid import Grid
from repro.skeleton import Occ, Skeleton
from repro.system import sharedmem

from .cg import ApplyFactory, _as_list


@dataclass
class EigenResult:
    eigenvalue: float
    iterations: int
    converged: bool
    history: list[float] = field(default_factory=list)


def _scale_by_cell(grid, factor_cell: dict, x, name: str):
    """x <- x * factor (host-updated scalar, read at launch time)."""

    def loading(loader):
        xp = loader.read_write(x)
        s = factor_cell["v"]

        def compute(span):
            xp.view_all(span)[...] *= s

        return compute

    return grid.new_container(name, loading, flops_per_cell=1.0)


class PowerIteration:
    """Largest-magnitude eigenpair of a matrix-free SPD operator.

    Each iteration is one skeleton: normalise the current vector (map),
    apply the operator (stencil), and take the two reductions that give
    the Rayleigh quotient and the next normalisation — then two host
    scalars close the loop, exactly like CG's alpha/beta.
    """

    def __init__(self, grid: Grid, apply_op: ApplyFactory, occ: Occ = Occ.STANDARD, seed: int = 0):
        self.grid = grid
        self.v = grid.new_field("eig_v")
        self.w = grid.new_field("eig_w")
        # shared-memory cell: process-mode workers must see each
        # iteration's host-computed 1/|w|, not the fork-time value
        self._inv_norm = sharedmem.SharedScalarCell(1.0)
        self.vw_partial = grid.new_reduce_partial("eig_vw")
        self.vv_partial = grid.new_reduce_partial("eig_vv")
        self.ww_partial = grid.new_reduce_partial("eig_ww")
        if not grid.virtual:
            rng = np.random.default_rng(seed)
            # a full-rank random start avoids landing in an eigenspace's
            # orthogonal complement
            noise = rng.standard_normal(grid.shape)
            self.v.init(lambda *c: noise[tuple(np.asarray(a) for a in c)])
        self.sk = Skeleton(
            grid.backend,
            [
                _scale_by_cell(grid, self._inv_norm, self.v, "normalise"),
                *_as_list(apply_op(grid, self.v, self.w, "A_v")),
                ops.dot(grid, self.v, self.w, self.vw_partial, name="rayleigh_num"),
                ops.dot(grid, self.v, self.v, self.vv_partial, name="rayleigh_den"),
                ops.dot(grid, self.w, self.w, self.ww_partial, name="next_norm"),
            ],
            occ=occ,
            name="power_iteration",
        )
        self.sk_swap = Skeleton(
            grid.backend, [ops.copy(grid, self.w, self.v, name="advance")], occ=Occ.NONE, name="advance"
        )

    def solve(self, max_iterations: int = 500, tolerance: float = 1e-9) -> EigenResult:
        vw = ops.ScalarResult(self.vw_partial)
        vv = ops.ScalarResult(self.vv_partial)
        ww = ops.ScalarResult(self.ww_partial)
        result = EigenResult(eigenvalue=float("nan"), iterations=0, converged=False)
        prev = None
        self._inv_norm["v"] = 1.0
        for it in range(1, max_iterations + 1):
            self.sk.run()
            num, den, norm2 = vw.value(), vv.value(), ww.value()
            if den <= 0.0 or norm2 <= 0.0:
                raise RuntimeError("power iteration collapsed to the zero vector")
            rayleigh = num / den
            result.history.append(rayleigh)
            result.iterations = it
            result.eigenvalue = rayleigh
            # next iterate: v <- w / |w|; the normalisation folds into the
            # map at the start of the next skeleton run
            self.sk_swap.run()
            self._inv_norm["v"] = 1.0 / np.sqrt(norm2)
            if prev is not None and abs(rayleigh - prev) <= tolerance * max(1.0, abs(rayleigh)):
                result.converged = True
                break
            prev = rayleigh
        return result


def largest_eigenvalue(grid: Grid, apply_op: ApplyFactory, **kw) -> EigenResult:
    """Convenience: run power iteration on ``apply_op``."""
    return PowerIteration(grid, apply_op).solve(**kw)


def smallest_eigenvalue(
    grid: Grid, apply_op: ApplyFactory, lambda_max: float, **kw
) -> EigenResult:
    """Smallest eigenvalue via the spectral shift ``B = lambda_max*I - A``.

    B's largest eigenpair corresponds to A's smallest:
    ``lambda_min(A) = lambda_max - lambda_max(B)``.
    """

    def shifted(g, u, out, name):
        inner = _as_list(apply_op(g, u, out, name))

        def loading(loader):
            up = loader.read(u)
            op_ = loader.read_write(out)

            def compute(span):
                ov = op_.view_all(span)
                ov[...] = lambda_max * up.view_all(span) - ov

            return compute

        flip = g.new_container(f"{name}_shift", loading, flops_per_cell=2.0)
        return inner + [flip]

    res = PowerIteration(grid, shifted).solve(**kw)
    return EigenResult(
        eigenvalue=lambda_max - res.eigenvalue,
        iterations=res.iterations,
        converged=res.converged,
        history=[lambda_max - h for h in res.history],
    )


def laplacian_spectrum_bounds(shape: tuple[int, int, int]) -> tuple[float, float]:
    """Analytic (min, max) eigenvalues of the 7-pt negative Laplacian
    with zero Dirichlet borders on an ``shape`` grid (h = 1)."""
    lo = sum(2.0 * (1.0 - np.cos(np.pi * 1 / (n + 1))) for n in shape)
    hi = sum(2.0 * (1.0 - np.cos(np.pi * n / (n + 1))) for n in shape)
    return float(lo), float(hi)
