"""Matrix-free finite-element linear elasticity (paper VI-C).

A solid occupying the grid's active cells is discretised with trilinear
hexahedral elements; because the grid is uniform, every element shares
one 24x24 stiffness matrix, and the assembled operator reduces to a
27-point stencil of 3x3 node-coupling blocks — exactly the matrix-free
form the paper applies CG to.

Benchmark geometry (paper): a solid cube with Dirichlet boundary fixing
displacements to 0 on the z = 0 plane and outward pressure (Neumann) on
the z = N-1 plane.

The constrained/void structure is folded into the operator as
``q = P M A (M P u) + (I - P) u`` where M is the element-density
indicator and P projects out the z=0 Dirichlet nodes; the result is
symmetric positive definite on the free active subspace, so plain CG
converges.  The projection uses a *map* container ahead of the stencil
container — which, conveniently, is the map->stencil shape the Extended
OCC optimisation feeds on.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.domain import STENCIL_27PT, DenseGrid, SparseGrid
from repro.domain.grid import Grid
from repro.skeleton import Occ
from repro.system import Backend

from .cg import CGResult, ConjugateGradient


def hex_element_stiffness(E: float = 1.0, nu: float = 0.3) -> np.ndarray:
    """24x24 stiffness of a unit trilinear hexahedron (2x2x2 Gauss).

    Local node ``l = 4*cz + 2*cy + cx`` for corner ``(cz, cy, cx)`` in
    {0,1}^3; per node the dof order is (uz, uy, ux).
    """
    lam = E * nu / ((1 + nu) * (1 - 2 * nu))
    mu = E / (2 * (1 + nu))
    D = np.zeros((6, 6))
    D[:3, :3] = lam
    D[np.arange(3), np.arange(3)] += 2 * mu
    D[3:, 3:] = np.eye(3) * mu

    corners = np.array(list(itertools.product((0, 1), repeat=3)), dtype=float)  # (8,3) (cz,cy,cx)
    signs = 2.0 * corners - 1.0
    gp = np.array(list(itertools.product((-1, 1), repeat=3)), dtype=float) / np.sqrt(3.0)

    K = np.zeros((24, 24))
    for xi in gp:
        # dN/dxi for each local node, then dN/dx = 2*dN/dxi (unit cube)
        dN = np.zeros((8, 3))
        for a in range(8):
            s = signs[a]
            terms = 0.5 * (1.0 + s * xi)
            for d in range(3):
                prod = 0.5 * s[d]
                for o in range(3):
                    if o != d:
                        prod *= terms[o]
                dN[a, d] = 2.0 * prod
        B = np.zeros((6, 24))
        for a in range(8):
            dz, dy, dx = dN[a]
            c = 3 * a  # dof order (uz, uy, ux)
            B[0, c + 0] = dz  # e_zz
            B[1, c + 1] = dy  # e_yy
            B[2, c + 2] = dx  # e_xx
            B[3, c + 0] = dy  # g_zy
            B[3, c + 1] = dz
            B[4, c + 0] = dx  # g_zx
            B[4, c + 2] = dz
            B[5, c + 1] = dx  # g_yx
            B[5, c + 2] = dy
        K += B.T @ D @ B * (1.0 / 8.0)  # det J of the unit cube
    return K


def assembled_node_blocks(E: float = 1.0, nu: float = 0.3) -> dict[tuple[int, int, int], np.ndarray]:
    """3x3 coupling block per 27-stencil offset, assembled over the 8
    elements adjacent to a node (the interior row of the global matrix)."""
    Ke = hex_element_stiffness(E, nu)
    loc = lambda c: 4 * c[0] + 2 * c[1] + c[2]
    blocks: dict[tuple[int, int, int], np.ndarray] = {
        off: np.zeros((3, 3)) for off in itertools.product((-1, 0, 1), repeat=3)
    }
    for e in itertools.product((-1, 0), repeat=3):  # elements containing node 0
        c0 = tuple(-ec for ec in e)
        for off in blocks:
            cd = tuple(off[d] - e[d] for d in range(3))
            if all(v in (0, 1) for v in cd):
                a, b = loc(c0), loc(cd)
                blocks[off] += Ke[3 * a : 3 * a + 3, 3 * b : 3 * b + 3]
    return blocks


def make_elastic_operator(E: float = 1.0, nu: float = 0.3):
    """Factory of factories: returns an ``apply_op`` for ConjugateGradient.

    The operator consists of two containers: a map that projects and
    masks the input (mu = M P u) and the 27-point stencil that applies
    the assembled blocks, re-masks, and restores the Dirichlet identity.
    """
    blocks = assembled_node_blocks(E, nu)
    offsets = [off for off, blk in blocks.items() if np.any(np.abs(blk) > 1e-14)]

    def apply_op(grid: Grid, u, out, name: str):
        mask = _mask_field(grid)
        mu = grid.new_field(f"{name}_masked_in", cardinality=3)

        def loading_project(loader):
            up = loader.read(u)
            mp = loader.read(mask)
            mup = loader.write(mu)

            def compute(span):
                z = up.coords(span)[0]
                free = (z > 0) * mp.view(span)
                for c in range(3):
                    mup.view(span, c)[...] = free * up.view(span, c)

            return compute

        project = grid.new_container(f"{name}_project", loading_project)

        def loading_apply(loader):
            mup = loader.read(mu, stencil=True)
            mp = loader.read(mask)
            up = loader.read(u)
            op = loader.write(out)

            def compute(span):
                z = mup.coords(span)[0]
                shape = mup.view(span, 0).shape
                acc = np.zeros((3, *shape))
                for off in offsets:
                    blk = blocks[off]
                    nbr = [mup.neighbour(span, off, d) for d in range(3)]
                    for c in range(3):
                        for d in range(3):
                            if blk[c, d] != 0.0:
                                acc[c] += blk[c, d] * nbr[d]
                free = np.broadcast_to((z > 0) * mp.view(span), shape)
                for c in range(3):
                    op.view(span, c)[...] = np.where(free > 0.5, acc[c], up.view(span, c))

            return compute

        stencil = grid.new_container(f"{name}_apply", loading_apply, flops_per_cell=500.0)
        return [project, stencil]

    return apply_op


def _active_lookup(grid: Grid):
    """Coordinate-wise activity predicate usable inside ``Field.init``."""
    if isinstance(grid, DenseGrid) and grid.mask is not None:
        mask = grid.mask
        return lambda z, y, x: mask[z, y, x]
    # sparse grids only enumerate active cells; full dense is all-active
    return lambda z, y, x: np.broadcast_to(True, np.broadcast_shapes(np.shape(z), np.shape(y), np.shape(x)))


def _mask_field(grid: Grid):
    """The 0/1 element-density indicator field of a grid (cached).

    Cached on the grid instance (not a module-global dict) so the field
    — and through it the backend's shared-memory arenas — dies with the
    grid instead of pinning device memory for the process lifetime.
    """
    m = getattr(grid, "_density_mask_field", None)
    if m is None:
        if isinstance(grid, DenseGrid):
            m = grid.mask_field("density")
        else:
            m = grid.new_field("density", outside_value=0.0)
            if not grid.virtual:
                m.fill(1.0)
                m.sync_halo_now()
        grid._density_mask_field = m
    return m


class ElasticitySolver:
    """The paper's benchmark: solid cube, fixed base, pressure on top."""

    def __init__(
        self,
        grid: Grid,
        E: float = 1.0,
        nu: float = 0.3,
        pressure: float = 0.01,
        top_z: int | None = None,
        occ: Occ = Occ.STANDARD,
    ):
        self.grid = grid
        self.b = grid.new_field("b", cardinality=3)
        self.u = grid.new_field("u", cardinality=3)
        if not grid.virtual:
            nz = top_z if top_z is not None else grid.shape[0] - 1
            active = _active_lookup(grid)
            # outward (+z) pressure on the solid's top plane, zero elsewhere
            self.b.init(lambda z, y, x: np.where((z == nz) & active(z, y, x), pressure, 0.0), comp=0)
        self.cg = ConjugateGradient(grid, make_elastic_operator(E, nu), self.b, self.u, occ=occ)

    @classmethod
    def solid_cube(
        cls,
        backend: Backend,
        grid_size: int,
        solid_fraction: float = 1.0,
        sparse: bool = False,
        virtual: bool = False,
        partition_weights=None,
        **kw,
    ) -> "ElasticitySolver":
        """The Fig 9 geometry: a solid cuboid inside an N^3 grid.

        ``solid_fraction`` scales the solid's lateral edge so that the
        sparsity ratio (active/total) hits the requested value.  The
        solid always spans the full height and rests on the fixed z = 0
        plane, so the Dirichlet condition anchors it.
        """
        n = grid_size
        edge = max(2, min(n, int(round(n * np.sqrt(solid_fraction)))))
        lo = (n - edge) // 2
        full = edge == n
        if sparse:
            if virtual:
                per_slice = np.full(n, edge * edge, dtype=np.int64)
                grid = SparseGrid(
                    backend,
                    shape=(n, n, n),
                    stencils=[STENCIL_27PT],
                    active_per_slice=per_slice,
                    virtual=True,
                    partition_weights=partition_weights,
                )
            else:
                mask = np.zeros((n, n, n), dtype=bool)
                mask[:, lo : lo + edge, lo : lo + edge] = True
                grid = SparseGrid(
                    backend, mask=mask, stencils=[STENCIL_27PT], partition_weights=partition_weights
                )
        else:
            mask = None
            if not full and not virtual:
                mask = np.zeros((n, n, n), dtype=bool)
                mask[:, lo : lo + edge, lo : lo + edge] = True
            grid = DenseGrid(
                backend,
                (n, n, n),
                stencils=[STENCIL_27PT],
                mask=mask,
                virtual=virtual,
                partition_weights=partition_weights,
            )
        return cls(grid, top_z=n - 1, **kw)

    def solve(self, max_iterations: int = 300, tolerance: float = 1e-8) -> CGResult:
        return self.cg.solve(max_iterations=max_iterations, tolerance=tolerance)

    def iteration_makespan(self, machine=None) -> float:
        return self.cg.iteration_makespan(machine)

    def displacement(self) -> np.ndarray:
        """Global displacement array (3, *shape), (uz, uy, ux) order."""
        return self.u.to_numpy()
