"""Lattice-Boltzmann solvers: D3Q19 cavity and D2Q9 Kármán street."""

from .d2q9 import KarmanVortexStreet, cylinder_mask, make_karman_container
from .d3q19 import LidDrivenCavity, make_twopop_container
from .lattice import D2Q9, D3Q19, LatticeSpec, omega_from_reynolds
from .unfused import make_collide_container, make_stream_container, make_unfused_step

__all__ = [
    "D2Q9",
    "D3Q19",
    "KarmanVortexStreet",
    "LatticeSpec",
    "LidDrivenCavity",
    "cylinder_mask",
    "make_collide_container",
    "make_karman_container",
    "make_stream_container",
    "make_twopop_container",
    "make_unfused_step",
    "omega_from_reynolds",
]
