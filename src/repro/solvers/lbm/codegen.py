"""Generated-C specialization of the twoPop collide+stream kernel.

The interpreted kernel in :func:`repro.solvers.lbm.d3q19.make_twopop_container`
walks the lattice directions with whole-array NumPy expressions; bitwise
fidelity pins their operation order, which in turn forces ~14 full
passes over the ``(q, cells)`` working set per launch — memory-bound in
NumPy no matter how it is vectorised.  This module emits a single-pass C
translation of the same kernel and registers it as the container's
``specialize`` hook, which the fusion pass (:mod:`repro.skeleton.fusion`)
installs into fused dispatch units.

**Bitwise contract.**  The generated code replicates the interpreted
per-element IEEE-754 operation sequence exactly:

* ``rho``: sequential ``fq[0] + fq[1] + ...`` — NumPy's ``sum(axis=0)``
  over the outer axis reduces sequentially;
* ``u``: zero-initialised, then ``+=``/``-=`` of the nonzero-velocity
  populations in the qi-major order of :meth:`LatticeSpec.moments`;
* equilibrium: parenthesised exactly as the Python source associates —
  ``(w * rho) * (((1 + 3 eu) + (4.5 eu) eu) - 1.5 usq)``;
* bounce-back / moving-lid / sentinel selection per direction, with the
  lid correction added as ``bb + (from_lid ? corr : 0.0)`` (matching the
  ``np.where`` add in the interpreted kernel);
* all constants embedded as C hex-float literals, and the translation
  unit built with ``-ffp-contract=off`` (:mod:`repro.codegen.cc`).

The specializer declines (returns ``None``) for anything but a dense
SoA float64 3-D layout with a C-contiguous backing array — sparse
grids, AoS layouts, virtual planning-only fields and 2-D lattices keep
the interpreted path, as does any host without a C compiler.
"""

from __future__ import annotations

import ctypes

import numpy as np

from repro import codegen as _cc
from repro.domain import Layout

#: keep in sync with d3q19 (imported lazily there to avoid a cycle)
SOLID_SENTINEL = -1.0
RHO0 = 1.0

_ARGTYPES = [ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_double)] + [
    ctypes.c_long
] * 8 + [ctypes.c_double]


def generate_twopop_source(lattice, lid_velocity: float) -> str:
    """C source for one z-strip of the pull-scheme collide+stream kernel.

    Signature: ``twopop_span(fin, fout, zs, ny, nx, h, lo, hi, gstart,
    nztot, omega)`` — ``zs`` is the storage z-extent (owned + 2h ghost
    slices), ``[lo, hi)`` the local owned z-range to process, ``gstart``
    the rank's global z offset and ``nztot`` the global domain depth
    (for the moving-lid test).  Strides are derived from ``ny``/``nx``,
    so one compiled unit serves every rank and partition weighting.
    """
    hexf = _cc.hexf
    q_count = lattice.q
    vel, w, opp = lattice.velocities, lattice.weights, lattice.opposite
    lines: list[str] = []
    emit = lines.append
    emit("void twopop_span(const double* restrict fin, double* restrict fout,")
    emit("    long zs, long ny, long nx, long h, long lo, long hi, long gstart,")
    emit("    long nztot, double omega) {")
    emit(f"  const double thr = {hexf(SOLID_SENTINEL + 0.5)};")
    emit(f"  const double sentinel = {hexf(SOLID_SENTINEL)};")
    emit("  long plane = ny * nx;")
    emit("  long qstride = zs * plane;")
    emit("  for (long z = lo; z < hi; ++z) {")
    emit("    long zz = z + h;")
    emit("    int from_lid = (gstart + z + 1 >= nztot);")
    emit("    for (long y = 0; y < ny; ++y) {")
    emit("      for (long x = 0; x < nx; ++x) {")
    emit("        long c = zz * plane + y * nx + x;")
    emit(f"        double fq[{q_count}];")
    emit("        double g, bb;")
    emit("        fq[0] = fin[c];")
    for q in range(1, q_count):
        e = vel[q]
        offz, offy, offx = (int(-comp) for comp in e)
        # lateral out-of-range reads see the sentinel (the field border is
        # initialised to it and never overwritten); z reads go through the
        # ghost slices, always in range for h >= 1 stencils
        conds = []
        if offy:
            conds.append(f"(y + ({offy}) >= 0 && y + ({offy}) < ny)")
        if offx:
            conds.append(f"(x + ({offx}) >= 0 && x + ({offx}) < nx)")
        idx = f"{q} * qstride + (zz + ({offz})) * plane + (y + ({offy})) * nx + (x + ({offx}))"
        if conds:
            emit(f"        g = ({' && '.join(conds)}) ? fin[{idx}] : sentinel;")
        else:
            emit(f"        g = fin[{idx}];")
        emit(f"        bb = fin[{int(opp[q])} * qstride + c];")
        if e[0] < 0 and lid_velocity != 0.0:
            corr = 6.0 * w[q] * RHO0 * (e[2] * lid_velocity)
            emit(f"        bb = bb + (from_lid ? {hexf(corr)} : 0.0);")
        emit(f"        fq[{q}] = (g <= thr) ? bb : g;")
    emit("        double rho = fq[0] + fq[1];")
    for q in range(2, q_count):
        emit(f"        rho = rho + fq[{q}];")
    for d in range(lattice.ndim):
        emit(f"        double u{d} = 0.0;")
    for q in range(q_count):
        for d in range(lattice.ndim):
            v = int(vel[q, d])
            if v == 0:
                continue
            if v == 1:
                emit(f"        u{d} = u{d} + fq[{q}];")
            elif v == -1:
                emit(f"        u{d} = u{d} - fq[{q}];")
            else:
                emit(f"        u{d} = u{d} + {hexf(float(v))} * fq[{q}];")
    emit("        if (rho > 0.0) {")
    for d in range(lattice.ndim):
        emit(f"          u{d} = u{d} / rho;")
    emit("        } else {")
    for d in range(lattice.ndim):
        emit(f"          u{d} = 0.0;")
    emit("        }")
    emit("        double usq = 0.0;")
    for d in range(lattice.ndim):
        emit(f"        usq = usq + u{d} * u{d};")
    emit("        double eu, feq, t;")
    for q in range(q_count):
        emit("        eu = 0.0;")
        for d in range(lattice.ndim):
            v = int(vel[q, d])
            if v == 0:
                continue
            if v == 1:
                emit(f"        eu = eu + u{d};")
            elif v == -1:
                emit(f"        eu = eu - u{d};")
            else:
                emit(f"        eu = eu + {hexf(float(v))} * u{d};")
        emit(
            f"        feq = ({hexf(float(w[q]))} * rho) * "
            "(((1.0 + 3.0 * eu) + (4.5 * eu) * eu) - 1.5 * usq);"
        )
        emit(f"        t = feq - fq[{q}];")
        emit(f"        fout[{q} * qstride + c] = fq[{q}] + omega * t;")
    emit("      }")
    emit("    }")
    emit("  }")
    emit("}")
    return "\n".join(lines) + "\n"


def compile_twopop(lattice, lid_velocity: float):
    """Compiled ``twopop_span`` for one (lattice, lid) pair, or None."""
    key = ("lbm.twopop", lattice.name, _cc.hexf(lid_velocity))
    return _cc.compile_shared(
        key, generate_twopop_source(lattice, lid_velocity), "twopop_span", _ARGTYPES
    )


def make_twopop_specializer(grid, f_in, f_out, omega: float, lid_velocity: float, lattice):
    """The container ``specialize`` hook for one twoPop launch direction.

    Returns a ``(rank, view, span) -> callable | None`` hook; the fusion
    pass calls it once per fused kernel unit at program-freeze time.  A
    ``None`` result (unsupported layout, no compiler, odd storage) keeps
    the interpreted closure.
    """

    def specialize(rank, view, span):
        if lattice.ndim != 3:
            return None
        if getattr(f_in, "virtual", False) or getattr(f_out, "virtual", False):
            return None
        if getattr(f_in, "layout", None) is not Layout.SOA or getattr(f_out, "layout", None) is not Layout.SOA:
            return None
        try:
            si = f_in.partition(rank).storage
            so = f_out.partition(rank).storage
        except (AttributeError, KeyError, IndexError):
            return None
        if si is None or so is None:
            return None
        for arr in (si, so):
            if arr.dtype != np.float64 or arr.ndim != 4 or not arr.flags["C_CONTIGUOUS"]:
                return None
            if arr.shape[0] != lattice.q:
                return None
        nztot, ny, nx = (int(s) for s in grid.shape)
        if si.shape[2:] != (ny, nx) or so.shape != si.shape:
            return None
        h = int(grid.radius)
        if h < 1:
            return None
        pieces = list(span.pieces())
        if not all(hasattr(p, "lo") and hasattr(p, "hi") for p in pieces):
            return None
        kfn = compile_twopop(lattice, lid_velocity)
        if kfn is None:
            return None
        zs = int(si.shape[1])
        gstart = int(grid.bounds[rank][0])
        pin = si.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        pout = so.ctypes.data_as(ctypes.POINTER(ctypes.c_double))
        calls = [
            (pin, pout, zs, ny, nx, h, int(p.lo), int(p.hi), gstart, nztot, float(omega))
            for p in pieces
        ]

        def fused_kernel(calls=calls, kfn=kfn, _keep=(si, so)):
            # _keep pins the backing arrays: the raw pointers in `calls`
            # must never outlive the ndarrays they point into
            for args in calls:
                kfn(*args)

        return fused_kernel

    return specialize
