"""D2Q9 lattice-Boltzmann Kármán vortex street (paper Table I).

Channel flow around a circular cylinder: constant-velocity inflow on the
left edge, zero-gradient outflow on the right, halfway bounce-back on
the channel walls and the cylinder.  The solid geometry lives in a 0/1
mask field whose ``outside_value`` of 0 turns the domain border into
walls automatically; inflow/outflow columns are overwritten inside the
same fused kernel using cell coordinates, so one container per time step
suffices (single-kernel steps are what Table I measures in LUPS).
"""

from __future__ import annotations

import numpy as np

from repro.domain import D2Q9_STENCIL, DenseGrid, Layout, SparseGrid
from repro.skeleton import Occ, Skeleton
from repro.system import Backend

from .lattice import D2Q9, LatticeSpec, omega_from_reynolds

RHO0 = 1.0


def cylinder_mask(shape: tuple[int, int], center: tuple[float, float], radius: float) -> np.ndarray:
    """Fluid mask (True = fluid) for a channel with one circular obstacle."""
    ny, nx = shape
    yy, xx = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    solid = (yy - center[0]) ** 2 + (xx - center[1]) ** 2 <= radius**2
    return ~solid


def make_karman_container(
    grid: DenseGrid,
    f_in,
    f_out,
    mask,
    omega: float,
    inflow_velocity: float,
    lattice: LatticeSpec = D2Q9,
    name: str = "karman_step",
):
    """One fused Kármán time step: stream, collide, and apply all BCs."""
    nx = grid.shape[1]
    vel, w, opp = lattice.velocities, lattice.weights, lattice.opposite
    u_in = np.array([0.0, inflow_velocity])
    feq_in = lattice.equilibrium(np.float64(RHO0), u_in)  # (Q,) scalars

    def loading(loader):
        fi = loader.read(f_in, stencil=True)
        mk = loader.read(mask, stencil=True)
        fo = loader.write(f_out)

        def compute(span):
            center = fi.view(span, 0)
            _, x = (np.broadcast_to(c, center.shape) for c in fi.coords(span))
            f = np.empty((lattice.q, *center.shape), dtype=np.float64)
            for q in range(lattice.q):
                e = vel[q]
                if not e.any():
                    f[q] = center
                    continue
                off = tuple(int(-c) for c in e)
                g = fi.neighbour(span, off, q)
                m = mk.neighbour(span, off)
                f[q] = np.where(m > 0.5, g, fi.view(span, int(opp[q])))
            rho, u = lattice.moments(f)
            feq = lattice.equilibrium(rho, u)
            out = f + omega * (feq - f)

            fluid = mk.view(span) > 0.5
            inflow = x == 0
            outflow = x == nx - 1
            for q in range(lattice.q):
                col = out[q]
                col = np.where(inflow, feq_in[q], col)
                # zero-gradient outflow: previous step's value one cell left
                col = np.where(outflow, fi.neighbour(span, (0, -1), q), col)
                col = np.where(fluid, col, w[q] * RHO0)  # park solid cells at rest
                fo.view(span, q)[...] = col

        return compute

    return grid.new_container(name, loading, flops_per_cell=150.0)


class KarmanVortexStreet:
    """The Table I application: 2-D channel flow past a cylinder."""

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, int],
        reynolds: float = 220.0,
        inflow_velocity: float = 0.04,
        occ: Occ = Occ.STANDARD,
        layout: Layout = Layout.SOA,
        virtual: bool = False,
        sparse: bool = False,
        lattice: LatticeSpec = D2Q9,
        partition_weights=None,
    ):
        ny, nx = shape
        self.backend = backend
        self.lattice = lattice
        self.inflow_velocity = inflow_velocity
        self.cyl_center = (ny / 2.0 + 0.5, nx / 4.0)  # slightly off-axis seeds shedding
        self.cyl_radius = max(2.0, ny / 9.0)
        self.omega = omega_from_reynolds(reynolds, inflow_velocity, 2.0 * self.cyl_radius)
        fluid = cylinder_mask(shape, self.cyl_center, self.cyl_radius)
        if sparse:
            # free-form domain: the cylinder's cells are simply not stored;
            # the mask field is 1 on every stored cell and gathers of it at
            # absent neighbours return its outside_value 0 = solid
            if virtual:
                raise ValueError("the sparse Kármán flow needs the real mask; virtual is unsupported")
            self.grid = SparseGrid(
                backend, mask=fluid, stencils=[D2Q9_STENCIL], name="karman", partition_weights=partition_weights
            )
        else:
            self.grid = DenseGrid(
                backend,
                shape,
                stencils=[D2Q9_STENCIL],
                virtual=virtual,
                name="karman",
                partition_weights=partition_weights,
            )
        self.mask = self.grid.new_field("mask", outside_value=0.0)
        self.f = [
            self.grid.new_field(n, cardinality=lattice.q, outside_value=0.0, layout=layout)
            for n in ("f0", "f1")
        ]
        if not virtual:
            if sparse:
                self.mask.fill(1.0)
                self.mask.sync_halo_now()
            else:
                self.mask.init(lambda y, x: fluid[y, x].astype(np.float64))
            feq0 = lattice.equilibrium(np.float64(RHO0), np.array([0.0, inflow_velocity]))
            for fld in self.f:
                for q in range(lattice.q):
                    fld.fill(float(feq0[q]), comp=q)
                fld.sync_halo_now()
        self.skeletons = [
            Skeleton(
                backend,
                [
                    make_karman_container(
                        self.grid, self.f[i], self.f[1 - i], self.mask, self.omega, inflow_velocity, lattice
                    )
                ],
                occ=occ,
                name=f"karman_{i}",
            )
            for i in (0, 1)
        ]
        self._parity = 0

    @property
    def current(self):
        return self.f[self._parity]

    def step(self, iterations: int = 1, mode: str = "serial") -> None:
        for _ in range(iterations):
            self.skeletons[self._parity].run(mode=mode)
            self._parity = 1 - self._parity

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        return self.lattice.moments(self.current.to_numpy())

    def vorticity(self) -> np.ndarray:
        """Curl of the velocity field (host-side, for visual checks)."""
        _, u = self.macroscopic()
        duy_dx = np.gradient(u[0], axis=1)
        dux_dy = np.gradient(u[1], axis=0)
        return duy_dx - dux_dy

    def iteration_makespan(self, machine=None) -> float:
        sk = self.skeletons[self._parity]
        return sk.trace(machine=machine, result=sk.record()).makespan

    def lups(self, machine=None) -> float:
        """Lattice updates per second under the cost model (Table I metric)."""
        return self.grid.num_active / self.iteration_makespan(machine)
