"""D3Q19 lattice-Boltzmann lid-driven cavity, twoPop variant (paper VI-A).

The twoPop scheme keeps two distribution fields and swaps them every
iteration; collide and streaming are fused into a single pull-scheme
kernel to minimise memory traffic, exactly as the paper describes for
its stlbm-derived benchmark.  Walls use halfway bounce-back, the moving
lid (top plane, +x direction) uses the standard moving-wall correction.

Out-of-domain neighbour reads are detected through the distribution
field's ``outside_value`` sentinel (-1, impossible for a population),
which turns every domain border into a solid wall with no extra mask
traffic.
"""

from __future__ import annotations

import numpy as np

from repro.domain import D3Q19_STENCIL, DenseGrid, Layout, SparseGrid
from repro.skeleton import Occ, Skeleton
from repro.system import Backend

from .lattice import D3Q19, LatticeSpec

SOLID_SENTINEL = -1.0
RHO0 = 1.0


def make_twopop_container(
    grid: DenseGrid,
    f_in,
    f_out,
    omega: float,
    lid_velocity: float,
    lattice: LatticeSpec = D3Q19,
    name: str = "collide_stream",
):
    """Fused collide+stream pull kernel: f_out <- BGK(stream(f_in))."""
    nz = grid.shape[0]
    vel = lattice.velocities
    w = lattice.weights
    opp = lattice.opposite

    def loading(loader):
        fi = loader.read(f_in, stencil=True)
        fo = loader.write(f_out)

        def compute(span):
            center = fi.view(span, 0)
            z = fi.coords(span)[0]
            f = np.empty((lattice.q, *center.shape), dtype=np.float64)
            for q in range(lattice.q):
                e = vel[q]
                if not e.any():
                    f[q] = center
                    continue
                off = tuple(int(-c) for c in e)
                g = fi.neighbour(span, off, q)
                bb = np.asarray(fi.view(span, int(opp[q])))
                if e[0] < 0 and lid_velocity != 0.0:
                    # pulling from above the top plane: the moving lid
                    corr = 6.0 * w[q] * RHO0 * (e[2] * lid_velocity)
                    from_lid = np.broadcast_to(z + off[0] >= nz, g.shape)
                    bb = bb + np.where(from_lid, corr, 0.0)
                f[q] = np.where(g <= SOLID_SENTINEL + 0.5, bb, g)
            rho, u = lattice.moments(f)
            feq = lattice.equilibrium(rho, u)
            out = f + omega * (feq - f)
            for q in range(lattice.q):
                fo.view(span, q)[...] = out[q]

        return compute

    container = grid.new_container(name, loading, flops_per_cell=350.0)
    if isinstance(grid, DenseGrid) and not getattr(grid, "virtual", False):
        # opt into fused-kernel codegen: the loading lambda above closes
        # over plain floats (no mutable scalar cells), so pre-binding the
        # whole launch into one compiled closure is semantics-preserving;
        # the hook itself still declines unsupported layouts at freeze time
        from .codegen import make_twopop_specializer

        container.specialize = make_twopop_specializer(grid, f_in, f_out, omega, lid_velocity, lattice)
    return container


class LidDrivenCavity:
    """The full application: grid, fields, and the alternating skeletons."""

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, int, int],
        omega: float = 1.0,
        lid_velocity: float = 0.05,
        occ: Occ = Occ.STANDARD,
        layout: Layout = Layout.SOA,
        virtual: bool = False,
        sparse: bool = False,
        lattice: LatticeSpec = D3Q19,
        partition_weights=None,
    ):
        self.backend = backend
        self.lattice = lattice
        self.omega = omega
        self.lid_velocity = lid_velocity
        if sparse:
            # the cavity interior is fully active; running it on the
            # element-sparse grid exercises data-structure portability
            # (same kernel, connectivity-table gathers instead of shifts)
            if virtual:
                self.grid = SparseGrid(
                    backend,
                    shape=shape,
                    stencils=[D3Q19_STENCIL],
                    active_per_slice=np.full(shape[0], shape[1] * shape[2], dtype=np.int64),
                    virtual=True,
                    name="cavity",
                    partition_weights=partition_weights,
                )
            else:
                self.grid = SparseGrid(
                    backend,
                    mask=np.ones(shape, dtype=bool),
                    stencils=[D3Q19_STENCIL],
                    name="cavity",
                    partition_weights=partition_weights,
                )
        else:
            self.grid = DenseGrid(
                backend,
                shape,
                stencils=[D3Q19_STENCIL],
                virtual=virtual,
                name="cavity",
                partition_weights=partition_weights,
            )
        self.f = [
            self.grid.new_field(n, cardinality=lattice.q, outside_value=SOLID_SENTINEL, layout=layout)
            for n in ("f0", "f1")
        ]
        if not virtual:
            feq0 = float(RHO0)  # zero-velocity equilibrium: w_q * rho0 per component
            for fld in self.f:
                for q in range(lattice.q):
                    fld.fill(feq0 * lattice.weights[q], comp=q)
                fld.sync_halo_now()
        self.skeletons = [
            Skeleton(
                backend,
                [make_twopop_container(self.grid, self.f[i], self.f[1 - i], omega, lid_velocity, lattice)],
                occ=occ,
                name=f"lbm_{i}",
            )
            for i in (0, 1)
        ]
        self._parity = 0

    @property
    def current(self):
        """The field holding the latest post-collision populations."""
        return self.f[self._parity]

    def step(self, iterations: int = 1, mode: str = "serial") -> None:
        for _ in range(iterations):
            self.skeletons[self._parity].run(mode=mode)
            self._parity = 1 - self._parity

    # -- resilience hooks ---------------------------------------------------
    def checkpoint_fields(self) -> list:
        """Both population fields — the complete state of the stepping."""
        return list(self.f)

    def checkpoint_scalars(self) -> dict:
        """Host-side loop state: which field holds the latest populations."""
        return {"parity": self._parity}

    def restore_scalars(self, scalars: dict) -> None:
        self._parity = int(scalars["parity"])

    def macroscopic(self) -> tuple[np.ndarray, np.ndarray]:
        """Global density and velocity arrays (host-side readback)."""
        f = self.current.to_numpy()
        return self.lattice.moments(f)

    def total_mass(self) -> float:
        return float(self.current.to_numpy().sum())

    def iteration_makespan(self, machine=None) -> float:
        """Simulated time of one iteration under the machine model."""
        sk = self.skeletons[self._parity]
        return sk.trace(machine=machine, result=sk.record()).makespan

    def mlups(self, machine=None) -> float:
        """Million lattice-cell updates per second under the cost model."""
        return self.grid.num_active / self.iteration_makespan(machine) / 1e6
