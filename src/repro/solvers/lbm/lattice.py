"""Lattice-Boltzmann velocity sets and kinetic helpers.

Defines the D3Q19 and D2Q9 lattices (velocities, quadrature weights,
opposite directions) and the BGK machinery shared by the grid-based
solvers and the native baselines: second-order equilibrium distribution
and macroscopic moments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LatticeSpec:
    """One discrete velocity set with its quadrature weights."""

    name: str
    velocities: np.ndarray  # (Q, ndim) int
    weights: np.ndarray  # (Q,)
    opposite: np.ndarray = field(init=False)  # (Q,) index of -e_q
    cs2: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        v, w = self.velocities, self.weights
        if v.shape[0] != w.shape[0]:
            raise ValueError("velocity/weight count mismatch")
        if not np.isclose(w.sum(), 1.0):
            raise ValueError(f"weights of {self.name} must sum to 1, got {w.sum()}")
        opp = np.full(len(v), -1, dtype=np.int64)
        for q, e in enumerate(v):
            matches = np.where((v == -e).all(axis=1))[0]
            if len(matches) != 1:
                raise ValueError(f"{self.name}: velocity {e} has no unique opposite")
            opp[q] = matches[0]
        object.__setattr__(self, "opposite", opp)

    @property
    def q(self) -> int:
        return len(self.velocities)

    @property
    def ndim(self) -> int:
        return self.velocities.shape[1]

    def equilibrium(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Second-order BGK equilibrium.

        ``rho`` has any shape S, ``u`` has shape (ndim, *S); the result
        has shape (Q, *S).
        """
        usq = np.zeros_like(rho, dtype=np.float64)
        for d in range(self.ndim):
            usq = usq + u[d] * u[d]
        out = np.empty((self.q, *np.shape(rho)), dtype=np.float64)
        for qi in range(self.q):
            eu = np.zeros_like(rho, dtype=np.float64)
            for d in range(self.ndim):
                if self.velocities[qi, d]:
                    eu = eu + self.velocities[qi, d] * u[d]
            out[qi] = self.weights[qi] * rho * (1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq)
        return out

    def moments(self, f: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Density and velocity from distributions of shape (Q, *S)."""
        rho = f.sum(axis=0)
        u = np.zeros((self.ndim, *f.shape[1:]), dtype=np.float64)
        for qi in range(self.q):
            for d in range(self.ndim):
                if self.velocities[qi, d]:
                    u[d] += self.velocities[qi, d] * f[qi]
        with np.errstate(divide="ignore", invalid="ignore"):
            u = np.where(rho > 0, u / rho, 0.0)
        return rho, u


def _d3q19() -> LatticeSpec:
    vels = [(0, 0, 0)]
    weights = [1.0 / 3.0]
    for axis in range(3):
        for s in (-1, 1):
            e = [0, 0, 0]
            e[axis] = s
            vels.append(tuple(e))
            weights.append(1.0 / 18.0)
    for a in range(3):
        for b in range(a + 1, 3):
            for sa in (-1, 1):
                for sb in (-1, 1):
                    e = [0, 0, 0]
                    e[a], e[b] = sa, sb
                    vels.append(tuple(e))
                    weights.append(1.0 / 36.0)
    return LatticeSpec("D3Q19", np.array(vels, dtype=np.int64), np.array(weights))


def _d2q9() -> LatticeSpec:
    vels = [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1), (1, -1), (-1, 1)]
    weights = [4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36]
    return LatticeSpec("D2Q9", np.array(vels, dtype=np.int64), np.array(weights))


D3Q19 = _d3q19()
D2Q9 = _d2q9()


def omega_from_reynolds(reynolds: float, char_velocity: float, char_length: float) -> float:
    """BGK relaxation rate for a target Reynolds number (lattice units)."""
    nu = char_velocity * char_length / reynolds
    tau = 3.0 * nu + 0.5
    return 1.0 / tau
