"""Unfused LBM: streaming and collision as separate Containers.

The paper's section V-D names kernel/container fusion as the one
optimisation a library approach cannot perform automatically: "the only
limitation that this design decision incurs is the inability to optimize
the single-GPU performance (e.g., via kernel/container fusion and
tiling)".  This module provides the two-container formulation a naive
user (or an automatic translator without fusion) would write, so the
cost of *not* fusing is measurable inside the framework itself — the
fused twoPop kernel touches each population twice per step, the unfused
pair four times.
"""

from __future__ import annotations

import numpy as np

from repro.domain import DenseGrid

from .d3q19 import RHO0, SOLID_SENTINEL
from .lattice import D3Q19, LatticeSpec


def make_stream_container(
    grid: DenseGrid,
    f_in,
    f_mid,
    lid_velocity: float,
    lattice: LatticeSpec = D3Q19,
    name: str = "stream",
):
    """Pure streaming pass: gather pulled populations (with bounce-back)."""
    nz = grid.shape[0]
    vel, w, opp = lattice.velocities, lattice.weights, lattice.opposite

    def loading(loader):
        fi = loader.read(f_in, stencil=True)
        fm = loader.write(f_mid)

        def compute(span):
            z = fi.coords(span)[0]
            for q in range(lattice.q):
                e = vel[q]
                if not e.any():
                    fm.view(span, q)[...] = fi.view(span, q)
                    continue
                off = tuple(int(-c) for c in e)
                g = fi.neighbour(span, off, q)
                bb = np.asarray(fi.view(span, int(opp[q])))
                if e[0] < 0 and lid_velocity != 0.0:
                    corr = 6.0 * w[q] * RHO0 * (e[2] * lid_velocity)
                    from_lid = np.broadcast_to(z + off[0] >= nz, g.shape)
                    bb = bb + np.where(from_lid, corr, 0.0)
                fm.view(span, q)[...] = np.where(g <= SOLID_SENTINEL + 0.5, bb, g)

        return compute

    return grid.new_container(name, loading, flops_per_cell=40.0)


def make_collide_container(
    grid: DenseGrid,
    f_mid,
    f_out,
    omega: float,
    lattice: LatticeSpec = D3Q19,
    name: str = "collide",
):
    """Pure BGK collision pass over the streamed populations."""

    def loading(loader):
        fm = loader.read(f_mid)
        fo = loader.write(f_out)

        def compute(span):
            f = np.stack([fm.view(span, q) for q in range(lattice.q)])
            rho, u = lattice.moments(f)
            feq = lattice.equilibrium(rho, u)
            out = f + omega * (feq - f)
            for q in range(lattice.q):
                fo.view(span, q)[...] = out[q]

        return compute

    return grid.new_container(name, loading, flops_per_cell=310.0)


def make_unfused_step(grid, f_in, f_mid, f_out, omega, lid_velocity, lattice: LatticeSpec = D3Q19):
    """The two-container step: stream into scratch, then collide."""
    return [
        make_stream_container(grid, f_in, f_mid, lid_velocity, lattice),
        make_collide_container(grid, f_mid, f_out, omega, lattice),
    ]
