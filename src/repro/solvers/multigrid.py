"""Two-grid multigrid correction for the Poisson problem.

Multigrid is *the* canonical grid algorithm, and a natural stress of the
programming model: two grids of different resolution live on the same
backend, each with its own slab decomposition, smoothers run as
skeletons on both levels, and the inter-grid transfers (full-weighting
restriction, trilinear prolongation) move data between them.

Inter-grid transfers are staged through the host (``to_numpy`` /
``init``): the two levels' slab decompositions do not align cell-for-
cell across devices, so a device-side transfer would need its own
scatter communication schedule — machinery the paper does not describe.
Host staging is the honest equivalent of the common practice of running
coarse levels on the CPU; the heavy per-level work (smoothing, residual
evaluation) still runs distributed through the Skeleton.

The V(1,1) two-grid cycle:

    smooth            (red-black Gauss-Seidel on the fine grid)
    r   = f - A u     (fine-grid residual, distributed)
    r2h = R r         (restriction, host-staged)
    A2h e2h = r2h     (coarse solve: CG, distributed)
    u  += P e2h       (prolongation + correction, host-staged)
    smooth
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import ops
from repro.domain import STENCIL_7PT, DataView, DenseGrid
from repro.skeleton import Occ, Skeleton
from repro.system import Backend

from .cg import ConjugateGradient
from .poisson import make_neg_laplacian
from .smoothers import make_rb_half_sweep, make_residual_container


def restrict_full_weighting(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction onto a half-resolution grid.

    Coarse cell (i,j,k) averages the 2x2x2 fine block at (2i..2i+1, ...).
    Fine extents must be even.
    """
    if any(s % 2 for s in fine.shape):
        raise ValueError(f"fine grid shape {fine.shape} must be even for coarsening")
    out = fine
    for axis in range(fine.ndim):
        s0 = [slice(None)] * fine.ndim
        s1 = [slice(None)] * fine.ndim
        s0[axis] = slice(0, None, 2)
        s1[axis] = slice(1, None, 2)
        out = 0.5 * (out[tuple(s0)] + out[tuple(s1)])
    return out


def prolong_block(coarse: np.ndarray) -> np.ndarray:
    """Piecewise-constant prolongation: each coarse value fills its 2^d block."""
    out = coarse
    for axis in range(coarse.ndim):
        out = np.repeat(out, 2, axis=axis)
    return out


def _interp_axis(a: np.ndarray, axis: int) -> np.ndarray:
    """Cell-centred linear interpolation along one axis (zero Dirichlet ghosts)."""
    a = np.moveaxis(a, axis, 0)
    pad = np.zeros((1, *a.shape[1:]), dtype=a.dtype)
    left = np.concatenate([pad, a[:-1]])
    right = np.concatenate([a[1:], pad])
    out = np.empty((2 * a.shape[0], *a.shape[1:]), dtype=a.dtype)
    out[0::2] = 0.75 * a + 0.25 * left
    out[1::2] = 0.75 * a + 0.25 * right
    return np.moveaxis(out, 0, axis)


def prolong_trilinear(coarse: np.ndarray) -> np.ndarray:
    """Cell-centred trilinear prolongation with zero-Dirichlet ghosts.

    The standard cell-centred interpolation: a fine cell takes 3/4 of its
    enclosing coarse cell and 1/4 of the next coarse cell on its side,
    per axis — much better smooth-error transfer than block filling.
    """
    out = coarse
    for axis in range(coarse.ndim):
        out = _interp_axis(out, axis)
    return out


@dataclass
class TwoGridResult:
    converged: bool
    cycles: int
    residual_norms: list[float] = field(default_factory=list)


class TwoGridPoisson:
    """V(nu,nu) two-grid solver for ``-laplace(u) = f``, zero Dirichlet."""

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, int, int],
        pre_smooth: int = 2,
        post_smooth: int = 2,
        occ: Occ = Occ.STANDARD,
    ):
        if any(s % 2 for s in shape):
            raise ValueError("two-grid needs even fine-grid extents")
        self.backend = backend
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.fine = DenseGrid(backend, shape, stencils=[STENCIL_7PT], name="fine")
        self.u = self.fine.new_field("u")
        self.f = self.fine.new_field("f")
        self.r = self.fine.new_field("r")
        self._res_partial = self.fine.new_reduce_partial("mg_res")

        self.sk_smooth = Skeleton(
            backend,
            [
                make_rb_half_sweep(self.fine, self.u, self.f, 0, "red"),
                make_rb_half_sweep(self.fine, self.u, self.f, 1, "black"),
            ],
            occ=occ,
            name="smooth",
        )
        self.sk_residual = Skeleton(
            backend,
            [
                _residual_field(self.fine, self.u, self.f, self.r),
                make_residual_container(self.fine, self.u, self.f, self._res_partial, name="res_norm"),
            ],
            occ=occ,
            name="residual",
        )

        coarse_shape = tuple(s // 2 for s in shape)
        self.coarse = DenseGrid(backend, coarse_shape, stencils=[STENCIL_7PT], name="coarse")
        self.e2h = self.coarse.new_field("e2h")
        self.r2h = self.coarse.new_field("r2h")
        # the coarse operator uses mesh width 2h: A_2h = A / 4 in matrix
        # terms, equivalently solve (A e) = 4 * r2h with the unit-h stencil
        self.coarse_cg = ConjugateGradient(self.coarse, make_neg_laplacian, self.r2h, self.e2h, occ=occ)

    def set_rhs(self, fn) -> None:
        self.f.init(fn)

    def residual_norm(self) -> float:
        self.sk_residual.run()
        return float(np.sqrt(ops.ScalarResult(self._res_partial).value()))

    def cycle(self) -> None:
        """One V(pre, post) two-grid cycle."""
        for _ in range(self.pre_smooth):
            self.sk_smooth.run()
        self.sk_residual.run()

        # host-staged restriction (see module docstring)
        r_global = self.r.to_numpy()[0]
        r2h = 4.0 * restrict_full_weighting(r_global)  # 2h-operator scaling
        self.r2h.init(lambda z, y, x: r2h[z, y, x])
        self.e2h.fill(0.0)
        self.coarse_cg.solve(max_iterations=200, tolerance=1e-10)

        # host-staged prolongation and correction
        e = prolong_trilinear(self.e2h.to_numpy()[0])
        u_now = self.u.to_numpy()[0]
        corrected = u_now + e
        self.u.init(lambda z, y, x: corrected[z, y, x])

        for _ in range(self.post_smooth):
            self.sk_smooth.run()

    def solve(self, max_cycles: int = 30, tolerance: float = 1e-8) -> TwoGridResult:
        result = TwoGridResult(False, 0, [self.residual_norm()])
        for c in range(1, max_cycles + 1):
            self.cycle()
            result.residual_norms.append(self.residual_norm())
            result.cycles = c
            if result.residual_norms[-1] <= tolerance:
                result.converged = True
                break
        return result

    def solution(self) -> np.ndarray:
        return self.u.to_numpy()[0]


def _residual_field(grid, u, f, r):
    """r <- f - A u (the distributed residual evaluation)."""

    def loading(loader):
        up = loader.read(u, stencil=True)
        fp = loader.read(f)
        rp = loader.write(r)

        def compute(span):
            acc = 6.0 * up.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc - up.neighbour(span, off)
            rp.view(span)[...] = fp.view(span) - acc

        return compute

    return grid.new_container("residual_field", loading, flops_per_cell=8.0)
