"""Finite-difference Poisson solver (paper VI-B).

Standard 7-point discretisation of ``-laplace(u) = f`` on a Cartesian
grid with homogeneous Dirichlet boundaries (the field's outside value of
0 *is* the boundary condition), solved matrix-free with conjugate
gradient — paper Listings 2 + 3.
"""

from __future__ import annotations

import numpy as np

from repro.domain import STENCIL_7PT, DenseGrid
from repro.domain.grid import Grid
from repro.skeleton import Occ
from repro.system import Backend

from .cg import CGResult, ConjugateGradient


def make_neg_laplacian(grid: Grid, u, out, name: str = "laplacian"):
    """out <- (-laplace_h) u: 6*u[i] minus the 6 face neighbours (h = 1).

    Positive definite on the zero-Dirichlet subspace, so CG applies.
    """

    def loading(loader):
        up = loader.read(u, stencil=True)
        op = loader.write(out)

        def compute(span):
            acc = 6.0 * up.view(span)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc - up.neighbour(span, off)
            op.view(span)[...] = acc

        return compute

    return grid.new_container(name, loading, flops_per_cell=7.0)


class PoissonSolver:
    """-laplace(u) = f on an (n0, n1, n2) grid, zero Dirichlet borders."""

    def __init__(
        self,
        backend: Backend,
        shape: tuple[int, int, int],
        occ: Occ = Occ.STANDARD,
        virtual: bool = False,
        partition_weights=None,
    ):
        self.backend = backend
        self.grid = DenseGrid(
            backend,
            shape,
            stencils=[STENCIL_7PT],
            virtual=virtual,
            name="poisson",
            partition_weights=partition_weights,
        )
        self.f = self.grid.new_field("f")
        self.u = self.grid.new_field("u")
        self.cg = ConjugateGradient(self.grid, make_neg_laplacian, self.f, self.u, occ=occ)

    def set_rhs(self, fn) -> None:
        self.f.init(fn)

    def solve(self, max_iterations: int = 500, tolerance: float = 1e-8) -> CGResult:
        return self.cg.solve(max_iterations=max_iterations, tolerance=tolerance)

    def iteration_makespan(self, machine=None) -> float:
        return self.cg.iteration_makespan(machine)

    def solution(self) -> np.ndarray:
        return self.u.to_numpy()[0]


def manufactured_problem(shape: tuple[int, int, int]):
    """An analytic (u, f) pair with u = 0 on the border.

    ``u`` mixes the first two sine harmonics (each vanishes at the ghost
    layer x_d = -1 and x_d = n_d, matching the solver's outside value) so
    that it is *not* an eigenvector of the discrete Laplacian and CG needs
    a genuine Krylov sequence; ``f`` is the exact discrete operator
    applied to u, so CG must reproduce u to solver precision (no
    discretisation error involved).
    """

    def mode(k: int) -> np.ndarray:
        axes = [np.sin(k * np.pi * (np.arange(n) + 1.0) / (n + 1.0)) for n in shape]
        return axes[0][:, None, None] * axes[1][None, :, None] * axes[2][None, None, :]

    u = mode(1) + 0.4 * mode(2)
    f = 6.0 * u
    for axis in range(3):
        for shift in (-1, 1):
            rolled = np.roll(u, shift, axis=axis)
            # zero Dirichlet: values rolled across the border are 0
            idx = [slice(None)] * 3
            idx[axis] = 0 if shift == 1 else -1
            rolled[tuple(idx)] = 0.0
            f -= rolled
    return u, f
