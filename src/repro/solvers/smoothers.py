"""Classic iterative smoothers for the Poisson problem.

Beyond CG (the paper's solver), Jacobi and red-black Gauss-Seidel are
the canonical grid iterations — and red-black GS is a useful stress of
the programming model: its half-sweeps update a *coordinate-masked*
subset of cells in place, expressed with the same span/coords accessors
as everything else.  A half-sweep stencil-reads the field and map-writes
the same field; that is race-free because a cell only ever reads the
opposite colour, and the Skeleton's coherency tracking automatically
re-exchanges halos between the red and black halves (the red write makes
the halo stale, so a halo node lands before the black half).

Both methods solve ``-laplace(u) = f`` with zero Dirichlet borders, like
:class:`repro.solvers.poisson.PoissonSolver`.
"""

from __future__ import annotations

import numpy as np

from repro.core import ops
from repro.domain import STENCIL_7PT, DenseGrid
from repro.sets import Access, Pattern
from repro.skeleton import Occ, Skeleton
from repro.system import Backend


def _neighbour_sum(part, span):
    acc = None
    for off in STENCIL_7PT:
        if off != (0, 0, 0):
            v = part.neighbour(span, off)
            acc = v if acc is None else acc + v
    return acc


def make_jacobi_sweep(grid, u_in, u_out, f, name: str = "jacobi"):
    """u_out[i] = (f[i] + sum of u_in's 6 neighbours) / 6."""

    def loading(loader):
        ui = loader.read(u_in, stencil=True)
        fp = loader.read(f)
        uo = loader.write(u_out)

        def compute(span):
            uo.view(span)[...] = (fp.view(span) + _neighbour_sum(ui, span)) / 6.0

        return compute

    return grid.new_container(name, loading, flops_per_cell=8.0)


def make_rb_half_sweep(grid, u, f, parity: int, name: str):
    """In-place Gauss-Seidel update of the cells with (z+y+x) % 2 == parity."""

    def loading(loader):
        ur = loader.load(u, Access.READ, Pattern.STENCIL)
        uw = loader.load(u, Access.WRITE, Pattern.MAP)
        fp = loader.read(f)

        def compute(span):
            z, y, x = ur.coords(span)
            mask = (z + y + x) % 2 == parity
            new = (fp.view(span) + _neighbour_sum(ur, span)) / 6.0
            uv = uw.view(span)
            uv[...] = np.where(mask, new, uv)

        return compute

    return grid.new_container(name, loading, flops_per_cell=8.0)


def make_residual_container(grid, u, f, partial, name: str = "residual"):
    """partial[rank] <- sum of (f - A u)^2 over the rank's cells."""

    def loading(loader):
        up = loader.read(u, stencil=True)
        fp = loader.read(f)
        acc = loader.reduce_target(partial)

        def compute(span):
            r = fp.view(span) - (6.0 * up.view(span) - _neighbour_sum(up, span))
            acc.deposit(float(np.sum(r * r)))

        return compute

    return grid.new_container(name, loading, flops_per_cell=10.0)


class IterativePoisson:
    """Jacobi or red-black Gauss-Seidel driver with residual tracking."""

    def __init__(self, backend: Backend, shape, method: str = "jacobi", occ: Occ = Occ.STANDARD):
        if method not in ("jacobi", "rbgs"):
            raise ValueError(f"unknown method '{method}'")
        self.method = method
        self.grid = DenseGrid(backend, shape, stencils=[STENCIL_7PT], name=method)
        self.f = self.grid.new_field("f")
        self.u = self.grid.new_field("u")
        self._res_partial = self.grid.new_reduce_partial("res")
        if method == "jacobi":
            self.u2 = self.grid.new_field("u2")
            self.sweeps = [
                Skeleton(backend, [make_jacobi_sweep(self.grid, self.u, self.u2, self.f, "jac0")], occ=occ),
                Skeleton(backend, [make_jacobi_sweep(self.grid, self.u2, self.u, self.f, "jac1")], occ=occ),
            ]
            self._residual_sk = [
                Skeleton(
                    backend,
                    [make_residual_container(self.grid, fld, self.f, self._res_partial)],
                    occ=Occ.NONE,
                    name="residual",
                )
                for fld in (self.u, self.u2)
            ]
        else:
            self.sweeps = [
                Skeleton(
                    backend,
                    [
                        make_rb_half_sweep(self.grid, self.u, self.f, 0, "red"),
                        make_rb_half_sweep(self.grid, self.u, self.f, 1, "black"),
                    ],
                    occ=occ,
                )
            ]
            self._residual_sk = [
                Skeleton(
                    backend,
                    [make_residual_container(self.grid, self.u, self.f, self._res_partial)],
                    occ=Occ.NONE,
                    name="residual",
                )
            ]
        self._parity = 0

    def set_rhs(self, fn) -> None:
        self.f.init(fn)

    def sweep(self, count: int = 1) -> None:
        for _ in range(count):
            if self.method == "jacobi":
                self.sweeps[self._parity].run()
                self._parity = 1 - self._parity
            else:
                self.sweeps[0].run()

    @property
    def latest(self):
        """The field holding the newest iterate."""
        if self.method == "jacobi" and self._parity == 1:
            return self.u2
        return self.u

    def residual_norm(self) -> float:
        sk = self._residual_sk[self._parity if self.method == "jacobi" else 0]
        sk.run()
        return float(np.sqrt(ops.ScalarResult(self._res_partial).value()))

    def solution(self) -> np.ndarray:
        return self.latest.to_numpy()[0]
