"""System abstraction: devices, memory, queues/events, back ends (paper IV-A)."""

from . import sharedmem
from .backend import Backend
from .device import HOST, Device, DeviceSet, DeviceType
from .engine import (
    EngineDeadlock,
    ParallelEngine,
    ParallelFallbackWarning,
    ProcessEngine,
    ProcessFallbackWarning,
    close_all_process_engines,
    live_process_engine_count,
    process_fallback_reason,
)
from .memory import AllocationError, DeviceAllocator, DeviceBuffer, MemOptions, StagingPool
from .queue import (
    Command,
    CommandQueue,
    CopyCommand,
    Event,
    KernelCommand,
    KernelCost,
    RecordEventCommand,
    WaitEventCommand,
)

__all__ = [
    "HOST",
    "AllocationError",
    "Backend",
    "Command",
    "CommandQueue",
    "CopyCommand",
    "Device",
    "DeviceAllocator",
    "DeviceBuffer",
    "DeviceSet",
    "DeviceType",
    "EngineDeadlock",
    "Event",
    "KernelCommand",
    "KernelCost",
    "MemOptions",
    "ParallelEngine",
    "ParallelFallbackWarning",
    "ProcessEngine",
    "ProcessFallbackWarning",
    "RecordEventCommand",
    "StagingPool",
    "WaitEventCommand",
    "close_all_process_engines",
    "live_process_engine_count",
    "process_fallback_reason",
    "sharedmem",
]
