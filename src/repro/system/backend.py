"""Backend: the user-visible bundle of devices + machine model + allocator.

In the paper every application is "described with respect to a back end
(CPU or GPU), the number of available resources, a grid data structure,
layout and memory properties" — all switchable without touching user
code.  :class:`Backend` is that first parameter.
"""

from __future__ import annotations

from repro import observability as _obs
from repro.sim.machine import MachineSpec, cpu_host, dgx_a100

from .device import Device, DeviceSet, DeviceType
from .memory import DeviceAllocator, MemOptions, StagingPool
from .queue import CommandQueue


class Backend:
    """A set of execution devices plus their performance envelope."""

    def __init__(
        self,
        devices: DeviceSet,
        machine: MachineSpec | None = None,
        memory_capacity: int | None = None,
        mem_options: MemOptions | None = None,
    ):
        self.devices = devices
        self.machine = machine or dgx_a100(len(devices))
        if self.machine.num_devices != len(devices):
            self.machine = self.machine.with_devices(len(devices))
        self.allocator = DeviceAllocator(capacity_bytes=memory_capacity)
        self.mem_options = mem_options or MemOptions()
        self.staging = StagingPool()

    @classmethod
    def sim_gpus(cls, count: int, machine: MachineSpec | None = None, **kw) -> "Backend":
        """Simulated multi-GPU backend (default machine: DGX-A100-like)."""
        return cls(DeviceSet.gpus(count), machine=machine or dgx_a100(count), **kw)

    @classmethod
    def cpu(cls, **kw) -> "Backend":
        """Single multi-core CPU backend, for debugging runs."""
        return cls(DeviceSet.cpu(), machine=cpu_host(), **kw)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def is_cpu(self) -> bool:
        return all(d.kind is DeviceType.CPU for d in self.devices)

    def device(self, rank: int) -> Device:
        return self.devices[rank]

    def new_queue(self, rank: int, name: str = "", eager: bool = True) -> CommandQueue:
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("queues_created", device=self.devices[rank].metric_label).inc()
        return CommandQueue(self.devices[rank], name=name, eager=eager)

    def allocate(self, rank: int, shape, dtype, options: MemOptions | None = None, virtual: bool = False):
        return self.allocator.allocate(
            self.devices[rank], shape, dtype, options or self.mem_options, virtual=virtual
        )

    def memory_report(self) -> dict[int, int]:
        """Bytes currently allocated per device rank (virtual included)."""
        return {r: self.allocator.used_bytes(self.devices[r]) for r in range(self.num_devices)}

    def close(self) -> None:
        """Deterministically release backend resources (idempotent).

        Unlinks the allocator's shared-memory arenas and drains the
        staging pool; both also happen at garbage collection via
        ``weakref.finalize`` owners, but tests and long-lived drivers
        should close under ``try/finally`` so a failure cannot leave
        named segments behind for the next case.
        """
        try:
            self.allocator.close()
        finally:
            self.staging.drain()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Backend({self.devices!r}, machine={self.machine.name})"
