"""Device model for the System abstraction (paper section IV-A).

The paper's System layer shields Neon from hardware specifics: it models a
machine as a set of accelerators, each exposing memory management, a
queue-based runtime, and the ability to run user lambdas.  Without real
GPUs we model each accelerator as a *simulated device*: kernels execute
eagerly as NumPy operations on host memory that is logically owned by the
device, while every command is also recorded so the discrete-event
simulator (:mod:`repro.sim`) can replay it against a performance model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class DeviceType(enum.Enum):
    """Kind of execution resource behind a :class:`Device`."""

    CPU = "cpu"
    GPU = "gpu"


_device_counter = itertools.count()


@dataclass(frozen=True)
class Device:
    """A single execution resource (one simulated GPU or the host CPU).

    Attributes
    ----------
    index:
        Rank of the device inside its :class:`DeviceSet` (the paper's
        ``setIdx``).  The host CPU conventionally uses index ``-1``.
    kind:
        Whether this models a GPU or a CPU.
    uid:
        Globally unique id, used to key simulator resources.
    """

    index: int
    kind: DeviceType = DeviceType.GPU
    uid: int = field(default_factory=lambda: next(_device_counter))

    @property
    def is_host(self) -> bool:
        return self.kind is DeviceType.CPU

    @property
    def metric_label(self) -> str:
        """Stable label for this device in metric series (e.g. ``gpu0``)."""
        return f"{self.kind.value}{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.kind.value}:{self.index})"


HOST = Device(index=-1, kind=DeviceType.CPU)
"""The host CPU device shared by every backend."""


class DeviceSet:
    """Ordered collection of devices, the unit the Set abstraction works on.

    The paper parametrises every multi-GPU mechanism as a vector indexed by
    device rank; :class:`DeviceSet` is that index space.
    """

    def __init__(self, devices: list[Device]):
        if not devices:
            raise ValueError("a DeviceSet needs at least one device")
        ranks = [d.index for d in devices]
        if ranks != list(range(len(devices))):
            raise ValueError(f"device indices must be 0..n-1, got {ranks}")
        self._devices = tuple(devices)

    @classmethod
    def gpus(cls, count: int) -> "DeviceSet":
        """Build a set of ``count`` simulated GPUs."""
        if count < 1:
            raise ValueError("need at least one device")
        return cls([Device(index=i, kind=DeviceType.GPU) for i in range(count)])

    @classmethod
    def cpu(cls) -> "DeviceSet":
        """A single-device set modelling a multi-core CPU back end.

        The paper models the CPU with the same accelerator interface but
        limits it to one kernel at a time; the cost model in
        :mod:`repro.sim` applies the same restriction.
        """
        return cls([Device(index=0, kind=DeviceType.CPU)])

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices)

    def __getitem__(self, rank: int) -> Device:
        return self._devices[rank]

    @property
    def devices(self) -> tuple[Device, ...]:
        return self._devices

    def neighbours(self, rank: int) -> list[int]:
        """Ranks this device exchanges halos with (1-D slab decomposition)."""
        out = []
        if rank > 0:
            out.append(rank - 1)
        if rank < len(self) - 1:
            out.append(rank + 1)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = {d.kind.value for d in self._devices}
        return f"DeviceSet({len(self)}x{'/'.join(sorted(kinds))})"
