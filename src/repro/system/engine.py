"""Concurrent functional execution: one worker thread per device.

The functional plane historically ran every kernel inline on the host in
task-list order — correct, but serial, so ``run()`` wall-clock scaled
with total work rather than with the critical path the paper's OCC
schedules are designed to shorten.  This module replays *recorded*
command queues with one worker thread per simulated device (NumPy
kernels release the GIL, the standard parallelism mechanism in
NumPy-backed runtimes), turning ``RecordEventCommand`` /
``WaitEventCommand`` into real cross-thread synchronisation.

The engine honours exactly the stream/event wiring:

* all queues of one device are merged into a single per-device program
  ordered by ``Command.issue_seq`` (the host task-list order projected
  onto that device — this mirrors the DES machine model, which also
  serialises kernels through one compute engine per device);
* a ``WaitEventCommand`` blocks the worker until the event's signal is
  set; a ``RecordEventCommand`` sets it; kernel and copy commands run
  through a caller-supplied ``run_command`` callback (default: call the
  command's ``fn``).

Fused replay (:mod:`repro.skeleton.fusion`) batches dispatch through
this same callback: the Plan's ``run_command`` executes a whole fused
unit when the engine reaches the unit's *head* command and treats the
remaining member commands as no-ops at their original positions.  The
engine itself needs no special casing — member commands still occupy
their slots in the per-device program, so every interleaved wait and
record executes exactly where the recording placed it, and the
preflight/watchdog deadlock checks see the unmodified wiring.  The
contract the fusion pass upholds is that no wait sits between a unit's
members on their queue, which makes running the unit early (at head
position) indistinguishable, dependency-wise, from running the members
at their own positions.

No host-order crutch is consulted between devices, so a bitwise-correct
parallel run is a live proof that the Plan's synchronisation alone
enforces every dependency — the executor's checker claim
(:func:`repro.skeleton.executor.check_trace_dependencies`), exercised
for real.

Deadlock-freedom within the supported usage: the Skeleton enqueues in a
topological order where every event record precedes all of its waits in
``issue_seq``; take the blocked wait with the smallest ``issue_seq`` —
its record has a smaller seq on another device, whose worker must then
be blocked at an even smaller wait, a contradiction.  Hand-built
schedules that violate record-before-wait host order are caught by a
pre-flight check (waits on events never recorded in the batch) and a
watchdog timeout.
"""

from __future__ import annotations

import os
import queue as _queue
import threading
import time
import traceback
import weakref
from collections.abc import Callable
from time import perf_counter

from repro import observability as _obs
from repro import resilience as _res
from repro.observability import flight as _flight
from repro.sanitizer.state import SAN as _SAN

from . import sharedmem
from .queue import Command, CommandQueue, CopyCommand, KernelCommand, RecordEventCommand, WaitEventCommand


class EngineDeadlock(RuntimeError):
    """A worker blocked on an event that can no longer be signalled."""


class ParallelFallbackWarning(UserWarning):
    """Parallel execution was requested but the engine fell back to serial.

    Raised as a *warning* (not an error) because the fallback preserves
    semantics exactly; the typed class lets callers and tests assert the
    degradation happened (e.g. resilience forcing host-ordered replay).
    """


class ProcessFallbackWarning(UserWarning):
    """Process execution was requested but the plan fell back to serial.

    Same contract as :class:`ParallelFallbackWarning`: semantics are
    preserved exactly, and the typed class lets callers assert on the
    degradation.  Raised when shared-memory backing is unavailable
    (``REPRO_NO_SHM``, no ``/dev/shm``, non-POSIX platform), when some
    device payload had to be allocated privately (a worker's writes to
    it would be invisible), or when resilience fault injection or the
    sanitizer recorder is armed — both assume host-ordered, in-process
    replay (rollback snapshots and execution records live in host
    memory).
    """


def process_fallback_reason() -> str | None:
    """Why ``mode="process"`` must fall back to serial right now, or None.

    Checked by :meth:`repro.skeleton.scheduler.Plan.execute` before
    dispatching to the process engine, and by benchmarks/tests deciding
    whether a process leg would be honest.
    """
    if not sharedmem.available():
        return "shared-memory backing is unavailable (platform lacks fork/shm, or REPRO_NO_SHM is set)"
    n = sharedmem.fallback_payloads()
    if n:
        return f"{n} device payload(s) were allocated privately (shared arena exhausted)"
    if _res.RES.active:
        return "resilience fault injection is armed (recovery requires host-ordered in-process replay)"
    if _SAN.active:
        return "sanitizer recorder is armed (worker-process execution records would be lost)"
    return None


class _Worker:
    """A persistent per-device thread draining a job inbox.

    Jobs are zero-argument callables that never raise (the engine wraps
    each batch so errors are collected and the completion latch is
    always released); ``None`` is the shutdown sentinel.
    """

    def __init__(self, name: str):
        self.inbox: _queue.SimpleQueue = _queue.SimpleQueue()
        self.thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self.thread.start()

    def _loop(self) -> None:
        while True:
            job = self.inbox.get()
            if job is None:
                return
            job()
            # drop the closure before blocking on the next get(): a live
            # thread frame is a GC root, and the job chains to commands,
            # kernel closures, fields and ultimately the backend's
            # shared-memory arenas — holding it would pin all of that
            # for as long as this idle worker exists
            del job

    def submit(self, job: Callable[[], None]) -> None:
        self.inbox.put(job)

    def stop(self) -> None:
        self.inbox.put(None)


class ParallelEngine:
    """Replays recorded command queues with one worker thread per device.

    Workers are *persistent*: the first replay that touches a device
    spawns its thread, and every later replay reuses it, so a
    1000-iteration loop pays thread-creation cost once (the same
    amortisation the compiled replay plans give the graph cost).  Keep
    one engine and reuse it across replays of the same (or different)
    queue sets; ``close()`` retires the workers (daemon threads, so
    skipping it merely leaves idle threads until process exit).

    Parameters
    ----------
    deadlock_timeout:
        Seconds a worker may block on one event before the replay is
        declared deadlocked.  Generous by default — it is a watchdog for
        broken hand-built schedules, not a pacing mechanism.
    """

    def __init__(self, deadlock_timeout: float = 30.0):
        if deadlock_timeout <= 0:
            raise ValueError("deadlock_timeout must be positive")
        self.deadlock_timeout = deadlock_timeout
        self._workers: dict[int, _Worker] = {}
        self._batch_lock = threading.Lock()  # one batch in flight per engine

    def execute(
        self,
        queues: list[CommandQueue],
        run_command: Callable[[Command], None] | None = None,
    ) -> None:
        """Run every command of ``queues`` on per-device worker threads.

        ``run_command`` receives each :class:`KernelCommand` /
        :class:`CopyCommand` (event commands are handled by the engine);
        when omitted the command's own ``fn`` is called.  Exceptions in
        any worker abort the replay and re-raise in the calling thread.
        """
        programs = self._build_programs(queues)
        if not programs:
            return
        if run_command is None:
            run_command = self._default_run
        t0 = perf_counter() if _obs.OBS.active else 0.0

        abort = threading.Event()
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        done = threading.Semaphore(0)

        def make_job(program: list[Command]) -> Callable[[], None]:
            def job() -> None:
                try:
                    for cmd in program:
                        if abort.is_set():
                            break
                        self._step(cmd, run_command, abort)
                except BaseException as exc:  # noqa: BLE001 - propagated to caller
                    with errors_lock:
                        errors.append(exc)
                    abort.set()
                finally:
                    done.release()

            return job

        # The event-signal reset MUST happen inside the batch lock: a
        # concurrent replay of the same compiled program through this
        # engine would otherwise clear signals the in-flight batch has
        # already set, stranding its waiters until the watchdog fires
        # (pinned down by tests/system/test_event_replay_stress.py).
        # The single-device inline path holds the lock for the same
        # reason — its commands share the batch's event objects.
        with self._batch_lock:
            self._reset_and_check_events(programs)
            if len(programs) == 1:
                # single device: no cross-thread dependencies are
                # possible, run inline and keep the exception story trivial
                for cmd in next(iter(programs.values())):
                    self._step(cmd, run_command, abort=None)
                self._observe_batch(t0, programs)
                return
            for dev_uid, program in sorted(programs.items()):
                self._worker(dev_uid).submit(make_job(program))
            for _ in programs:
                done.acquire()
        if errors:
            raise errors[0]
        self._observe_batch(t0, programs)

    def close(self) -> None:
        """Retire every persistent worker thread (idempotent)."""
        with self._batch_lock:
            workers, self._workers = self._workers, {}
        for w in workers.values():
            w.stop()
        for w in workers.values():
            w.thread.join()

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _observe_batch(t0: float, programs: dict[int, list[Command]]) -> None:
        """Record one successful batch replay into the metrics registry."""
        if not _obs.OBS.active:
            return
        m = _obs.OBS.metrics
        m.counter("engine_batches", devices=str(len(programs))).inc()
        m.histogram(
            "engine_batch_seconds",
            bounds=_obs.Histogram.TIME_BOUNDS,
            devices=str(len(programs)),
        ).observe(perf_counter() - t0)

    def _worker(self, dev_uid: int) -> _Worker:
        w = self._workers.get(dev_uid)
        if w is None:
            w = self._workers[dev_uid] = _Worker(f"engine-dev{dev_uid}")
        return w

    @staticmethod
    def _build_programs(queues: list[CommandQueue]) -> dict[int, list[Command]]:
        """Merge each device's queues into one issue-ordered program."""
        return _merge_programs(queues)

    def _reset_and_check_events(self, programs: dict[int, list[Command]]) -> None:
        _reset_and_preflight(programs)

    def _step(self, cmd: Command, run_command: Callable[[Command], None], abort: threading.Event | None) -> None:
        if isinstance(cmd, WaitEventCommand):
            deadline = self.deadlock_timeout
            # poll in short slices so an abort elsewhere unblocks us promptly
            while not cmd.event.wait_signal(0.05):
                if abort is not None and abort.is_set():
                    return
                deadline -= 0.05
                if deadline <= 0:
                    worker = threading.current_thread().name
                    _flight.record(worker, "deadlock", cmd.name, {"timeout": self.deadlock_timeout})
                    _flight.dump("engine_deadlock", {"stage": "watchdog", "command": cmd.name})
                    raise EngineDeadlock(
                        f"worker stalled {self.deadlock_timeout:.0f}s on {cmd.name}; "
                        "the recording queue made no progress"
                    )
            if _SAN.active:
                _SAN.record(cmd, "wait")
        elif isinstance(cmd, RecordEventCommand):
            cmd.event.signal()
            if _SAN.active:
                _SAN.record(cmd, "signal")
        else:
            run_command(cmd)

    @staticmethod
    def _default_run(cmd: Command) -> None:
        if isinstance(cmd, (KernelCommand, CopyCommand)):
            cmd.fn()
            if _SAN.active:
                _SAN.record(cmd)
        else:  # pragma: no cover - future command kinds fail loudly
            raise TypeError(f"parallel engine cannot execute {type(cmd).__name__}")


# -- shared engine internals ------------------------------------------------
def _merge_programs(queues: list[CommandQueue]) -> dict[int, list[Command]]:
    """Merge each device's queues into one issue-ordered program."""
    programs: dict[int, list[Command]] = {}
    for q in queues:
        programs.setdefault(q.device.uid, []).extend(q.commands)
    for program in programs.values():
        program.sort(key=lambda cmd: cmd.issue_seq)
    return programs


def _reset_and_preflight(programs: dict[int, list[Command]]) -> None:
    """Reset every event signal and reject waits that could never retire."""
    recorded: set[int] = set()
    waited: dict[int, Command] = {}
    for program in programs.values():
        for cmd in program:
            if isinstance(cmd, RecordEventCommand):
                cmd.event.reset_signal()
                recorded.add(cmd.event.uid)
            elif isinstance(cmd, WaitEventCommand):
                waited.setdefault(cmd.event.uid, cmd)
    missing = [cmd for uid, cmd in waited.items() if uid not in recorded]
    if missing:
        names = ", ".join(cmd.name for cmd in missing[:5])
        _flight.record("host", "deadlock", "engine.preflight", {"missing_waits": names})
        _flight.dump("engine_deadlock", {"stage": "preflight", "missing": len(missing)})
        raise EngineDeadlock(
            f"{len(missing)} wait(s) on events never recorded in this batch ({names}); "
            "the replay would block forever"
        )


def _batch_events(programs: dict[int, list[Command]]) -> list:
    """Every distinct event recorded or waited in ``programs``, uid-ordered."""
    events: dict[int, object] = {}
    for program in programs.values():
        for cmd in program:
            if isinstance(cmd, (RecordEventCommand, WaitEventCommand)):
                events.setdefault(cmd.event.uid, cmd.event)
    return [events[uid] for uid in sorted(events)]


# -- process engine ----------------------------------------------------------
class _ProcessWorker:
    """Handle for one forked per-device worker: process + duplex pipe."""

    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


def _worker_step(cmd: Command, run_command, board: "sharedmem.EventBoard", timeout: float) -> None:
    """One command inside a worker process (event waits go via the board)."""
    if isinstance(cmd, WaitEventCommand):
        deadline = timeout
        # short slices so a batch abort (set by any failing sibling or
        # the parent watchdog) unblocks the wait promptly
        while not cmd.event.wait_signal(0.05):
            if board.aborted():
                return
            deadline -= 0.05
            if deadline <= 0:
                raise EngineDeadlock(
                    f"worker stalled {timeout:.0f}s on {cmd.name}; "
                    "the recording queue made no progress"
                )
    elif isinstance(cmd, RecordEventCommand):
        cmd.event.signal()
    else:
        run_command(cmd)


def _process_worker_main(conn, program: list[Command], run_command, board, timeout: float) -> None:
    """Entry point of a forked device worker: replay ``program`` per epoch.

    The worker inherited the whole compiled plan by fork — commands,
    kernel closures, C-specialized dispatch units, and events already
    bound to board slots.  Each message on ``conn`` is one replay epoch
    (``None`` is the shutdown sentinel); the worker answers
    ``("ok", None)`` or ``("err", traceback_text)``.

    The worker exits through ``os._exit`` so the fork-inherited
    ``weakref.finalize`` registrations (which would unlink the parent's
    shared segments!) and other atexit hooks never run in the child.
    """
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            try:
                for cmd in program:
                    if board.aborted():
                        break
                    _worker_step(cmd, run_command, board, timeout)
                conn.send(("ok", None))
            except BaseException:  # noqa: BLE001 - shipped to the parent
                board.abort()
                try:
                    conn.send(("err", traceback.format_exc()))
                except (OSError, ValueError):  # pragma: no cover - pipe gone
                    break
    finally:
        os._exit(0)


class _ProcState:
    """Mutable process-engine state, shutdown-safe from a GC finalizer.

    Kept outside :class:`ProcessEngine` so ``weakref.finalize(engine,
    _ProcState.shutdown, state)`` holds no reference to the engine
    itself: an abandoned engine is collected, and the finalizer still
    reaches the workers, the event bindings and the board.
    """

    def __init__(self) -> None:
        self.workers: dict[int, _ProcessWorker] = {}
        self.board: sharedmem.EventBoard | None = None
        self.bound: list[tuple] = []  # (event, previous signal backend)
        self.signature: tuple | None = None

    def shutdown(self) -> None:
        """Stop workers, restore event signals, unlink the board (idempotent)."""
        workers, self.workers = self.workers, {}
        try:
            for w in workers.values():
                try:
                    w.conn.send(None)
                except (OSError, ValueError):
                    pass
            for w in workers.values():
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():  # pragma: no cover - stuck worker
                    w.proc.terminate()
                    w.proc.join(timeout=2.0)
                try:
                    w.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        finally:
            bound, self.bound = self.bound, []
            for event, prev in bound:
                event.attach_signal(prev)
            board, self.board = self.board, None
            if board is not None:
                board.destroy()
            self.signature = None


#: live engines, so the test-suite leak guard can force deterministic teardown
_LIVE_PROCESS_ENGINES: "weakref.WeakSet[ProcessEngine]" = weakref.WeakSet()


def close_all_process_engines() -> None:
    """Close every live process engine (test-suite teardown hook)."""
    for engine in list(_LIVE_PROCESS_ENGINES):
        engine.close()


def live_process_engine_count() -> int:
    """How many process engines still hold forked workers or a board.

    Long-lived servers (the serving gateway) and the test suite use
    this to assert engine teardown actually happened: an engine that
    was closed — or never forked — no longer counts.
    """
    return sum(
        1
        for engine in _LIVE_PROCESS_ENGINES
        if engine._state.workers or engine._state.board is not None
    )


class ProcessEngine:
    """Replays recorded command queues with one worker *process* per device.

    The multiprocess sibling of :class:`ParallelEngine`, and the piece
    that actually escapes the GIL: each device's issue-ordered program
    runs in a forked worker whose kernels execute truly concurrently
    with its siblings'.  Correctness rests on the same stream/event
    wiring — no host-order crutch — plus two shared substrates from
    :mod:`repro.system.sharedmem`:

    * device payloads live in per-device shared arenas, so a kernel's
      writes are immediately visible to every worker and to the host;
    * event signals live on a shared :class:`~repro.system.sharedmem.EventBoard`
      (the plan's events are rebound to board slots before the fork and
      restored on shutdown, so serial/parallel replays of the same plan
      keep working afterwards).

    Workers are persistent per compiled batch shape: the first
    ``execute`` forks them, later replays of the same program set reuse
    them paying only one pipe round-trip per worker.  Submitting a
    *different* program set retires the old workers and forks fresh ones
    (fork is the shipping mechanism — a worker can only replay what
    existed when it was forked).  Any worker error or death tears the
    pool down so the next replay starts from a clean fork.

    ``close()`` (or garbage collection, or the test-suite leak guard)
    shuts workers down and unlinks the board; arenas belong to the
    backend and outlive the engine.
    """

    def __init__(self, deadlock_timeout: float = 30.0):
        if deadlock_timeout <= 0:
            raise ValueError("deadlock_timeout must be positive")
        reason = None if sharedmem.available() else "shared-memory backing is unavailable"
        if reason:
            raise RuntimeError(f"ProcessEngine cannot start: {reason}")
        self.deadlock_timeout = deadlock_timeout
        self._state = _ProcState()
        self._batch_lock = threading.Lock()  # one batch in flight per engine
        self._finalizer = weakref.finalize(self, _ProcState.shutdown, self._state)
        _LIVE_PROCESS_ENGINES.add(self)

    # -- public API ---------------------------------------------------------
    def execute(
        self,
        queues: list[CommandQueue],
        run_command: Callable[[Command], None] | None = None,
    ) -> None:
        """Run every command of ``queues`` on per-device worker processes.

        Same contract as :meth:`ParallelEngine.execute`; single-device
        batches run inline (no cross-device dependency can exist, so a
        fork would buy nothing and cost a process).
        """
        programs = _merge_programs(queues)
        if not programs:
            return
        if run_command is None:
            run_command = ParallelEngine._default_run
        t0 = perf_counter() if _obs.OBS.active else 0.0
        with self._batch_lock:
            if len(programs) == 1:
                _reset_and_preflight(programs)
                for cmd in next(iter(programs.values())):
                    self._inline_step(cmd, run_command)
                self._observe_batch(t0, programs)
                return
            try:
                self._ensure_workers(programs, run_command)
                # board first (clears the abort flag), then the event-API
                # reset + preflight (board-backed now, so the clears land
                # on the same flags the workers will watch)
                self._state.board.reset()
                _reset_and_preflight(programs)
                for w in self._state.workers.values():
                    w.conn.send(1)
                self._collect_acks()
            except BaseException:
                # a failed batch leaves workers/board in an unknown state;
                # tear down so the next replay starts from a clean fork
                self._state.shutdown()
                raise
        self._observe_batch(t0, programs)

    def close(self) -> None:
        """Shut down workers, restore events, unlink the board (idempotent)."""
        with self._batch_lock:
            self._state.shutdown()

    # -- internals ----------------------------------------------------------
    def _inline_step(self, cmd: Command, run_command) -> None:
        # single-device batch: records precede waits in issue order, so
        # waits are satisfied the moment they are reached
        if isinstance(cmd, WaitEventCommand):
            if not cmd.event.wait_signal(0.0):  # pragma: no cover - preflight guards this
                raise EngineDeadlock(f"single-device batch blocked on {cmd.name}")
        elif isinstance(cmd, RecordEventCommand):
            cmd.event.signal()
        else:
            run_command(cmd)

    @staticmethod
    def _signature_of(programs: dict[int, list[Command]]) -> tuple:
        # command objects are frozen plan state: identity of each
        # program's endpoints (plus length) identifies the batch shape
        return tuple(
            (uid, len(prog), id(prog[0]), id(prog[-1])) for uid, prog in sorted(programs.items())
        )

    def _ensure_workers(self, programs: dict[int, list[Command]], run_command) -> None:
        sig = self._signature_of(programs)
        state = self._state
        if state.workers and state.signature != sig:
            state.shutdown()
        if state.workers:
            return
        events = _batch_events(programs)
        board = sharedmem.EventBoard(len(events))
        state.board = board
        for slot, event in enumerate(events):
            state.bound.append((event, event.attach_signal(board.signal_for(slot))))
        ctx = sharedmem.fork_context()
        for dev_uid, program in sorted(programs.items()):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_process_worker_main,
                args=(child_conn, program, run_command, board, self.deadlock_timeout),
                name=f"engine-proc-dev{dev_uid}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            state.workers[dev_uid] = _ProcessWorker(proc, parent_conn)
        state.signature = sig
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("process_engine_forks", devices=str(len(programs))).inc()

    def _collect_acks(self) -> None:
        """Gather one ack per worker, with a death + watchdog safety net."""
        state = self._state
        pending = dict(state.workers)
        failures: list[str] = []
        deadline = time.monotonic() + self.deadlock_timeout + 5.0
        while pending:
            for dev_uid, w in list(pending.items()):
                if w.conn.poll(0.02):
                    try:
                        status, detail = w.conn.recv()
                    except (EOFError, OSError):
                        # poll() also wakes on EOF: the worker died with
                        # the pipe open (SIGKILL, OOM-kill) — same story
                        # as the is_alive() branch below
                        del pending[dev_uid]
                        w.proc.join(timeout=1.0)
                        failures.append(
                            f"worker dev{dev_uid} died (exit code {w.proc.exitcode}) before acking"
                        )
                        state.board.abort()
                        continue
                    del pending[dev_uid]
                    if status != "ok":
                        failures.append(f"worker dev{dev_uid}:\n{detail}")
                        state.board.abort()
                elif not w.proc.is_alive():
                    del pending[dev_uid]
                    failures.append(
                        f"worker dev{dev_uid} died (exit code {w.proc.exitcode}) before acking"
                    )
                    state.board.abort()
            if pending and time.monotonic() > deadline:
                state.board.abort()
                names = ", ".join(f"dev{uid}" for uid in pending)
                _flight.record("host", "deadlock", "process_engine.watchdog", {"pending": names})
                _flight.dump("engine_deadlock", {"stage": "process_watchdog", "pending": len(pending)})
                raise EngineDeadlock(
                    f"process replay stalled: no ack from {names} within "
                    f"{self.deadlock_timeout:.0f}s (+grace)"
                )
        if failures:
            # a worker-side watchdog trip is still a deadlock to the caller
            exc_type = EngineDeadlock if any("EngineDeadlock" in f for f in failures) else RuntimeError
            raise exc_type("process replay failed in " + "; ".join(failures))

    @staticmethod
    def _observe_batch(t0: float, programs: dict[int, list[Command]]) -> None:
        if not _obs.OBS.active:
            return
        m = _obs.OBS.metrics
        m.counter("process_engine_batches", devices=str(len(programs))).inc()
        m.histogram(
            "process_engine_batch_seconds",
            bounds=_obs.Histogram.TIME_BOUNDS,
            devices=str(len(programs)),
        ).observe(perf_counter() - t0)
