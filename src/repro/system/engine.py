"""Concurrent functional execution: one worker thread per device.

The functional plane historically ran every kernel inline on the host in
task-list order — correct, but serial, so ``run()`` wall-clock scaled
with total work rather than with the critical path the paper's OCC
schedules are designed to shorten.  This module replays *recorded*
command queues with one worker thread per simulated device (NumPy
kernels release the GIL, the standard parallelism mechanism in
NumPy-backed runtimes), turning ``RecordEventCommand`` /
``WaitEventCommand`` into real cross-thread synchronisation.

The engine honours exactly the stream/event wiring:

* all queues of one device are merged into a single per-device program
  ordered by ``Command.issue_seq`` (the host task-list order projected
  onto that device — this mirrors the DES machine model, which also
  serialises kernels through one compute engine per device);
* a ``WaitEventCommand`` blocks the worker until the event's signal is
  set; a ``RecordEventCommand`` sets it; kernel and copy commands run
  through a caller-supplied ``run_command`` callback (default: call the
  command's ``fn``).

Fused replay (:mod:`repro.skeleton.fusion`) batches dispatch through
this same callback: the Plan's ``run_command`` executes a whole fused
unit when the engine reaches the unit's *head* command and treats the
remaining member commands as no-ops at their original positions.  The
engine itself needs no special casing — member commands still occupy
their slots in the per-device program, so every interleaved wait and
record executes exactly where the recording placed it, and the
preflight/watchdog deadlock checks see the unmodified wiring.  The
contract the fusion pass upholds is that no wait sits between a unit's
members on their queue, which makes running the unit early (at head
position) indistinguishable, dependency-wise, from running the members
at their own positions.

No host-order crutch is consulted between devices, so a bitwise-correct
parallel run is a live proof that the Plan's synchronisation alone
enforces every dependency — the executor's checker claim
(:func:`repro.skeleton.executor.check_trace_dependencies`), exercised
for real.

Deadlock-freedom within the supported usage: the Skeleton enqueues in a
topological order where every event record precedes all of its waits in
``issue_seq``; take the blocked wait with the smallest ``issue_seq`` —
its record has a smaller seq on another device, whose worker must then
be blocked at an even smaller wait, a contradiction.  Hand-built
schedules that violate record-before-wait host order are caught by a
pre-flight check (waits on events never recorded in the batch) and a
watchdog timeout.
"""

from __future__ import annotations

import queue as _queue
import threading
from collections.abc import Callable
from time import perf_counter

from repro import observability as _obs
from repro.observability import flight as _flight
from repro.sanitizer.state import SAN as _SAN

from .queue import Command, CommandQueue, CopyCommand, KernelCommand, RecordEventCommand, WaitEventCommand


class EngineDeadlock(RuntimeError):
    """A worker blocked on an event that can no longer be signalled."""


class ParallelFallbackWarning(UserWarning):
    """Parallel execution was requested but the engine fell back to serial.

    Raised as a *warning* (not an error) because the fallback preserves
    semantics exactly; the typed class lets callers and tests assert the
    degradation happened (e.g. resilience forcing host-ordered replay).
    """


class _Worker:
    """A persistent per-device thread draining a job inbox.

    Jobs are zero-argument callables that never raise (the engine wraps
    each batch so errors are collected and the completion latch is
    always released); ``None`` is the shutdown sentinel.
    """

    def __init__(self, name: str):
        self.inbox: _queue.SimpleQueue = _queue.SimpleQueue()
        self.thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self.thread.start()

    def _loop(self) -> None:
        while True:
            job = self.inbox.get()
            if job is None:
                return
            job()

    def submit(self, job: Callable[[], None]) -> None:
        self.inbox.put(job)

    def stop(self) -> None:
        self.inbox.put(None)


class ParallelEngine:
    """Replays recorded command queues with one worker thread per device.

    Workers are *persistent*: the first replay that touches a device
    spawns its thread, and every later replay reuses it, so a
    1000-iteration loop pays thread-creation cost once (the same
    amortisation the compiled replay plans give the graph cost).  Keep
    one engine and reuse it across replays of the same (or different)
    queue sets; ``close()`` retires the workers (daemon threads, so
    skipping it merely leaves idle threads until process exit).

    Parameters
    ----------
    deadlock_timeout:
        Seconds a worker may block on one event before the replay is
        declared deadlocked.  Generous by default — it is a watchdog for
        broken hand-built schedules, not a pacing mechanism.
    """

    def __init__(self, deadlock_timeout: float = 30.0):
        if deadlock_timeout <= 0:
            raise ValueError("deadlock_timeout must be positive")
        self.deadlock_timeout = deadlock_timeout
        self._workers: dict[int, _Worker] = {}
        self._batch_lock = threading.Lock()  # one batch in flight per engine

    def execute(
        self,
        queues: list[CommandQueue],
        run_command: Callable[[Command], None] | None = None,
    ) -> None:
        """Run every command of ``queues`` on per-device worker threads.

        ``run_command`` receives each :class:`KernelCommand` /
        :class:`CopyCommand` (event commands are handled by the engine);
        when omitted the command's own ``fn`` is called.  Exceptions in
        any worker abort the replay and re-raise in the calling thread.
        """
        programs = self._build_programs(queues)
        if not programs:
            return
        if run_command is None:
            run_command = self._default_run
        t0 = perf_counter() if _obs.OBS.active else 0.0

        abort = threading.Event()
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        done = threading.Semaphore(0)

        def make_job(program: list[Command]) -> Callable[[], None]:
            def job() -> None:
                try:
                    for cmd in program:
                        if abort.is_set():
                            break
                        self._step(cmd, run_command, abort)
                except BaseException as exc:  # noqa: BLE001 - propagated to caller
                    with errors_lock:
                        errors.append(exc)
                    abort.set()
                finally:
                    done.release()

            return job

        # The event-signal reset MUST happen inside the batch lock: a
        # concurrent replay of the same compiled program through this
        # engine would otherwise clear signals the in-flight batch has
        # already set, stranding its waiters until the watchdog fires
        # (pinned down by tests/system/test_event_replay_stress.py).
        # The single-device inline path holds the lock for the same
        # reason — its commands share the batch's event objects.
        with self._batch_lock:
            self._reset_and_check_events(programs)
            if len(programs) == 1:
                # single device: no cross-thread dependencies are
                # possible, run inline and keep the exception story trivial
                for cmd in next(iter(programs.values())):
                    self._step(cmd, run_command, abort=None)
                self._observe_batch(t0, programs)
                return
            for dev_uid, program in sorted(programs.items()):
                self._worker(dev_uid).submit(make_job(program))
            for _ in programs:
                done.acquire()
        if errors:
            raise errors[0]
        self._observe_batch(t0, programs)

    def close(self) -> None:
        """Retire every persistent worker thread (idempotent)."""
        with self._batch_lock:
            workers, self._workers = self._workers, {}
        for w in workers.values():
            w.stop()
        for w in workers.values():
            w.thread.join()

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _observe_batch(t0: float, programs: dict[int, list[Command]]) -> None:
        """Record one successful batch replay into the metrics registry."""
        if not _obs.OBS.active:
            return
        m = _obs.OBS.metrics
        m.counter("engine_batches", devices=str(len(programs))).inc()
        m.histogram(
            "engine_batch_seconds",
            bounds=_obs.Histogram.TIME_BOUNDS,
            devices=str(len(programs)),
        ).observe(perf_counter() - t0)

    def _worker(self, dev_uid: int) -> _Worker:
        w = self._workers.get(dev_uid)
        if w is None:
            w = self._workers[dev_uid] = _Worker(f"engine-dev{dev_uid}")
        return w

    @staticmethod
    def _build_programs(queues: list[CommandQueue]) -> dict[int, list[Command]]:
        """Merge each device's queues into one issue-ordered program."""
        programs: dict[int, list[Command]] = {}
        for q in queues:
            programs.setdefault(q.device.uid, []).extend(q.commands)
        for program in programs.values():
            program.sort(key=lambda cmd: cmd.issue_seq)
        return programs

    def _reset_and_check_events(self, programs: dict[int, list[Command]]) -> None:
        recorded: set[int] = set()
        waited: dict[int, Command] = {}
        for program in programs.values():
            for cmd in program:
                if isinstance(cmd, RecordEventCommand):
                    cmd.event.reset_signal()
                    recorded.add(cmd.event.uid)
                elif isinstance(cmd, WaitEventCommand):
                    waited.setdefault(cmd.event.uid, cmd)
        missing = [cmd for uid, cmd in waited.items() if uid not in recorded]
        if missing:
            names = ", ".join(cmd.name for cmd in missing[:5])
            _flight.record("host", "deadlock", "engine.preflight", {"missing_waits": names})
            _flight.dump("engine_deadlock", {"stage": "preflight", "missing": len(missing)})
            raise EngineDeadlock(
                f"{len(missing)} wait(s) on events never recorded in this batch ({names}); "
                "the replay would block forever"
            )

    def _step(self, cmd: Command, run_command: Callable[[Command], None], abort: threading.Event | None) -> None:
        if isinstance(cmd, WaitEventCommand):
            deadline = self.deadlock_timeout
            # poll in short slices so an abort elsewhere unblocks us promptly
            while not cmd.event.wait_signal(0.05):
                if abort is not None and abort.is_set():
                    return
                deadline -= 0.05
                if deadline <= 0:
                    worker = threading.current_thread().name
                    _flight.record(worker, "deadlock", cmd.name, {"timeout": self.deadlock_timeout})
                    _flight.dump("engine_deadlock", {"stage": "watchdog", "command": cmd.name})
                    raise EngineDeadlock(
                        f"worker stalled {self.deadlock_timeout:.0f}s on {cmd.name}; "
                        "the recording queue made no progress"
                    )
            if _SAN.active:
                _SAN.record(cmd, "wait")
        elif isinstance(cmd, RecordEventCommand):
            cmd.event.signal()
            if _SAN.active:
                _SAN.record(cmd, "signal")
        else:
            run_command(cmd)

    @staticmethod
    def _default_run(cmd: Command) -> None:
        if isinstance(cmd, (KernelCommand, CopyCommand)):
            cmd.fn()
            if _SAN.active:
                _SAN.record(cmd)
        else:  # pragma: no cover - future command kinds fail loudly
            raise TypeError(f"parallel engine cannot execute {type(cmd).__name__}")
