"""Device memory management for the System abstraction.

Buffers are NumPy arrays tagged with an owning :class:`~repro.system.device.Device`.
Allocation options (alignment, padding, pinned host mirrors) mirror the
memory properties the paper lists as user-tunable backend parameters; in
the simulation they affect the reported allocation footprint and the
cost model, not physical placement.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import observability as _obs
from repro import resilience as _res

from . import sharedmem
from .device import Device


class AllocationError(RuntimeError):
    """Raised when a simulated device cannot satisfy an allocation."""


@dataclass(frozen=True)
class MemOptions:
    """Memory properties a user can request per allocation.

    Attributes
    ----------
    alignment:
        Requested alignment in bytes; allocation sizes are rounded up to a
        multiple of it (power of two required).
    padding:
        Extra elements appended at the end of each allocation.
    pinned_host:
        Whether host mirrors should be treated as pinned (page-locked) by
        the cost model, which doubles host<->device bandwidth.
    """

    alignment: int = 256
    padding: int = 0
    pinned_host: bool = False

    def __post_init__(self) -> None:
        if self.alignment <= 0 or (self.alignment & (self.alignment - 1)) != 0:
            raise ValueError(f"alignment must be a positive power of two, got {self.alignment}")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")


_buffer_ids = itertools.count()


class DeviceBuffer:
    """A typed, device-resident linear buffer.

    The payload lives in host RAM (``self.array``) but is logically owned
    by ``self.device``; every access from the framework goes through
    commands recorded for the simulator, so the distinction is preserved
    where it matters.

    A *virtual* buffer carries shape/dtype/footprint metadata but no
    payload.  Virtual allocations let the benchmark harness plan and
    time paper-scale domains (e.g. 512^3 x 19 components) whose payload
    would not fit in this machine's RAM, while still exercising the
    capacity accounting that reproduces the paper's Fig 9 out-of-memory
    behaviour.
    """

    def __init__(
        self,
        device: Device,
        shape,
        dtype,
        options: MemOptions | None = None,
        virtual: bool = False,
        arena: "sharedmem.SharedArena | None" = None,
    ):
        self.device = device
        self.options = options or MemOptions()
        self.virtual = virtual
        self._dtype = np.dtype(dtype)
        self._shape = tuple(int(s) for s in (shape if isinstance(shape, (tuple, list)) else (shape,)))
        if any(s < 0 for s in self._shape):
            raise ValueError(f"negative dimension in shape {self._shape}")
        #: whether the payload lives in a shared-memory arena (visible to
        #: forked worker processes); private payloads disqualify process mode
        self.shared = False
        if virtual:
            self.array = None
        else:
            arr = arena.alloc_array(self._shape, self._dtype) if arena is not None else None
            self.shared = arr is not None
            self.array = arr if arr is not None else np.zeros(self._shape, dtype=self._dtype)
        self.uid = next(_buffer_ids)

    @property
    def dtype(self):
        return self._dtype

    @property
    def shape(self):
        return self._shape

    @property
    def nbytes(self) -> int:
        """Logical payload size in bytes (excluding alignment rounding)."""
        n = self._dtype.itemsize
        for s in self._shape:
            n *= s
        return n

    @property
    def allocated_bytes(self) -> int:
        """Footprint after padding and alignment rounding."""
        raw = self.nbytes + self.padding_bytes
        a = self.options.alignment
        return (raw + a - 1) // a * a

    @property
    def padding_bytes(self) -> int:
        return self.options.padding * self._dtype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceBuffer(dev={self.device.index}, shape={self.shape}, dtype={self.dtype})"


class DeviceAllocator:
    """Tracks allocations per device and enforces a capacity limit.

    The paper's Fig 9 discussion hinges on the sparse layout running out
    of memory on a 512^3 fully-dense domain; a capacity-limited allocator
    lets the reproduction exhibit the same failure mode deterministically.
    """

    def __init__(self, capacity_bytes: int | None = None):
        self.capacity_bytes = capacity_bytes
        self._used: dict[int, int] = {}
        self._live: dict[int, list[DeviceBuffer]] = {}
        # per-device shared-memory arenas backing non-virtual payloads so
        # forked worker processes see the same pages (lazy; empty when
        # shared backing is unavailable or REPRO_NO_SHM is set)
        self._arenas: dict[int, sharedmem.SharedArena] = {}

    def _arena_for(self, device: Device) -> "sharedmem.SharedArena | None":
        if not sharedmem.available():
            return None
        arena = self._arenas.get(device.uid)
        if arena is None:
            arena = self._arenas[device.uid] = sharedmem.SharedArena(label=f"dev{device.index}")
        return arena

    def close(self) -> None:
        """Release every shared-memory arena segment (idempotent).

        Live buffer views keep their pages mapped until they die, but the
        named segments are unlinked immediately, so nothing can leak past
        the owning backend's lifetime.
        """
        arenas, self._arenas = self._arenas, {}
        for arena in arenas.values():
            arena.destroy()

    def used_bytes(self, device: Device) -> int:
        return self._used.get(device.uid, 0)

    def report(self, device: Device, limit: int | None = None) -> list[tuple[str, int, int]]:
        """Live allocations on ``device`` as ``(description, bytes, padding)``.

        Sorted by footprint, largest first, so the head of the list names
        the buffers worth evicting (or virtualising) when an OOM hits.
        """
        rows = [
            (f"buf#{b.uid} shape={b.shape} dtype={b.dtype}", b.allocated_bytes, b.padding_bytes)
            for b in self._live.get(device.uid, [])
        ]
        rows.sort(key=lambda r: r[1], reverse=True)
        return rows[:limit] if limit is not None else rows

    def _oom_detail(self, device: Device, top: int = 5) -> str:
        rows = self.report(device, limit=top)
        if not rows:
            return "no live allocations"
        lines = [f"    {desc}: {nbytes} B ({pad} B padding)" for desc, nbytes, pad in rows]
        return f"top {len(rows)} of {len(self._live.get(device.uid, []))} live allocations:\n" + "\n".join(
            lines
        )

    def allocate(
        self, device: Device, shape, dtype, options: MemOptions | None = None, virtual: bool = False
    ) -> DeviceBuffer:
        if _res.RES.active:
            # allocation-fault injection site (also loss-checks the device)
            if _res.should_fail_allocation(device.index, f"alloc@{device.index}"):
                raise AllocationError(
                    f"device {device.index}: injected allocation fault (seeded); "
                    f"{self._oom_detail(device)}"
                )
        buf = DeviceBuffer(
            device, shape, dtype, options, virtual=virtual, arena=self._arena_for(device)
        )
        if self.capacity_bytes is not None:
            if self.used_bytes(device) + buf.allocated_bytes > self.capacity_bytes:
                raise AllocationError(
                    f"device {device.index}: allocation of {buf.allocated_bytes} B exceeds "
                    f"capacity {self.capacity_bytes} B ({self.used_bytes(device)} B in use); "
                    f"{self._oom_detail(device)}"
                )
        self._used[device.uid] = self.used_bytes(device) + buf.allocated_bytes
        self._live.setdefault(device.uid, []).append(buf)
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            dev = device.metric_label
            m.counter("allocations", device=dev).inc()
            m.counter("allocations_bytes", device=dev).inc(buf.allocated_bytes)
            m.gauge("memory_used_bytes", device=dev).set(self._used[device.uid])
            m.histogram("allocation_size_bytes").observe(buf.allocated_bytes)
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        live = self._live.get(buf.device.uid, [])
        if buf not in live:
            raise AllocationError("double free or foreign buffer")
        live.remove(buf)
        self._used[buf.device.uid] -= buf.allocated_bytes
        if _obs.OBS.active:
            dev = buf.device.metric_label
            m = _obs.OBS.metrics
            m.counter("frees", device=dev).inc()
            m.gauge("memory_used_bytes", device=dev).set(self._used[buf.device.uid])


_MIN_STAGING_BUCKET = 256


class StagingPool:
    """Size-bucketed pool of reusable staging arrays, keyed per device.

    Halo exchanges and host<->device mirrors need a transient contiguous
    staging area per transfer (explicit copies are the paper's chosen
    halo strategy, section IV-C2).  Allocating a fresh NumPy array per
    transfer puts an allocator round-trip on the exchange fast path of
    every iteration; the pool instead hands out buffers from per-device
    free lists bucketed by power-of-two size, so a steady-state solver
    loop reuses the same few staging blocks forever.

    The pool is thread-safe (one lock; acquire/release are O(1) list
    operations) because the parallel engine issues halo copies from
    per-device worker threads concurrently.

    Observability: ``staging_pool_hits`` / ``staging_pool_misses``
    counters and a ``staging_pool_resident_bytes{device}`` gauge track
    reuse quality; ``stats()`` returns the same numbers for tests and
    benchmark reports.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: dict[tuple[int, int], list[np.ndarray]] = {}
        self._resident: dict[int, int] = {}
        self._hits = 0
        self._misses = 0

    @staticmethod
    def _bucket(nbytes: int) -> int:
        if nbytes < 0:
            raise ValueError("negative staging size")
        b = _MIN_STAGING_BUCKET
        while b < nbytes:
            b <<= 1
        return b

    def acquire(self, device: Device, nbytes: int) -> np.ndarray:
        """A 1-D uint8 staging array of at least ``nbytes`` bytes.

        The returned array is bucket-sized; callers slice the prefix they
        need (``buf[:nbytes]``) and must hand the *same* array back to
        :meth:`release` when the transfer retires.
        """
        t0 = perf_counter() if _obs.OBS.active else 0.0
        bucket = self._bucket(nbytes)
        key = (device.uid, bucket)
        with self._lock:
            free = self._free.get(key)
            if free:
                self._hits += 1
                arr = free.pop()
                hit = True
            else:
                self._misses += 1
                self._resident[device.uid] = self._resident.get(device.uid, 0) + bucket
                arr = None
                hit = False
            resident = self._resident.get(device.uid, 0)
        if arr is None:
            # allocate outside the lock; the resident accounting above
            # already reserved the bucket for this device
            arr = np.empty(bucket, dtype=np.uint8)
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            m.counter("staging_pool_hits" if hit else "staging_pool_misses").inc()
            m.gauge("staging_pool_resident_bytes", device=device.metric_label).set(resident)
            # distinguishes the O(1) free-list pop from an allocator round-trip
            m.histogram(
                "staging_acquire_seconds",
                bounds=_obs.Histogram.TIME_BOUNDS,
                outcome="hit" if hit else "miss",
            ).observe(perf_counter() - t0)
        return arr

    def release(self, device: Device, arr: np.ndarray) -> None:
        """Return a staging array to its device's free list."""
        key = (device.uid, arr.nbytes)
        with self._lock:
            self._free.setdefault(key, []).append(arr)

    def staged_copy(self, device: Device, dst: np.ndarray, src: np.ndarray) -> None:
        """Copy ``src`` into ``dst`` through a pooled staging buffer.

        Models the explicit two-hop transfer path of a peer copy (source
        partition -> staging area -> destination halo slots / mirror)
        without paying a fresh allocation per transfer.  Each concurrent
        transfer holds its own block, so the helper is safe to call from
        the parallel engine's per-device workers.
        """
        nbytes = src.nbytes
        if nbytes == 0:
            return
        stage = self.acquire(device, nbytes)
        try:
            view = stage[:nbytes].view(src.dtype).reshape(src.shape)
            np.copyto(view, src)
            np.copyto(dst, view)
        finally:
            self.release(device, stage)

    def drain(self) -> None:
        """Drop every pooled block and reset resident accounting.

        Teardown hook (``Backend.close``): staging blocks are plain
        process-private arrays, but draining deterministically on close
        keeps a failing test from carrying resident-bytes state — or a
        reference to a dead backend's blocks — into the next one.
        """
        with self._lock:
            self._free.clear()
            self._resident.clear()

    def stats(self) -> dict[str, float]:
        """Pool quality snapshot: hits, misses, hit rate, resident bytes."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": self._hits / total if total else 0.0,
                "resident_bytes": sum(self._resident.values()),
            }
