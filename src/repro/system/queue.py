"""Queue-based runtime model: commands, events and command queues.

This is the System-level contract the paper requires from any back end
(section IV-A): asynchronous command queues per device (CUDA streams) and
events to inject cross-queue dependencies (CUDA events).

Three consumers share these objects, and the contract between them is
worth spelling out:

* the *eager* functional path runs each kernel/copy inline at enqueue
  time (the host issues commands in a dependency-respecting order,
  exactly as the Skeleton's ordered task list guarantees in the paper).
  Events are pure markers here — the host order already serialises
  everything;
* the *recorded* path (``eager=False``) appends commands without running
  them.  The timing simulator (:mod:`repro.sim.des`) replays recorded
  queues against a machine model, honouring only stream FIFO order and
  event waits — which is also how the schedule validity checker proves
  the generated synchronisation is sufficient;
* the *parallel engine* (:mod:`repro.system.engine`) replays recorded
  queues with one worker thread per device.  Here
  :class:`RecordEventCommand` / :class:`WaitEventCommand` become real
  cross-thread synchronisation through each event's ``signal()`` /
  ``wait_signal()`` runtime state, so a correct result is a live proof
  that the stream/event wiring alone enforces every dependency.

Because the engine shares command objects across threads, the process-
global uid counters (event uids, queue uids, ``Command.issue_seq``) are
lock-guarded rather than bare ``itertools.count`` iterators, and each
:class:`Event` carries a resettable :class:`threading.Event` runtime
flag alongside its one-shot *recording* metadata: recording (which queue
position defines completion) happens once when a schedule is frozen;
signalling happens once per replay and is cleared by ``reset_signal()``
before the next one.
"""

from __future__ import annotations

import threading
from collections.abc import Callable
from dataclasses import dataclass, field
from time import perf_counter

from repro import observability as _obs
from repro import resilience as _res
from repro.sanitizer.state import SAN as _SAN

from .device import Device


class _SeqCounter:
    """A thread-safe monotonically increasing counter.

    Commands and events are created from worker threads once the parallel
    engine exists (e.g. Set-level code recording from a callback), so the
    process-global sequence counters must not rely on the atomicity of
    any particular ``itertools.count`` implementation.
    """

    __slots__ = ("_lock", "_next")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0

    def __next__(self) -> int:
        with self._lock:
            value = self._next
            self._next = value + 1
            return value


_event_ids = _SeqCounter()
_queue_ids = _SeqCounter()


class Event:
    """A one-shot synchronisation marker, recorded into one queue.

    Mirrors a CUDA event restricted to single recording, which is all the
    Skeleton scheduler needs (it records one completion event per task
    when a schedule is frozen).

    Recording and signalling are distinct lifecycles.  *Recording* is
    one-shot schedule metadata: which queue position defines completion.
    The *signal* is replay-time runtime state, backed by a
    :class:`threading.Event` so the parallel engine's worker threads can
    block on cross-device dependencies; a compiled plan resets every
    signal (``reset_signal()``) at the start of each replay and the
    recording queue's worker sets it (``signal()``) when the record
    command retires.
    """

    def __init__(self, name: str = ""):
        self.uid = next(_event_ids)
        self.name = name or f"ev{self.uid}"
        self.recorded_in: CommandQueue | None = None
        self.record_position: int | None = None
        self._signal = threading.Event()

    @property
    def is_recorded(self) -> bool:
        return self.recorded_in is not None

    @property
    def is_signaled(self) -> bool:
        """Whether the current replay has retired this event's record."""
        return self._signal.is_set()

    def signal(self) -> None:
        """Mark the event complete for the current replay (thread-safe)."""
        self._signal.set()

    def wait_signal(self, timeout: float | None = None) -> bool:
        """Block until the event is signalled; False on timeout."""
        return self._signal.wait(timeout)

    def reset_signal(self) -> None:
        """Clear runtime completion state so the event can be replayed."""
        self._signal.clear()

    def attach_signal(self, signal) -> object:
        """Swap the runtime signal backend; returns the previous one.

        The process engine rebinds every plan event to a shared-memory
        board slot (an object with the ``set/clear/is_set/wait``
        ``threading.Event`` surface) before forking its workers, and
        restores the saved backend on shutdown so serial/parallel
        replays of the same plan keep working afterwards.  Current
        signalled state carries over.
        """
        if self._signal.is_set():
            signal.set()
        else:
            signal.clear()
        prev, self._signal = self._signal, signal
        return prev

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = f"@{self.recorded_in.name}[{self.record_position}]" if self.is_recorded else "(unrecorded)"
        return f"Event({self.name}{where})"


@dataclass(frozen=True)
class KernelCost:
    """Inputs to the roofline-style kernel duration model.

    ``bytes_moved`` is the total DRAM traffic of the kernel on its device,
    ``flops`` its arithmetic work, ``indirection`` a multiplier (>1) for
    gather/scatter-heavy access such as the element-sparse connectivity
    walk, and ``launches`` the number of hardware launches folded into the
    command (normally 1).
    """

    bytes_moved: float
    flops: float = 0.0
    indirection: float = 1.0
    launches: int = 1

    def __post_init__(self) -> None:
        if self.bytes_moved < 0 or self.flops < 0 or self.indirection < 1.0 or self.launches < 1:
            raise ValueError(f"invalid KernelCost: {self}")


_issue_counter = _SeqCounter()


class Command:
    """Base class for queue entries.

    ``issue_seq`` is the host-side enqueue order across all queues; the
    simulator uses it to break resource-contention ties the way hardware
    FIFO dispatch would — which is what lets the Skeleton's task-list
    order (and thus the OCC scheduling hints) take effect.  The parallel
    engine relies on the same property: merging one device's queues in
    ``issue_seq`` order reproduces the host task list projected onto
    that device, and because every event record precedes its waits in
    host order, per-device issue order is deadlock-free by construction.
    """

    __slots__ = ("name", "issue_seq")

    def __init__(self, name: str):
        self.name = name
        self.issue_seq = next(_issue_counter)


class KernelCommand(Command):
    """A device kernel launch: runs ``fn`` and costs ``cost`` in the model."""

    __slots__ = ("fn", "cost")

    def __init__(self, name: str, fn: Callable[[], None], cost: KernelCost):
        super().__init__(name)
        self.fn = fn
        self.cost = cost


class CopyCommand(Command):
    """A DMA transfer between two devices (or host<->device).

    ``pinned`` marks host-side staging as page-locked: the cost model
    doubles the effective host-link bandwidth for such transfers, the
    standard first-order effect of pinned memory.
    """

    __slots__ = ("fn", "src", "dst", "nbytes", "pinned")

    def __init__(
        self,
        name: str,
        fn: Callable[[], None],
        src: Device,
        dst: Device,
        nbytes: int,
        pinned: bool = False,
    ):
        super().__init__(name)
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.fn = fn
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.pinned = pinned


class RecordEventCommand(Command):
    """Marks an event complete once all prior commands in the queue finish."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        super().__init__(f"record:{event.name}")
        self.event = event


class WaitEventCommand(Command):
    """Blocks the queue until the awaited event's record has completed."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        super().__init__(f"wait:{event.name}")
        self.event = event


def _site_name(name: str) -> str:
    """Stable injection-site key for a command name.

    Command names may carry a ``#<uid>`` disambiguator (repeated halo
    updates of one field); uids are process-global counters, so they are
    stripped here to keep fault decisions reproducible across runs.
    """
    base, sep, tail = name.rpartition("#")
    return base if sep and tail.isdigit() else name


class CommandQueue:
    """An in-order asynchronous queue bound to one device (a stream)."""

    def __init__(self, device: Device, name: str = "", eager: bool = True):
        self.device = device
        self.uid = next(_queue_ids)
        self.name = name or f"q{self.uid}"
        self.eager = eager
        self.commands: list[Command] = []

    def enqueue_kernel(self, name: str, fn: Callable[[], None], cost: KernelCost) -> KernelCommand:
        cmd = KernelCommand(name, fn, cost)
        self.commands.append(cmd)
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            dev = self.device.metric_label
            m.counter("kernel_launches", device=dev).inc()
            m.counter("kernel_bytes_modeled", device=dev).inc(cost.bytes_moved)
            m.gauge("queue_depth", queue=self.name).set(len(self.commands))
        if self.eager:
            if _res.RES.active:
                # launch-fault injection site: loss check + retry/backoff
                _res.execute_command(
                    "launch", f"{_site_name(name)}@{self.device.index}", (self.device.index,), fn
                )
            else:
                fn()
            if _SAN.active:
                _SAN.record(cmd)
        return cmd

    def enqueue_copy(
        self,
        name: str,
        fn: Callable[[], None],
        src: Device,
        dst: Device,
        nbytes: int,
        pinned: bool = False,
    ) -> CopyCommand:
        cmd = CopyCommand(name, fn, src, dst, nbytes, pinned=pinned)
        self.commands.append(cmd)
        if _obs.OBS.active:
            m = _obs.OBS.metrics
            m.counter("copies", device=self.device.metric_label).inc()
            m.counter("copy_bytes", src=src.metric_label, dst=dst.metric_label).inc(nbytes)
            m.gauge("queue_depth", queue=self.name).set(len(self.commands))
            m.histogram("copy_size_bytes", src=str(src.index), dst=str(dst.index)).observe(nbytes)
        if self.eager:
            t0 = perf_counter() if _obs.OBS.active else 0.0
            if _res.RES.active:
                # copy-fault injection site: both endpoints are loss-checked
                _res.execute_command(
                    "copy", f"{_site_name(name)}@{src.index}->{dst.index}", (src.index, dst.index), fn
                )
            else:
                fn()
            if _obs.OBS.active:
                # observed latency includes any retry/backoff — that IS the cost
                _obs.OBS.metrics.histogram(
                    "copy_seconds",
                    bounds=_obs.Histogram.TIME_BOUNDS,
                    src=str(src.index),
                    dst=str(dst.index),
                ).observe(perf_counter() - t0)
            if _SAN.active:
                _SAN.record(cmd)
        return cmd

    def record_event(self, event: Event) -> RecordEventCommand:
        if event.is_recorded:
            raise RuntimeError(f"{event!r} already recorded; events are one-shot")
        cmd = RecordEventCommand(event)
        self.commands.append(cmd)
        event.recorded_in = self
        event.record_position = len(self.commands) - 1
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("events_recorded", queue=self.name).inc()
        return cmd

    def wait_event(self, event: Event) -> WaitEventCommand:
        cmd = WaitEventCommand(event)
        self.commands.append(cmd)
        if _obs.OBS.active:
            _obs.OBS.metrics.counter("sync_waits", queue=self.name).inc()
        return cmd

    def __len__(self) -> int:
        return len(self.commands)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CommandQueue({self.name}, dev={self.device.index}, {len(self)} cmds)"
