"""Shared-memory backing for the System layer (process execution mode).

The process engine (:mod:`repro.system.engine`) runs one worker
*process* per simulated device, forked after a plan is frozen.  Fork
gives every worker the full object graph — compiled steps, kernel
closures, C-specialized dispatch units — for free, but writes made in a
child are invisible to its siblings and to the host unless the written
pages are shared.  This module provides the three shared substrates
that make cross-process replay equivalent to in-process replay:

* :class:`SharedArena` — named ``multiprocessing.shared_memory``
  segments carved into NumPy views.  Every non-virtual
  :class:`~repro.system.memory.DeviceBuffer` payload is allocated from
  its device's arena, so fields, halo slots and reduction partials are
  the *same physical pages* in every worker — no pickling, no copies.
* :class:`EventBoard` — replay-time event signals as shared flag bytes
  plus one fork-inherited ``multiprocessing.Condition``.  ``set()``
  flips the flag and notifies under the condition lock; ``wait()``
  re-checks the flag under the same lock, so a signal can never be
  lost between the check and the sleep (the cross-process analogue of
  the PR 4 lost-wakeup fix, proven by the Hypothesis ordering tests).
* :class:`SharedScalarCell` — a ``{"v": float}``-shaped host cell
  backed by an anonymous shared double, so host-updated solver scalars
  (CG's alpha/beta, power iteration's 1/|w|) reach persistent workers
  without re-forking.

Every *named* segment is tracked in a process-global registry with a
``weakref.finalize`` safety net on its owner, so an abandoned backend
or engine unlinks its segments at garbage collection — and the test
suite's leak guard (``tests/conftest.py``) fails any test that leaves a
segment behind.  Set ``REPRO_NO_SHM=1`` to force private allocations
(process mode then falls back to serial with a typed warning).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from dataclasses import dataclass

import numpy as np

#: payload alignment inside arena segments (covers every NumPy dtype
#: and keeps slab views cache-line aligned)
_ALIGN = 64
#: minimum size of one arena segment; small fields share a segment
_MIN_SEGMENT = 1 << 22  # 4 MiB

_lock = threading.Lock()


@dataclass
class SegmentRecord:
    """Registry entry for one named shared-memory segment."""

    name: str
    tag: str
    nbytes: int
    unlinked: bool = False


#: all live (not yet unlinked) named segments created by this process
_RECORDS: dict[str, SegmentRecord] = {}
#: payload allocations that silently fell back to private memory (e.g.
#: /dev/shm full); process mode refuses to run while this is non-zero,
#: because a worker's write to a private payload would be lost
_fallback_payloads = 0

_probe_result: bool | None = None


def fork_context():
    """The ``fork`` multiprocessing context process mode is built on.

    Only fork can hand workers the compiled program — closures over
    grids, fields and ctypes kernels do not pickle.
    """
    return multiprocessing.get_context("fork")


def available() -> bool:
    """Whether shared-memory process backing works on this platform.

    Requires ``os.fork`` (POSIX) and a usable ``SharedMemory``
    implementation (``/dev/shm`` or equivalent); probed once.
    ``REPRO_NO_SHM=1`` disables it outright.
    """
    global _probe_result
    if os.environ.get("REPRO_NO_SHM"):
        return False
    if _probe_result is None:
        _probe_result = _probe()
    return _probe_result


def _probe() -> bool:
    if not hasattr(os, "fork") or "fork" not in multiprocessing.get_all_start_methods():
        return False
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        seg.close()
        seg.unlink()
        return True
    except (ImportError, OSError, ValueError):  # pragma: no cover - platform-specific
        return False


def fallback_payloads() -> int:
    """Device payloads allocated privately despite shared backing being on."""
    return _fallback_payloads


def live_segments() -> list[SegmentRecord]:
    """Snapshot of every named segment not yet unlinked (for leak checks)."""
    with _lock:
        return [rec for rec in _RECORDS.values() if not rec.unlinked]


def create_segment(nbytes: int, tag: str, owner) -> tuple:
    """Create a tracked named segment; returns ``(SharedMemory, record)``.

    The segment is registered and a ``weakref.finalize`` on ``owner``
    guarantees it is unlinked no later than the owner's collection
    (and at interpreter exit).  Call :func:`release_segment` for
    deterministic teardown.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=max(int(nbytes), 1))
    rec = SegmentRecord(shm.name, tag, shm.size)
    with _lock:
        _RECORDS[shm.name] = rec
    fin = weakref.finalize(owner, release_segment, shm, rec)
    fin.atexit = True
    return shm, rec


def release_segment(shm, rec: SegmentRecord) -> None:
    """Unlink one tracked segment (idempotent, never raises)."""
    if rec.unlinked:
        return
    rec.unlinked = True
    with _lock:
        _RECORDS.pop(rec.name, None)
    try:
        shm.close()
    except BufferError:
        # Live NumPy views still export the mapping; the name is removed
        # below regardless, and the pages are freed when the views die.
        # Drop the handles so SharedMemory.__del__ does not retry the
        # close at interpreter exit (the views keep the mmap alive).
        shm._buf = None
        shm._mmap = None
        try:
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
        except OSError:  # pragma: no cover - fd already gone
            pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - already gone
        pass


class SharedArena:
    """Bump allocator over named shared segments, one arena per device.

    Allocations never move and are never individually reclaimed (device
    buffers live as long as their grid); :meth:`destroy` unlinks every
    segment at once, which the owning allocator does on close/GC.
    """

    def __init__(self, label: str = ""):
        self.label = label
        # (shm, record, used_bytes) triples; allocation scans for room
        self._segments: list[list] = []

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def alloc_array(self, shape, dtype) -> np.ndarray | None:
        """A zeroed shared NumPy array, or None when the arena cannot serve.

        Falling back (returning None) is counted process-wide so process
        replay can refuse to run with partially-private payloads.
        """
        global _fallback_payloads
        dtype = np.dtype(dtype)
        count = 1
        for s in shape:
            count *= int(s)
        nbytes = count * dtype.itemsize
        if nbytes == 0:
            # zero-sized payloads carry no data; a private view is exact
            return np.zeros(shape, dtype=dtype)
        padded = (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        try:
            shm, offset = self._place(padded)
        except (OSError, ValueError):
            _fallback_payloads += 1
            return None
        arr = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=offset).reshape(shape)
        arr[...] = 0
        return arr

    def _place(self, padded: int) -> tuple:
        for seg in self._segments:
            shm, _rec, used = seg
            if shm.size - used >= padded:
                seg[2] = used + padded
                return shm, used
        size = max(_MIN_SEGMENT, padded)
        shm, rec = create_segment(size, f"arena:{self.label}", self)
        self._segments.append([shm, rec, padded])
        return shm, 0

    def destroy(self) -> None:
        """Unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm, rec, _used in segments:
            release_segment(shm, rec)


class _BoardSignal:
    """``threading.Event``-compatible view of one :class:`EventBoard` slot."""

    __slots__ = ("board", "slot")

    def __init__(self, board: "EventBoard", slot: int):
        self.board = board
        self.slot = slot

    def set(self) -> None:
        self.board.set(self.slot)

    def clear(self) -> None:
        self.board.clear(self.slot)

    def is_set(self) -> bool:
        return self.board.is_set(self.slot)

    def wait(self, timeout: float | None = None) -> bool:
        return self.board.wait(self.slot, timeout)


class EventBoard:
    """Cross-process event signals: shared flag bytes + one Condition.

    Slot ``-1`` (stored first) is the batch abort flag; event slots
    follow.  All waiters share one fork-inherited condition: ``set``
    flips the flag and ``notify_all``s under the lock, ``wait`` rechecks
    its predicate under the same lock, so there is no window in which a
    signal can be lost — and an abort wakes every waiter immediately.
    """

    def __init__(self, slots: int):
        if slots < 0:
            raise ValueError("slots must be non-negative")
        self.slots = slots
        self._shm, self._rec = create_segment(slots + 1, "eventboard", self)
        self._flags = np.frombuffer(self._shm.buf, dtype=np.uint8, count=slots + 1)
        self._flags[:] = 0
        self._cond = fork_context().Condition()

    def signal_for(self, slot: int) -> _BoardSignal:
        if not 0 <= slot < self.slots:
            raise IndexError(f"event slot {slot} out of range (board has {self.slots})")
        return _BoardSignal(self, slot)

    # -- flag ops (slot -1 == abort) ----------------------------------------
    def set(self, slot: int) -> None:
        with self._cond:
            self._flags[slot + 1] = 1
            self._cond.notify_all()

    def clear(self, slot: int) -> None:
        with self._cond:
            self._flags[slot + 1] = 0

    def is_set(self, slot: int) -> bool:
        return bool(self._flags[slot + 1])

    def wait(self, slot: int, timeout: float | None = None) -> bool:
        """Block until the slot is set, the batch aborts, or timeout.

        Returns whether the *slot itself* is set — an abort wake-up
        returns False and the caller checks :meth:`aborted`.
        """
        flags = self._flags
        if flags[slot + 1]:
            return True
        with self._cond:
            self._cond.wait_for(lambda: bool(flags[slot + 1]) or bool(flags[0]), timeout)
            return bool(flags[slot + 1])

    def abort(self) -> None:
        self.set(-1)

    def aborted(self) -> bool:
        return self.is_set(-1)

    def reset(self) -> None:
        """Clear every flag (abort included) for the next replay."""
        with self._cond:
            self._flags[:] = 0

    def destroy(self) -> None:
        """Unlink the flag segment (idempotent)."""
        self._flags = None
        release_segment(self._shm, self._rec)


class SharedScalarCell:
    """A ``{"v": float}``-shaped host scalar visible to forked workers.

    Solvers pass host-updated coefficients into containers through
    mutable cells read at launch time; backing the cell with a shared
    double means a persistent worker process sees every update without
    re-forking.  Degrades to a plain in-process cell when shared
    backing is unavailable (serial/parallel modes never notice).
    """

    __slots__ = ("_cell", "_plain")

    def __init__(self, value: float = 0.0):
        if available():
            self._cell = fork_context().RawValue("d", float(value))
            self._plain = None
        else:  # pragma: no cover - exercised only with REPRO_NO_SHM
            self._cell = None
            self._plain = [float(value)]

    def __getitem__(self, key: str) -> float:
        if key != "v":
            raise KeyError(key)
        return self._cell.value if self._cell is not None else self._plain[0]

    def __setitem__(self, key: str, value: float) -> None:
        if key != "v":
            raise KeyError(key)
        if self._cell is not None:
            self._cell.value = float(value)
        else:  # pragma: no cover - exercised only with REPRO_NO_SHM
            self._plain[0] = float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedScalarCell({self['v']!r})"
