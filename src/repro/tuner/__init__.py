"""Cost-model-driven autotuner (heterogeneous load balancing).

Closes the loop between the recorded runtime and the simulator:

* :mod:`repro.tuner.weights`   — per-device slab shares from a
  :class:`~repro.sim.machine.MachineSpec` (compute roofline + link
  asymmetry water-fill);
* :mod:`repro.tuner.workloads` — virtual (allocation-free) miniatures of
  the benchmark applications, rebuildable under any candidate
  partitioning;
* :mod:`repro.tuner.search`    — the search over OCC level x execution
  mode x partition weights, scored by DES replay of each candidate's
  recorded command stream (never a wall clock);
* :mod:`repro.tuner.feedback`  — recalibration: fit ``DeviceSpec``s from
  observed kernel timings and re-tune when the machine model's fit
  quality degrades.

Entry points: ``Skeleton.autotune(machine=...)`` for an existing
skeleton (OCC x mode only — re-partitioning needs a grid rebuild), and
:func:`tune_workload` / ``python -m repro tune`` for the full search.
"""

from .feedback import CalibrationReport, Recalibrator, kernel_samples_from_trace, samples_from_metrics
from .search import Candidate, TunePlan, tune_workload
from .weights import WorkloadProfile, device_shares, profile_workload
from .workloads import TUNER_WORKLOADS, build_tuner_workload

__all__ = [
    "TUNER_WORKLOADS",
    "CalibrationReport",
    "Candidate",
    "Recalibrator",
    "TunePlan",
    "WorkloadProfile",
    "build_tuner_workload",
    "device_shares",
    "kernel_samples_from_trace",
    "samples_from_metrics",
    "profile_workload",
    "tune_workload",
]
