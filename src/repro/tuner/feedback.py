"""Closing the loop: recalibrate the machine model from observed timings.

A tuning decision is only as good as the :class:`MachineSpec` behind it.
This module watches measured kernel timings (wall-clock spans from the
observability tracer, or samples the caller collected any other way),
fits per-device :class:`~repro.sim.machine.DeviceSpec`s with
:mod:`repro.sim.calibrate`, and — when the current model's relative RMS
error on the observations exceeds a threshold — produces a corrected
machine and re-runs the tuner search against it.

The flow mirrors production autotuners: tune, run, observe, refit,
re-tune only when the model demonstrably drifted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.calibrate import KernelSample, fit_device, fit_quality
from repro.sim.machine import MachineSpec

from .search import TunePlan, tune_workload


def _program_costs(result) -> dict[str, tuple[int, object]]:
    """Map each compiled kernel step's label to (rank, KernelCost)."""
    costs: dict[str, tuple[int, object]] = {}
    for step in result.plan._ensure_program().steps:
        if step.kind == "kernel" and step.command is not None:
            costs[step.label] = (step.rank, step.command.cost)
    return costs


def kernel_samples_from_trace(spans, result, metrics=None) -> dict[int, list[KernelSample]]:
    """Join observability kernel spans with the recorded kernel costs.

    ``spans`` are :class:`~repro.observability.tracer.TraceSpan`s (the
    executor records one per kernel launch, ``cat="kernel"``,
    ``pid="device<rank>"``); ``result`` is the skeleton's
    :class:`ExecutionResult`, whose compiled program knows each label's
    :class:`KernelCost`.  The join key is the launch label, which the
    executor and the scheduler derive from the same step metadata.

    When ``spans`` yields no kernel samples (tracer disabled or dropped)
    and ``metrics`` is given, falls back to
    :func:`samples_from_metrics` — histogram summaries carry less
    information than individual spans (one mean-weighted sample per
    site instead of one per launch) but keep the recalibration loop
    alive on metrics-only deployments.
    """
    costs = _program_costs(result)
    samples: dict[int, list[KernelSample]] = {}
    for span in spans:
        if getattr(span, "cat", None) != "kernel":
            continue
        hit = costs.get(span.name)
        if hit is None:
            continue
        rank, cost = hit
        samples.setdefault(rank, []).append(
            KernelSample(
                bytes_moved=cost.bytes_moved * cost.indirection,
                launches=cost.launches,
                seconds=span.duration,
            )
        )
    if not samples and metrics is not None:
        return samples_from_metrics(metrics, result)
    return samples


def samples_from_metrics(metrics, result) -> dict[int, list[KernelSample]]:
    """Build calibration samples from ``kernel_seconds`` histograms.

    ``metrics`` is a :class:`~repro.observability.metrics.MetricsRegistry`
    whose ``kernel_seconds{device,kernel}`` series were populated by the
    instrumented launch path.  Each series contributes one
    :class:`KernelSample` with ``seconds`` = the series mean (the
    distribution is collapsed — that is the price of the aggregated
    representation), joined to the program's :class:`KernelCost` by the
    kernel label exactly like the span-based path.
    """
    costs = _program_costs(result)
    samples: dict[int, list[KernelSample]] = {}
    for summary in metrics.histogram_summaries("kernel_seconds"):
        if not summary.get("count"):
            continue
        hit = costs.get(summary.get("labels", {}).get("kernel"))
        if hit is None:
            continue
        rank, cost = hit
        samples.setdefault(rank, []).append(
            KernelSample(
                bytes_moved=cost.bytes_moved * cost.indirection,
                launches=cost.launches,
                seconds=summary["mean"],
            )
        )
    return samples


@dataclass
class CalibrationReport:
    """How well the current machine model explains the observations."""

    quality: dict[int, float]  # per-rank relative RMS error of the current spec
    fitted: dict[int, object]  # per-rank freshly fitted DeviceSpec

    @property
    def worst_quality(self) -> float:
        return max(self.quality.values()) if self.quality else 0.0


class Recalibrator:
    """Observe, refit, and re-tune when the machine model drifts.

    ``quality_threshold`` is the relative RMS error above which the
    current model is declared stale (0.25 = predictions off by ~25%).
    """

    def __init__(self, machine: MachineSpec, quality_threshold: float = 0.25):
        self.machine = machine
        self.quality_threshold = quality_threshold
        self._samples: dict[int, list[KernelSample]] = {}
        self.last_report: CalibrationReport | None = None

    # -- sample intake -----------------------------------------------------
    def observe(self, rank: int, bytes_moved: float, launches: int, seconds: float) -> None:
        """Record one measured kernel on one device."""
        self._samples.setdefault(rank, []).append(
            KernelSample(bytes_moved=bytes_moved, launches=launches, seconds=seconds)
        )

    def ingest(self, samples: dict[int, list[KernelSample]]) -> None:
        """Merge a batch of samples (e.g. from kernel_samples_from_trace)."""
        for rank, batch in samples.items():
            self._samples.setdefault(rank, []).extend(batch)

    def ingest_metrics(self, metrics, result) -> None:
        """Merge samples distilled from ``kernel_seconds`` histograms."""
        self.ingest(samples_from_metrics(metrics, result))

    def sample_count(self, rank: int | None = None) -> int:
        """Observed samples so far (for one rank, or in total)."""
        if rank is not None:
            return len(self._samples.get(rank, []))
        return sum(len(batch) for batch in self._samples.values())

    # -- model assessment --------------------------------------------------
    def check(self) -> CalibrationReport:
        """Fit each observed device and score the *current* model on the
        same samples; ranks with fewer than two samples are skipped."""
        quality: dict[int, float] = {}
        fitted: dict[int, object] = {}
        for rank, batch in self._samples.items():
            if len(batch) < 2:
                continue
            quality[rank] = fit_quality(batch, self.machine.device_spec(rank))
            try:
                fitted[rank] = fit_device(batch, flops=self.machine.device_spec(rank).flops)
            except ValueError:
                # degenerate sample set (no bandwidth signal): keep old spec
                fitted[rank] = self.machine.device_spec(rank)
        self.last_report = CalibrationReport(quality=quality, fitted=fitted)
        return self.last_report

    @property
    def stale(self) -> bool:
        report = self.last_report or self.check()
        return report.worst_quality > self.quality_threshold

    def refit(self) -> MachineSpec:
        """Corrected machine: stale ranks get their fitted DeviceSpec."""
        report = self.last_report or self.check()
        overrides = {
            rank: report.fitted[rank]
            for rank, q in report.quality.items()
            if q > self.quality_threshold and rank in report.fitted
        }
        if not overrides:
            return self.machine
        return self.machine.with_device_overrides(overrides)

    def maybe_retune(self, experiment: str, devices: int = 4, **tune_kwargs) -> TunePlan | None:
        """Re-run the tuner search iff the model drifted past threshold.

        On drift the corrected machine replaces :attr:`machine` (so the
        next drift check compares against the *new* model) and the fresh
        :class:`TunePlan` — carrying the measured ``fit_quality`` that
        triggered it — is returned; otherwise ``None``.
        """
        report = self.check()
        if report.worst_quality <= self.quality_threshold:
            return None
        self.machine = self.refit()
        plan = tune_workload(experiment, self.machine, devices=devices, **tune_kwargs)
        plan.fit_quality = report.worst_quality
        self._samples = {}
        self.last_report = None
        return plan


__all__ = [
    "CalibrationReport",
    "Recalibrator",
    "kernel_samples_from_trace",
    "samples_from_metrics",
]
