"""The tuner search: OCC level x execution mode x partition weights.

For each candidate triple the workload miniature is rebuilt (weights
bind at grid construction), its command stream recorded, and the
recording replayed through the DES under the target
:class:`~repro.sim.machine.MachineSpec` — the objective is simulated
seconds per application step, never a wall clock.  The weight axis is
not enumerated blindly: besides the uniform split, the cost model
proposes the share vector that equalises per-device step time
(:func:`repro.tuner.weights.device_shares`), optionally blended halfway
towards uniform to hedge against model error.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.sim.machine import MachineSpec
from repro.sim.replay import sim_makespan_total
from repro.skeleton import Occ

from .weights import device_shares, fixed_seconds, profile_workload
from .workloads import build_tuner_workload


@dataclass(frozen=True)
class Candidate:
    """One scored configuration."""

    occ: str
    mode: str
    weights: tuple[float, ...] | None  # None = uniform split
    makespan: float

    @property
    def weights_label(self) -> str:
        return "uniform" if self.weights is None else "tuned"


@dataclass
class TunePlan:
    """The tuner's decision for one (experiment, machine) pair."""

    experiment: str
    machine: str
    devices: int
    best: Candidate
    baseline: Candidate
    shares: tuple[float, ...]
    candidates: list[Candidate] = field(default_factory=list)
    fit_quality: float | None = None

    @property
    def improvement(self) -> float:
        """Fraction of the baseline's simulated step time saved."""
        if self.baseline.makespan <= 0.0:
            return 0.0
        return 1.0 - self.best.makespan / self.baseline.makespan

    @property
    def uniform_best(self) -> Candidate | None:
        """The best candidate restricted to uniform partition weights.

        This is what a weights-blind tuner would pick — the fair
        comparison point for "did the tuned shares themselves pay off",
        as opposed to :attr:`baseline` (uniform *and* default OCC/mode),
        which is what an untuned run would do.
        """
        uniform = [c for c in self.candidates if c.weights is None]
        if not uniform:
            return None
        return min(uniform, key=lambda c: c.makespan)

    @property
    def tuned_vs_uniform(self) -> float:
        """Fraction of the best-uniform makespan saved by the tuned shares."""
        u = self.uniform_best
        if u is None or u.makespan <= 0.0:
            return 0.0
        return 1.0 - self.best.makespan / u.makespan

    def to_dict(self) -> dict:
        d = asdict(self)
        d["improvement"] = self.improvement
        d["tuned_vs_uniform"] = self.tuned_vs_uniform
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TunePlan":
        """Rebuild a plan from :meth:`to_dict` output (e.g. a plan cache).

        The derived ``improvement`` / ``tuned_vs_uniform`` keys are
        ignored — they are properties recomputed from the candidates —
        so ``TunePlan.from_dict(plan.to_dict())`` round-trips exactly.
        """

        def candidate(c: dict) -> Candidate:
            weights = c.get("weights")
            return Candidate(
                occ=c["occ"],
                mode=c["mode"],
                weights=None if weights is None else tuple(float(w) for w in weights),
                makespan=float(c["makespan"]),
            )

        return cls(
            experiment=d["experiment"],
            machine=d["machine"],
            devices=int(d["devices"]),
            best=candidate(d["best"]),
            baseline=candidate(d["baseline"]),
            shares=tuple(float(s) for s in d["shares"]),
            candidates=[candidate(c) for c in d.get("candidates", [])],
            fit_quality=d.get("fit_quality"),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @property
    def best_occ(self) -> Occ:
        return Occ(self.best.occ)


def tune_workload(
    experiment: str,
    machine: MachineSpec,
    devices: int = 4,
    occ_levels=None,
    modes: tuple[str, ...] = ("serial", "parallel", "process"),
    extra_weight_options: tuple = (),
) -> TunePlan:
    """Full tuner search for one workload on one machine.

    The baseline — what a user gets with no tuning — is the uniform
    split at :attr:`Occ.STANDARD` with serial host dispatch; its
    makespan anchors :attr:`TunePlan.improvement`.
    """
    occ_levels = list(occ_levels) if occ_levels is not None else list(Occ)

    # 1. probe: record the uniform workload once to derive the profile
    #    and the per-rank fixed costs, then let the cost model propose
    #    capability-proportional shares
    probe = build_tuner_workload(experiment, machine, devices)
    profile = profile_workload(probe.plans, probe.num_active)
    fixed = fixed_seconds(probe.plans, machine, devices)
    shares = device_shares(machine, devices, profile, probe.num_active, fixed=fixed)

    weight_options: list[tuple[float, ...] | None] = [None]
    if machine.is_heterogeneous or len(set(np.round(shares, 6))) > 1:
        tuned = tuple(float(s) for s in shares)
        weight_options.append(tuned)
        uniform = np.full(devices, 1.0 / devices)
        blended = 0.5 * shares + 0.5 * uniform
        weight_options.append(tuple(float(s) for s in blended / blended.sum()))
    for extra in extra_weight_options:
        weight_options.append(tuple(float(w) for w in extra))

    # 2. enumerate: every (weights, occ, mode) triple, scored by DES replay
    candidates: list[Candidate] = []
    baseline: Candidate | None = None
    best: Candidate | None = None
    for weights in weight_options:
        for occ in occ_levels:
            wl = build_tuner_workload(experiment, machine, devices, occ=occ, partition_weights=weights)
            for mode in modes:
                t = sim_makespan_total(wl.plans, machine, mode=mode)
                cand = Candidate(occ=occ.value, mode=mode, weights=weights, makespan=t)
                candidates.append(cand)
                if weights is None and occ is Occ.STANDARD and mode == "serial":
                    baseline = cand
                if best is None or t < best.makespan:
                    best = cand
    if baseline is None:
        # the default configuration was excluded from the search space;
        # score it separately so improvement stays anchored
        wl = build_tuner_workload(experiment, machine, devices, occ=Occ.STANDARD)
        baseline = Candidate(
            occ=Occ.STANDARD.value,
            mode="serial",
            weights=None,
            makespan=sim_makespan_total(wl.plans, machine, mode="serial"),
        )
    assert best is not None
    return TunePlan(
        experiment=experiment,
        machine=machine.name,
        devices=devices,
        best=best,
        baseline=baseline,
        shares=tuple(float(s) for s in shares),
        candidates=candidates,
    )
