"""Per-device slab shares from the machine model.

The slab decomposition's only knob is how many slices each device owns.
On a homogeneous machine the uniform split is optimal; on a
heterogeneous one (mixed device generations, asymmetric links) the
slowest device gates every halo-synchronised step.  This module turns a
:class:`~repro.sim.machine.MachineSpec` plus a workload profile into
partition shares that equalise *per-device step time*:

    cells_r * cell_time_r + fixed_r = T   for every rank r,

where ``cell_time_r`` is the roofline per-cell time of rank r's device
(same formula as :func:`repro.sim.costmodel.kernel_duration`) and
``fixed_r`` is the cell-count-independent part of the rank's step —
launch overheads plus its halo transfer time, which encodes the link
asymmetry (chain-end devices have one neighbour, middles two; per-link
bandwidths may differ).  Solving for ``cells_r`` under
``sum cells_r = total`` is a one-shot water-fill.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.costmodel import transfer_duration
from repro.sim.machine import MachineSpec
from repro.system.queue import CopyCommand, KernelCommand


@dataclass(frozen=True)
class WorkloadProfile:
    """Per-cell resource demands of one application step."""

    bytes_per_cell: float
    flops_per_cell: float

    def cell_time(self, spec) -> float:
        """Roofline seconds per cell on one device (no launch overhead)."""
        return max(self.bytes_per_cell / spec.mem_bandwidth, self.flops_per_cell / spec.flops)


def profile_workload(plans, num_active: int) -> WorkloadProfile:
    """Derive the per-cell profile from a recorded step's schedule stats.

    ``plans`` are the recorded :class:`ExecutionResult`s of one
    application step (all its host-synchronised skeletons); their
    aggregate kernel traffic divided by the grid's active cells is the
    workload's per-cell demand — self-consistent with the DES, since
    both read the same :class:`KernelCost` numbers.
    """
    if num_active <= 0:
        raise ValueError("num_active must be positive")
    total_bytes = sum(p.stats.kernel_bytes for p in plans)
    total_flops = sum(p.stats.kernel_flops for p in plans)
    return WorkloadProfile(
        bytes_per_cell=total_bytes / num_active,
        flops_per_cell=total_flops / num_active,
    )


def fixed_seconds(plans, machine: MachineSpec, num_devices: int) -> np.ndarray:
    """Per-rank cell-count-independent seconds of one recorded step.

    Two ingredients, both independent of the slab split:

    * launch overheads — each kernel command pays its device's
      per-launch cost (slower generations pay more per launch);
    * communication *asymmetry* — halo message sizes depend only on
      halo radius and lateral extent, and each direction's copies run
      on their own queue (concurrently), so a rank's halo time is the
      max over its copy queues.  The fleet-wide minimum of that max is
      the same for every rank and overlaps interior compute under OCC,
      so it cancels out of the equalisation; only the *excess* above
      the minimum (e.g. a slab neighbour across a slow inter-node
      link) is charged as fixed cost.
    """
    fixed = np.zeros(num_devices)
    # per-copy-queue transfer seconds, then per-rank max over the queues
    # that rank participates in (as sender or receiver)
    queue_seconds: dict[int, float] = {}
    queue_ranks: dict[int, set[int]] = {}
    for plan in plans:
        for q in getattr(plan, "queues", plan):
            for cmd in q.commands:
                if isinstance(cmd, KernelCommand):
                    rank = q.device.index
                    fixed[rank] += cmd.cost.launches * machine.device_spec(rank).launch_overhead
                elif isinstance(cmd, CopyCommand):
                    link = machine.topology.link(cmd.src.index, cmd.dst.index)
                    t = transfer_duration(cmd.nbytes, link, pinned=cmd.pinned)
                    key = id(q)
                    queue_seconds[key] = queue_seconds.get(key, 0.0) + t
                    queue_ranks.setdefault(key, set()).update(
                        r for r in (cmd.src.index, cmd.dst.index) if 0 <= r < num_devices
                    )
    if queue_seconds:
        comm = np.zeros(num_devices)
        for key, t in queue_seconds.items():
            for rank in queue_ranks[key]:
                comm[rank] = max(comm[rank], t)
        fixed += comm - float(np.min(comm))
    return fixed


def device_shares(
    machine: MachineSpec,
    num_devices: int,
    profile: WorkloadProfile,
    total_cells: int,
    fixed: np.ndarray | None = None,
) -> np.ndarray:
    """Normalised slab shares equalising per-device step time.

    Solves ``cells_r = (T - fixed_r) / cell_time_r`` with
    ``sum cells_r = total_cells``.  A device whose fixed costs alone
    exceed the equalised step time is clamped to a minimal share and the
    water-fill is re-solved over the remaining devices (standard
    active-set iteration; terminates in at most ``num_devices`` rounds).
    """
    if total_cells <= 0:
        raise ValueError("total_cells must be positive")
    ct = np.array([profile.cell_time(machine.device_spec(r)) for r in range(num_devices)])
    if np.any(ct <= 0.0):
        raise ValueError("non-positive per-cell time; check the workload profile")
    fixed = np.zeros(num_devices) if fixed is None else np.asarray(fixed, dtype=np.float64)
    inv = 1.0 / ct
    floor = max(1.0, 1e-3 * total_cells / num_devices)
    cells = np.full(num_devices, floor)
    active = np.ones(num_devices, dtype=bool)
    for _ in range(num_devices):
        remaining = total_cells - float(np.sum(cells[~active]))
        if remaining <= 0 or not np.any(active):
            break
        T = (remaining + float(np.sum((fixed * inv)[active]))) / float(np.sum(inv[active]))
        trial = (T - fixed) * inv
        clamped = active & (trial < floor)
        if not np.any(clamped):
            cells[active] = trial[active]
            break
        active &= ~clamped
    shares = cells / float(np.sum(cells))
    return shares
