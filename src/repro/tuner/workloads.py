"""Virtual miniatures of the benchmark applications, for tuner search.

Each builder constructs one application step on *virtual* grids (no
payload allocation, record-only kernels) so a candidate configuration —
OCC level plus partition weights — can be compiled and its command
stream recorded in milliseconds, then scored by DES replay.  The
returned plans are the step's host-synchronised skeletons in order
(LBM's single fused kernel, CG's A/B pair), matching what
:func:`repro.sim.replay.sim_makespan_total` expects.

The miniatures are deliberately the *real* application classes, not
mocks: the tuner optimises exactly the schedules the full runs compile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.skeleton import Occ
from repro.solvers.elasticity import ElasticitySolver
from repro.solvers.lbm.d2q9 import KarmanVortexStreet
from repro.solvers.lbm.d3q19 import LidDrivenCavity
from repro.solvers.poisson import PoissonSolver
from repro.system import Backend, DeviceSet


@dataclass
class TunerWorkload:
    """One recorded candidate: its step's plans plus the grid they ran on."""

    name: str
    grid: object
    plans: list

    @property
    def num_active(self) -> int:
        return self.grid.num_active


# Benchmark-scale domains (the paper's experiments run 192^3..512^3):
# virtual recording cost is independent of cell count, so the tuner
# scores the schedule of the size class users actually run, where the
# compute/communication balance is realistic.  Tiny domains would be
# gated by per-transfer latency and make every partitioning look alike.
def _lbm(backend: Backend, occ: Occ, weights) -> TunerWorkload:
    cavity = LidDrivenCavity(
        backend, (1024, 96, 96), occ=occ, virtual=True, partition_weights=weights
    )
    return TunerWorkload("lbm", cavity.grid, [cavity.skeletons[0].record()])


def _karman(backend: Backend, occ: Occ, weights) -> TunerWorkload:
    flow = KarmanVortexStreet(
        backend, (8192, 256), occ=occ, virtual=True, partition_weights=weights
    )
    return TunerWorkload("karman", flow.grid, [flow.skeletons[0].record()])


def _poisson(backend: Backend, occ: Occ, weights) -> TunerWorkload:
    solver = PoissonSolver(
        backend, (512, 96, 96), occ=occ, virtual=True, partition_weights=weights
    )
    return TunerWorkload("poisson", solver.grid, [solver.cg.sk_a.record(), solver.cg.sk_b.record()])


def _elasticity(backend: Backend, occ: Occ, weights) -> TunerWorkload:
    solver = ElasticitySolver.solid_cube(
        backend, 96, virtual=True, occ=occ, partition_weights=weights
    )
    return TunerWorkload(
        "elasticity", solver.grid, [solver.cg.sk_a.record(), solver.cg.sk_b.record()]
    )


TUNER_WORKLOADS = {
    "lbm": _lbm,
    "karman": _karman,
    "poisson": _poisson,
    "elasticity": _elasticity,
}


def build_tuner_workload(
    name: str,
    machine,
    devices: int,
    occ: Occ = Occ.STANDARD,
    partition_weights=None,
) -> TunerWorkload:
    """Build and record one candidate configuration of a workload.

    A fresh virtual backend is created per candidate: partition weights
    are bound at grid construction, so every candidate needs its own
    grids (that is exactly why the miniatures are virtual).
    """
    if name not in TUNER_WORKLOADS:
        raise ValueError(f"unknown workload {name!r}; expected one of {sorted(TUNER_WORKLOADS)}")
    backend = Backend(DeviceSet.gpus(devices), machine=machine)
    return TUNER_WORKLOADS[name](backend, occ, partition_weights)
