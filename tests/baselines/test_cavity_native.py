import numpy as np
import pytest

from repro.baselines import NativeCavity
from repro.solvers.lbm import LidDrivenCavity
from repro.system import Backend


def test_native_cavity_matches_framework_exactly():
    shape = (10, 8, 8)
    native = NativeCavity(shape, omega=1.1, lid_velocity=0.08)
    fw = LidDrivenCavity(Backend.sim_gpus(2), shape, omega=1.1, lid_velocity=0.08)
    native.step(15)
    fw.step(15)
    assert np.allclose(native.f, fw.current.to_numpy(), atol=1e-13)


def test_native_cavity_conserves_mass():
    sim = NativeCavity((8, 8, 8), lid_velocity=0.05)
    m0 = sim.total_mass()
    sim.step(10)
    assert sim.total_mass() == pytest.approx(m0, rel=1e-12)


def test_native_cavity_rest_without_lid():
    sim = NativeCavity((8, 8, 8), lid_velocity=0.0)
    f0 = sim.f.copy()
    sim.step(5)
    assert np.allclose(sim.f, f0, atol=1e-14)


def test_native_cavity_lid_drives_flow():
    sim = NativeCavity((10, 8, 8), omega=1.2, lid_velocity=0.1)
    sim.step(30)
    _, u = sim.macroscopic()
    assert u[2][-1].mean() > 1e-4
