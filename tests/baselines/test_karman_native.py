import numpy as np
import pytest

from repro.baselines import NativeKarman
from repro.solvers.lbm import KarmanVortexStreet
from repro.system import Backend


def test_native_matches_framework_exactly():
    """Table I's two contenders run the same algorithm: trajectories must
    agree to machine precision."""
    shape = (24, 48)
    native = NativeKarman(shape, reynolds=100.0, inflow_velocity=0.04)
    fw = KarmanVortexStreet(Backend.sim_gpus(2), shape, reynolds=100.0, inflow_velocity=0.04)
    native.step(25)
    fw.step(25)
    f_fw = fw.current.to_numpy()
    assert np.allclose(native.f, f_fw, atol=1e-12)


def test_flow_stays_bounded():
    sim = NativeKarman((20, 40), reynolds=80.0)
    sim.step(50)
    rho, u = sim.macroscopic()
    fluid = sim.mask > 0.5
    assert np.isfinite(u[:, fluid]).all()
    assert np.abs(u[:, fluid]).max() < 0.5


def test_same_parameters_as_framework():
    shape = (24, 48)
    native = NativeKarman(shape, reynolds=123.0)
    fw = KarmanVortexStreet(Backend.sim_gpus(1), shape, reynolds=123.0)
    assert native.omega == pytest.approx(fw.omega)
    assert native.cyl_center == fw.cyl_center
    assert native.cyl_radius == fw.cyl_radius
