import numpy as np
import pytest

from repro.baselines import NativeLBM
from repro.solvers.lbm import D2Q9, D3Q19


@pytest.mark.parametrize("variant", NativeLBM.VARIANTS)
def test_mass_and_momentum_conserved(variant):
    sim = NativeLBM((8, 8, 8), omega=1.2, variant=variant)
    sim.initialize_taylor_green()
    m0 = sim.f.sum()
    sim.step(8)  # even count: AA storage back in natural layout
    assert sim.f.sum() == pytest.approx(m0, rel=1e-12)
    _, u = sim.macroscopic()
    assert abs(u.sum()) < 1e-10  # zero net momentum of the vortex


@pytest.mark.parametrize("variant", NativeLBM.VARIANTS)
def test_taylor_green_decay_matches_bgk_viscosity(variant):
    """Kinetic energy must decay as exp(-4 nu k^2 t): a physics lock on
    every variant's streaming and collision."""
    n = 32  # fine enough that O(k^2) lattice corrections stay ~1%
    sim = NativeLBM((n, n), omega=1.0, variant=variant, lattice=D2Q9)
    sim.initialize_taylor_green(amplitude=0.01)
    e0 = sim.kinetic_energy()
    steps = 60
    sim.step(steps)
    e1 = sim.kinetic_energy()
    k = 2.0 * np.pi / n
    expected = np.exp(-4.0 * sim.viscosity * k * k * steps)
    assert e1 / e0 == pytest.approx(expected, rel=0.05)


def test_twopop_and_swap_identical_trajectories():
    a = NativeLBM((6, 6, 6), omega=1.3, variant="twopop")
    b = NativeLBM((6, 6, 6), omega=1.3, variant="swap")
    for s in (a, b):
        s.initialize_taylor_green()
    a.step(6)
    b.step(6)
    assert np.allclose(a.f, b.f, atol=1e-13)


def test_aa_agrees_with_twopop_macroscopics():
    """A-A is the same dynamics up to a half-step phase: after many steps
    the macroscopic fields must track the twoPop trajectory closely."""
    a = NativeLBM((12, 12), omega=1.0, variant="aa", lattice=D2Q9)
    b = NativeLBM((12, 12), omega=1.0, variant="twopop", lattice=D2Q9)
    for s in (a, b):
        s.initialize_taylor_green(amplitude=0.01)
    a.step(20)
    b.step(20)
    _, ua = a.macroscopic()
    _, ub = b.macroscopic()
    assert np.allclose(ua, ub, atol=2e-4)


def test_aa_macroscopic_guard_at_odd_steps():
    sim = NativeLBM((6, 6), variant="aa", lattice=D2Q9)
    sim.step(1)
    with pytest.raises(RuntimeError, match="even"):
        sim.macroscopic()


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        NativeLBM((4, 4, 4), variant="bogus")


def test_rest_state_is_fixed_point():
    sim = NativeLBM((6, 6, 6), omega=1.5, variant="twopop")
    f0 = sim.f.copy()
    sim.step(3)
    assert np.allclose(sim.f, f0, atol=1e-14)
