import numpy as np
import pytest

from repro.baselines import NativePoissonCG
from repro.skeleton import Occ
from repro.solvers import PoissonSolver, manufactured_problem
from repro.system import Backend


def test_native_recovers_manufactured_solution():
    shape = (10, 9, 8)
    u_exact, f = manufactured_problem(shape)
    solver = NativePoissonCG(shape)
    solver.set_rhs(f)
    res = solver.solve(max_iterations=400, tolerance=1e-10)
    assert res.converged
    assert np.allclose(solver.solution(), u_exact, atol=1e-7)


def test_native_and_framework_agree_iteration_by_iteration():
    """Neon-vs-baseline (Fig 8): same algorithm, same residual history."""
    shape = (10, 8, 8)
    _, f = manufactured_problem(shape)
    native = NativePoissonCG(shape)
    native.set_rhs(f)
    res_native = native.solve(max_iterations=60, tolerance=1e-11)

    framework = PoissonSolver(Backend.sim_gpus(3), shape, occ=Occ.TWO_WAY)
    framework.set_rhs(lambda z, y, x: f[z, y, x])
    res_fw = framework.solve(max_iterations=60, tolerance=1e-11)

    n = min(len(res_native.residual_norms), len(res_fw.residual_norms))
    assert np.allclose(res_native.residual_norms[:n], res_fw.residual_norms[:n], rtol=1e-8)
    assert np.allclose(native.solution(), framework.solution(), atol=1e-9)


def test_rhs_shape_checked():
    with pytest.raises(ValueError):
        NativePoissonCG((4, 4, 4)).set_rhs(np.zeros((5, 4, 4)))


def test_zero_rhs_immediate():
    solver = NativePoissonCG((5, 5, 5))
    res = solver.solve()
    assert res.converged and res.iterations == 0
