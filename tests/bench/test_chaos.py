"""Chaos soak: the composite-fault storm with a bitwise acceptance bar."""

import json

import pytest

from repro.bench.chaos import (
    CHAOS_SCHEMA,
    CHAOS_WORKLOADS,
    make_chaos_plan,
    run_chaos,
)
from repro.bench.dashboard import chaos_to_html, chaos_to_text


@pytest.mark.parametrize("name", sorted(CHAOS_WORKLOADS))
def test_soak_survives_the_full_storm(name):
    """The PR's acceptance criterion: >= 50 seeded fault events — among
    them >= 2 permanent device losses and >= 1 corrupted checkpoint — and
    the run still finishes bitwise identical to its fault-free twin."""
    report = run_chaos(name, events=50, seed=2026)
    assert report.match, "recovered result must be bitwise identical"
    assert report.events_total >= 50
    assert report.device_losses >= 2
    assert report.tampers >= 1
    assert report.checkpoints["fallbacks"] >= 1
    assert report.ok
    # every degrade on the mixed fleet adopted tuned shares that the DES
    # scores >= 10% below the uniform degraded plan
    assert len(report.degrade_reports) == report.device_losses
    for rep in report.degrade_reports:
        assert rep["improvement"] >= 0.10
        assert len(set(rep["weights"])) > 1


def test_plan_calibration_targets_the_budget():
    draws = {"launch": 1000, "copy": 500}
    plan = make_chaos_plan(3, 50, draws, {3: 400, 2: 800}, devices=4, losses=2)
    for kind in ("launch", "copy", "corrupt"):
        assert 0.0 < plan.rates[kind] <= 0.2, kind
    # corruption opportunities are proxied by launch draws (the zero-rate
    # probe never reaches the corruption wrapper)
    assert plan.rates["corrupt"] > 0.0
    assert set(plan.device_loss) == {2, 3}
    # staggered triggers: the top rank dies first, mid-run
    assert plan.device_loss[3] == int(400 * 0.35)
    assert plan.device_loss[2] == int(800 * (0.35 + 0.3))
    assert plan.max_injections["corrupt"] >= int(0.35 * 50)


def test_report_document_and_renderers(tmp_path):
    report = run_chaos("poisson", events=12, seed=5)
    doc = report.to_json()
    assert doc["schema"] == CHAOS_SCHEMA
    assert doc["events"]["total"] == report.events_total
    assert doc["result"]["match_bitwise"] is True
    path = report.save(str(tmp_path / "CHAOS_poisson.json"))
    assert json.loads(open(path).read())["workload"] == "poisson"

    text = chaos_to_text(doc)
    assert "chaos soak: poisson" in text
    assert "device losses" in text
    html = chaos_to_html(doc)
    assert html.startswith("<!doctype html>")
    assert "chaos soak: poisson" in html
    assert "Tuned degradation" in html


def test_rejects_bad_configuration():
    with pytest.raises(KeyError, match="no chaos workload"):
        run_chaos("nope")
    with pytest.raises(ValueError, match="events"):
        run_chaos("lbm", events=0)
    with pytest.raises(ValueError, match="survivors"):
        run_chaos("lbm", devices=2, losses=1)
