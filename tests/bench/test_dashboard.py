"""The performance-observatory dashboard: report building and rendering.

The heavy acceptance path (``repro report lbm --devices 4``) is covered
via the CLI entry point on a JSON report; rendering tests reuse one
module-scoped report so the instrumented run happens once.
"""

import json

import pytest

from repro import observability as obs
from repro.bench.dashboard import REPORT_SCHEMA, build_report, to_html, to_text


@pytest.fixture(scope="module")
def report():
    return build_report("poisson", devices=2, mode="serial")


def test_report_shape_and_schema(report):
    assert report["schema"] == REPORT_SCHEMA
    assert report["exp"] == "poisson" and report["devices"] == 2
    assert report["skeletons"] and report["histograms"]
    json.dumps(report)  # must be JSON-serialisable as-is


def test_critical_path_total_matches_makespan_within_1_percent(report):
    for entry in report["skeletons"]:
        total = entry["critical_path"]["total"]
        makespan = entry["sim_makespan_s"]
        assert abs(total - makespan) <= 0.01 * makespan
        # hb dependency chain lower-bounds the scheduled makespan
        assert entry["dependency_chain"]["total"] <= makespan * (1 + 1e-9)


def test_attribution_conserves_time(report):
    attr = report["attribution"]
    modeled = attr["kernel"] + attr["copy"] + attr["wait"] + attr["dispatch"]
    assert modeled == pytest.approx(attr["makespan"], rel=1e-9)
    assert attr["wall_seconds"] > 0.0
    assert attr["python_dispatch_overhead"] == pytest.approx(
        max(0.0, attr["wall_seconds"] - attr["makespan"])
    )


def test_utilization_fractions_sum_to_one(report):
    assert report["utilization"]
    for frac in report["utilization"].values():
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-6)


def test_kernel_histograms_were_recorded(report):
    kernels = report["histograms"].get("kernel_seconds", [])
    assert kernels and all(s["count"] > 0 for s in kernels)
    assert all({"p50", "p90", "p99"} <= set(s) for s in kernels)


def test_build_report_restores_observability_state():
    # disabled before -> disabled after (the instrumented pass is internal)
    obs.reset()
    build_report("poisson", devices=2)
    assert not obs.enabled()
    # enabled before -> the caller's registry survives untouched
    obs.enable()
    marker = obs.metrics()
    marker.counter("sentinel").inc()
    build_report("poisson", devices=2)
    assert obs.enabled()
    assert obs.metrics() is marker  # caller's registry untouched
    assert obs.metrics().total("sentinel") == 1.0


def test_text_rendering_names_the_key_sections(report):
    text = to_text(report)
    for marker in (
        "wall-clock attribution",
        "device utilization",
        "timing histograms",
        "critical path",
        "python dispatch gap",
    ):
        assert marker in text, marker


def test_html_rendering_is_selfcontained(report):
    html = to_html(report)
    assert html.startswith("<!DOCTYPE html>" ) or html.startswith("<!doctype html>")
    assert "repro report" in html and report["exp"] in html
    assert "<script src=" not in html and "http" not in html.split("</style>")[0]


def test_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError):
        build_report("nope", devices=2)


def test_cli_report_acceptance(tmp_path):
    """`python -m repro report lbm --devices 4` end-to-end via main()."""
    from repro.__main__ import main

    out = tmp_path / "report.json"
    flight_out = tmp_path / "flight.json"
    rc = main(
        [
            "report",
            "lbm",
            "--devices",
            "4",
            "--format",
            "json",
            "-o",
            str(out),
            "--flight-out",
            str(flight_out),
        ]
    )
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == REPORT_SCHEMA and doc["devices"] == 4
    for entry in doc["skeletons"]:
        assert abs(entry["critical_path"]["total"] - entry["sim_makespan_s"]) <= (
            0.01 * entry["sim_makespan_s"]
        )
    sample = json.loads(flight_out.read_text())
    assert sample["schema"] == "repro-flight/1" and sample["tracks"]


def test_cli_report_compare_soft_and_strict(tmp_path):
    from repro.__main__ import main

    old = tmp_path / "old.json"
    new = tmp_path / "new.json"
    base = {
        "schema": "repro-bench/1",
        "exp": "lbm",
        "params": {},
        "env": {},
        "results": [{"label": "lbm-serial", "wall_clock_s": 1.0, "mlups": 100.0}],
    }
    old.write_text(json.dumps(base))
    worse = json.loads(json.dumps(base))
    worse["results"][0]["wall_clock_s"] = 3.0
    new.write_text(json.dumps(worse))
    assert main(["report", "--compare", str(old), str(new)]) == 0  # soft gate
    assert main(["report", "--compare", str(old), str(new), "--strict"]) == 1
    assert main(["report", "--compare", str(old), str(old), "--strict"]) == 0
