import pytest

from repro.bench import format_table, lups, mlups, parallel_efficiency, speedup, sweep, wall_time


def test_parallel_efficiency_ideal():
    # n GPUs each n-times faster: ideal scaling
    assert parallel_efficiency(8.0, 1.0, 8) == pytest.approx(1.0)


def test_parallel_efficiency_degraded():
    assert parallel_efficiency(8.0, 2.0, 8) == pytest.approx(0.5)


def test_superlinear_allowed():
    assert parallel_efficiency(10.0, 1.0, 8) > 1.0


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        parallel_efficiency(0.0, 1.0, 8)
    with pytest.raises(ValueError):
        parallel_efficiency(1.0, 1.0, 0)
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
    with pytest.raises(ValueError):
        mlups(100, 1, 0.0)


def test_mlups_and_lups():
    assert mlups(1_000_000, 10, 2.0) == pytest.approx(5.0)
    assert lups(1000, 1, 1.0) == pytest.approx(1000.0)


def test_format_table_aligns():
    out = format_table(["a", "bbbb"], [[1, 2.5], [33, 0.0001]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbbb" in lines[1]
    assert len({len(l) for l in lines[1:]}) <= 2  # header/sep/rows aligned


def test_wall_time_measures_positive():
    t = wall_time(lambda: sum(range(1000)), repeats=2, warmup=1)
    assert t > 0


def test_sweep_pairs_values_with_results():
    assert sweep([1, 2, 3], lambda v: v * v) == [(1, 1), (2, 4), (3, 9)]
