import pytest

from repro.bench import ascii_plot


def test_plot_renders_markers_and_legend():
    out = ascii_plot(
        {"a": [(1, 0.5), (2, 0.7), (4, 0.9)], "b": [(1, 0.4), (4, 0.6)]},
        width=40,
        height=8,
        title="T",
        ylabel="eff",
    )
    assert out.splitlines()[0] == "T"
    assert "o a" in out and "x b" in out
    assert out.count("o") >= 3 + 1  # three points + legend marker
    assert "(y: eff)" in out


def test_plot_empty_series():
    assert ascii_plot({}) == "(no data)"
    assert ascii_plot({"a": []}) == "(no data)"


def test_plot_constant_series_does_not_crash():
    out = ascii_plot({"c": [(0, 1.0), (5, 1.0)]}, width=20, height=5)
    assert "c" in out


def test_plot_fixed_y_range_clamps():
    out = ascii_plot({"a": [(0, -5.0), (1, 5.0)]}, width=10, height=5, y_range=(0.0, 1.0))
    lines = [l for l in out.splitlines() if "|" in l]
    assert lines[0].strip().startswith("1.000")
