"""Bench regression checker: schema handling and verdict logic."""

import json

import pytest

from repro.bench.harness import BENCH_SCHEMA, read_bench_json, write_bench_json
from repro.bench.regress import check_regression, compare_docs, render


def _doc(wall=1.0, mlups=100.0, sim=0.01, schema=BENCH_SCHEMA, **extra):
    doc = {
        "schema": schema,
        "exp": "lbm",
        "params": {},
        "env": {},
        "results": [
            {
                "label": "lbm-serial",
                "mode": "serial",
                "wall_clock_s": wall,
                "sim_makespan_s": sim,
                "mlups": mlups,
            }
        ],
    }
    doc.update(extra)
    return doc


def test_identical_docs_have_no_regressions():
    findings = compare_docs(_doc(), _doc())
    assert findings and not any(f.regression for f in findings)


def test_wall_clock_increase_past_threshold_flags():
    findings = compare_docs(_doc(wall=1.0), _doc(wall=1.5), threshold=0.25)
    flagged = [f for f in findings if f.regression]
    assert [(f.label, f.metric) for f in flagged] == [("lbm-serial", "wall_clock_s")]
    assert flagged[0].delta == pytest.approx(0.5)


def test_throughput_drop_flags_but_gain_does_not():
    worse = compare_docs(_doc(mlups=100.0), _doc(mlups=50.0), threshold=0.25)
    assert any(f.regression and f.metric == "mlups" for f in worse)
    better = compare_docs(_doc(mlups=100.0), _doc(mlups=200.0), threshold=0.25)
    assert not any(f.regression for f in better)


def test_unmatched_labels_are_skipped():
    new = _doc()
    new["results"][0]["label"] = "lbm-parallel"
    assert compare_docs(_doc(), new) == []


def test_percentile_tail_regression_detected():
    pct_old = {"kernel_seconds": [{"labels": {"device": "0"}, "p50": 1e-3, "p99": 2e-3}]}
    pct_new = {"kernel_seconds": [{"labels": {"device": "0"}, "p50": 1e-3, "p99": 5e-3}]}
    findings = compare_docs(_doc(percentiles=pct_old), _doc(percentiles=pct_new))
    tail = [f for f in findings if f.metric == "p99"]
    assert len(tail) == 1 and tail[0].regression
    assert tail[0].label == "percentiles:kernel_seconds{device=0}"
    assert not any(f.regression for f in findings if f.metric == "p50")


def test_check_regression_reads_both_schema_versions(tmp_path):
    old = tmp_path / "old.json"
    old.write_text(json.dumps(_doc(schema="repro-bench/1")))
    new = write_bench_json(
        tmp_path / "new.json",
        "lbm",
        {},
        _doc(wall=2.0)["results"],
        percentiles={"kernel_seconds": []},
    )
    findings, ok = check_regression(old, new, threshold=0.25)
    assert not ok
    assert any(f.regression and f.metric == "wall_clock_s" for f in findings)


def test_read_bench_json_upgrades_v1_and_rejects_unknown(tmp_path):
    p = tmp_path / "b.json"
    p.write_text(json.dumps(_doc(schema="repro-bench/1")))
    doc = read_bench_json(p)
    assert doc["percentiles"] == {} and doc["critical_path"] == {}
    p.write_text(json.dumps(_doc(schema="repro-bench/99")))
    with pytest.raises(ValueError, match="unknown bench schema"):
        read_bench_json(p)


def test_read_bench_json_upgrades_pre_fusion_docs_in_memory(tmp_path):
    """Pre-/3 documents gain an empty ``fusion`` annotation and every
    result is marked ``fused: False`` (they dispatched step by step)."""
    for schema in ("repro-bench/1", "repro-bench/2"):
        p = tmp_path / "b.json"
        p.write_text(json.dumps(_doc(schema=schema)))
        doc = read_bench_json(p)
        assert doc["fusion"] == {}
        assert all(r["fused"] is False for r in doc["results"])
    # a /3 document's own flags survive untouched
    p = tmp_path / "c.json"
    v3 = _doc()
    v3["results"][0]["fused"] = True
    p.write_text(json.dumps(v3))
    assert read_bench_json(p)["results"][0]["fused"] is True


def test_read_bench_json_upgrades_pre_process_docs_in_memory(tmp_path):
    """Pre-/4 documents gain a ``params.process_skipped`` note.

    They never carry ``<exp>-process`` result labels or a
    ``speedup_process``; the upgrade records *why* (schema predates the
    mode) so a /4 consumer — the regression checker, the dashboard —
    can tell "process legs skipped" apart from "process legs missing".
    """
    for schema in ("repro-bench/1", "repro-bench/2", "repro-bench/3"):
        p = tmp_path / "b.json"
        p.write_text(json.dumps(_doc(schema=schema)))
        doc = read_bench_json(p)
        assert "predates process mode" in doc["params"]["process_skipped"]
        assert schema in doc["params"]["process_skipped"]
    # a /4 document is trusted to speak for itself, both ways
    p = tmp_path / "c.json"
    p.write_text(json.dumps(_doc(params={"speedup_process": 1.4})))
    assert "process_skipped" not in read_bench_json(p)["params"]
    p.write_text(json.dumps(_doc(params={"process_skipped": "resilience armed"})))
    assert read_bench_json(p)["params"]["process_skipped"] == "resilience armed"


def test_compare_docs_joins_process_labels_across_schemas(tmp_path):
    """A /1 baseline vs a /4 document with process rows: shared labels
    compare, the /4-only ``lbm-process`` row is skipped, and the same
    pair with matching process rows flags process regressions."""
    old_v1 = tmp_path / "old.json"
    old_v1.write_text(json.dumps(_doc(wall=1.0, schema="repro-bench/1")))
    new_v4 = _doc(wall=1.1)
    new_v4["results"].append(
        {"label": "lbm-process", "mode": "process", "wall_clock_s": 0.5, "mlups": 200.0}
    )
    new_path = tmp_path / "new.json"
    new_path.write_text(json.dumps(new_v4))
    findings, ok = check_regression(old_v1, new_path, threshold=0.25)
    assert ok  # 10% wall growth is under threshold; process row has no join
    assert not any(f.label == "lbm-process" for f in findings)

    # both /4 with process rows: the join happens and regressions flag
    old_v4 = _doc(wall=1.0)
    old_v4["results"].append(
        {"label": "lbm-process", "mode": "process", "wall_clock_s": 0.5, "mlups": 200.0}
    )
    slow = json.loads(json.dumps(new_v4))
    slow["results"][1]["wall_clock_s"] = 2.0
    findings = compare_docs(old_v4, slow, threshold=0.25)
    assert any(f.regression and f.label == "lbm-process" and f.metric == "wall_clock_s" for f in findings)


def test_fusion_ratio_drop_flags_on_result_entries():
    old, new = _doc(), _doc()
    old["results"][0]["fusion_ratio"] = 8.7
    new["results"][0]["fusion_ratio"] = 2.0  # chains broke
    findings = compare_docs(old, new, threshold=0.25)
    flagged = [f for f in findings if f.regression]
    assert [(f.label, f.metric) for f in flagged] == [("lbm-serial", "fusion_ratio")]
    # improvement direction never flags
    assert not any(f.regression for f in compare_docs(new, old, threshold=0.25))


def test_fusion_speedup_annotation_compared_per_mode():
    old = _doc(fusion={"speedup": {"serial": 8.0, "parallel": 5.0}})
    new = _doc(fusion={"speedup": {"serial": 2.0, "parallel": 5.1}})
    findings = compare_docs(old, new, threshold=0.25)
    flagged = [f for f in findings if f.regression]
    assert [(f.label, f.metric) for f in flagged] == [("fusion:serial", "fusion_speedup")]
    # pre-/3 old document: no fusion labels to join, nothing compared
    assert not any(
        f.metric == "fusion_speedup" for f in compare_docs(_doc(), new, threshold=0.25)
    )


def test_render_lists_regressions_first():
    findings = compare_docs(_doc(wall=1.0, mlups=100.0), _doc(wall=2.0, mlups=100.0))
    text = render(findings, 0.25)
    lines = text.splitlines()
    assert "REGRESSION" in lines[1]
    assert lines[-1].startswith("  => 1 regression(s)")
    assert render([], 0.25).startswith("no comparable metrics")
