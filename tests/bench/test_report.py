import pytest

from repro.bench import load_result, save_result
from repro.bench.report import RESULTS_DIR


def test_save_and_load_round_trip(tmp_path, monkeypatch):
    import repro.bench.report as report

    monkeypatch.setattr(report, "RESULTS_DIR", tmp_path / "out")
    data = {"series": [1, 2, 3], "meta": {"n": 8}}
    path = report.save_result("unit", data)
    assert path.exists()
    assert report.load_result("unit") == data


def test_results_dir_points_into_benchmarks():
    assert RESULTS_DIR.parts[-2:] == ("benchmarks", "out")
