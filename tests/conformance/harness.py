"""Shared differential-conformance harness.

Every Skeleton solver is run under a configuration matrix — device
count x OCC level x execution mode x partition weights — and its result
compared *bitwise* against the hand-written native baseline in
:mod:`repro.baselines`.  One native run per solver is the single source
of truth; if any configuration drifts by even one ULP the matrix fails,
which is what makes the partitioning, OCC transforms, execution engine
and tuner-chosen weights safe to enable by default.

Bitwise equality across partitions is only possible because every
reduction in the framework is computed in a canonical per-slice order
(see ``repro/sets/loader.py``); the native baselines use the same
``slice_dot`` so the comparison is exact, not approximate.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.sim.machine import mixed_pcie
from repro.skeleton import Occ
from repro.system import Backend

# Small but partitionable domains: axis 0 must satisfy
# shape[0] >= devices * 2 * halo_radius for the deepest split (8 ways).
LBM_SHAPE = (16, 8, 8)
LBM_STEPS = 10
KARMAN_SHAPE = (24, 48)
KARMAN_STEPS = 8
POISSON_SHAPE = (16, 10, 8)
POISSON_ITERS = 25
ELASTIC_N = 16
ELASTIC_ITERS = 10

DEVICE_COUNTS = (1, 2, 4, 8)
MODES = ("serial", "parallel")
WEIGHTINGS = ("uniform", "tuned")


@functools.lru_cache(maxsize=None)
def tuned_shares(solver: str, devices: int) -> tuple[float, ...]:
    """The autotuner's heterogeneous share vector for this solver.

    Computed on the mixed-generation machine model so the shares are
    genuinely non-uniform — the conformance matrix must prove that the
    partitioning the tuner actually proposes is numerics-neutral.
    """
    from repro.tuner import tune_workload

    return tune_workload(solver, mixed_pcie(devices), devices=devices).shares


def weights_for(solver: str, devices: int, weighting: str):
    if weighting == "uniform" or devices == 1:
        return None
    return tuned_shares(solver, devices)


# -- per-solver runners ------------------------------------------------------
# Each runner returns a dict of named float64 arrays ("fingerprints");
# the native reference must match every entry bit for bit.


def run_lbm(devices: int, occ: Occ, mode: str, weights) -> dict[str, np.ndarray]:
    from repro.solvers.lbm import LidDrivenCavity

    fw = LidDrivenCavity(
        Backend.sim_gpus(devices), LBM_SHAPE, omega=1.1, lid_velocity=0.08,
        occ=occ, partition_weights=weights,
    )
    fw.step(LBM_STEPS, mode=mode)
    return {"f": fw.current.to_numpy()}


@functools.lru_cache(maxsize=1)
def native_lbm() -> dict[str, np.ndarray]:
    from repro.baselines import NativeCavity

    native = NativeCavity(LBM_SHAPE, omega=1.1, lid_velocity=0.08)
    native.step(LBM_STEPS)
    return {"f": native.f}


def run_karman(devices: int, occ: Occ, mode: str, weights) -> dict[str, np.ndarray]:
    from repro.solvers.lbm.d2q9 import KarmanVortexStreet

    fw = KarmanVortexStreet(
        Backend.sim_gpus(devices), KARMAN_SHAPE, occ=occ, partition_weights=weights
    )
    fw.step(KARMAN_STEPS, mode=mode)
    return {"f": fw.current.to_numpy()}


@functools.lru_cache(maxsize=1)
def native_karman() -> dict[str, np.ndarray]:
    from repro.baselines import NativeKarman

    native = NativeKarman(KARMAN_SHAPE)
    native.step(KARMAN_STEPS)
    return {"f": native.f}


def _poisson_rhs():
    from repro.solvers import manufactured_problem

    _, f = manufactured_problem(POISSON_SHAPE)
    return f


def run_poisson(devices: int, occ: Occ, mode: str, weights) -> dict[str, np.ndarray]:
    from repro.solvers import PoissonSolver

    f = _poisson_rhs()
    solver = PoissonSolver(
        Backend.sim_gpus(devices), POISSON_SHAPE, occ=occ, partition_weights=weights
    )
    solver.cg.mode = mode
    solver.set_rhs(lambda z, y, x: f[z, y, x])
    res = solver.solve(max_iterations=POISSON_ITERS, tolerance=1e-12)
    return {
        "solution": solver.solution(),
        "residual_norms": np.asarray(res.residual_norms),
    }


@functools.lru_cache(maxsize=1)
def native_poisson() -> dict[str, np.ndarray]:
    from repro.baselines import NativePoissonCG

    native = NativePoissonCG(POISSON_SHAPE)
    native.set_rhs(_poisson_rhs())
    res = native.solve(max_iterations=POISSON_ITERS, tolerance=1e-12)
    return {
        "solution": native.solution(),
        "residual_norms": np.asarray(res.residual_norms),
    }


def run_elasticity(devices: int, occ: Occ, mode: str, weights) -> dict[str, np.ndarray]:
    from repro.solvers.elasticity import ElasticitySolver

    solver = ElasticitySolver.solid_cube(
        Backend.sim_gpus(devices), ELASTIC_N, occ=occ, partition_weights=weights
    )
    solver.cg.mode = mode
    res = solver.solve(max_iterations=ELASTIC_ITERS, tolerance=1e-12)
    return {
        "displacement": solver.displacement(),
        "residual_norms": np.asarray(res.residual_norms),
    }


@functools.lru_cache(maxsize=1)
def native_elasticity() -> dict[str, np.ndarray]:
    from repro.baselines import NativeElasticity

    native = NativeElasticity(ELASTIC_N)
    res = native.solve(max_iterations=ELASTIC_ITERS, tolerance=1e-12)
    return {
        "displacement": native.displacement(),
        "residual_norms": np.asarray(res.residual_norms),
    }


SOLVERS = {
    "lbm": (run_lbm, native_lbm),
    "karman": (run_karman, native_karman),
    "poisson": (run_poisson, native_poisson),
    "elasticity": (run_elasticity, native_elasticity),
}


def assert_bitwise_equal(got: dict[str, np.ndarray], want: dict[str, np.ndarray], label: str) -> None:
    assert set(got) == set(want), f"{label}: fingerprint keys differ"
    for key in want:
        g, w = np.asarray(got[key]), np.asarray(want[key])
        assert g.dtype == w.dtype, f"{label}/{key}: dtype {g.dtype} != {w.dtype}"
        assert g.shape == w.shape, f"{label}/{key}: shape {g.shape} != {w.shape}"
        if not np.array_equal(g, w):
            bad = int(np.sum(g != w))
            worst = float(np.max(np.abs(g - w)))
            raise AssertionError(
                f"{label}/{key}: {bad}/{g.size} elements differ (max abs diff {worst:.3e}) — "
                "bitwise conformance against the native baseline is broken"
            )


# -- the cache/serving axis --------------------------------------------------
# The gateway serves jobs from warm cached programs; the conformance bar
# is that a served result — cold or warm replay — is bitwise-identical
# to the direct runner above (and hence to the native baseline).


def served_spec(solver: str, devices: int, occ: Occ, mode: str, weights):
    """The JobSpec matching a direct runner's configuration exactly.

    Every parameter a ``run_*`` function pins (shape, steps, omega, rhs,
    tolerance, ...) must appear here, or the differential comparison
    would be comparing different problems.
    """
    from repro.serving import JobSpec

    if solver == "lbm":
        return JobSpec.make(
            "lbm", LBM_SHAPE, LBM_STEPS, devices=devices, occ=occ.value, mode=mode,
            weights=weights, omega=1.1, lid_velocity=0.08,
        )
    if solver == "karman":
        return JobSpec.make(
            "karman", KARMAN_SHAPE, KARMAN_STEPS, devices=devices, occ=occ.value,
            mode=mode, weights=weights,
        )
    if solver == "poisson":
        return JobSpec.make(
            "poisson", POISSON_SHAPE, POISSON_ITERS, devices=devices, occ=occ.value,
            mode=mode, weights=weights, rhs="manufactured", tolerance=1e-12,
        )
    if solver == "elasticity":
        return JobSpec.make(
            "elasticity", (ELASTIC_N,), ELASTIC_ITERS, devices=devices, occ=occ.value,
            mode=mode, weights=weights, tolerance=1e-12,
        )
    raise KeyError(f"no served spec for solver '{solver}'")


def run_served(gateway, solver: str, devices: int, occ: Occ, mode: str, weights, tenant="conformance"):
    """One job through the gateway; returns its fingerprints dict."""
    job = gateway.submit(tenant, served_spec(solver, devices, occ, mode, weights))
    return job.result(timeout=600).fingerprints


def matrix_configs(device_counts=DEVICE_COUNTS):
    """The conformance matrix: every multi-device configuration, plus the
    single-device anchor (where OCC, mode and weights are all no-ops and
    one representative configuration suffices)."""
    configs = [(1, Occ.STANDARD, "serial", "uniform")]
    for devices in device_counts:
        if devices == 1:
            continue
        for occ in Occ:
            for mode in MODES:
                for weighting in WEIGHTINGS:
                    configs.append((devices, occ, mode, weighting))
    return configs
