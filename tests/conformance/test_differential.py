"""The differential conformance matrix (see ``harness.py``).

Each test runs one solver under one (devices, occ, mode, weights)
configuration and asserts bitwise equality against the cached native
baseline.  Passing the whole matrix simultaneously proves two things:

* native conformance — the framework computes exactly the reference
  algorithm, not an approximation of it;
* partition invariance — device count, OCC level, execution mode and
  tuner-chosen partition weights change the schedule but never a bit of
  the answer.
"""

from __future__ import annotations

import pytest

from .harness import SOLVERS, assert_bitwise_equal, matrix_configs, weights_for

CONFIGS = matrix_configs()


def _config_id(cfg) -> str:
    devices, occ, mode, weighting = cfg
    return f"{devices}dev-{occ.value}-{mode}-{weighting}"


@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
def test_matches_native_bitwise(solver, config):
    devices, occ, mode, weighting = config
    run, native = SOLVERS[solver]
    weights = weights_for(solver, devices, weighting)
    got = run(devices, occ, mode, weights)
    label = f"{solver}[{_config_id(config)}]"
    assert_bitwise_equal(got, native(), label)


def test_tuned_shares_are_nonuniform():
    """The 'tuned' axis of the matrix must actually exercise non-uniform
    slabs, otherwise it silently degenerates into the uniform axis."""
    import numpy as np

    from .harness import tuned_shares

    for solver in SOLVERS:
        shares = np.asarray(tuned_shares(solver, 4))
        assert shares.shape == (4,)
        assert np.ptp(shares) > 0.05, f"{solver}: tuner shares {shares} are ~uniform"
