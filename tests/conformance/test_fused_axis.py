"""The fused axis of the conformance matrix.

Kernel fusion is on by default, so the main differential matrix
(``test_differential.py``) already proves *fused* dispatch bitwise
against the native baselines.  This module pins the axis explicitly:
every solver runs each multi-device (occ, mode) configuration twice —
once fused, once under :func:`repro.skeleton.fusion.disabled` — and
both legs must match the native fingerprints bit for bit.  That makes
"fusion is a pure plan-to-plan transform" a tested invariant rather
than a design note: if a fused chain ever reorders a dependent step,
batches a halo exchange wrongly, or a codegen-specialized kernel drifts
by one ULP, exactly one leg of this axis breaks and names the
configuration.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.skeleton import fusion

from .harness import SOLVERS, assert_bitwise_equal, matrix_configs, weights_for

# The weights axis is already crossed with fusion in the main matrix
# (which runs fused by default); here the axis under test is fuse
# itself, over every solver x devices x occ x mode.
CONFIGS = [cfg for cfg in matrix_configs(device_counts=(2, 4, 8)) if cfg[3] == "uniform"]


def _config_id(cfg) -> str:
    devices, occ, mode, weighting = cfg
    return f"{devices}dev-{occ.value}-{mode}"


@pytest.mark.parametrize("fuse", [True, False], ids=["fused", "unfused"])
@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
def test_fused_axis_matches_native_bitwise(solver, config, fuse):
    devices, occ, mode, weighting = config
    run, native = SOLVERS[solver]
    weights = weights_for(solver, devices, weighting)
    with contextlib.nullcontext() if fuse else fusion.disabled():
        got = run(devices, occ, mode, weights)
    label = f"{solver}[{_config_id(config)}-{'fused' if fuse else 'unfused'}]"
    assert_bitwise_equal(got, native(), label)


def test_lbm_program_actually_fuses():
    """The axis must not pass vacuously: the fused LBM program at four
    devices has to batch its halo-exchange chains and specialize its
    kernels, or the fused leg above is just the unfused leg renamed."""
    from repro.solvers.lbm import LidDrivenCavity
    from repro.system import Backend

    from .harness import LBM_SHAPE

    fw = LidDrivenCavity(Backend.sim_gpus(4), LBM_SHAPE, omega=1.1, lid_velocity=0.08)
    fw.step(1)
    for sk in fw.skeletons:
        program = sk.plan._ensure_program()
        assert program.dispatch is not None
        assert len(program.dispatch) < len(program.steps)
        assert program.stats.fusion_ratio > 5.0
        chain_lengths = sorted(len(u.steps) for u in program.dispatch if len(u.steps) > 1)
        assert chain_lengths, "no multi-step units: copy chains did not fuse"


def test_disabled_context_leaves_no_dispatch():
    from repro.solvers.lbm import LidDrivenCavity
    from repro.system import Backend

    from .harness import LBM_SHAPE

    with fusion.disabled():
        fw = LidDrivenCavity(Backend.sim_gpus(2), LBM_SHAPE, omega=1.1, lid_velocity=0.08)
        fw.step(1)
        for sk in fw.skeletons:
            assert sk.plan._ensure_program().dispatch is None
