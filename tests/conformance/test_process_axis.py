"""The process-mode axis of the differential conformance matrix.

Every solver runs under ``mode="process"`` — forked per-device workers
replaying against shared-memory payloads — across the full device ×
OCC × fused/unfused grid, and must match the cached native baselines
bit for bit.  Passing this axis alongside ``test_differential.py``
proves the strongest claim of the multiprocess engine: moving each
device's program into its own *process* (separate interpreter, shared
pages, event-board synchronisation) changes nothing about the numbers,
not even the last ulp.

A :class:`ProcessFallbackWarning` is promoted to an error inside every
run: a config that silently degraded to serial would pass trivially,
and this axis exists precisely to not test that.

Gating: the axis needs working shared memory, and on a single usable
core it is skipped by default (the engine is exercised more cheaply by
``tests/system/test_process_engine.py``; the full matrix at 8 forked
workers per config is CI-budget-relevant).  Set
``REPRO_FORCE_PROCESS_TESTS=1`` to run it anyway — correctness does
not depend on core count, only wall-clock does.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.bench.harness import usable_cpu_count
from repro.skeleton import Occ, fusion
from repro.system import ProcessFallbackWarning, process_fallback_reason, sharedmem

from .harness import DEVICE_COUNTS, SOLVERS, assert_bitwise_equal


def _skip_reason() -> str | None:
    if not sharedmem.available():
        return "shared memory unavailable on this platform (or REPRO_NO_SHM set)"
    if os.environ.get("REPRO_FORCE_PROCESS_TESTS"):
        return None
    if usable_cpu_count() < 2:
        return (
            f"only {usable_cpu_count()} usable core(s); "
            "set REPRO_FORCE_PROCESS_TESTS=1 to run the process axis anyway"
        )
    return None


_REASON = _skip_reason()
pytestmark = pytest.mark.skipif(_REASON is not None, reason=_REASON or "")


def _process_configs():
    """1-device anchor plus every (devices, occ, fused) multi-device cell."""
    configs = [(1, Occ.STANDARD, True)]
    for devices in DEVICE_COUNTS:
        if devices == 1:
            continue
        for occ in Occ:
            for fused in (True, False):
                configs.append((devices, occ, fused))
    return configs


def _config_id(cfg) -> str:
    devices, occ, fused = cfg
    return f"{devices}dev-{occ.value}-{'fused' if fused else 'unfused'}"


def _run_process(run, devices: int, occ: Occ, fused: bool):
    """One solver run in process mode, fallback warnings promoted."""
    import contextlib

    assert process_fallback_reason() is None, "process mode would silently fall back"
    with warnings.catch_warnings():
        warnings.simplefilter("error", ProcessFallbackWarning)
        with fusion.disabled() if not fused else contextlib.nullcontext():
            return run(devices, occ, "process", None)


@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("config", _process_configs(), ids=_config_id)
def test_process_matches_native_bitwise(solver, config):
    devices, occ, fused = config
    run, native = SOLVERS[solver]
    got = _run_process(run, devices, occ, fused)
    assert_bitwise_equal(got, native(), f"{solver}[process-{_config_id(config)}]")


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_serial_parallel_process_cross_mode_bitwise(solver):
    """The three engines agree with each other, not just with the native.

    One representative multi-device configuration per solver; any
    divergence between in-thread and cross-process replay of the *same*
    compiled plans would surface here even if all three happened to
    match a (differently scheduled) native baseline.
    """
    run, _native = SOLVERS[solver]
    serial = run(3, Occ.STANDARD, "serial", None)
    parallel = run(3, Occ.STANDARD, "parallel", None)
    with warnings.catch_warnings():
        warnings.simplefilter("error", ProcessFallbackWarning)
        process = run(3, Occ.STANDARD, "process", None)
    assert_bitwise_equal(parallel, serial, f"{solver}[parallel-vs-serial]")
    assert_bitwise_equal(process, serial, f"{solver}[process-vs-serial]")
