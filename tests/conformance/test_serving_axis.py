"""The cache/serving axis of the differential conformance matrix.

The gateway serves every solver from warm cached programs; this axis
proves the plan cache is *numerics-neutral*: a gateway-served result —
cold compile or warm replay, batched or not — is bitwise-identical to
the direct ``Skeleton.run`` path, and hence to the native baselines the
rest of the matrix anchors on.  The tuner leg closes the loop the issue
names: a :class:`TunePlan` persisted to the cache, JSON-round-tripped
and replayed through ``Skeleton.run`` produces the same bits as a cold
compile under the same decision.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.serving import Gateway, PlanCache
from repro.skeleton import Occ
from repro.tuner import TunePlan

from .harness import SOLVERS, assert_bitwise_equal, run_served, served_spec

DEVICES = 2

# NOTE: gateways are per-test, not module-scoped — a warm program cached
# across tests would keep its device arenas alive and (correctly) trip
# the suite-wide shared-memory leak guard.  Warm-vs-cold is exercised
# inside one test instead.


@pytest.mark.parametrize("solver", sorted(SOLVERS))
@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_served_matches_native_and_direct(solver, mode):
    run, native = SOLVERS[solver]
    with Gateway(workers=2) as gw:
        served = run_served(gw, solver, DEVICES, Occ.STANDARD, mode, None)
        warm = run_served(gw, solver, DEVICES, Occ.STANDARD, mode, None)
    assert_bitwise_equal(served, native(), f"{solver}/served-{mode} vs native")
    assert_bitwise_equal(warm, served, f"{solver}/served-{mode} warm vs cold")
    direct = run(DEVICES, Occ.STANDARD, mode, None)
    assert_bitwise_equal(served, direct, f"{solver}/served-{mode} vs direct")


def _process_skip() -> str | None:
    from repro.bench.harness import usable_cpu_count
    from repro.system import sharedmem

    if not sharedmem.available():
        return "shared memory unavailable on this platform (or REPRO_NO_SHM set)"
    if os.environ.get("REPRO_FORCE_PROCESS_TESTS"):
        return None
    if usable_cpu_count() < 2:
        return (
            f"only {usable_cpu_count()} usable core(s); "
            "set REPRO_FORCE_PROCESS_TESTS=1 to run the process leg anyway"
        )
    return None


_PROC_REASON = _process_skip()


@pytest.mark.skipif(_PROC_REASON is not None, reason=_PROC_REASON or "")
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_served_process_mode_matches_native(solver):
    from repro.system import ProcessFallbackWarning

    _, native = SOLVERS[solver]
    with Gateway(workers=1) as gw, warnings.catch_warnings():
        warnings.simplefilter("error", ProcessFallbackWarning)
        served = run_served(gw, solver, DEVICES, Occ.STANDARD, "process", None)
        warm = run_served(gw, solver, DEVICES, Occ.STANDARD, "process", None)
    assert_bitwise_equal(served, native(), f"{solver}/served-process vs native")
    assert_bitwise_equal(warm, served, f"{solver}/served-process warm vs cold")


def test_cached_tune_plan_replays_bitwise_identical(tmp_path):
    """A TunePlan persisted to the plan cache and replayed through
    Skeleton.run matches the cold compile under the same decision."""
    spec = served_spec("poisson", DEVICES, Occ.STANDARD, "serial", None)
    run, _ = SOLVERS["poisson"]

    with Gateway(cache=PlanCache(root=tmp_path), workers=1) as gw:
        tuned = gw.tuned_spec(spec)  # cold: full DES search, then persisted
        first = gw.submit("t", tuned).result(timeout=600)

    with Gateway(cache=PlanCache(root=tmp_path), workers=1) as gw2:
        replayed = gw2.tuned_spec(spec)  # warm: read back from disk
        assert replayed == tuned
        second = gw2.submit("t", replayed).result(timeout=600)
        assert gw2.cache.persisted_loads >= 1  # no re-search happened

    assert_bitwise_equal(
        second.fingerprints, first.fingerprints, "poisson/tuned replay vs cold"
    )
    # the decision itself survives the JSON round-trip exactly, and the
    # direct Skeleton.run path under that decision agrees bit for bit
    weights = tuned.weights
    direct = run(tuned.devices, Occ(tuned.occ), tuned.mode, weights)
    assert_bitwise_equal(first.fingerprints, direct, "poisson/served-tuned vs direct")


def test_tune_plan_json_round_trip_is_exact():
    from repro.sim import dgx_a100
    from repro.tuner import tune_workload

    plan = tune_workload("poisson", dgx_a100(DEVICES), devices=DEVICES)
    clone = TunePlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert clone.best == plan.best and clone.baseline == plan.baseline
    assert clone.candidates == plan.candidates
    assert clone.shares == plan.shares
    assert clone.to_dict() == plan.to_dict()
