"""Suite-wide fixtures: per-test observability with reports on failure.

Every test runs with the tracer/metrics enabled on a fresh recording, so
a scheduler or halo failure comes with a timeline and a metrics table
instead of a bare assert.  State is fully reset afterwards, keeping the
documented default (observability off) true between tests.
"""

import pytest

from repro import observability as obs
from repro import resilience as res
from repro import sanitizer as san


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    setattr(item, "rep_" + rep.when, rep)


@pytest.fixture(autouse=True)
def observability_per_test(request):
    """Trace each test; print the timeline + metrics when it fails."""
    obs.enable()
    try:
        yield
        rep = getattr(request.node, "rep_call", None)
        if rep is not None and rep.failed:
            print("\n---- observability report (test failed) ----")
            print(obs.metrics_report())
            print("\n---- last spans ----")
            print(obs.tracer().timeline(limit=40))
    finally:
        obs.reset()


@pytest.fixture(autouse=True)
def flight_sandboxed(tmp_path):
    """Fresh flight-recorder rings per test, dumps redirected to tmp_path.

    The recorder is always-on by design; redirecting ``dump_dir`` keeps
    terminal-failure tests (injected device loss, deadlocks, sanitizer
    violations) from littering the repo with FLIGHT_*.json artifacts.
    """
    from repro.observability import flight

    flight.reset()
    flight.FLIGHT.dump_dir = str(tmp_path)
    try:
        yield flight.FLIGHT
    finally:
        flight.reset()
        flight.FLIGHT.dump_dir = "."


@pytest.fixture(autouse=True)
def resilience_disarmed():
    """Keep the documented default (no fault injection) true between tests."""
    res.reset()
    try:
        yield
    finally:
        res.reset()


@pytest.fixture(autouse=True)
def sanitizer_disarmed():
    """Keep the documented default (no execution recording) true between tests."""
    san.reset()
    try:
        yield
    finally:
        san.reset()


@pytest.fixture(autouse=True)
def no_leaked_shared_memory(request):
    """Fail any test that leaks shared-memory segments or worker pools.

    Snapshot the live-segment registry before the test; afterwards shut
    down every process engine still alive (their boards and arenas are
    released by the owning objects' finalizers once unreferenced) and
    collect, then assert the registry is back to the snapshot.  A leaked
    segment here means a real ``/dev/shm`` file would outlive the test
    process — the exact failure mode the registry exists to catch.

    pytest nulls ``item.funcargs`` only *after* every teardown hook has
    run (``_pytest/runner.py``, ``runtestprotocol``), so a fixture-
    provided grid or backend is still referenced from there when this
    finalizer fires — long after its own FixtureDef cache was cleared.
    That pin is pytest plumbing, not a leak; drop the values ourselves
    before collecting so only genuinely retained segments (module
    globals, stuck worker threads) can trip the assert.
    """
    import gc

    from repro.system import close_all_process_engines, sharedmem

    before = {rec.name for rec in sharedmem.live_segments()}
    try:
        yield
    finally:
        close_all_process_engines()
    funcargs = getattr(request.node, "funcargs", None)
    if funcargs:
        for key in list(funcargs):
            funcargs[key] = None
    gc.collect()
    leaked = [rec for rec in sharedmem.live_segments() if rec.name not in before]
    assert not leaked, "test leaked shared-memory segments: " + ", ".join(
        f"{rec.name} ({rec.tag}, {rec.nbytes} B)" for rec in leaked
    )
