import numpy as np
import pytest

from repro.core import Backend, DenseGrid, Layout, Occ, ScalarResult, Skeleton, SparseGrid, ops
from repro.domain import STENCIL_7PT


@pytest.fixture(params=["dense", "sparse"])
def grid(request):
    backend = Backend.sim_gpus(2)
    if request.param == "dense":
        return DenseGrid(backend, (8, 4, 4), stencils=[STENCIL_7PT])
    mask = np.ones((8, 4, 4), dtype=bool)
    mask[:, 0, 0] = False
    return SparseGrid(backend, mask=mask, stencils=[STENCIL_7PT])


def run_one(grid, container):
    Skeleton(grid.backend, [container], occ=Occ.NONE).run()


def test_set_and_copy(grid):
    a, b = grid.new_field("a"), grid.new_field("b")
    run_one(grid, ops.set_value(grid, a, 3.0))
    run_one(grid, ops.copy(grid, a, b))
    assert np.allclose(b.to_numpy()[0][grid_mask(grid)], 3.0)


def test_scale(grid):
    a = grid.new_field("a")
    a.fill(2.0)
    run_one(grid, ops.scale(grid, -1.5, a))
    assert np.allclose(a.to_numpy()[0][grid_mask(grid)], -3.0)


def test_axpy(grid):
    x, y = grid.new_field("x"), grid.new_field("y")
    x.fill(2.0)
    y.fill(1.0)
    run_one(grid, ops.axpy(grid, 3.0, x, y))
    assert np.allclose(y.to_numpy()[0][grid_mask(grid)], 7.0)


def test_axpby(grid):
    x, y = grid.new_field("x"), grid.new_field("y")
    x.fill(2.0)
    y.fill(10.0)
    run_one(grid, ops.axpby(grid, 1.0, x, 0.5, y))
    assert np.allclose(y.to_numpy()[0][grid_mask(grid)], 7.0)


def test_dot_matches_numpy(grid):
    x, y = grid.new_field("x"), grid.new_field("y")
    x.init(lambda z, yy, xx: z + 0.5)
    y.init(lambda z, yy, xx: xx + 1.0)
    partial = grid.new_reduce_partial("p")
    run_one(grid, ops.dot(grid, x, y, partial))
    got = ScalarResult(partial).value()
    m = grid_mask(grid)
    expected = float(np.sum(x.to_numpy()[0][m] * y.to_numpy()[0][m]))
    assert got == pytest.approx(expected)


def test_norm2_squared(grid):
    x = grid.new_field("x")
    x.fill(2.0)
    partial = grid.new_reduce_partial("p")
    run_one(grid, ops.norm2_squared(grid, x, partial))
    assert ScalarResult(partial).value() == pytest.approx(4.0 * grid.num_active)


def test_vector_fields_all_components():
    backend = Backend.sim_gpus(2)
    grid = DenseGrid(backend, (8, 4, 4))
    x = grid.new_field("x", cardinality=3, layout=Layout.AOS)
    y = grid.new_field("y", cardinality=3, layout=Layout.SOA)
    x.fill(1.0)
    y.fill(2.0)
    run_one(grid, ops.axpy(grid, 2.0, x, y))
    assert np.allclose(y.to_numpy(), 4.0)
    partial = grid.new_reduce_partial("p")
    run_one(grid, ops.dot(grid, y, y, partial))
    assert ScalarResult(partial).value() == pytest.approx(16.0 * 3 * grid.num_cells)


def test_foreign_field_rejected():
    backend = Backend.sim_gpus(1)
    g1 = DenseGrid(backend, (4, 4, 4), name="g1")
    g2 = DenseGrid(backend, (4, 4, 4), name="g2")
    with pytest.raises(ValueError, match="belongs"):
        ops.copy(g1, g1.new_field("a"), g2.new_field("b"))


def test_mixed_cardinality_rejected():
    backend = Backend.sim_gpus(1)
    g = DenseGrid(backend, (4, 4, 4))
    with pytest.raises(ValueError, match="cardinalities"):
        ops.axpy(g, 1.0, g.new_field("a", cardinality=3), g.new_field("b", cardinality=1))


def test_virtual_scalar_result_rejected():
    backend = Backend.sim_gpus(1)
    g = DenseGrid(backend, (4, 4, 4), virtual=True)
    partial = g.new_reduce_partial("p")
    with pytest.raises(RuntimeError, match="virtual"):
        ScalarResult(partial).value()


def grid_mask(grid):
    if isinstance(grid, SparseGrid):
        return grid.mask
    return np.ones(grid.shape, dtype=bool) if grid.mask is None else grid.mask
