import numpy as np
import pytest

from repro.core import Backend, DenseGrid, Occ, ScalarResult, Skeleton, ops
from repro.domain import STENCIL_7PT


@pytest.fixture
def grid():
    return DenseGrid(Backend.sim_gpus(2), (8, 4, 4), stencils=[STENCIL_7PT])


def run_one(grid, container):
    Skeleton(grid.backend, [container], occ=Occ.NONE).run()


def test_waxpby(grid):
    x, y, w = (grid.new_field(n) for n in "xyw")
    x.fill(2.0)
    y.fill(3.0)
    run_one(grid, ops.waxpby(grid, 2.0, x, -1.0, y, w))
    assert np.allclose(w.to_numpy(), 1.0)
    # inputs untouched
    assert np.allclose(x.to_numpy(), 2.0)
    assert np.allclose(y.to_numpy(), 3.0)


def test_max_abs(grid):
    x = grid.new_field("x")
    x.init(lambda z, y, xx: np.where((z == 5) & (y == 2) & (xx == 1), -17.0, 0.5))
    partial = grid.new_reduce_partial("p")
    run_one(grid, ops.max_abs(grid, x, partial))
    assert ScalarResult(partial, op=np.maximum).value() == pytest.approx(17.0)


def test_max_abs_multi_device_equals_single():
    vals = {}
    for ndev in (1, 2):
        g = DenseGrid(Backend.sim_gpus(ndev), (8, 4, 4))
        x = g.new_field("x")
        rng = np.random.default_rng(4)
        data = rng.standard_normal(g.shape)
        x.init(lambda z, y, xx: data[z, y, xx])
        partial = g.new_reduce_partial("p")
        run_one(g, ops.max_abs(g, x, partial))
        vals[ndev] = ScalarResult(partial, op=np.maximum).value()
    assert vals[1] == pytest.approx(vals[2])
    assert vals[1] == pytest.approx(float(np.abs(data).max()))


def test_total(grid):
    x = grid.new_field("x", cardinality=2)
    x.fill(1.5)
    partial = grid.new_reduce_partial("p")
    run_one(grid, ops.total(grid, x, partial))
    assert ScalarResult(partial).value() == pytest.approx(1.5 * 2 * grid.num_cells)
