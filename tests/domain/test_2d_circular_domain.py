"""The paper's Listing 1: a 2-D circular free-form domain.

Exercises the element-sparse grid in two dimensions with a vector field
(cardinality 3, like the listing's velocity field) and a D2Q9-shaped
stencil, partitioned over multiple devices.
"""

import numpy as np
import pytest

from repro.domain import D2Q9_STENCIL, DataView, Layout, SparseGrid
from repro.system import Backend


def circle_mask(n: int) -> np.ndarray:
    yy, xx = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    c = (n - 1) / 2.0
    return (yy - c) ** 2 + (xx - c) ** 2 <= (0.45 * n) ** 2


@pytest.fixture
def grid():
    return SparseGrid(Backend.sim_gpus(3), mask=circle_mask(24), stencils=[D2Q9_STENCIL])


def test_listing1_field_creation(grid):
    # Listing 1: cardinality 3, outsideDomainValue 0
    velocity = grid.new_field("velocity", cardinality=3, outside_value=0.0)
    assert velocity.cardinality == 3
    assert velocity.outside_value == 0.0
    assert velocity.grid is grid


def test_circle_active_count(grid):
    mask = circle_mask(24)
    assert grid.num_active == int(mask.sum())
    assert 0.5 < grid.sparsity_ratio < 0.8  # a circle fills ~pi/4 of its box


def test_2d_partitioning_balances_rows(grid):
    loads = grid.n_owned
    assert max(loads) / (sum(loads) / 3) < 1.5


def test_2d_neighbour_access_with_outside_value(grid):
    velocity = grid.new_field("velocity", cardinality=3, outside_value=-1.0)
    velocity.fill(2.0)
    velocity.sync_halo_now()
    for rank in range(3):
        part = velocity.partition(rank)
        span = grid.span_for(rank, DataView.STANDARD)
        for comp in range(3):
            right = part.neighbour(span, (0, 1), comp)
            y, x = part.coords(span)
            mask = circle_mask(24)
            nbr_in = np.zeros(len(y), dtype=bool)
            ok = x + 1 < 24
            nbr_in[ok] = mask[y[ok], x[ok] + 1]
            assert np.all(right[nbr_in] == 2.0)
            assert np.all(right[~nbr_in] == -1.0)


def test_2d_halo_exchange_roundtrip(grid):
    f = grid.new_field("u")
    f.init(lambda y, x: y * 100.0 + x)
    for rank in range(3):
        part = f.partition(rank)
        span = grid.span_for(rank, DataView.STANDARD)
        up = part.neighbour(span, (-1, 0))
        y, x = part.coords(span)
        mask = circle_mask(24)
        nbr_in = np.zeros(len(y), dtype=bool)
        ok = y - 1 >= 0
        nbr_in[ok] = mask[y[ok] - 1, x[ok]]
        expected = (y - 1) * 100.0 + x
        assert np.allclose(up[nbr_in], expected[nbr_in])


def test_2d_aos_layout(grid):
    f = grid.new_field("v", cardinality=2, layout=Layout.AOS)
    f.fill(3.0)
    assert np.all(f.to_numpy()[:, circle_mask(24)] == 3.0)
    msgs = f.halo_messages()
    assert len(msgs) == 4  # 2 pairs x 2 directions, components interleaved
