import numpy as np
import pytest

from repro.domain import STENCIL_7PT, DataView, DenseGrid, Layout
from repro.system import Backend


@pytest.fixture
def grid():
    return DenseGrid(Backend.sim_gpus(3), (12, 4, 5), stencils=[STENCIL_7PT])


def test_slab_bounds(grid):
    assert grid.bounds == [(0, 4), (4, 8), (8, 12)]
    assert grid.num_active == 12 * 4 * 5
    assert grid.sparsity_ratio == 1.0


def test_views_middle_rank(grid):
    std = grid.span_for(1, DataView.STANDARD)
    internal = grid.span_for(1, DataView.INTERNAL)
    boundary = grid.span_for(1, DataView.BOUNDARY)
    assert std.count == 4 * 20
    assert internal.count == 2 * 20
    assert boundary.count == 2 * 20
    assert len(boundary.pieces()) == 2


def test_views_edge_ranks_have_one_sided_boundary(grid):
    # rank 0 touches the global border below: only its top strip is boundary
    b0 = grid.span_for(0, DataView.BOUNDARY)
    assert b0.count == 1 * 20
    assert len(b0.pieces()) == 1
    i0 = grid.span_for(0, DataView.INTERNAL)
    assert i0.count == 3 * 20


def test_single_device_all_internal():
    g = DenseGrid(Backend.sim_gpus(1), (8, 3, 3), stencils=[STENCIL_7PT])
    assert g.span_for(0, DataView.BOUNDARY).is_empty
    assert g.span_for(0, DataView.INTERNAL).count == g.num_cells


def test_standard_is_union_of_internal_and_boundary(grid):
    for rank in range(3):
        std = grid.span_for(rank, DataView.STANDARD).count
        i = grid.span_for(rank, DataView.INTERNAL).count
        b = grid.span_for(rank, DataView.BOUNDARY).count
        assert std == i + b


def test_too_thin_slabs_rejected():
    with pytest.raises(ValueError, match="slabs"):
        DenseGrid(Backend.sim_gpus(4), (6, 4, 4), stencils=[STENCIL_7PT])


def test_2d_grid_supported():
    g = DenseGrid(Backend.sim_gpus(2), (8, 6))
    f = g.new_field("u")
    f.fill(3.0)
    assert f.to_numpy().shape == (1, 8, 6)
    assert np.all(f.to_numpy() == 3.0)


def test_bad_shapes_rejected():
    be = Backend.sim_gpus(1)
    with pytest.raises(ValueError):
        DenseGrid(be, (8,))
    with pytest.raises(ValueError):
        DenseGrid(be, (8, 0, 3))
    with pytest.raises(ValueError):
        DenseGrid(be, (2, 2, 2, 2))


def test_field_init_and_to_numpy_roundtrip(grid):
    f = grid.new_field("u")
    f.init(lambda z, y, x: z * 100 + y * 10 + x)
    arr = f.to_numpy()[0]
    z, y, x = np.meshgrid(np.arange(12), np.arange(4), np.arange(5), indexing="ij")
    assert np.array_equal(arr, z * 100 + y * 10 + x)


def test_field_initial_value_is_outside_value(grid):
    f = grid.new_field("u", outside_value=-9.0)
    assert np.all(f.to_numpy() == -9.0)


def test_neighbour_within_partition(grid):
    f = grid.new_field("u")
    f.init(lambda z, y, x: z * 100 + y * 10 + x)
    part = f.partition(1)  # owns z in [4, 8)
    span = grid.span_for(1, DataView.INTERNAL)
    up = part.neighbour(span, (1, 0, 0))
    center = part.view(span)
    assert np.array_equal(up, center + 100)


def test_neighbour_across_partition_reads_halo(grid):
    f = grid.new_field("u")
    f.init(lambda z, y, x: z * 100 + y * 10 + x)  # init syncs halos
    part = f.partition(1)
    span = grid.span_for(1, DataView.STANDARD)
    down = part.neighbour(span, (-1, 0, 0))
    # the first slice of rank 1 (z=4) must read z=3 values owned by rank 0
    assert np.array_equal(down[0], f.to_numpy()[0][3])


def test_neighbour_outside_domain_returns_outside_value():
    g = DenseGrid(Backend.sim_gpus(1), (4, 3, 3), stencils=[STENCIL_7PT])
    f = g.new_field("u", outside_value=-5.0)
    f.fill(1.0)
    f.sync_halo_now()
    part = f.partition(0)
    span = g.span_for(0, DataView.STANDARD)
    below = part.neighbour(span, (-1, 0, 0))
    assert np.all(below[0] == -5.0)  # z=-1 is outside
    assert np.all(below[1:] == 1.0)
    left = part.neighbour(span, (0, 0, -1))
    assert np.all(left[:, :, 0] == -5.0)
    assert np.all(left[:, :, 1:] == 1.0)


def test_neighbour_offset_beyond_radius_rejected(grid):
    f = grid.new_field("u")
    part = f.partition(0)
    span = grid.span_for(0, DataView.STANDARD)
    with pytest.raises(ValueError, match="radius"):
        part.neighbour(span, (2, 0, 0))


def test_layouts_give_same_logical_content(grid):
    fa = grid.new_field("a", cardinality=3, layout=Layout.SOA)
    fb = grid.new_field("b", cardinality=3, layout=Layout.AOS)
    for f in (fa, fb):
        for c in range(3):
            f.init(lambda z, y, x, c=c: z + 10 * c, comp=c)
    assert np.array_equal(fa.to_numpy(), fb.to_numpy())
    # physical layouts differ
    assert fa.buffers[0].shape[0] == 3
    assert fb.buffers[0].shape[-1] == 3


def test_view_all_is_writable_both_layouts(grid):
    for layout in (Layout.SOA, Layout.AOS):
        f = grid.new_field(f"f_{layout.value}", cardinality=2, layout=layout)
        span = grid.span_for(0, DataView.STANDARD)
        va = f.partition(0).view_all(span)
        va[1, ...] = 42.0
        assert np.all(f.partition(0).view(span, 1) == 42.0)
        assert np.all(f.partition(0).view(span, 0) == 0.0)


def test_mask_field_and_num_active():
    mask = np.zeros((8, 4, 4), dtype=bool)
    mask[:, :2, :] = True
    g = DenseGrid(Backend.sim_gpus(2), (8, 4, 4), stencils=[STENCIL_7PT], mask=mask)
    assert g.num_active == 8 * 2 * 4
    assert g.sparsity_ratio == pytest.approx(0.5)
    mf = g.mask_field()
    assert np.array_equal(mf.to_numpy()[0], mask.astype(float))


def test_mask_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        DenseGrid(Backend.sim_gpus(1), (8, 4, 4), mask=np.ones((4, 4, 4), dtype=bool))


def test_virtual_grid_plans_without_payload():
    g = DenseGrid(Backend.sim_gpus(2), (256, 256, 256), stencils=[STENCIL_7PT], virtual=True)
    f = g.new_field("u", cardinality=19)
    assert f.buffers[0].array is None
    # footprint accounted: (128+2) slices * 256^2 * 19 comps * 8 B
    assert f.buffers[0].nbytes == 130 * 256 * 256 * 19 * 8
    with pytest.raises(RuntimeError, match="virtual"):
        f.fill(0.0)
    with pytest.raises(RuntimeError, match="virtual"):
        f.to_numpy()


def test_grid_is_not_loadable(grid):
    with pytest.raises(TypeError):
        grid.partition(0)
