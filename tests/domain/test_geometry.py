import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain import geometry as geo


def test_full_is_all_active():
    assert geo.full((4, 5)).all()


def test_ball_volume_close_to_analytic():
    m = geo.ball((40, 40, 40))
    r = 0.45 * 40
    assert abs(m.sum() - 4 / 3 * np.pi * r**3) / m.sum() < 0.05


def test_ball_2d_is_circle():
    m = geo.ball((30, 30))
    r = 0.45 * 30
    assert abs(m.sum() - np.pi * r**2) / m.sum() < 0.05


def test_ball_center_mismatch_rejected():
    with pytest.raises(ValueError):
        geo.ball((10, 10, 10), center=(5.0, 5.0))


def test_box_extents():
    m = geo.box((8, 8, 8), (1, 2, 3), (4, 5, 6))
    assert m.sum() == 27
    assert m[1, 2, 3] and not m[0, 2, 3] and not m[4, 5, 6]


def test_cylinder_constant_along_axis():
    m = geo.cylinder((10, 12, 12), axis=0)
    for z in range(1, 10):
        assert np.array_equal(m[z], m[0])
    with pytest.raises(ValueError):
        geo.cylinder((10, 10))


def test_shell_is_hollow():
    m = geo.shell((30, 30, 30), inner=5.0, outer=10.0)
    c = 14.5
    assert not m[15, 15, 15]  # centre hollow
    assert m.sum() > 0
    with pytest.raises(ValueError):
        geo.shell((10, 10, 10), inner=5.0, outer=4.0)


def test_csg_algebra():
    a = geo.box((6, 6), (0, 0), (4, 4))
    b = geo.box((6, 6), (2, 2), (6, 6))
    assert geo.union(a, b).sum() == 16 + 16 - 4
    assert geo.intersection(a, b).sum() == 4
    assert geo.difference(a, b).sum() == 12


def test_ensure_partitionable():
    m = geo.full((8, 4, 4))
    assert geo.ensure_partitionable(m, 4, radius=1) is m
    with pytest.raises(ValueError, match="slices"):
        geo.ensure_partitionable(m, 8, radius=1)
    with pytest.raises(ValueError, match="active"):
        geo.ensure_partitionable(np.zeros((8, 4), dtype=bool), 2)


@settings(max_examples=20, deadline=None)
@given(st.integers(6, 30), st.integers(0, 1000))
def test_shapes_fit_inside_box(n, seed):
    rng = np.random.default_rng(seed)
    radius = rng.uniform(1.0, n / 2)
    m = geo.ball((n, n), radius=radius)
    # boundary cells of the array may only be active if the ball truly
    # reaches them
    assert m.shape == (n, n)
    assert m.sum() <= n * n


def test_geometry_feeds_sparse_grid():
    from repro.domain import STENCIL_7PT, SparseGrid
    from repro.domain.validate import check_halo_blocks_consistent, check_sparse_connectivity
    from repro.system import Backend

    mask = geo.difference(geo.ball((16, 14, 14)), geo.ball((16, 14, 14), radius=3.0))
    grid = SparseGrid(Backend.sim_gpus(2), mask=mask, stencils=[STENCIL_7PT])
    check_sparse_connectivity(grid)
    check_halo_blocks_consistent(grid)
    assert grid.num_active == int(mask.sum())
