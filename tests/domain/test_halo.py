import numpy as np
import pytest

from repro.domain import STENCIL_7PT, DenseGrid, HaloMsg, Layout, exchange_pairs
from repro.system import Backend


def test_exchange_pairs_cover_both_directions():
    assert exchange_pairs(3) == [(0, 1), (1, 0), (1, 2), (2, 1)]
    assert exchange_pairs(1) == []


def test_halo_msg_rejects_non_neighbours():
    with pytest.raises(ValueError):
        HaloMsg("bad", 0, 2, 8, lambda: None)
    with pytest.raises(ValueError):
        HaloMsg("bad", 0, 1, -8, lambda: None)


def test_scalar_field_two_messages_per_pair():
    g = DenseGrid(Backend.sim_gpus(4), (16, 4, 4), stencils=[STENCIL_7PT])
    f = g.new_field("u")
    msgs = f.halo_messages()
    # 3 neighbour pairs x 2 directions
    assert len(msgs) == 6
    assert all(m.nbytes == 1 * 16 * 8 for m in msgs)


def test_soa_vector_field_2n_messages():
    g = DenseGrid(Backend.sim_gpus(2), (8, 4, 4), stencils=[STENCIL_7PT])
    f = g.new_field("v", cardinality=3, layout=Layout.SOA)
    msgs = f.halo_messages()
    assert len(msgs) == 2 * 3  # one pair, both directions, per component
    assert all(m.nbytes == 16 * 8 for m in msgs)


def test_aos_vector_field_two_messages():
    g = DenseGrid(Backend.sim_gpus(2), (8, 4, 4), stencils=[STENCIL_7PT])
    f = g.new_field("v", cardinality=3, layout=Layout.AOS)
    msgs = f.halo_messages()
    assert len(msgs) == 2
    assert all(m.nbytes == 16 * 8 * 3 for m in msgs)


def test_no_messages_without_stencil_or_single_device():
    g1 = DenseGrid(Backend.sim_gpus(2), (8, 4, 4))  # no stencil -> radius 0
    assert g1.new_field("u").halo_messages() == []
    g2 = DenseGrid(Backend.sim_gpus(1), (8, 4, 4), stencils=[STENCIL_7PT])
    assert g2.new_field("u").halo_messages() == []


def test_halo_transfer_moves_boundary_values():
    g = DenseGrid(Backend.sim_gpus(2), (8, 2, 2), stencils=[STENCIL_7PT])
    f = g.new_field("u")
    # write distinct values per rank without syncing halos
    from repro.domain import DataView

    f.partition(0).view(g.span_for(0, DataView.STANDARD))[...] = 1.0
    f.partition(1).view(g.span_for(1, DataView.STANDARD))[...] = 2.0
    # halos still hold outside_value (0)
    assert np.all(f.partition(1).storage[0, 0] == 0.0)
    f.sync_halo_now()
    # rank 1's low halo now holds rank 0's top slice values
    assert np.all(f.partition(1).storage[0, 0] == 1.0)
    # rank 0's high halo holds rank 1's bottom slice values
    assert np.all(f.partition(0).storage[0, -1] == 2.0)


def test_halo_roundtrip_matches_global_field():
    g = DenseGrid(Backend.sim_gpus(3), (12, 3, 3), stencils=[STENCIL_7PT])
    f = g.new_field("u")
    f.init(lambda z, y, x: z * 1.0)
    from repro.domain import DataView

    # every owned cell's z-neighbour must equal z+1 / z-1 (inside the domain)
    for rank in range(3):
        part = f.partition(rank)
        span = g.span_for(rank, DataView.STANDARD)
        z, _, _ = part.coords(span)
        zc = np.broadcast_to(z, part.view(span).shape).astype(float)
        up = part.neighbour(span, (1, 0, 0))
        inside = zc + 1 <= 11
        assert np.allclose(up[inside], (zc + 1)[inside])
