"""Property tests: memory layout and grid representation are pure
implementation choices — results must be bit-identical across them."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain import STENCIL_7PT, DataView, DenseGrid, Layout, SparseGrid
from repro.system import Backend


def stencil_sweep(grid, f):
    """Apply one Laplacian sweep per rank and return global results."""
    outs = np.zeros((f.cardinality, *grid.shape))
    for rank in range(grid.num_devices):
        part = f.partition(rank)
        span = grid.span_for(rank, DataView.STANDARD)
        for c in range(f.cardinality):
            acc = -6.0 * np.asarray(part.view(span, c), dtype=float)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + part.neighbour(span, off, c)
            if isinstance(grid, DenseGrid):
                a, b = grid.bounds[rank]
                outs[c, a:b] = acc
            else:
                coords = grid.owned_coords[rank]
                outs[c][coords[:, 0], coords[:, 1], coords[:, 2]] = acc
    return outs


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    cardinality=st.integers(1, 3),
    ndev=st.integers(1, 3),
)
def test_soa_and_aos_layouts_identical(seed, cardinality, ndev):
    rng = np.random.default_rng(seed)
    shape = (9, 4, 4)
    data = rng.standard_normal((cardinality, *shape))
    results = {}
    for layout in Layout:
        grid = DenseGrid(Backend.sim_gpus(ndev), shape, stencils=[STENCIL_7PT])
        f = grid.new_field("u", cardinality=cardinality, layout=layout)
        for c in range(cardinality):
            f.init(lambda z, y, x, c=c: data[c, z, y, x], comp=c)
        results[layout] = stencil_sweep(grid, f)
    assert np.array_equal(results[Layout.SOA], results[Layout.AOS])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), ndev=st.integers(1, 3))
def test_dense_and_sparse_grids_identical_on_random_masks(seed, ndev):
    rng = np.random.default_rng(seed)
    shape = (10, 4, 4)
    mask = rng.random(shape) < 0.7
    mask[::3] |= True  # keep every third slice populated
    if not mask.any():
        mask[0, 0, 0] = True
    data = rng.standard_normal(shape)
    masked = np.where(mask, data, 0.0)

    dg = DenseGrid(Backend.sim_gpus(ndev), shape, stencils=[STENCIL_7PT], mask=mask)
    fd = dg.new_field("u")
    fd.init(lambda z, y, x: masked[z, y, x])
    try:
        sg = SparseGrid(Backend.sim_gpus(ndev), mask=mask, stencils=[STENCIL_7PT])
    except ValueError:
        return  # domain too thin for this device count: legitimately rejected
    fs = sg.new_field("u")
    fs.init(lambda z, y, x: data[z, y, x])

    dense_out = stencil_sweep(dg, fd)[0]
    sparse_out = stencil_sweep(sg, fs)[0]
    assert np.allclose(dense_out[mask], sparse_out[mask], atol=1e-12)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_device_count_does_not_change_field_content(seed):
    rng = np.random.default_rng(seed)
    shape = (12, 3, 3)
    data = rng.standard_normal(shape)
    ref = None
    for ndev in (1, 2, 3):
        grid = DenseGrid(Backend.sim_gpus(ndev), shape, stencils=[STENCIL_7PT])
        f = grid.new_field("u")
        f.init(lambda z, y, x: data[z, y, x])
        out = stencil_sweep(grid, f)
        if ref is None:
            ref = out
        else:
            assert np.allclose(ref, out, atol=1e-12)
