import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domain import partition_imbalance, slab_partition, weighted_slab_partition


def test_even_split():
    assert slab_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_remainder_goes_to_first_slabs():
    assert slab_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_single_part_is_whole_extent():
    assert slab_partition(7, 1) == [(0, 7)]


def test_extent_smaller_than_parts_rejected():
    with pytest.raises(ValueError):
        slab_partition(3, 4)
    with pytest.raises(ValueError):
        slab_partition(4, 0)


@given(st.integers(1, 500), st.integers(1, 16))
def test_slab_partition_properties(extent, parts):
    if extent < parts:
        with pytest.raises(ValueError):
            slab_partition(extent, parts)
        return
    bounds = slab_partition(extent, parts)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == extent
    # contiguous, non-empty, balanced within one slice
    sizes = []
    for (a, b), (c, _d) in zip(bounds, bounds[1:] + [(extent, extent)]):
        assert a < b
        assert b == c
        sizes.append(b - a)
    assert max(sizes) - min(sizes) <= 1


def test_weighted_split_balances_load():
    # all the load lives in the second half of the axis
    w = np.array([0, 0, 0, 0, 10, 10, 10, 10])
    bounds = weighted_slab_partition(w, 2)
    assert bounds[0][1] >= 5  # first slab swallows the empty slices plus some load
    assert partition_imbalance(w, bounds) <= 1.5


def test_weighted_split_uniform_matches_slab():
    w = np.ones(12)
    assert weighted_slab_partition(w, 3) == slab_partition(12, 3)


def test_weighted_split_zero_total_falls_back():
    assert weighted_slab_partition(np.zeros(6), 2) == slab_partition(6, 2)


def test_weighted_negative_rejected():
    with pytest.raises(ValueError):
        weighted_slab_partition(np.array([1.0, -1.0]), 2)


@given(
    st.lists(st.integers(0, 100), min_size=2, max_size=60),
    st.integers(1, 8),
)
def test_weighted_partition_properties(weights, parts):
    w = np.array(weights, dtype=float)
    if len(w) < parts:
        with pytest.raises(ValueError):
            weighted_slab_partition(w, parts)
        return
    bounds = weighted_slab_partition(w, parts)
    assert len(bounds) == parts
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(w)
    for (a, b), (c, _d) in zip(bounds, bounds[1:] + [(len(w), len(w))]):
        assert a < b
        assert b == c


def test_imbalance_of_perfect_split_is_one():
    w = np.ones(8)
    assert partition_imbalance(w, slab_partition(8, 4)) == pytest.approx(1.0)
