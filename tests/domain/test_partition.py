import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domain import (
    normalized_shares,
    partition_imbalance,
    slab_partition,
    weighted_slab_partition,
)


def test_even_split():
    assert slab_partition(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]


def test_remainder_goes_to_first_slabs():
    assert slab_partition(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_single_part_is_whole_extent():
    assert slab_partition(7, 1) == [(0, 7)]


def test_extent_smaller_than_parts_rejected():
    with pytest.raises(ValueError):
        slab_partition(3, 4)
    with pytest.raises(ValueError):
        slab_partition(4, 0)


@given(st.integers(1, 500), st.integers(1, 16))
def test_slab_partition_properties(extent, parts):
    if extent < parts:
        with pytest.raises(ValueError):
            slab_partition(extent, parts)
        return
    bounds = slab_partition(extent, parts)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == extent
    # contiguous, non-empty, balanced within one slice
    sizes = []
    for (a, b), (c, _d) in zip(bounds, bounds[1:] + [(extent, extent)]):
        assert a < b
        assert b == c
        sizes.append(b - a)
    assert max(sizes) - min(sizes) <= 1


def test_weighted_split_balances_load():
    # all the load lives in the second half of the axis
    w = np.array([0, 0, 0, 0, 10, 10, 10, 10])
    bounds = weighted_slab_partition(w, 2)
    assert bounds[0][1] >= 5  # first slab swallows the empty slices plus some load
    assert partition_imbalance(w, bounds) <= 1.5


def test_weighted_split_uniform_matches_slab():
    w = np.ones(12)
    assert weighted_slab_partition(w, 3) == slab_partition(12, 3)


def test_weighted_split_zero_total_falls_back():
    assert weighted_slab_partition(np.zeros(6), 2) == slab_partition(6, 2)


def test_weighted_negative_rejected():
    with pytest.raises(ValueError):
        weighted_slab_partition(np.array([1.0, -1.0]), 2)


@given(
    st.lists(st.integers(0, 100), min_size=2, max_size=60),
    st.integers(1, 8),
)
def test_weighted_partition_properties(weights, parts):
    w = np.array(weights, dtype=float)
    if len(w) < parts:
        with pytest.raises(ValueError):
            weighted_slab_partition(w, parts)
        return
    bounds = weighted_slab_partition(w, parts)
    assert len(bounds) == parts
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(w)
    for (a, b), (c, _d) in zip(bounds, bounds[1:] + [(len(w), len(w))]):
        assert a < b
        assert b == c


def test_imbalance_of_perfect_split_is_one():
    w = np.ones(8)
    assert partition_imbalance(w, slab_partition(8, 4)) == pytest.approx(1.0)


# -- share-aware properties (the autotuner's contract) -----------------------


@given(
    st.lists(st.integers(0, 100), min_size=4, max_size=60),
    st.integers(1, 6),
    st.integers(1, 3),
    st.lists(st.floats(0.0, 10.0), min_size=1, max_size=6),
)
def test_weighted_partition_with_shares_properties(weights, parts, min_size, raw_shares):
    """Full coverage, contiguity and the min_size floor hold for every
    weight vector, share vector and minimum slab size."""
    w = np.array(weights, dtype=float)
    shares = np.resize(np.array(raw_shares, dtype=float), parts)
    if len(w) < parts * min_size:
        with pytest.raises(ValueError):
            weighted_slab_partition(w, parts, min_size=min_size, shares=shares)
        return
    bounds = weighted_slab_partition(w, parts, min_size=min_size, shares=shares)
    assert len(bounds) == parts
    assert bounds[0][0] == 0
    assert bounds[-1][1] == len(w)
    for (a, b), (c, _d) in zip(bounds, bounds[1:] + [(len(w), len(w))]):
        assert b - a >= min_size
        assert b == c


@given(
    st.lists(st.integers(1, 50), min_size=2, max_size=80),
    st.integers(1, 8),
    st.lists(st.floats(0.05, 10.0), min_size=1, max_size=8),
)
def test_weighted_partition_additive_load_bound(weights, parts, raw_shares):
    """Provable quality bound of the greedy prefix cut (min_size=1,
    strictly positive weights): every part's load exceeds its target
    ``total * share_r`` by at most one slice weight.  An optimal
    contiguous partition can do no better than target - max_w on some
    part, so greedy is within an additive max_w of optimal per part.
    """
    w = np.array(weights, dtype=float)
    if len(w) < parts:
        return
    shares = np.resize(np.array(raw_shares, dtype=float), parts)
    bounds = weighted_slab_partition(w, parts, min_size=1, shares=shares)
    total = float(w.sum())
    max_w = float(w.max())
    norm = normalized_shares(shares, parts)
    for (a, b), share in zip(bounds, norm):
        load = float(w[a:b].sum())
        assert load <= total * float(share) + max_w + 1e-9


@given(st.integers(2, 10), st.lists(st.floats(0.1, 10.0), min_size=2, max_size=10))
def test_zero_weights_distribute_slices_by_share(parts, raw_shares):
    """All-zero weights (a fully inactive sparse domain) must not divide
    by zero: the slices themselves are distributed by share."""
    raw_shares = raw_shares[:parts]
    shares = np.resize(np.array(raw_shares, dtype=float), parts)
    extent = 8 * parts
    bounds = weighted_slab_partition(np.zeros(extent), parts, shares=shares)
    assert bounds[0][0] == 0 and bounds[-1][1] == extent
    norm = normalized_shares(shares, parts)
    for (a, b), share in zip(bounds, norm):
        assert b - a >= 1
        assert (b - a) <= extent * float(share) + 1.0 + 1e-9


def test_all_zero_shares_fall_back_to_equal():
    assert np.allclose(normalized_shares(np.zeros(4), 4), 0.25)
    w = np.ones(12)
    assert weighted_slab_partition(w, 3, shares=np.zeros(3)) == slab_partition(12, 3)


def test_lopsided_shares_move_the_cut():
    w = np.ones(16)
    bounds = weighted_slab_partition(w, 2, shares=[3.0, 1.0])
    assert bounds == [(0, 12), (12, 16)]


def test_share_aware_imbalance_measures_against_targets():
    w = np.ones(16)
    bounds = weighted_slab_partition(w, 2, shares=[3.0, 1.0])
    assert partition_imbalance(w, bounds, shares=[3.0, 1.0]) == pytest.approx(1.0)
    # the same split measured against equal shares is 50% overloaded
    assert partition_imbalance(w, bounds) == pytest.approx(1.5)
