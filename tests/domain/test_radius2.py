"""Halo radius 2: the machinery must generalise beyond nearest-neighbour
stencils (halo sizes come from the union of all registered stencils)."""

import numpy as np
import pytest

from repro.domain import DataView, DenseGrid, SparseGrid, star
from repro.system import Backend

R2 = star(2, 3)


@pytest.fixture
def grid():
    return DenseGrid(Backend.sim_gpus(3), (15, 4, 4), stencils=[R2])


def test_radius_is_union_radius(grid):
    assert grid.radius == 2


def test_views_have_depth_two(grid):
    b = grid.span_for(1, DataView.BOUNDARY)
    assert b.count == 2 * 2 * 16  # two strips of two slices
    i = grid.span_for(1, DataView.INTERNAL)
    assert i.count == (5 - 4) * 16


def test_halo_messages_carry_two_slices(grid):
    f = grid.new_field("u")
    msgs = f.halo_messages()
    assert all(m.nbytes == 2 * 16 * 8 for m in msgs)


def test_distance_two_neighbour_across_partitions(grid):
    f = grid.new_field("u")
    f.init(lambda z, y, x: z * 1.0)
    # rank 1 owns z in [5, 10); z-2 for z=5 lives on rank 0
    part = f.partition(1)
    span = grid.span_for(1, DataView.STANDARD)
    down2 = part.neighbour(span, (-2, 0, 0))
    assert np.allclose(down2[0], 3.0)
    up2 = part.neighbour(span, (2, 0, 0))
    assert np.allclose(up2[-1], 11.0)


def test_slabs_too_thin_for_radius2_rejected():
    with pytest.raises(ValueError, match="slabs"):
        DenseGrid(Backend.sim_gpus(4), (12, 4, 4), stencils=[R2])


def test_sparse_radius2_matches_dense():
    mask = np.ones((15, 4, 4), dtype=bool)
    mask[:, 0, 0] = False
    be_d, be_s = Backend.sim_gpus(3), Backend.sim_gpus(3)
    dg = DenseGrid(be_d, mask.shape, stencils=[R2], mask=mask)
    sg = SparseGrid(be_s, mask=mask, stencils=[R2])
    fd, fs = dg.new_field("u"), sg.new_field("u")
    init = lambda z, y, x: np.where(mask[z, y, x], z * 10.0 + y + 0.1 * x, 0.0)
    fd.init(init)
    fs.init(lambda z, y, x: z * 10.0 + y + 0.1 * x)

    for rank in range(3):
        span_d = dg.span_for(rank, DataView.STANDARD)
        span_s = sg.span_for(rank, DataView.STANDARD)
        vd = fd.partition(rank).neighbour(span_d, (2, 0, 0))
        vs = fs.partition(rank).neighbour(span_s, (2, 0, 0))
        # compare via global scatter on active cells
        coords = sg.owned_coords[rank]
        a, b = dg.bounds[rank]
        dense_vals = vd[coords[:, 0] - a, coords[:, 1], coords[:, 2]]
        assert np.allclose(dense_vals, vs)


def test_mixed_radius_union():
    g = DenseGrid(Backend.sim_gpus(2), (12, 4, 4), stencils=[star(1, 3), R2])
    assert g.radius == 2
    assert g.stencil.size == 13
