import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain import STENCIL_7PT, DataView, DenseGrid, Layout, SparseGrid
from repro.system import Backend


def ball_mask(shape, radius_frac=0.45):
    """A sphere inside the box: a free-form domain like the paper's."""
    axes = [np.arange(s) - (s - 1) / 2 for s in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    r2 = sum(g**2 for g in grids)
    return r2 <= (radius_frac * min(shape)) ** 2


@pytest.fixture
def grid():
    mask = ball_mask((12, 10, 10))
    return SparseGrid(Backend.sim_gpus(3), mask=mask, stencils=[STENCIL_7PT])


def test_active_count_matches_mask(grid):
    assert grid.num_active == int(grid.mask.sum())
    assert 0 < grid.sparsity_ratio < 1


def test_owned_cells_partition_the_active_set(grid):
    assert sum(grid.n_owned) == grid.num_active


def test_views_partition_owned_cells(grid):
    for rank in range(3):
        std = grid.span_for(rank, DataView.STANDARD).count
        i = grid.span_for(rank, DataView.INTERNAL).count
        b = grid.span_for(rank, DataView.BOUNDARY).count
        assert std == i + b == grid.n_owned[rank]


def test_boundary_counts_match_halo_counts(grid):
    for r in range(2):
        assert grid.n_halo_lo[r + 1] == grid.n_bnd_hi[r]
        assert grid.n_halo_hi[r] == grid.n_bnd_lo[r + 1]


def test_load_balance_is_reasonable(grid):
    loads = grid.n_owned
    assert max(loads) / (sum(loads) / len(loads)) < 1.6


def test_field_init_and_to_numpy(grid):
    f = grid.new_field("u", outside_value=-1.0)
    f.init(lambda z, y, x: z * 100.0 + y * 10 + x)
    arr = f.to_numpy()[0]
    z, y, x = np.meshgrid(*[np.arange(s) for s in grid.shape], indexing="ij")
    expected = np.where(grid.mask, z * 100.0 + y * 10 + x, -1.0)
    assert np.array_equal(arr, expected)


def test_neighbour_inactive_reads_outside_value(grid):
    f = grid.new_field("u", outside_value=-7.0)
    f.fill(1.0)
    f.sync_halo_now()
    part = f.partition(0)
    span = grid.span_for(0, DataView.STANDARD)
    vals = part.neighbour(span, (0, 0, 1))
    z, y, x = part.coords(span)
    nbr_active = np.zeros(len(z), dtype=bool)
    ok = x + 1 < grid.shape[2]
    nbr_active[ok] = grid.mask[z[ok], y[ok], x[ok] + 1]
    assert np.all(vals[nbr_active] == 1.0)
    assert np.all(vals[~nbr_active] == -7.0)


def test_neighbour_unregistered_offset_rejected(grid):
    f = grid.new_field("u")
    span = grid.span_for(0, DataView.STANDARD)
    with pytest.raises(ValueError, match="registered"):
        f.partition(0).neighbour(span, (1, 1, 1))  # 7pt has no corners


def test_neighbour_without_stencil_rejected():
    mask = ball_mask((8, 6, 6))
    g = SparseGrid(Backend.sim_gpus(1), mask=mask)
    f = g.new_field("u")
    with pytest.raises(RuntimeError, match="stencil"):
        f.partition(0).neighbour(g.span_for(0, DataView.STANDARD), (0, 0, 1))


def test_halo_exchange_matches_dense_result():
    """The same stencil computation on dense and sparse grids must agree."""
    mask = ball_mask((12, 8, 8))
    be_d, be_s = Backend.sim_gpus(3), Backend.sim_gpus(3)
    dg = DenseGrid(be_d, mask.shape, stencils=[STENCIL_7PT], mask=mask)
    sg = SparseGrid(be_s, mask=mask, stencils=[STENCIL_7PT])

    init = lambda z, y, x: np.sin(z * 1.0) + np.cos(y * 2.0) + x
    fd, fs = dg.new_field("u"), sg.new_field("u")
    # dense stores the whole box: keep inactive cells at 0 so its stencil
    # reads of inactive neighbours agree with sparse's outside_value = 0
    fd.init(lambda z, y, x: np.where(mask[z, y, x], init(z, y, x), 0.0))
    fs.init(init)

    def laplacian(grid, f):
        outs = []
        for rank in range(grid.num_devices):
            part = f.partition(rank)
            span = grid.span_for(rank, DataView.STANDARD)
            acc = -6.0 * part.view(span).astype(float)
            for off in STENCIL_7PT:
                if off != (0, 0, 0):
                    acc = acc + part.neighbour(span, off)
            outs.append(np.asarray(acc))
        return outs

    dense_out = laplacian(dg, fd)
    sparse_out = laplacian(sg, fs)

    # compare per-cell: scatter both into global arrays over active cells
    g_dense = np.zeros(mask.shape)
    for rank in range(3):
        a, b = dg.bounds[rank]
        g_dense[a:b] = dense_out[rank]
    g_sparse = np.zeros(mask.shape)
    for rank in range(3):
        coords = sg.owned_coords[rank]
        g_sparse[coords[:, 0], coords[:, 1], coords[:, 2]] = sparse_out[rank]

    # dense stencil reads inactive cells' stored values (= outside 0) and
    # sparse reads outside_value 0 for inactive neighbours: both agree on
    # active cells because inactive dense cells were never written
    assert np.allclose(g_dense[mask], g_sparse[mask])


def test_sparse_halo_messages_counts():
    mask = np.ones((8, 4, 4), dtype=bool)
    g = SparseGrid(Backend.sim_gpus(2), mask=mask, stencils=[STENCIL_7PT])
    f = g.new_field("u")
    msgs = f.halo_messages()
    assert len(msgs) == 2
    assert all(m.nbytes == 16 * 8 for m in msgs)
    fv = g.new_field("v", cardinality=3, layout=Layout.SOA)
    assert len(fv.halo_messages()) == 6
    fa = g.new_field("w", cardinality=3, layout=Layout.AOS)
    msgs_aos = fa.halo_messages()
    assert len(msgs_aos) == 2
    assert all(m.nbytes == 16 * 8 * 3 for m in msgs_aos)


def test_virtual_sparse_from_slice_counts():
    be = Backend.sim_gpus(4)
    counts = np.full(64, 16 * 16 // 2)  # 50% sparsity
    g = SparseGrid(be, shape=(64, 16, 16), stencils=[STENCIL_7PT], active_per_slice=counts, virtual=True)
    assert g.num_active == 64 * 128
    assert g.sparsity_ratio == pytest.approx(0.5)
    f = g.new_field("u", cardinality=3)
    assert f.buffers[0].array is None
    assert sum(grid_n for grid_n in g.n_owned) == g.num_active
    # all spans well-formed
    for rank in range(4):
        for view in DataView:
            assert g.span_for(rank, view).count >= 0


def test_virtual_sparse_requires_counts_or_mask():
    be = Backend.sim_gpus(1)
    with pytest.raises(ValueError):
        SparseGrid(be, shape=(8, 8, 8), virtual=True)
    with pytest.raises(ValueError):
        SparseGrid(be, shape=(8, 8, 8), active_per_slice=np.ones(8), virtual=False)


def test_empty_mask_rejected():
    with pytest.raises(ValueError, match="no active"):
        SparseGrid(Backend.sim_gpus(1), mask=np.zeros((4, 4, 4), dtype=bool))


def test_bad_indirection_rejected():
    with pytest.raises(ValueError):
        SparseGrid(Backend.sim_gpus(1), mask=np.ones((4, 4, 4), dtype=bool), indirection=0.9)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_random_masks_keep_halo_block_invariants(seed):
    rng = np.random.default_rng(seed)
    mask = rng.random((10, 5, 5)) < 0.6
    mask[0, 0, 0] = True  # ensure non-empty
    try:
        g = SparseGrid(Backend.sim_gpus(2), mask=mask, stencils=[STENCIL_7PT])
    except ValueError:
        return  # too thin for 2 devices: legitimately rejected
    assert sum(g.n_owned) == int(mask.sum())
    assert g.n_halo_lo[1] == g.n_bnd_hi[0]
    assert g.n_halo_hi[0] == g.n_bnd_lo[1]
    for rank in range(2):
        # connectivity indices stay within this rank's local arrays
        conn = g.conn[rank]
        assert conn.min() >= -1
        assert conn.max() < g.n_total(rank)
