import pytest

from repro.domain import D2Q9_STENCIL, D3Q19_STENCIL, STENCIL_7PT, STENCIL_27PT, Stencil, box, star


def test_star_7pt_shape():
    assert STENCIL_7PT.size == 7
    assert STENCIL_7PT.ndim == 3
    assert STENCIL_7PT.radius == 1
    assert (0, 0, 0) in STENCIL_7PT.offsets
    assert (1, 0, 0) in STENCIL_7PT.offsets
    assert (1, 1, 0) not in STENCIL_7PT.offsets


def test_box_27pt_shape():
    assert STENCIL_27PT.size == 27
    assert (1, 1, 1) in STENCIL_27PT.offsets
    assert STENCIL_27PT.radius == 1


def test_d3q19_has_19_offsets_no_corners():
    assert D3Q19_STENCIL.size == 19
    assert (1, 1, 1) not in D3Q19_STENCIL.offsets
    assert (1, 1, 0) in D3Q19_STENCIL.offsets
    assert (0, 0, 0) in D3Q19_STENCIL.offsets


def test_d2q9_shape():
    assert D2Q9_STENCIL.size == 9
    assert D2Q9_STENCIL.ndim == 2
    assert D2Q9_STENCIL.radius == 1


def test_union_merges_and_dedups():
    u = STENCIL_7PT.union(STENCIL_27PT)
    assert u.size == 27  # 7pt is a subset of 27pt
    assert u.radius == 1


def test_union_dimension_mismatch():
    with pytest.raises(ValueError):
        STENCIL_7PT.union(D2Q9_STENCIL)


def test_radius_2_star():
    s = star(2, 3)
    assert s.radius == 2
    assert (2, 0, 0) in s.offsets
    assert s.size == 13


def test_no_center_variants():
    assert star(1, 3, include_center=False).size == 6
    assert box(1, 3, include_center=False).size == 26


def test_duplicate_offsets_rejected():
    with pytest.raises(ValueError):
        Stencil("dup", ((0, 0, 0), (0, 0, 0)))


def test_mixed_dims_rejected():
    with pytest.raises(ValueError):
        Stencil("mixed", ((0, 0), (0, 0, 0)))


def test_empty_stencil_rejected():
    with pytest.raises(ValueError):
        Stencil("empty", ())
