"""Property-based tests on the stencil algebra."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain import Stencil, box, star

offset_strategy = st.tuples(st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2))


@st.composite
def stencils(draw):
    offs = draw(st.lists(offset_strategy, min_size=1, max_size=12, unique=True))
    return Stencil("rnd", tuple(offs))


@settings(max_examples=40, deadline=None)
@given(stencils(), stencils())
def test_union_is_commutative_in_content(a, b):
    ab = set(a.union(b).offsets)
    ba = set(b.union(a).offsets)
    assert ab == ba == set(a.offsets) | set(b.offsets)


@settings(max_examples=40, deadline=None)
@given(stencils())
def test_union_is_idempotent(a):
    assert set(a.union(a).offsets) == set(a.offsets)
    assert a.union(a).size == a.size


@settings(max_examples=40, deadline=None)
@given(stencils(), stencils())
def test_union_radius_is_max(a, b):
    assert a.union(b).radius == max(a.radius, b.radius)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3))
def test_star_size_formula(radius, ndim):
    s = star(radius, ndim)
    assert s.size == 1 + 2 * radius * ndim
    assert s.radius == radius


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 2), st.integers(1, 3))
def test_box_size_formula(radius, ndim):
    b = box(radius, ndim)
    assert b.size == (2 * radius + 1) ** ndim
    assert set(star(radius, ndim).offsets) <= set(b.offsets)
