import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain import STENCIL_7PT, STENCIL_27PT, DenseGrid, SparseGrid
from repro.domain import geometry as geo
from repro.domain.validate import (
    check_dense_ghosts,
    check_halo_blocks_consistent,
    check_sparse_connectivity,
    check_views_partition_cells,
)
from repro.system import Backend


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 5000), ndev=st.integers(1, 3))
def test_random_sparse_grids_pass_all_invariants(seed, ndev):
    rng = np.random.default_rng(seed)
    mask = rng.random((12, 5, 5)) < 0.65
    mask[:, 2, 2] = True  # keep all slices populated
    try:
        grid = SparseGrid(Backend.sim_gpus(ndev), mask=mask, stencils=[STENCIL_27PT])
    except ValueError:
        return
    check_views_partition_cells(grid)
    check_sparse_connectivity(grid)
    check_halo_blocks_consistent(grid)


def test_dense_ghosts_fresh_after_sync():
    grid = DenseGrid(Backend.sim_gpus(3), (12, 4, 4), stencils=[STENCIL_7PT])
    f = grid.new_field("u", outside_value=-3.0)
    f.init(lambda z, y, x: z * 1.0)
    check_dense_ghosts(grid, f)
    check_views_partition_cells(grid)


def test_dense_ghosts_detect_staleness():
    grid = DenseGrid(Backend.sim_gpus(2), (8, 4, 4), stencils=[STENCIL_7PT])
    f = grid.new_field("u")
    f.init(lambda z, y, x: z * 1.0)
    # overwrite without syncing: the checker must notice
    from repro.domain import DataView

    f.partition(0).view(grid.span_for(0, DataView.STANDARD))[...] = 99.0
    with pytest.raises(AssertionError, match="stale"):
        check_dense_ghosts(grid, f)


def test_virtual_grids_rejected_by_checkers():
    grid = SparseGrid(
        Backend.sim_gpus(1),
        shape=(8, 4, 4),
        stencils=[STENCIL_7PT],
        active_per_slice=np.full(8, 16),
        virtual=True,
    )
    with pytest.raises(ValueError, match="virtual"):
        check_sparse_connectivity(grid)
    with pytest.raises(ValueError, match="virtual"):
        check_halo_blocks_consistent(grid)


def test_shell_domain_passes_invariants():
    mask = geo.shell((14, 12, 12), inner=2.5, outer=5.5)
    grid = SparseGrid(Backend.sim_gpus(2), mask=mask, stencils=[STENCIL_7PT])
    check_sparse_connectivity(grid)
    check_halo_blocks_consistent(grid)
    check_views_partition_cells(grid)
