"""Critical-path analyzer cross-checked against the DES.

The invariants under test are the ones the dashboard's numbers rest on:

* the reconstructed path total equals the simulated makespan *exactly*
  (the DES records each span's binding constraint, so the walk is a
  replay of the schedule's own reasoning, not an estimate);
* the happens-before dependency chain never exceeds any replay's
  makespan (it ignores resource contention and host dispatch);
* per-device busy/blocked/idle fractions sum to 1;
* :func:`attribute_wall_clock` conserves time.
"""

import pytest

from repro.bench.traceable import build_workload
from repro.observability import (
    attribute_wall_clock,
    critical_path,
    dependency_chain,
    device_utilization,
)
from repro.sim.replay import sim_replay


def _traced(exp: str, devices: int, mode: str):
    wl = build_workload(exp, devices=devices)
    wl.run()
    sk = wl.skeletons[0]
    result = sk.last_result or sk.record()
    trace = sim_replay(result, sk.backend.machine, mode=mode)
    return sk, result, trace


@pytest.mark.parametrize("exp", ["lbm", "poisson"])
@pytest.mark.parametrize("mode", ["serial", "parallel"])
def test_path_total_equals_makespan_exactly(exp, mode):
    _, _, trace = _traced(exp, 3, mode)
    cp = critical_path(trace)
    assert cp.total == pytest.approx(trace.makespan, rel=1e-12)
    # the acceptance bound is 1%; the construction delivers exact
    assert abs(cp.total - trace.makespan) <= 0.01 * trace.makespan
    assert sum(cp.breakdown.values()) == pytest.approx(cp.total, rel=1e-9)
    assert all(v >= 0.0 for v in cp.breakdown.values())


@pytest.mark.parametrize("exp", ["lbm", "poisson"])
def test_dependency_chain_lower_bounds_every_mode(exp):
    for mode in ("serial", "parallel"):
        sk, result, trace = _traced(exp, 3, mode)
        chain = dependency_chain(result.queues, sk.backend.machine)
        assert chain.total > 0.0 and chain.commands
        assert chain.total <= trace.makespan * (1.0 + 1e-9)


@pytest.mark.parametrize("exp", ["lbm", "poisson"])
def test_device_utilization_fractions_sum_to_one(exp):
    _, _, trace = _traced(exp, 3, "parallel")
    util = device_utilization(trace)
    assert sorted(util) == sorted({s.device for s in trace.spans})
    for dev, frac in util.items():
        assert set(frac) == {"busy", "blocked", "idle"}
        assert all(v >= -1e-12 for v in frac.values()), (dev, frac)
        assert sum(frac.values()) == pytest.approx(1.0, abs=1e-9)
        assert frac["busy"] > 0.0


def test_attribute_wall_clock_conserves_time():
    _, _, trace = _traced("poisson", 2, "serial")
    wall = trace.makespan * 3.0  # pretend the interpreter tripled it
    attr = attribute_wall_clock(trace, wall_seconds=wall)
    assert attr["makespan"] == pytest.approx(trace.makespan)
    assert attr["python_dispatch_overhead"] == pytest.approx(wall - trace.makespan)
    modeled = attr["kernel"] + attr["copy"] + attr["wait"] + attr["dispatch"]
    assert modeled == pytest.approx(attr["makespan"], rel=1e-9)


def test_attribute_wall_clock_never_negative():
    _, _, trace = _traced("poisson", 2, "serial")
    attr = attribute_wall_clock(trace, wall_seconds=trace.makespan * 0.5)
    assert attr["python_dispatch_overhead"] == 0.0


def test_empty_trace_degenerates_cleanly():
    from repro.sim.trace import Trace

    cp = critical_path(Trace([]))
    assert cp.total == 0.0 and cp.segments == []
    assert device_utilization(Trace([])) == {}
