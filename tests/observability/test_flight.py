"""Flight recorder: bounded rings, dump artifacts, and the post-mortem
contract — a terminal failure leaves a FLIGHT_*.json that names the
failing site."""

import json

from repro.observability import flight
from repro.observability.flight import FlightRecorder


def test_ring_is_bounded_per_track():
    rec = FlightRecorder(capacity=4)
    for i in range(10):
        rec.record("device0", "kernel", f"k{i}")
    rec.record("host", "note", "alone")
    snap = rec.snapshot()
    assert [e["name"] for e in snap["device0"]] == ["k6", "k7", "k8", "k9"]
    assert [e["name"] for e in snap["host"]] == ["alone"]
    assert rec.records == 11  # evictions do not uncount events


def test_sequence_is_global_across_tracks():
    rec = FlightRecorder()
    rec.record("a", "note", "first")
    rec.record("b", "note", "second")
    snap = rec.snapshot()
    assert snap["a"][0]["seq"] < snap["b"][0]["seq"]


def test_dump_writes_schema_and_events(tmp_path):
    rec = FlightRecorder(capacity=8, dump_dir=str(tmp_path))
    rec.record("device1", "fault", "axpy@1", {"kind": "device_lost", "rank": 1})
    path = rec.dump("unit_test", {"why": "testing"})
    doc = json.loads((tmp_path / "FLIGHT_unit_test_0.json").read_text())
    assert path.endswith("FLIGHT_unit_test_0.json")
    assert doc["schema"] == "repro-flight/1"
    assert doc["reason"] == "unit_test" and doc["context"] == {"why": "testing"}
    ev = doc["tracks"]["device1"][0]
    assert ev["kind"] == "fault" and ev["name"] == "axpy@1"
    assert ev["detail"] == {"kind": "device_lost", "rank": 1}
    # repeated dumps get distinct file names
    rec.dump("unit_test")
    assert (tmp_path / "FLIGHT_unit_test_1.json").exists()


def test_module_record_respects_enabled_flag():
    flight.configure(enabled=False)
    try:
        flight.record("host", "note", "dropped")
        assert flight.FLIGHT.records == 0
        assert flight.dump("nope") is None
    finally:
        flight.configure(enabled=True)


def test_configure_capacity_rebounds_existing_rings():
    flight.record("host", "note", "a")
    flight.record("host", "note", "b")
    flight.record("host", "note", "c")
    flight.configure(capacity=2)
    snap = flight.FLIGHT.snapshot()
    assert [e["name"] for e in snap["host"]] == ["b", "c"]


def test_permanent_device_loss_dump_names_failing_site(tmp_path):
    """End-to-end post-mortem: an injected permanent device loss that the
    driver cannot degrade around must leave a FLIGHT dump whose fault
    event carries the failing command's site key."""
    import pytest

    from repro import resilience as res
    from repro.resilience import (
        DeviceLost,
        FaultPlan,
        RecoveryPolicy,
        ResilientDriver,
    )
    from repro.system import Backend
    from tests.resilience.test_runner import CountingApp

    flight.configure(dump_dir=str(tmp_path))
    plan = FaultPlan(seed=0, device_loss={1: 1})
    driver = ResilientDriver(
        CountingApp,
        Backend.sim_gpus(2),
        steps=4,
        plan=plan,
        # min_devices == device count: losing any device is terminal
        policy=RecoveryPolicy(min_devices=2),
    )
    with res.session(plan), pytest.raises(DeviceLost):
        driver.run()

    dumps = sorted(tmp_path.glob("FLIGHT_resilience_*.json"))
    assert dumps, "terminal ResilienceError must produce a flight dump"
    doc = json.loads(dumps[0].read_text())
    assert doc["schema"] == "repro-flight/1"
    faults = [
        e
        for e in doc["tracks"].get("device1", [])
        if e["kind"] == "fault" and e.get("detail", {}).get("kind") == "device_lost"
    ]
    assert faults, f"no device_lost fault event in dump tracks: {sorted(doc['tracks'])}"
    # the site key names the command that touched the lost device
    assert "@" in faults[0]["name"]
    assert faults[0]["detail"]["rank"] == 1


def test_kind_counts_tallies_surviving_events_across_tracks():
    fr = FlightRecorder(capacity=4)
    fr.record("device0", "kernel", "k0")
    fr.record("device1", "kernel", "k1")
    fr.record("host", "fault", "boom", {"rank": 1})
    assert fr.kind_counts() == {"fault": 1, "kernel": 2}
    for i in range(6):  # overflow the device0 ring: only survivors count
        fr.record("device0", "copy", f"c{i}")
    assert fr.kind_counts() == {"copy": 4, "fault": 1, "kernel": 1}
